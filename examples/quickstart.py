#!/usr/bin/env python3
"""Quickstart: simulate PIPM vs the Native CXL-DSM baseline on PageRank.

Builds a 4-host CXL-DSM system (Table 2, scaled), generates a multi-host
PageRank trace over a real RMAT graph, replays it under both schemes, and
prints the headline comparison: execution time, speedup, local-memory hit
rate, and PIPM's migration activity.

Run:  python examples/quickstart.py
"""

from repro import (
    SystemConfig,
    WorkloadScale,
    compare_schemes,
    speedups_over_native,
)
from repro.units import pretty_time


def main() -> None:
    config = SystemConfig.scaled()
    print("System:", config.describe()["Architecture"])
    print("CXL link:", config.describe()["CXL link"])
    print()

    results = compare_schemes(
        "pr",
        schemes=["native", "pipm", "local-only"],
        config=config,
        scale=WorkloadScale.small(),
    )

    native = results["native"]
    print(f"{'scheme':<12} {'exec time':>12} {'speedup':>8} "
          f"{'local hits':>11} {'migrated pages':>15}")
    for name, result in results.items():
        print(
            f"{name:<12} {pretty_time(result.exec_time_ns):>12} "
            f"{result.speedup_over(native):>8.2f} "
            f"{result.local_hit_rate:>11.1%} "
            f"{result.migrations:>15}"
        )

    pipm = results["pipm"]
    print()
    print("PIPM detail:")
    print(f"  partial migrations initiated : {pipm.stats['pipm_promotions']:.0f}")
    print(f"  lines migrated incrementally : "
          f"{pipm.stats['pipm_incremental_migrations']:.0f}")
    print(f"  lines migrated back          : "
          f"{pipm.stats['pipm_migrate_backs']:.0f}")
    print(f"  revocations                  : "
          f"{pipm.stats['pipm_revocations']:.0f}")
    print(f"  local remap cache hit rate   : "
          f"{pipm.stats['local_remap_cache_hit_rate']:.1%}")

    speedups = speedups_over_native(results)
    print()
    print(f"PIPM reaches {speedups['pipm'] / speedups['local-only']:.0%} "
          f"of the Local-only ideal on this workload.")


if __name__ == "__main__":
    main()
