#!/usr/bin/env python3
"""Graph analytics on multi-host CXL-DSM: all six GAPBS kernels.

The paper's intro motivates PIPM with graph workloads whose worker threads
traverse partition-local adjacency data (strong locality) while reading
vertex properties across partitions (fine-grained sharing).  This example
runs every GAPBS kernel under Native, a kernel tiering baseline (Memtis),
and PIPM, and prints the Fig. 10-style comparison for the graph suite.

Run:  python examples/graph_analytics.py [--scale tiny|small|default]
"""

import argparse

from repro import SystemConfig, WorkloadScale, compare_schemes
from repro.analysis.report import format_series, geomean

GAPBS = ["sssp", "bfs", "pr", "cc", "bc", "tc"]
SCHEMES = ["native", "memtis", "os-skew", "pipm"]


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--scale", default="small",
                        choices=["tiny", "small", "default"])
    args = parser.parse_args()
    scale = getattr(WorkloadScale, args.scale)()
    config = SystemConfig.scaled()

    series = {}
    for kernel in GAPBS:
        results = compare_schemes(kernel, schemes=SCHEMES, config=config,
                                  scale=scale)
        native = results["native"]
        series[kernel] = {
            name: result.speedup_over(native)
            for name, result in results.items()
            if name != "native"
        }
        print(f"{kernel}: " + "  ".join(
            f"{k}={v:.2f}x" for k, v in series[kernel].items()
        ))

    print()
    print(format_series("GAPBS speedup over Native CXL-DSM", series,
                        mean_row="geomean"))
    pipm_mean = geomean(v["pipm"] for v in series.values())
    print(f"\nPIPM geomean speedup across the graph suite: {pipm_mean:.2f}x")


if __name__ == "__main__":
    main()
