#!/usr/bin/env python3
"""Sensitivity sweep: how CXL fabric parameters move PIPM's advantage.

Reproduces the direction of Figs. 14 and 15 interactively: sweep the CXL
link latency (direct-attach vs switched fabric) and per-direction bandwidth
(x8/x16/x32 lanes) and report PIPM's speedup over Native for one workload.

Run:  python examples/sensitivity_sweep.py [--workload pr]
"""

import argparse

from repro import SystemConfig, WorkloadScale, generate, make_scheme, simulate


def run_pair(trace, config):
    native = simulate(trace, make_scheme("native"), config)
    pipm = simulate(trace, make_scheme("pipm"), config)
    return pipm.speedup_over(native)


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--workload", default="streamcluster")
    args = parser.parse_args()

    base = SystemConfig.scaled()
    trace = generate(args.workload, scale=WorkloadScale.small())
    print(f"workload: {args.workload} "
          f"({trace.footprint_bytes >> 20} MB footprint)\n")

    print("CXL link latency sweep (Fig. 14 direction):")
    for latency in (25.0, 50.0, 100.0, 200.0):
        cfg = base.replace_nested("cxl_link", latency_ns=latency)
        speedup = run_pair(trace, cfg)
        bar = "#" * int(speedup * 20)
        print(f"  {latency:6.0f} ns/direction : {speedup:5.2f}x  {bar}")

    print("\nCXL link bandwidth sweep (Fig. 15 direction):")
    for label, gbs in (("x8", 2.5), ("x16", 5.0), ("x32", 10.0)):
        cfg = base.replace_nested("cxl_link", bandwidth_gbs=gbs)
        speedup = run_pair(trace, cfg)
        bar = "#" * int(speedup * 20)
        print(f"  {label:>4} ({gbs:4.1f} GB/s)   : {speedup:5.2f}x  {bar}")

    print("\nSlower fabrics make local placement more valuable; PIPM's")
    print("advantage grows with link latency and shrinking bandwidth.")


if __name__ == "__main__":
    main()
