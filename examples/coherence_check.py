#!/usr/bin/env python3
"""Model-check the PIPM coherence protocol (the paper's Murphi step).

Section 5.1.4: the authors verify with Murphi that PIPM coherence is
deadlock-free and preserves the Single-Writer-Multiple-Reader invariant
and Sequential Consistency.  This example runs the repository's built-in
explicit-state checker over both the baseline CXL-DSM MSI protocol and the
PIPM protocol (with every choice of remap host), for 2- and 3-host
configurations, and prints state-space statistics.

Run:  python examples/coherence_check.py
"""

from repro.coherence import (
    BaseCxlDsmModel,
    ModelChecker,
    PipmModel,
    verify_sequential_consistency,
)


def main() -> None:
    print("Verifying SWMR + data-value integrity + no stuck states")
    print("(atomic-transaction analogue of the paper's Murphi run)\n")

    failures = 0
    for hosts in (2, 3):
        result = ModelChecker(BaseCxlDsmModel(hosts)).run()
        print(f"baseline MSI, {hosts} hosts: {result.summary()}")
        failures += len(result.violations)

    for hosts in (2, 3):
        for remap_host in range(hosts):
            model = PipmModel(hosts, remap_host=remap_host)
            result = ModelChecker(model).run()
            print(f"PIPM, {hosts} hosts, remap host {remap_host}: "
                  f"{result.summary()}")
            for violation in result.violations:
                print(f"  !! {violation}")
            failures += len(result.violations)

    print()
    print("Litmus tests (MP / SB / CoRR over two lines, all interleavings):")
    for config, counts in verify_sequential_consistency(2).items():
        print(f"  {config}: " + ", ".join(
            f"{name} ok ({n} interleavings)" for name, n in counts.items()
        ))

    print()
    if failures:
        raise SystemExit(f"FAILED: {failures} violations found")
    print("All protocol configurations verified: no SWMR violations, every")
    print("load observed the latest store, no reachable state is stuck, and")
    print("no SC-forbidden litmus outcome is reachable.")


if __name__ == "__main__":
    main()
