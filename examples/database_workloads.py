#!/usr/bin/env python3
"""Database workloads (TPC-C, YCSB) over multi-host CXL-DSM.

Databases are the hard case for page migration: transactions scatter
accesses across hosts, global hot keys are contested, and whole-page
migration easily turns into "local gain, global pain".  This example runs
both Silo workloads under every scheme and reports, per scheme: speedup,
local hit rate, inter-host stalls, and — for the kernel schemes — the
fraction of migrations that were *harmful* (Fig. 5's metric).

Run:  python examples/database_workloads.py
"""

from repro import SystemConfig, WorkloadScale, compare_schemes
from repro.sim.harness import DEFAULT_SCHEMES


def main() -> None:
    config = SystemConfig.scaled()
    scale = WorkloadScale.small()

    for workload in ("tpcc", "ycsb"):
        results = compare_schemes(workload, schemes=DEFAULT_SCHEMES,
                                  config=config, scale=scale)
        native = results["native"]
        print(f"== {workload} "
              f"(footprint {native.footprint_bytes >> 20} MB, "
              f"{native.accesses} accesses) ==")
        header = (f"{'scheme':<12} {'speedup':>8} {'local':>7} "
                  f"{'interhost':>10} {'harmful':>8} {'migrations':>11}")
        print(header)
        for name, result in results.items():
            harmful = result.stats.get("harmful_fraction")
            print(
                f"{name:<12} {result.speedup_over(native):>8.2f} "
                f"{result.local_hit_rate:>7.1%} "
                f"{result.inter_host_stall_fraction(native.exec_time_ns):>10.1%} "
                f"{'' if harmful is None else f'{harmful:.0%}':>8} "
                f"{result.migrations:>11}"
            )
        print()

    print("Note how the majority-vote schemes (os-skew, pipm) keep the")
    print("inter-host stall column near zero: contested pages are simply")
    print("never migrated away from CXL memory.")


if __name__ == "__main__":
    main()
