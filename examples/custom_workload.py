#!/usr/bin/env python3
"""Build your own workload: sharing-structure knobs and what they cost.

Downstream users adopting a multi-host CXL-DSM placement policy usually
want to know how *their* sharing mix behaves.  This example sweeps the
``own_fraction`` / ``shared_fraction`` knobs of
:class:`repro.workloads.synthetic.SyntheticSpec` and shows where each
scheme's break-even point lies, then runs the distilled dominant/minority
sub-page split pattern where partial migration wins by design.

Run:  python examples/custom_workload.py
"""

from repro import SystemConfig, WorkloadScale, make_scheme, simulate
from repro.workloads.synthetic import (
    SyntheticSpec,
    partitioned_split_trace,
    synthetic_trace,
)

SCHEMES = ("memtis", "pipm")


def run(trace, cfg):
    native = simulate(trace, make_scheme("native"), cfg)
    row = {}
    for scheme in SCHEMES:
        result = simulate(trace, make_scheme(scheme), cfg)
        row[scheme] = result.speedup_over(native)
    return row


def main() -> None:
    cfg = SystemConfig.scaled()
    scale = WorkloadScale.small()

    print("Sweep: host-affine vs globally-contested traffic mix")
    print(f"{'own':>5} {'shared':>7} | " +
          "  ".join(f"{s:>7}" for s in SCHEMES))
    for own, shared in ((0.8, 0.1), (0.6, 0.3), (0.4, 0.5), (0.2, 0.7)):
        spec = SyntheticSpec(own_fraction=own, shared_fraction=shared,
                             sequential_own=True)
        trace = synthetic_trace(spec, scale=scale)
        row = run(trace, cfg)
        print(f"{own:>5.0%} {shared:>7.0%} | " +
              "  ".join(f"{row[s]:>6.2f}x" for s in SCHEMES))

    print("\nDominant/minority sub-page split (the paper's thesis case):")
    trace = partitioned_split_trace(scale=scale)
    row = run(trace, cfg)
    for scheme in SCHEMES:
        print(f"  {scheme:<8}: {row[scheme]:.2f}x over native")
    print("\nAs contested traffic grows, whole-page migration flips from")
    print("helpful to harmful while PIPM degrades gracefully — the vote")
    print("simply stops migrating, and sub-page splits still pay off.")


if __name__ == "__main__":
    main()
