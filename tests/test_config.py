"""System configuration: presets, validation, nested replacement."""

import dataclasses

import pytest

from repro import units
from repro.config import (
    CacheConfig,
    KernelMigrationConfig,
    PipmConfig,
    SystemConfig,
)


class TestPaperPreset:
    """Table 2 values, verbatim."""

    def test_hosts_and_cores(self, paper_config):
        assert paper_config.num_hosts == 4
        assert paper_config.cores_per_host == 4

    def test_cpu(self, paper_config):
        core = paper_config.core
        assert core.freq_ghz == 4.0
        assert core.width == 6
        assert core.rob_entries == 224
        assert core.load_queue == 72
        assert core.store_queue == 56

    def test_caches(self, paper_config):
        assert paper_config.l1.size_bytes == 32 * units.KB
        assert paper_config.l1.ways == 8
        assert paper_config.llc.size_bytes == 8 * units.MB
        assert paper_config.llc.ways == 16

    def test_dram(self, paper_config):
        assert paper_config.cxl_dram.capacity_bytes == 128 * units.GB
        assert paper_config.cxl_dram.channels == 2
        assert paper_config.local_dram.capacity_bytes == 32 * units.GB
        assert paper_config.local_dram.channels == 1

    def test_ddr5_timings(self, paper_config):
        dram = paper_config.cxl_dram
        assert (dram.trc_ns, dram.trcd_ns, dram.tcl_ns, dram.trp_ns) == (
            48, 15, 20, 15,
        )

    def test_cxl_link(self, paper_config):
        assert paper_config.cxl_link.latency_ns == 50.0
        assert paper_config.cxl_link.bandwidth_gbs == 5.0

    def test_device_directory(self, paper_config):
        d = paper_config.directory
        assert (d.sets, d.ways, d.slices) == (2048, 16, 16)
        assert d.entries == 2048 * 16 * 16

    def test_pipm_parameters(self, paper_config):
        p = paper_config.pipm
        assert p.migration_threshold == 8
        assert p.global_remap_cache_bytes == 16 * units.KB
        assert p.local_remap_cache_bytes == 1 * units.MB
        assert p.global_entry_bytes == 2
        assert p.local_entry_bytes == 4

    def test_kernel_migration(self, paper_config):
        k = paper_config.kernel
        assert k.interval_ns == 10 * units.MS
        assert k.initiator_cost_ns == 20 * units.US
        assert k.other_core_cost_ns == 5 * units.US

    def test_describe_covers_table2_rows(self, paper_config):
        rows = paper_config.describe()
        for key in ("Architecture", "CPU", "Shared LLC", "CXL link",
                    "CXL Directory", "PIPM"):
            assert key in rows


class TestScaledPreset:
    def test_validates(self, scaled_config):
        scaled_config.validate()

    def test_directory_covers_llc_sum(self, scaled_config):
        llc_lines = (
            scaled_config.num_hosts
            * scaled_config.llc.size_bytes
            // units.CACHE_LINE
        )
        assert scaled_config.directory.entries >= llc_lines

    def test_kernel_interval_shrinks(self, scaled_config, paper_config):
        assert scaled_config.kernel.interval_ns < paper_config.kernel.interval_ns

    def test_cost_to_interval_ratio_order(self, scaled_config):
        # The per-page cost stays a small fraction of the interval.
        ratio = (
            scaled_config.kernel.initiator_cost_ns
            / scaled_config.kernel.interval_ns
        )
        assert 0.001 < ratio < 0.2

    def test_rejects_bad_scales(self):
        with pytest.raises(ValueError):
            SystemConfig.scaled(size_scale=0)
        with pytest.raises(ValueError):
            SystemConfig.scaled(time_scale=0)

    def test_num_hosts_override(self):
        cfg = SystemConfig.scaled(num_hosts=8)
        assert cfg.num_hosts == 8


class TestValidation:
    def test_too_many_hosts_for_id_bits(self):
        cfg = SystemConfig.scaled().replace(num_hosts=33)
        with pytest.raises(ValueError):
            cfg.validate()

    def test_threshold_must_fit_counters(self):
        bad_pipm = dataclasses.replace(PipmConfig(), migration_threshold=100)
        cfg = SystemConfig.scaled().replace(pipm=bad_pipm)
        with pytest.raises(ValueError):
            cfg.validate()

    def test_cache_geometry_rejected(self):
        with pytest.raises(ValueError):
            CacheConfig(1000, 16, 1.0).validate()

    def test_capacity_fraction_bounds(self):
        cfg = SystemConfig.scaled().replace(migration_capacity_fraction=0.0)
        with pytest.raises(ValueError):
            cfg.validate()


class TestReplacement:
    def test_replace_nested_link(self, scaled_config):
        cfg = scaled_config.replace_nested("cxl_link", latency_ns=100.0)
        assert cfg.cxl_link.latency_ns == 100.0
        # original untouched (frozen dataclasses)
        assert scaled_config.cxl_link.latency_ns == 50.0

    def test_replace_top_level(self, scaled_config):
        cfg = scaled_config.replace(num_hosts=2)
        assert cfg.num_hosts == 2

    def test_cache_sets_property(self):
        c = CacheConfig(32 * units.KB, 8, 1.0)
        assert c.sets == 64

    def test_dram_latency_helpers(self, paper_config):
        dram = paper_config.local_dram
        assert dram.row_hit_ns < dram.row_miss_ns

    def test_kernel_config_immutable(self, paper_config):
        with pytest.raises(dataclasses.FrozenInstanceError):
            paper_config.kernel.interval_ns = 1.0
