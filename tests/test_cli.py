"""Command-line interface."""

import pytest

from repro.cli import main


class TestCliCommands:
    def test_workloads(self, capsys):
        assert main(["workloads"]) == 0
        out = capsys.readouterr().out
        assert "48GB" in out
        assert "ycsb" in out

    def test_config(self, capsys):
        assert main(["config"]) == 0
        out = capsys.readouterr().out
        assert "50ns" in out
        assert "CXL Directory" in out

    def test_check_passes(self, capsys):
        assert main(["check", "--hosts", "2"]) == 0
        out = capsys.readouterr().out
        assert "PASS" in out
        assert "FAIL" not in out

    def test_run(self, capsys):
        code = main([
            "run", "--workload", "canneal", "--scheme", "native",
            "--scale", "tiny",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "exec time" in out
        assert "local hit rate" in out

    def test_run_with_link_overrides(self, capsys):
        code = main([
            "run", "--workload", "canneal", "--scheme", "pipm",
            "--scale", "tiny", "--link-latency-ns", "100",
            "--link-bandwidth-gbs", "2.5",
        ])
        assert code == 0

    def test_compare_inserts_native(self, capsys):
        code = main([
            "compare", "--workload", "bodytrack",
            "--schemes", "pipm", "--scale", "tiny",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "native" in out
        assert "pipm" in out
        assert "speedup" in out

    def test_unknown_workload_rejected(self):
        with pytest.raises(SystemExit):
            main(["run", "--workload", "doom", "--scale", "tiny"])

    def test_sweep_list_variants(self, capsys):
        assert main(["sweep", "--list-variants"]) == 0
        out = capsys.readouterr().out
        assert "base" in out
        assert "link-latency" in out
        assert "faults" in out

    def test_sweep_list_specs(self, capsys):
        code = main([
            "sweep", "--list", "--workloads", "pr,ycsb",
            "--schemes", "native,pipm", "--scale", "tiny",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "pr/pipm" in out
        assert "4 specs" in out

    def test_sweep_rejects_unknown_workload(self, capsys):
        code = main([
            "sweep", "--workloads", "doom", "--scale", "tiny", "--list",
        ])
        assert code == 2

    def test_sweep_end_to_end_and_all_hits(self, capsys, tmp_path):
        argv = [
            "sweep", "--workers", "2", "--workloads", "pr",
            "--schemes", "native,pipm", "--scale", "tiny",
            "--cache-dir", str(tmp_path),
        ]
        assert main(argv) == 0
        out = capsys.readouterr().out
        assert "0 cache hits" in out
        # A second invocation must be pure cache hits...
        assert main(argv + ["--require-all-hits"]) == 0
        out = capsys.readouterr().out
        assert "2 cache hits (100%)" in out
        # ...and --require-all-hits must fail once the cache is gone.
        assert main(["sweep", "--invalidate",
                     "--cache-dir", str(tmp_path)]) == 0
        capsys.readouterr()
        assert main(argv + ["--require-all-hits"]) == 1

    def test_sweep_failure_reporting_and_strict(self, capsys, tmp_path,
                                                monkeypatch):
        import repro.sweep.runner as runner_mod

        def explode(trace, scheme, config, **kwargs):
            raise RuntimeError("synthetic failure")

        monkeypatch.setattr(runner_mod, "simulate", explode)
        argv = [
            "sweep", "--workers", "1", "--workloads", "pr",
            "--schemes", "native", "--scale", "tiny",
            "--cache-dir", str(tmp_path),
        ]
        # Default: failures are reported but do not fail the sweep.
        assert main(argv) == 0
        captured = capsys.readouterr()
        assert "1 FAILED" in captured.out
        assert "synthetic failure" in captured.err
        # --strict turns any failed spec into a nonzero exit.
        assert main(argv + ["--strict"]) == 1
        assert "--strict" in capsys.readouterr().err

    def test_sweep_resume_skips_completed_specs(self, capsys, tmp_path):
        argv = [
            "sweep", "--workers", "1", "--workloads", "pr",
            "--schemes", "native", "--scale", "tiny",
            "--cache-dir", str(tmp_path),
        ]
        assert main(argv) == 0
        capsys.readouterr()
        assert main(argv + ["--resume"]) == 0
        out = capsys.readouterr().out
        assert "1 resumed" in out

    def test_soak_clean_run(self, capsys, tmp_path):
        argv = [
            "soak", "--seed", "11", "--trials", "2", "--budget-s", "120",
            "--artifact-dir", str(tmp_path),
        ]
        assert main(argv) == 0
        out = capsys.readouterr().out
        assert "clean: 2 trial(s) survived" in out
        # --expect-failure inverts: a clean self-test run is a failure.
        assert main(argv + ["--expect-failure"]) == 1

    def test_soak_rejects_unknown_workload(self, capsys):
        code = main(["soak", "--workloads", "doom", "--trials", "1"])
        assert code == 2

    def test_requires_command(self):
        with pytest.raises(SystemExit):
            main([])

    def test_lint_repo_is_clean(self, capsys):
        assert main(["lint", "src/repro"]) == 0
        out = capsys.readouterr().out
        assert "0 error(s)" in out
        assert "2 protocol tables" in out

    def test_lint_json_output(self, capsys):
        import json

        assert main(["lint", "src/repro", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["errors"] == 0
        assert payload["tables_checked"] == 2
        assert all("fingerprint" in f for f in payload["findings"])

    def test_lint_list_rules(self, capsys):
        assert main(["lint", "--list-rules"]) == 0
        out = capsys.readouterr().out
        for rule_id in ("DET001", "ORD001", "UNIT001", "STAT001",
                        "STAT003", "MUT001", "PROTO001", "PROTO004"):
            assert rule_id in out

    def test_lint_flags_fresh_findings(self, capsys, tmp_path):
        bad = tmp_path / "src" / "repro_like.py"
        bad.parent.mkdir()
        bad.write_text("import time\nstamp = time.time()\n")
        assert main(["lint", str(bad), "--no-baseline"]) == 1
        out = capsys.readouterr().out
        assert "DET001" in out

    def test_lint_missing_path(self, capsys):
        assert main(["lint", "no/such/dir"]) == 2

    def test_lint_write_and_use_baseline(self, capsys, tmp_path):
        bad = tmp_path / "src" / "legacy.py"
        bad.parent.mkdir()
        bad.write_text("import random\nx = random.random()\n")
        baseline = tmp_path / "baseline.json"
        assert main([
            "lint", str(bad), "--baseline", str(baseline),
            "--write-baseline",
        ]) == 0
        capsys.readouterr()
        # Grandfathered: the same debt no longer fails the run...
        assert main([
            "lint", str(bad), "--baseline", str(baseline),
        ]) == 0
        assert "1 baselined" in capsys.readouterr().out
        # ...but a new finding alongside it still does.
        bad.write_text(
            "import random\nx = random.random()\ny = random.randint(0, 3)\n"
        )
        assert main([
            "lint", str(bad), "--baseline", str(baseline),
        ]) == 1
        assert "randint" in capsys.readouterr().out

    def test_version(self, capsys):
        with pytest.raises(SystemExit) as exc:
            main(["--version"])
        assert exc.value.code == 0
