"""Command-line interface."""

import pytest

from repro.cli import main


class TestCliCommands:
    def test_workloads(self, capsys):
        assert main(["workloads"]) == 0
        out = capsys.readouterr().out
        assert "48GB" in out
        assert "ycsb" in out

    def test_config(self, capsys):
        assert main(["config"]) == 0
        out = capsys.readouterr().out
        assert "50ns" in out
        assert "CXL Directory" in out

    def test_check_passes(self, capsys):
        assert main(["check", "--hosts", "2"]) == 0
        out = capsys.readouterr().out
        assert "PASS" in out
        assert "FAIL" not in out

    def test_run(self, capsys):
        code = main([
            "run", "--workload", "canneal", "--scheme", "native",
            "--scale", "tiny",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "exec time" in out
        assert "local hit rate" in out

    def test_run_with_link_overrides(self, capsys):
        code = main([
            "run", "--workload", "canneal", "--scheme", "pipm",
            "--scale", "tiny", "--link-latency-ns", "100",
            "--link-bandwidth-gbs", "2.5",
        ])
        assert code == 0

    def test_compare_inserts_native(self, capsys):
        code = main([
            "compare", "--workload", "bodytrack",
            "--schemes", "pipm", "--scale", "tiny",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "native" in out
        assert "pipm" in out
        assert "speedup" in out

    def test_unknown_workload_rejected(self):
        with pytest.raises(SystemExit):
            main(["run", "--workload", "doom", "--scale", "tiny"])

    def test_requires_command(self):
        with pytest.raises(SystemExit):
            main([])

    def test_version(self, capsys):
        with pytest.raises(SystemExit) as exc:
            main(["--version"])
        assert exc.value.code == 0
