"""Host-side components: core model, TLB, page table, Host assembly."""

import pytest

from repro.config import CoreConfig, SystemConfig
from repro.host.core import CoreModel
from repro.host.host import Host
from repro.host.page_table import PageTable, hosts_mapping
from repro.host.tlb import Tlb
from repro.stats import StatRegistry


class TestCoreModel:
    def test_compute_time(self):
        core = CoreModel(CoreConfig(), workload_mlp=4.0)
        # base_cpi 0.4 at 4GHz -> 0.1ns per instruction
        assert core.compute_ns(10) == pytest.approx(1.0)

    def test_stall_divided_by_mlp(self):
        core = CoreModel(CoreConfig(), workload_mlp=4.0)
        assert core.stall_ns(400.0) == pytest.approx(100.0)

    def test_mlp_capped_by_load_queue(self):
        core = CoreModel(CoreConfig(load_queue=8), workload_mlp=100.0)
        assert core.mlp == 8

    def test_mlp_must_be_at_least_one(self):
        with pytest.raises(ValueError):
            CoreModel(CoreConfig(), workload_mlp=0.5)


class TestTlb:
    def test_walk_then_hit(self):
        tlb = Tlb(entries=64, ways=4, walk_ns=50.0)
        assert tlb.translate(5) == 50.0
        assert tlb.translate(5) == 0.0
        assert tlb.misses == 1

    def test_shootdown_forces_rewalk(self):
        tlb = Tlb()
        tlb.translate(5)
        assert tlb.shootdown(5)
        assert tlb.translate(5) == tlb.walk_ns
        assert tlb.shootdowns == 1

    def test_shootdown_of_absent_page(self):
        tlb = Tlb()
        assert not tlb.shootdown(99)

    def test_capacity_eviction(self):
        tlb = Tlb(entries=4, ways=4)
        for page in range(5):
            tlb.translate(page)
        # page 0 evicted (LRU within the single set of its index) -> rewalk
        total_misses = tlb.misses
        assert total_misses == 5


class TestPageTable:
    def test_touch_and_remap(self):
        pt = PageTable(0)
        pt.touch(5)
        assert pt.maps(5)
        assert pt.remap(5)
        assert pt.updates == 1
        assert not pt.remap(99)

    def test_hosts_mapping(self):
        tables = {h: PageTable(h) for h in range(3)}
        tables[0].touch(5)
        tables[2].touch(5)
        assert hosts_mapping(tables, 5) == {0, 2}


class TestHost:
    @pytest.fixture()
    def host(self, scaled_config) -> Host:
        return Host(0, scaled_config, StatRegistry().scoped("h0"), 4.0)

    def test_structure(self, host, scaled_config):
        assert len(host.l1s) == scaled_config.cores_per_host
        assert host.llc.capacity == (
            scaled_config.llc.size_bytes // scaled_config.llc.line_bytes
        )

    def test_l1_for_wraps(self, host):
        assert host.l1_for(0) is host.l1s[0]
        assert host.l1_for(4) is host.l1s[0]

    def test_invalidate_line_reports_dirty(self, host):
        host.fill_line(0, line=7, dirty=True)
        assert host.invalidate_line(7)
        assert not host.invalidate_line(7)

    def test_downgrade_keeps_copy(self, host):
        host.fill_line(0, line=7, dirty=True)
        assert host.downgrade_line(7)
        assert host.holds_line(7)
        assert not host.downgrade_line(7)  # now clean

    def test_fill_line_returns_llc_victim(self, host):
        victim = None
        line = 0
        while victim is None:
            victim = host.fill_line(0, line, dirty=False)
            line += host.llc.num_sets  # same-set conflicts
        assert victim is not None

    def test_advance_compute_and_ipc(self, host):
        host.advance_compute(1000)
        assert host.instructions == 1000
        assert host.clock_ns > 0
        assert host.ipc() > 0

    def test_ipc_zero_before_running(self, host):
        assert host.ipc() == 0.0
