"""Host-crash fault domain: plan validation, stall cursors, watchdog
audit families, end-to-end crash recovery, and the soak crash clause."""

from __future__ import annotations

import dataclasses
import random

import pytest

from repro.config import FaultConfig, SystemConfig
from repro.faults import FaultInjector, FaultPlan, HostCrashEvent, \
    InvariantWatchdog
from repro.faults.plan import LinkDegradeWindow
from repro.faults.watchdog import WatchdogError
from repro.policies import make_scheme
from repro.sim.engine import SimulationEngine, simulate
from repro.sim.system import MultiHostSystem
from repro.soak.clauses import FaultClause, build_fault_config, draw_clauses

_INF = float("inf")

#: Crash timing pulled inside a tiny-scale run (~170 us simulated).
CRASH_SPEC = ("hostdown:crash-at-ns=5e4,watchdog-mode=fail-fast,"
              "watchdog-period-ns=20000")
REJOIN_SPEC = ("hostdown-rejoin:crash-at-ns=5e4,crash-rejoin-ns=1.2e5,"
               "watchdog-mode=fail-fast,watchdog-period-ns=20000")


def _with_faults(config: SystemConfig, spec: str) -> SystemConfig:
    return dataclasses.replace(config, faults=FaultConfig.parse(spec))


# ======================================================================
# Crash knobs in FaultConfig / SystemConfig
# ======================================================================
class TestCrashConfig:
    def test_hostdown_presets(self):
        down = FaultConfig.parse("hostdown")
        down.validate()
        assert down.has_crash
        assert down.crash_rejoin_ns == 0.0  # permanent
        rejoin = FaultConfig.parse("hostdown-rejoin")
        rejoin.validate()
        assert rejoin.has_crash
        assert rejoin.crash_rejoin_ns > rejoin.crash_at_ns

    def test_crash_disabled_by_default(self):
        config = FaultConfig()
        assert not config.has_crash
        assert config.idle

    def test_crash_only_plan_cannot_disrupt_transfers(self):
        """Crashes are epoch events, not transfer noise: the vector
        backend's flat fast path must stay eligible."""
        config = FaultConfig.parse("hostdown:crash-at-ns=5e4")
        plan = FaultPlan.from_config(config, num_hosts=4, num_lines=64)
        injector = FaultInjector(plan)
        assert not injector.can_disrupt_transfers
        assert injector.has_crashes

    def test_validate_rejects_bad_crash_values(self):
        with pytest.raises(ValueError, match="crash_host"):
            FaultConfig(crash_host=-2).validate()
        with pytest.raises(ValueError, match="crash_at_ns"):
            FaultConfig(crash_at_ns=-1.0).validate()
        with pytest.raises(ValueError, match="crash_rejoin_ns"):
            FaultConfig(crash_rejoin_ns=-5.0).validate()
        with pytest.raises(ValueError, match="after crash_at_ns"):
            FaultConfig(
                crash_host=1, crash_at_ns=100.0, crash_rejoin_ns=100.0
            ).validate()

    def test_system_config_rejects_out_of_range_crash_host(self):
        base = SystemConfig.scaled(num_hosts=2)
        bad = dataclasses.replace(
            base, faults=FaultConfig(crash_host=2, crash_at_ns=1e4)
        )
        with pytest.raises(ValueError, match="crash plan names host"):
            bad.validate()


# ======================================================================
# FaultPlan.validate: window semantics and schedule rejection (satellite)
# ======================================================================
class TestFaultPlanValidate:
    def _plan(self, **kwargs):
        return FaultPlan(config=FaultConfig(), num_hosts=4, **kwargs)

    def test_degrade_window_is_half_open(self):
        window = LinkDegradeWindow(0, 10.0, 20.0, latency_x=2.0)
        assert window.active(10.0)  # closed at the start...
        assert window.active(19.999)
        assert not window.active(20.0)  # ...open at the end
        assert not window.active(9.999)

    def test_adjacent_windows_do_not_overlap(self):
        plan = self._plan(degrade_windows={0: [
            LinkDegradeWindow(0, 0.0, 10.0, 2.0),
            LinkDegradeWindow(0, 10.0, 20.0, 2.0),  # touches, [10 not in 1st
        ]})
        plan.validate()  # must not raise

    def test_empty_window_rejected(self):
        plan = self._plan(degrade_windows={0: [
            LinkDegradeWindow(0, 10.0, 10.0, 2.0),
        ]})
        with pytest.raises(ValueError, match="empty degrade window"):
            plan.validate()

    def test_overlapping_windows_rejected(self):
        plan = self._plan(degrade_windows={2: [
            LinkDegradeWindow(2, 0.0, 100.0, 2.0),
            LinkDegradeWindow(2, 99.0, 200.0, 2.0),
        ]})
        with pytest.raises(ValueError, match="degrade windows overlap"):
            plan.validate()

    def test_window_beyond_horizon_rejected(self):
        plan = self._plan(degrade_windows={0: [
            LinkDegradeWindow(0, 5e5, 6e5, 2.0),
        ]})
        plan.validate()  # fine without a horizon
        with pytest.raises(ValueError, match="beyond the 100000ns horizon"):
            plan.validate(horizon_ns=1e5)

    def test_stall_duration_must_fit_period(self):
        config = FaultConfig(stall_period_ns=100.0, stall_duration_ns=100.0)
        plan = FaultPlan(config=config, num_hosts=4, stall_windows={0: []})
        with pytest.raises(ValueError, match="periodic windows would overlap"):
            plan.validate()

    def test_first_stall_beyond_horizon_rejected(self):
        config = FaultConfig(stall_period_ns=1e6, stall_duration_ns=1e4)
        plan = FaultPlan(config=config, num_hosts=4, stall_windows={1: []})
        plan.validate()
        with pytest.raises(ValueError, match="first stall window starts at"):
            plan.validate(horizon_ns=1e5)

    def test_crash_names_in_range_host(self):
        plan = self._plan(crash_events=[HostCrashEvent(4, 1e4)])
        with pytest.raises(ValueError, match="crash names host 4"):
            plan.validate()

    def test_rejoin_must_follow_crash(self):
        plan = self._plan(crash_events=[HostCrashEvent(1, 1e4, 1e4)])
        with pytest.raises(ValueError, match="is not after the crash"):
            plan.validate()

    def test_crash_beyond_horizon_rejected(self):
        plan = self._plan(crash_events=[HostCrashEvent(1, 2e5)])
        plan.validate()
        with pytest.raises(ValueError, match="crash at 200000ns, beyond"):
            plan.validate(horizon_ns=1e5)


# ======================================================================
# Injector stall cursor vs. the plan's reference arithmetic (satellite)
# ======================================================================
class TestStallCursor:
    SPEC = "none:stall-period-ns=50000,stall-duration-ns=5000,stall-hosts=0+2"

    def _pair(self):
        config = FaultConfig.parse(self.SPEC)
        plan = FaultPlan.from_config(config, num_hosts=4, num_lines=64)
        return plan, FaultInjector(plan)

    def test_cursor_matches_reference_on_monotone_sweep(self):
        plan, injector = self._pair()
        period, duration = 50000.0, 5000.0
        probes = sorted({
            0.0, 1.0, period - 1, period, period + 1,
            period + duration - 1, period + duration, period + duration + 1,
            2 * period, 2 * period + duration / 2,
            # skip several periods, then land mid-window and past it
            7 * period + 100.0, 7 * period + duration, 9 * period - 1,
            12 * period + duration - 0.5, 12 * period + duration,
        })
        for host in range(4):
            for now in probes:  # cursors assume per-host monotone clocks
                assert injector.stall_resume(host, now) == \
                    plan.stall_resume(host, now), (host, now)

    def test_next_stall_start_matches_reference(self):
        plan, injector = self._pair()
        period = 50000.0
        for host in range(4):
            for now in (0.0, 1.0, period, period + 1, 3 * period - 1,
                        8 * period + 17.0):
                assert injector.next_stall_start(host, now) == \
                    plan.next_stall_start(host, now), (host, now)

    def test_unstalled_host_never_stalls(self):
        plan, injector = self._pair()
        assert injector.stall_resume(1, 50000.0) is None
        assert plan.stall_resume(1, 50000.0) is None
        assert injector.next_stall_start(1, 0.0) == _INF

    def test_window_start_is_inclusive_end_exclusive(self):
        _, injector = self._pair()
        period, duration = 50000.0, 5000.0
        assert injector.stall_resume(0, period) == period + duration
        assert injector.stall_resume(0, period + duration) is None


# ======================================================================
# Watchdog audit families: fail-fast vs log, plus kinds ordering
# ======================================================================
def _corrupt_remap(system):
    engine = system.engine
    assert engine.request_partial_migration(3, 0)
    engine.global_table.entry(3).current_host = 77


def _corrupt_frames(system):
    engine = system.engine
    assert engine.request_partial_migration(4, 1)
    engine.local_tables[1].remove(4)  # drop the entry, leak the frame


def _corrupt_page_map(system):
    system.page_map[0xDEAD] = 0  # resident page with no backing frame


def _corrupt_directory(system):
    entry, _ = system.device_dir.allocate(9, 1, -1)
    entry.sharers.add(99)  # out-of-range sharer


def _corrupt_crash_domain(system):
    system.injector.crashed.add(1)
    system.device_dir.allocate(5, 3, 1)  # Modified line owned by the dead


_FAMILIES = [
    ("remap", "pipm", _corrupt_remap),
    ("frames", "pipm", _corrupt_frames),
    ("page-map", "nomad", _corrupt_page_map),
    ("directory", "pipm", _corrupt_directory),
    ("crash-domain", "pipm", _corrupt_crash_domain),
]


class TestWatchdogAuditFamilies:
    def _system(self, scheme):
        # A crash-capable plan so system.injector exists for crash-domain.
        config = _with_faults(SystemConfig.scaled(), "hostdown")
        return MultiHostSystem(config, make_scheme(scheme))

    @pytest.mark.parametrize("kind,scheme,corrupt", _FAMILIES,
                             ids=[f[0] for f in _FAMILIES])
    def test_log_mode_records_violation(self, kind, scheme, corrupt):
        system = self._system(scheme)
        corrupt(system)
        watchdog = InvariantWatchdog(system, mode="log")
        violations = watchdog.audit(0.0)
        assert any(v.kind == kind for v in violations), violations
        assert not watchdog.ok

    @pytest.mark.parametrize("kind,scheme,corrupt", _FAMILIES,
                             ids=[f[0] for f in _FAMILIES])
    def test_fail_fast_raises(self, kind, scheme, corrupt):
        system = self._system(scheme)
        corrupt(system)
        watchdog = InvariantWatchdog(system, mode="fail-fast")
        with pytest.raises(WatchdogError) as excinfo:
            watchdog.audit(0.0)
        assert kind in excinfo.value.kinds

    def test_crash_domain_audit_is_inert_before_any_crash(self):
        """The new audit must not fire on a healthy (or crash-free) run:
        a dead-host reference is only a violation once a host died."""
        system = self._system("pipm")
        system.device_dir.allocate(5, 3, 1)  # would trip if host 1 were dead
        assert system.injector is not None and not system.injector.crashed
        assert InvariantWatchdog(system, mode="fail-fast").audit(0.0) == []

    def test_crash_domain_flags_every_reference_shape(self):
        system = self._system("pipm")
        engine = system.engine
        system.injector.crashed.add(1)
        system.device_dir.allocate(5, 3, 1)  # owned line
        entry, _ = system.device_dir.allocate(6, 1, -1)
        entry.sharers.add(1)  # shared line
        assert engine.request_partial_migration(7, 1)  # table+frame+global
        violations = InvariantWatchdog(system, mode="log").audit(0.0)
        crash = [v.detail for v in violations if v.kind == "crash-domain"]
        assert any("still owned" in d for d in crash)
        assert any("as a sharer" in d for d in crash)
        assert any("local remap entries" in d for d in crash)
        assert any("frames in use" in d for d in crash)
        assert any("globally mapped to crashed host" in d for d in crash)

    def test_kinds_follow_audit_order(self):
        """WatchdogError.kinds is the soak failure signature; its order
        must track the audit sequence, with crash-domain last."""
        system = self._system("pipm")
        _corrupt_remap(system)
        _corrupt_directory(system)
        _corrupt_crash_domain(system)
        with pytest.raises(WatchdogError) as excinfo:
            InvariantWatchdog(system, mode="fail-fast").audit(0.0)
        kinds = excinfo.value.kinds
        assert set(kinds) == {"remap", "directory", "crash-domain"}
        assert kinds.index("remap") < kinds.index("directory")
        assert kinds.index("directory") < kinds.index("crash-domain")


# ======================================================================
# End-to-end crash recovery (the ISSUE acceptance scenario)
# ======================================================================
class TestCrashRecoveryE2E:
    def test_crash_mid_run_is_fully_reclaimed(self, scaled_config,
                                              tiny_pr_trace):
        config = _with_faults(scaled_config, CRASH_SPEC)
        dead = config.faults.crash_host
        system = MultiHostSystem(config, make_scheme("pipm"))
        result = SimulationEngine(system, tiny_pr_trace).run()  # no raise

        # Nothing in the cluster references the dead host afterwards.
        for entry in system.device_dir.entries():
            assert entry.owner != dead and dead not in entry.sharers
        engine = system.engine
        assert len(engine.local_tables[dead]) == 0
        assert engine.frames[dead].in_use == 0
        for _, gentry in engine.global_table.items():
            assert gentry.current_host != dead
            assert gentry.candidate_host != dead
        assert system.watchdog.ok  # incl. periodic post-recovery audits
        assert system.watchdog.audits > 1

        stats = result.fault_stats
        assert stats["fault_host_crashes"] == 1.0
        assert stats["fault_crash_lines_reclaimed"] > 0
        assert stats["fault_crash_txns_aborted"] > 0
        assert stats["fault_crash_dropped_accesses"] > 0  # permanent crash
        assert stats["fault_governor_skips"] > 0  # hysteresis engaged
        assert "fault_host_rejoins" not in stats

    def test_recovery_metrics_are_exact_and_derived(self, scaled_config,
                                                    tiny_pr_trace):
        config = _with_faults(scaled_config, CRASH_SPEC)
        result = simulate(tiny_pr_trace, make_scheme("pipm"), config)
        stats = result.fault_stats
        assert result.mttr_ns == stats["fault_crash_recovery_ns"] / \
            stats["fault_host_crashes"]
        assert result.mttr_ns > 0
        budget = result.exec_time_ns * config.num_hosts
        expected = max(0.0, 1.0 - stats["fault_crash_down_ns"] / budget)
        assert result.availability == expected
        assert 0.0 < result.availability < 1.0
        assert result.lines_reclaimed == stats["fault_crash_lines_reclaimed"]
        # Down time for a permanent crash spans crash -> end of run.
        assert stats["fault_crash_down_ns"] == pytest.approx(
            result.exec_time_ns - 5e4
        )

    def test_clean_run_reports_identity_metrics(self, scaled_config,
                                                tiny_pr_trace):
        result = simulate(tiny_pr_trace, make_scheme("pipm"), scaled_config)
        assert result.mttr_ns == 0.0
        assert result.availability == 1.0
        assert result.lines_reclaimed == 0.0

    def test_recovery_timeline_reproduces_bit_for_bit(self, scaled_config,
                                                      tiny_pr_trace):
        config = _with_faults(scaled_config, CRASH_SPEC)
        first = simulate(tiny_pr_trace, make_scheme("pipm"), config)
        second = simulate(tiny_pr_trace, make_scheme("pipm"), config)
        assert first == second
        assert first.to_record() == second.to_record()

    @pytest.mark.parametrize("spec", [CRASH_SPEC, REJOIN_SPEC],
                             ids=["hostdown", "hostdown-rejoin"])
    def test_backends_agree_on_recovery(self, spec, scaled_config,
                                        tiny_pr_trace):
        config = _with_faults(scaled_config, spec)
        loop = simulate(tiny_pr_trace, make_scheme("pipm"), config,
                        backend="loop")
        vector = simulate(tiny_pr_trace, make_scheme("pipm"), config,
                          backend="vector")
        assert loop.to_record() == vector.to_record()
        assert loop.fault_stats["fault_host_crashes"] == 1.0

    def test_rejoin_restores_the_host_cold(self, scaled_config,
                                           tiny_pr_trace):
        config = _with_faults(scaled_config, REJOIN_SPEC)
        system = MultiHostSystem(config, make_scheme("pipm"))
        result = SimulationEngine(system, tiny_pr_trace).run()
        stats = result.fault_stats
        assert stats["fault_host_crashes"] == 1.0
        assert stats["fault_host_rejoins"] == 1.0
        # Outage is exactly the scheduled [crash, rejoin) span.
        assert stats["fault_crash_down_ns"] == 1.2e5 - 5e4
        assert "fault_crash_dropped_accesses" not in stats
        assert system.watchdog.ok
        # The rejoined host served accesses again after coming back.
        assert system.hosts[config.faults.crash_host].clock_ns > 1.2e5

    def test_crash_beyond_trace_end_is_byte_identical(self, scaled_config,
                                                      tiny_pr_trace):
        """A scheduled crash the run never reaches must cost nothing —
        the zero-plan guarantee extends to armed-but-idle crash plans."""
        config = _with_faults(scaled_config, "hostdown:crash-at-ns=9e9")
        for backend in ("loop", "vector"):
            plain = simulate(tiny_pr_trace, make_scheme("pipm"),
                             scaled_config, backend=backend)
            armed = simulate(tiny_pr_trace, make_scheme("pipm"), config,
                             backend=backend)
            assert plain.to_record() == armed.to_record(), backend

    def test_kernel_scheme_recovers_too(self, scaled_config, tiny_pr_trace):
        config = _with_faults(scaled_config, CRASH_SPEC)
        dead = config.faults.crash_host
        system = MultiHostSystem(config, make_scheme("nomad"))
        result = SimulationEngine(system, tiny_pr_trace).run()
        assert all(host != dead for host in system.page_map.values())
        assert system.frames[dead].in_use == 0
        assert system.watchdog.ok
        assert result.fault_stats["fault_host_crashes"] == 1.0


# ======================================================================
# Soak crash clause: fold semantics and drawing
# ======================================================================
class TestCrashSoakClause:
    def test_crash_clause_folds_into_config(self):
        clause = FaultClause("crash", {"host": 2, "at_ns": 7e4,
                                       "rejoin_ns": 2e5,
                                       "governor_hold_ns": 4e4})
        config = build_fault_config([clause], seed=11)
        assert config.has_crash
        assert config.crash_host == 2
        assert config.crash_at_ns == 7e4
        assert config.crash_rejoin_ns == 2e5
        assert config.governor_hold_ns == 4e4

    def test_fold_is_monotone_under_merge(self):
        """Earliest crash wins and a permanent crash dominates any finite
        rejoin, so dropping a clause never adds fault pressure."""
        permanent = FaultClause("crash", {"host": 2, "at_ns": 1e5})
        rejoining = FaultClause("crash", {"host": 1, "at_ns": 6e4,
                                          "rejoin_ns": 2e5})
        for order in ([permanent, rejoining], [rejoining, permanent]):
            config = build_fault_config(order, seed=1)
            assert config.crash_at_ns == 6e4  # earliest
            assert config.crash_host == 1  # lowest, order-independent
            assert config.crash_rejoin_ns == 0.0  # permanent dominates

    def test_two_finite_rejoins_keep_the_longest_outage(self):
        a = FaultClause("crash", {"host": 1, "at_ns": 5e4, "rejoin_ns": 1e5})
        b = FaultClause("crash", {"host": 1, "at_ns": 5e4, "rejoin_ns": 3e5})
        config = build_fault_config([a, b], seed=1)
        assert config.crash_rejoin_ns == 3e5

    def test_draw_respects_crash_rate(self):
        always = draw_clauses(random.Random(5), crash_rate=1.0)
        crashes = [c for c in always if c.kind == "crash"]
        assert len(crashes) == 1
        params = crashes[0].params
        assert 5e4 <= params["at_ns"] <= 2.5e5
        assert params["host"] in (1, 2, 3)
        never = draw_clauses(random.Random(5), crash_rate=0.0)
        assert not any(c.kind == "crash" for c in never)

    def test_zero_crash_rate_preserves_legacy_rng_stream(self):
        """crash_rate=0 must consume no RNG draws: existing soak seeds
        (the CI self-tests pin two) replay the exact same schedules."""
        legacy = draw_clauses(random.Random(7), sabotage_rate=1.0)
        current = draw_clauses(random.Random(7), sabotage_rate=1.0,
                               crash_rate=0.0)
        assert legacy == current

    def test_drawn_crash_clause_builds_a_valid_config(self):
        for seed in range(20):
            clauses = draw_clauses(random.Random(seed), crash_rate=1.0)
            config = build_fault_config(clauses, seed=seed)
            config.validate()  # incl. rejoin-after-crash ordering
            assert config.has_crash
