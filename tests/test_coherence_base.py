"""Baseline CXL-DSM MSI protocol model transitions."""

import pytest

from repro.coherence.base_protocol import Action, BaseCxlDsmModel
from repro.coherence.states import CacheState

_I, _S, _M = int(CacheState.I), int(CacheState.S), int(CacheState.M)


@pytest.fixture()
def model() -> BaseCxlDsmModel:
    return BaseCxlDsmModel(num_hosts=2)


def load(model, state, host):
    return model.apply(state, Action("load", host))


def store(model, state, host):
    return model.apply(state, Action("store", host))


def evict(model, state, host):
    return model.apply(state, Action("evict", host))


class TestLoads:
    def test_cold_load_installs_shared(self, model):
        state, obs = load(model, model.initial_state(), 0)
        assert state.caches[0][0] == _S
        assert state.dir_state == _S
        assert 0 in state.dir_sharers
        assert obs["read_version"] == obs["latest"]

    def test_load_hit_keeps_state(self, model):
        state, _ = load(model, model.initial_state(), 0)
        state2, _ = load(model, state, 0)
        assert state2 == state

    def test_load_from_dirty_owner_downgrades(self, model):
        state, _ = store(model, model.initial_state(), 0)
        state, obs = load(model, state, 1)
        assert state.caches[0][0] == _S  # owner downgraded
        assert state.caches[1][0] == _S
        assert state.mem_version == obs["read_version"]  # written back
        assert obs["read_version"] == obs["latest"]


class TestStores:
    def test_store_takes_m(self, model):
        state, obs = store(model, model.initial_state(), 0)
        assert state.caches[0][0] == _M
        assert state.dir_state == _M
        assert state.dir_owner == 0
        assert obs["written_version"] == obs["latest"] + 1

    def test_store_invalidates_sharers(self, model):
        state, _ = load(model, model.initial_state(), 0)
        state, _ = load(model, state, 1)
        state, _ = store(model, state, 0)
        assert state.caches[1][0] == _I

    def test_store_steals_from_writer(self, model):
        state, _ = store(model, model.initial_state(), 0)
        state, _ = store(model, state, 1)
        assert state.caches[0][0] == _I
        assert state.dir_owner == 1


class TestEvictions:
    def test_dirty_evict_writes_back(self, model):
        state, _ = store(model, model.initial_state(), 0)
        version = state.caches[0][1]
        state, _ = evict(model, state, 0)
        assert state.mem_version == version
        assert state.dir_state == _I

    def test_shared_evict_drops_sharer(self, model):
        state, _ = load(model, model.initial_state(), 0)
        state, _ = load(model, state, 1)
        state, _ = evict(model, state, 0)
        assert state.dir_sharers == frozenset({1})
        state, _ = evict(model, state, 1)
        assert state.dir_state == _I

    def test_evict_invalid_not_enabled(self, model):
        initial = model.initial_state()
        actions = model.enabled_actions(initial)
        assert Action("evict", 0) not in actions
        with pytest.raises(ValueError):
            evict(model, initial, 0)


class TestInvariantsAndCanonical:
    def test_initial_state_clean(self, model):
        assert model.invariant_violations(model.initial_state()) == []

    def test_detects_two_writers(self, model):
        bad = model.initial_state()._replace(
            caches=((_M, 1), (_M, 2)), dir_state=_M, dir_owner=0,
        )
        violations = model.invariant_violations(bad)
        assert any("SWMR" in v for v in violations)

    def test_detects_stale_memory(self, model):
        bad = model.initial_state()._replace(
            caches=((_S, 5), (_I, 0)),
            dir_state=_S,
            dir_sharers=frozenset({0}),
            mem_version=0,
        )
        violations = model.invariant_violations(bad)
        assert any("stale" in v for v in violations)

    def test_canonicalization_rank_compresses(self, model):
        state = model.initial_state()._replace(
            caches=((_M, 100), (_I, 0)), dir_state=_M, dir_owner=0,
            mem_version=50,
        )
        canon = model.canonicalize(state)
        assert canon.caches[0][1] == 1
        assert canon.mem_version == 0

    def test_canonical_states_dedupe(self, model):
        s1, _ = store(model, model.initial_state(), 0)
        s1b, _ = store(model, s1, 0)
        assert model.canonicalize(s1) == model.canonicalize(s1b)

    def test_unknown_action_rejected(self, model):
        with pytest.raises(ValueError):
            model.apply(model.initial_state(), Action("flush", 0))

    def test_needs_a_host(self):
        with pytest.raises(ValueError):
            BaseCxlDsmModel(0)
