"""Backend-conformance pass (VEC001-004) against the real vector engine.

These tests run the pass over the actual ``sim/engine.py`` /
``sim/system.py`` sources, assert the tree is conformant, then inject
one synthetic defect per rule family by string surgery and assert the
corresponding rule catches it.  Surgery on the real sources (rather
than toy fixtures) is the point: the pass must keep understanding the
engine as it is actually written.
"""

import pathlib

import pytest

from repro.simcheck.conformance import (
    CONFORMANCE_MODULES,
    analyze_backend_conformance,
    analyze_repo_conformance,
)

REPO_ROOT = pathlib.Path(__file__).resolve().parents[1]


@pytest.fixture(scope="module")
def sources():
    engine = (REPO_ROOT / CONFORMANCE_MODULES[0]).read_text()
    system = (REPO_ROOT / CONFORMANCE_MODULES[1]).read_text()
    return engine, system


def _rules(findings):
    return sorted({f.rule for f in findings})


def _surgery(source, old, new, count=1):
    assert source.count(old) == count, f"surgery anchor drifted: {old!r}"
    return source.replace(old, new)


class TestCleanTree:
    def test_current_tree_is_conformant(self, sources):
        engine, system = sources
        assert analyze_backend_conformance(engine, system) == []

    def test_repo_entry_point_runs_when_engine_in_scope(self):
        findings, ran = analyze_repo_conformance(
            REPO_ROOT, CONFORMANCE_MODULES
        )
        assert ran and findings == []

    def test_repo_entry_point_skips_out_of_scope_runs(self):
        findings, ran = analyze_repo_conformance(
            REPO_ROOT, ["src/repro/mem/dram.py"]
        )
        assert not ran and findings == []


class TestSeededDefects:
    def test_vec001_dropped_flush_line(self, sources):
        # Delete the flush fold of the deferred TLB-hit cell: the hot
        # path still increments t_h, so the stat silently vanishes.
        engine, system = sources
        engine = _surgery(engine, "        tlb_cache.hits += t_h\n", "",
                          count=1)
        findings = analyze_backend_conformance(engine, system)
        assert "VEC001" in _rules(findings)
        assert any("t_h" in f.message for f in findings)

    def test_vec002_stripped_bail_annotation(self, sources):
        # An escalation branch in system.py with no matching fast-path
        # bail claim must fail the diff from both directions.
        engine, system = sources
        engine = _surgery(
            engine,
            "  # simcheck: bails[upgrade-llc-hit] S -> M on LLC hit",
            "",
        )
        findings = analyze_backend_conformance(engine, system)
        assert "VEC002" in _rules(findings)
        assert any("upgrade-llc-hit" in f.message for f in findings)

    def test_vec003_mutation_in_classify_phase(self, sources):
        # The classify phase must stay pure — inject a stats write right
        # after the phase marker.
        engine, system = sources
        engine = _surgery(
            engine,
            "        page = line >> _LINE_TO_PAGE\n        shared",
            "        page = line >> _LINE_TO_PAGE\n"
            "        llc.hits += 1\n        shared",
        )
        findings = analyze_backend_conformance(engine, system)
        assert "VEC003" in _rules(findings)

    def test_vec004_cell_read_but_never_reset(self, sources):
        # Drop t_h from the flush reset chain: the next flush would
        # double-count every TLB hit.
        engine, system = sources
        engine = _surgery(
            engine,
            "        t_h = t_m = t_e = c_h = c_m = c_e = d_l = d_h = d_ce = 0\n",
            "        t_m = t_e = c_h = c_m = c_e = d_l = d_h = d_ce = 0\n",
        )
        findings = analyze_backend_conformance(engine, system)
        assert "VEC004" in _rules(findings)
        assert any("t_h" in f.message for f in findings)

    def test_findings_carry_stable_fingerprint_anchors(self, sources):
        engine, system = sources
        engine = _surgery(engine, "        tlb_cache.hits += t_h\n", "")
        findings = analyze_backend_conformance(engine, system)
        for finding in findings:
            assert finding.path in CONFORMANCE_MODULES
            assert finding.line_text  # fingerprint basis must be stable
