"""Property-based tests (hypothesis) on core data structures and invariants."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro import units
from repro.cache.sa_cache import SetAssocCache
from repro.coherence.base_protocol import Action, BaseCxlDsmModel
from repro.coherence.pipm_protocol import PipmModel
from repro.config import PipmConfig
from repro.mem.address import FrameAllocator
from repro.pipm.majority_vote import MajorityVote, VoteDecision
from repro.pipm.remap_global import GlobalRemapEntry
from repro.pipm.remap_local import LocalRemapEntry
from repro.stats import Histogram

lines = st.integers(min_value=0, max_value=1 << 20)
ops = st.lists(
    st.tuples(st.sampled_from(["fill", "lookup", "invalidate"]), lines),
    max_size=200,
)


class TestCacheProperties:
    @given(ops=ops)
    @settings(max_examples=60, deadline=None)
    def test_occupancy_never_exceeds_capacity(self, ops):
        cache = SetAssocCache(8, 4)
        for op, line in ops:
            if op == "fill":
                cache.fill(line)
            elif op == "lookup":
                cache.lookup(line)
            else:
                cache.invalidate(line)
            assert cache.occupancy <= cache.capacity
            for cache_set in cache._sets:
                assert len(cache_set) <= cache.ways

    @given(ops=ops)
    @settings(max_examples=60, deadline=None)
    def test_filled_line_findable_until_evicted_or_invalidated(self, ops):
        cache = SetAssocCache(8, 4)
        resident = set()
        for op, line in ops:
            if op == "fill":
                victim = cache.fill(line)
                resident.add(line)
                if victim is not None:
                    resident.discard(victim.line)
            elif op == "invalidate":
                cache.invalidate(line)
                resident.discard(line)
        for line in resident:
            assert cache.peek(line) is not None

    @given(st.lists(lines, min_size=1, max_size=100))
    @settings(max_examples=60, deadline=None)
    def test_set_mapping_consistent(self, fills):
        cache = SetAssocCache(16, 2)
        for line in fills:
            cache.fill(line)
        for entry in cache.entries():
            found = cache._sets[entry.line & (cache.num_sets - 1)]
            assert entry.line in found


host_actions = st.lists(
    st.tuples(st.sampled_from(["load", "store", "evict"]),
              st.integers(0, 2)),
    max_size=40,
)


class TestProtocolProperties:
    @given(actions=host_actions)
    @settings(max_examples=80, deadline=None)
    def test_base_protocol_random_walks_hold_invariants(self, actions):
        model = BaseCxlDsmModel(3)
        state = model.initial_state()
        for name, host in actions:
            action = Action(name, host)
            if action not in model.enabled_actions(state):
                continue
            state, obs = model.apply(state, action)
            read = obs.get("read_version")
            assert read is None or read == obs["latest"]
            assert model.invariant_violations(state) == []

    @given(actions=host_actions, remap=st.integers(0, 2))
    @settings(max_examples=80, deadline=None)
    def test_pipm_random_walks_hold_invariants(self, actions, remap):
        model = PipmModel(3, remap_host=remap)
        state = model.initial_state()
        for name, host in actions:
            action = Action(name, host)
            if action not in model.enabled_actions(state):
                continue
            state, obs = model.apply(state, action)
            read = obs.get("read_version")
            assert read is None or read == obs["latest"]
            assert model.invariant_violations(state) == []


class TestVoteProperties:
    @given(st.lists(st.integers(0, 3), min_size=1, max_size=300))
    @settings(max_examples=80, deadline=None)
    def test_counter_bounds_respected(self, accessors):
        vote = MajorityVote(PipmConfig())
        entry = GlobalRemapEntry()
        for host in accessors:
            if entry.current_host != -1:
                break
            decision = vote.on_cxl_access(entry, host)
            assert 0 <= entry.counter <= 63
            if decision is VoteDecision.PROMOTE:
                vote.promote(entry)

    @given(st.lists(st.integers(0, 3), min_size=20, max_size=300))
    @settings(max_examples=60, deadline=None)
    def test_promotion_requires_dominance(self, accessors):
        """Whoever gets promoted must have a recent access majority streak."""
        vote = MajorityVote(PipmConfig())
        entry = GlobalRemapEntry()
        for host in accessors:
            decision = vote.on_cxl_access(entry, host)
            if decision is VoteDecision.PROMOTE:
                # Boyer-Moore guarantee: the candidate's surplus over other
                # hosts since it became candidate reached the threshold.
                assert entry.counter >= vote.threshold
                assert entry.candidate_host == host
                return

    @given(st.lists(st.booleans(), max_size=200))
    @settings(max_examples=60, deadline=None)
    def test_local_counter_never_escapes_4_bits(self, is_local):
        vote = MajorityVote(PipmConfig())
        entry = LocalRemapEntry(1, 0, counter=8)
        for local in is_local:
            if local:
                vote.on_local_access(entry)
            else:
                if vote.on_inter_host_access(entry) is VoteDecision.REVOKE:
                    break
            assert 0 <= entry.counter <= 15


class TestRemapEntryProperties:
    @given(st.lists(st.tuples(st.booleans(), st.integers(0, 63)),
                    max_size=200))
    @settings(max_examples=60, deadline=None)
    def test_bitmask_matches_reference_set(self, flips):
        entry = LocalRemapEntry(1, 0, counter=8)
        reference = set()
        for set_it, line in flips:
            if set_it:
                entry.set_line(line)
                reference.add(line)
            else:
                entry.clear_line(line)
                reference.discard(line)
            assert entry.migrated_count == len(reference)
            assert entry.line_migrated(line) == (line in reference)


class TestAllocatorProperties:
    @given(st.lists(st.booleans(), max_size=300))
    @settings(max_examples=60, deadline=None)
    def test_no_double_allocation(self, ops):
        frames = FrameAllocator(16)
        live = set()
        for do_alloc in ops:
            if do_alloc:
                pfn = frames.alloc()
                if pfn is None:
                    assert len(live) == 16
                else:
                    assert pfn not in live
                    live.add(pfn)
            elif live:
                pfn = live.pop()
                frames.free(pfn)
            assert frames.in_use == len(live)


class TestUnitProperties:
    @given(st.integers(0, 1 << 45))
    @settings(max_examples=100, deadline=None)
    def test_address_decomposition_reassembles(self, addr):
        line = units.line_addr(addr)
        page = units.page_addr(addr)
        assert units.page_of_line(line) == page
        assert units.line_base(line) <= addr < units.line_base(line) + 64
        assert (units.page_base(page) + units.line_of_page(addr) * 64
                == units.line_base(line))

    @given(st.floats(min_value=0, max_value=1e6, allow_nan=False))
    @settings(max_examples=50, deadline=None)
    def test_histogram_mean_bounded_by_max(self, value):
        h = Histogram(bucket_width=10)
        h.record(value)
        h.record(value / 2)
        assert h.mean <= h.maximum + 1e-9
