"""PIPM coherence protocol model: the six transitions of Fig. 9."""

import pytest

from repro.coherence.base_protocol import Action
from repro.coherence.pipm_protocol import PipmModel
from repro.coherence.states import CacheState

_I, _S, _M, _ME = (
    int(CacheState.I), int(CacheState.S), int(CacheState.M),
    int(CacheState.ME),
)


@pytest.fixture()
def model() -> PipmModel:
    return PipmModel(num_hosts=2, remap_host=0)


def act(model, state, name, host):
    return model.apply(state, Action(name, host))


def migrated_state(model):
    """Drive the model to I' (line migrated, nothing cached)."""
    state, _ = act(model, model.initial_state(), "store", 0)
    state, obs = act(model, state, "evict", 0)
    assert obs.get("migrated")
    return state


class TestCase1IncrementalMigration:
    def test_local_writeback_migrates(self, model):
        state, _ = act(model, model.initial_state(), "store", 0)
        version = state.caches[0][1]
        state, obs = act(model, state, "evict", 0)
        assert obs["migrated"]
        assert state.mem_bit == 1
        assert state.local_version == version
        # I' everywhere: no cached copies, device directory empty.
        assert all(s == _I for s, _ in state.caches)
        assert state.dir_state == _I

    def test_non_remap_host_writeback_goes_to_cxl(self, model):
        state, _ = act(model, model.initial_state(), "store", 1)
        version = state.caches[1][1]
        state, obs = act(model, state, "evict", 1)
        assert "migrated" not in obs
        assert state.mem_bit == 0
        assert state.mem_version == version


class TestCase3And4LocalFastPath:
    def test_local_read_of_migrated_line_takes_me(self, model):
        state = migrated_state(model)
        state, obs = act(model, state, "load", 0)
        assert state.caches[0][0] == _ME
        assert obs["read_version"] == obs["latest"]
        # Device directory still not involved.
        assert state.dir_state == _I

    def test_local_write_in_me_bumps_version(self, model):
        state = migrated_state(model)
        state, _ = act(model, state, "load", 0)
        state, obs = act(model, state, "store", 0)
        assert state.caches[0][0] == _ME
        assert obs["written_version"] == obs["latest"] + 1

    def test_me_eviction_back_to_i_mig(self, model):
        state = migrated_state(model)
        state, _ = act(model, state, "load", 0)
        state, _ = act(model, state, "store", 0)
        version = state.caches[0][1]
        state, obs = act(model, state, "evict", 0)
        assert obs["migrated"]
        assert state.local_version == version
        assert state.mem_bit == 1


class TestCase2InterHostOnIMig:
    def test_inter_read_migrates_back(self, model):
        state = migrated_state(model)
        latest = model.latest_version(state)
        state, obs = act(model, state, "load", 1)
        assert obs["read_version"] == latest
        assert state.mem_bit == 0  # migrated back
        assert state.mem_version == latest
        assert state.caches[1][0] == _S

    def test_inter_write_migrates_back_and_owns(self, model):
        state = migrated_state(model)
        state, obs = act(model, state, "store", 1)
        assert state.mem_bit == 0
        assert state.caches[1][0] == _M
        assert state.dir_owner == 1


class TestCases5And6InterHostOnMe:
    def _me_state(self, model):
        state = migrated_state(model)
        state, _ = act(model, state, "store", 0)
        assert state.caches[0][0] == _ME
        return state

    def test_inter_read_downgrades_me_to_s(self, model):
        state = self._me_state(model)
        latest = model.latest_version(state)
        state, obs = act(model, state, "load", 1)
        assert obs["read_version"] == latest
        assert state.caches[0][0] == _S  # case 6: ME -> S
        assert state.caches[1][0] == _S
        assert state.mem_bit == 0
        assert state.dir_state == _S

    def test_inter_write_invalidates_me(self, model):
        state = self._me_state(model)
        state, _ = act(model, state, "store", 1)
        assert state.caches[0][0] == _I  # case 5: ME -> I
        assert state.caches[1][0] == _M
        assert state.mem_bit == 0


class TestInvariants:
    def test_migrated_line_never_cached_elsewhere(self, model):
        bad = migrated_state(model)._replace(
            caches=((_I, 0), (_S, 0)),
            dir_state=_S,
            dir_sharers=frozenset({1}),
        )
        violations = model.invariant_violations(bad)
        assert any("non-remap" in v for v in violations)

    def test_me_requires_bit(self, model):
        bad = model.initial_state()._replace(caches=((_ME, 1), (_I, 0)))
        violations = model.invariant_violations(bad)
        assert any("bit clear" in v for v in violations)

    def test_migrated_line_needs_no_dir_entry(self, model):
        bad = migrated_state(model)._replace(dir_state=_S)
        violations = model.invariant_violations(bad)
        assert any("directory" in v for v in violations)

    def test_initial_clean(self, model):
        assert model.invariant_violations(model.initial_state()) == []

    def test_remap_host_validation(self):
        with pytest.raises(ValueError):
            PipmModel(2, remap_host=5)


class TestNonMigratedFallback:
    """Lines with mem_bit 0 behave exactly like baseline MSI."""

    def test_cold_load(self, model):
        state, _ = act(model, model.initial_state(), "load", 1)
        assert state.caches[1][0] == _S
        assert state.dir_state == _S

    def test_store_upgrade_invalidates(self, model):
        state, _ = act(model, model.initial_state(), "load", 0)
        state, _ = act(model, state, "load", 1)
        state, _ = act(model, state, "store", 1)
        assert state.caches[0][0] == _I
