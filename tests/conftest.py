"""Shared fixtures: tiny configurations and traces that run in milliseconds."""

from __future__ import annotations

import pytest

from repro import SystemConfig, WorkloadScale, generate
from repro.workloads.trace import WorkloadTrace


@pytest.fixture(scope="session")
def scaled_config() -> SystemConfig:
    return SystemConfig.scaled()

@pytest.fixture(scope="session")
def paper_config() -> SystemConfig:
    return SystemConfig.paper()


@pytest.fixture(scope="session")
def tiny_scale() -> WorkloadScale:
    return WorkloadScale.tiny()


@pytest.fixture(scope="session")
def tiny_pr_trace(tiny_scale) -> WorkloadTrace:
    return generate("pr", scale=tiny_scale)


@pytest.fixture(scope="session")
def tiny_ycsb_trace(tiny_scale) -> WorkloadTrace:
    return generate("ycsb", scale=tiny_scale)
