"""DRAM timing, CXL link, memory controller models."""

import pytest

from repro import units
from repro.config import CxlLinkConfig, DramConfig
from repro.mem.controller import MemoryController
from repro.mem.cxl_link import CONTROL_BYTES, TO_DEVICE, TO_HOST, CxlLink
from repro.mem.dram import DramChannel, DramPool


@pytest.fixture()
def dram_cfg() -> DramConfig:
    return DramConfig(1 * units.GB, 1, 38.4)


class TestDramChannel:
    def test_row_miss_then_hit(self, dram_cfg):
        ch = DramChannel(dram_cfg)
        first = ch.access(0, now=0.0)
        second = ch.access(64, now=1000.0)  # same row
        assert first > second
        assert second == pytest.approx(
            dram_cfg.row_hit_ns
            + units.transfer_ns(64, dram_cfg.bandwidth_gbs_per_channel)
        )

    def test_row_conflict(self, dram_cfg):
        ch = DramChannel(dram_cfg)
        ch.access(0, now=0.0)
        far = dram_cfg.row_bytes * dram_cfg.banks_per_channel  # same bank
        lat = ch.access(far, now=1000.0)
        assert lat >= dram_cfg.row_miss_ns

    def test_bandwidth_queueing(self, dram_cfg):
        ch = DramChannel(dram_cfg)
        # Back-to-back page transfers at the same instant queue up.
        first = ch.access(0, now=0.0, size_bytes=units.PAGE_SIZE)
        second = ch.access(8192, now=0.0, size_bytes=units.PAGE_SIZE)
        assert second > first

    def test_idle_gap_clears_queue(self, dram_cfg):
        ch = DramChannel(dram_cfg)
        ch.access(0, now=0.0, size_bytes=units.PAGE_SIZE)
        lat = ch.access(0, now=1e9)
        assert lat < dram_cfg.row_miss_ns + 5

    def test_reset(self, dram_cfg):
        ch = DramChannel(dram_cfg)
        ch.access(0, now=0.0)
        ch.reset()
        assert ch.access(0, now=0.0) >= dram_cfg.row_miss_ns


class TestDramPool:
    def test_channel_interleave_at_page_granularity(self):
        cfg = DramConfig(1 * units.GB, 2, 38.4)
        pool = DramPool(cfg)
        pool.access(0, now=0.0, size_bytes=units.PAGE_SIZE)
        # A different page maps to the other channel: no queueing.
        lat = pool.access(units.PAGE_SIZE, now=0.0, size_bytes=units.PAGE_SIZE)
        solo = DramPool(cfg).access(0, now=0.0, size_bytes=units.PAGE_SIZE)
        assert lat == pytest.approx(solo)

    def test_total_bandwidth(self):
        cfg = DramConfig(1 * units.GB, 2, 38.4)
        assert DramPool(cfg).total_bandwidth_gbs == pytest.approx(76.8)


class TestCxlLink:
    def test_one_way_latency_plus_serialization(self):
        link = CxlLink(CxlLinkConfig(latency_ns=50, bandwidth_gbs=5.0))
        lat = link.transfer(TO_DEVICE, now=0.0, size_bytes=64)
        assert lat == pytest.approx(50 + units.transfer_ns(64, 5.0))

    def test_round_trip_is_two_traversals(self):
        link = CxlLink(CxlLinkConfig(latency_ns=50, bandwidth_gbs=5.0))
        rt = link.round_trip(0.0, CONTROL_BYTES, 64)
        assert rt > 100  # two 50ns traversals plus serialization

    def test_directions_queue_independently(self):
        link = CxlLink(CxlLinkConfig(latency_ns=50, bandwidth_gbs=5.0))
        link.transfer(TO_DEVICE, 0.0, units.PAGE_SIZE)
        # The opposite direction is not blocked.
        lat = link.transfer(TO_HOST, 0.0, 64)
        assert lat == pytest.approx(50 + units.transfer_ns(64, 5.0))

    def test_same_direction_queues(self):
        link = CxlLink(CxlLinkConfig(latency_ns=50, bandwidth_gbs=5.0))
        link.transfer(TO_DEVICE, 0.0, units.PAGE_SIZE)
        lat = link.transfer(TO_DEVICE, 0.0, 64)
        assert lat > 50 + units.transfer_ns(64, 5.0)

    def test_occupancy_and_reset(self):
        link = CxlLink(CxlLinkConfig())
        link.transfer(TO_DEVICE, 0.0, units.PAGE_SIZE)
        assert link.occupancy_until(TO_DEVICE) > 0
        link.reset()
        assert link.occupancy_until(TO_DEVICE) == 0


class TestMemoryController:
    def test_read_write_line(self, dram_cfg):
        mc = MemoryController(dram_cfg)
        assert mc.read_line(0, 0.0) > 0
        assert mc.write_line(0, 10.0) > 0

    def test_page_transfer_slower_than_line(self, dram_cfg):
        mc = MemoryController(dram_cfg)
        line = mc.read_line(0, 0.0)
        mc.reset()
        page = mc.transfer_page(0, 0.0)
        assert page > line
