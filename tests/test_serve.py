"""The experiment service: admission, breakers, journal, recovery, drain."""

from __future__ import annotations

import json

import pytest

from repro import SystemConfig
from repro.config import ServeConfig
from repro.serve import (
    CLOSED,
    HALF_OPEN,
    OPEN,
    AdmissionDecision,
    AdmissionQueue,
    CircuitBreaker,
    ExperimentService,
    ServiceJournal,
    submit_spec,
)
from repro.serve.status import (
    ServiceStatus,
    format_status,
    pid_alive,
    read_status,
)
from repro.sweep import ExperimentSpec, run_spec
from repro.workloads.trace import WorkloadScale

TINY = WorkloadScale.tiny()


def _spec(workload="pr", scheme="pipm", **scheme_kwargs):
    return ExperimentSpec.build(
        workload, scheme,
        config=SystemConfig.scaled(num_hosts=4),
        scale=TINY,
        scheme_kwargs=scheme_kwargs,
    )


def _poison_spec():
    """Parses and journals fine; every worker dispatch raises."""
    return _spec(scheme_kwargs_marker=1)


class FakeClock:
    def __init__(self, now=0.0):
        self.now = now

    def __call__(self):
        return self.now

    def advance(self, dt):
        self.now += dt


class TestAdmissionQueue:
    def test_limit_validation(self):
        with pytest.raises(ValueError, match="limit"):
            AdmissionQueue(0)

    def test_decision_reason_vocabulary_enforced(self):
        with pytest.raises(ValueError, match="reason"):
            AdmissionDecision(False, "because")

    def test_fifo_order_and_take(self):
        queue = AdmissionQueue(8)
        for name in ("a", "b", "c"):
            assert queue.offer(name, name.upper()).admitted
        assert queue.take(2) == [("a", "A"), ("b", "B")]
        assert queue.take(5) == [("c", "C")]
        assert len(queue) == 0

    def test_duplicate_rejected_with_reason(self):
        queue = AdmissionQueue(8)
        assert queue.offer("k", 1).admitted
        decision = queue.offer("k", 2)
        assert not decision.admitted
        assert decision.reason == "duplicate"
        assert len(queue) == 1

    def test_capacity_is_a_hard_bound(self):
        queue = AdmissionQueue(2)
        assert queue.offer("a", 1).admitted
        assert queue.offer("b", 2).admitted
        assert queue.full and queue.room == 0
        decision = queue.offer("c", 3)
        assert not decision.admitted
        assert decision.reason == "queue-full"
        assert queue.keys() == ["a", "b"]
        # Draining reopens admission.
        queue.take(1)
        assert queue.offer("c", 3).admitted


class TestCircuitBreaker:
    def _breaker(self, clock, threshold=3, cooldown=5.0, cap=20.0):
        return CircuitBreaker(threshold, cooldown, cap, clock=clock)

    def test_validation(self):
        with pytest.raises(ValueError, match="threshold"):
            CircuitBreaker(0, 1.0, 2.0)
        with pytest.raises(ValueError, match="cooldown"):
            CircuitBreaker(1, 2.0, 1.0)

    def test_trips_at_threshold_then_quarantines(self):
        clock = FakeClock()
        breaker = self._breaker(clock)
        assert breaker.admit() == "ok"
        assert breaker.record_failure() is False
        assert breaker.record_failure() is False
        assert breaker.state == CLOSED
        assert breaker.record_failure() is True
        assert breaker.state == OPEN
        assert breaker.admit() == "quarantined"
        assert breaker.remaining_s() == pytest.approx(5.0)

    def test_half_open_allows_exactly_one_probe(self):
        clock = FakeClock()
        breaker = self._breaker(clock)
        for _ in range(3):
            breaker.record_failure()
        clock.advance(5.0)
        assert breaker.admit() == "probe"
        assert breaker.state == HALF_OPEN
        assert breaker.admit() == "quarantined"  # probe slot committed

    def test_probe_success_closes_and_resets(self):
        clock = FakeClock()
        breaker = self._breaker(clock)
        for _ in range(3):
            breaker.record_failure()
        clock.advance(5.0)
        assert breaker.admit() == "probe"
        breaker.record_success()
        assert breaker.state == CLOSED
        assert breaker.failures == 0 and breaker.opens == 0
        assert breaker.admit() == "ok"

    def test_probe_failure_doubles_cooldown_capped(self):
        clock = FakeClock()
        breaker = self._breaker(clock, cooldown=5.0, cap=12.0)
        for _ in range(3):
            breaker.record_failure()
        assert breaker.current_cooldown_s() == 5.0
        # First failed probe: cooldown doubles to 10s.
        clock.advance(5.0)
        assert breaker.admit() == "probe"
        assert breaker.record_failure() is True
        assert breaker.remaining_s() == pytest.approx(10.0)
        # Second failed probe: 20s would exceed the cap; clamps to 12s.
        clock.advance(10.0)
        assert breaker.admit() == "probe"
        breaker.record_failure()
        assert breaker.remaining_s() == pytest.approx(12.0)

    def test_restore_rearms_cooldown_from_now(self):
        clock = FakeClock(100.0)
        breaker = self._breaker(clock)
        breaker.restore(OPEN, failures=3, opens=2)
        assert breaker.state == OPEN
        assert breaker.remaining_s() == pytest.approx(10.0)  # 5 * 2^1
        clock.advance(10.0)
        assert breaker.admit() == "probe"
        # A closed restore carries counters but admits freely.
        other = self._breaker(FakeClock())
        other.restore(CLOSED, failures=1, opens=0)
        assert other.admit() == "ok"


class TestServiceJournal:
    def test_rejects_unknown_state(self, tmp_path):
        with pytest.raises(ValueError, match="state"):
            ServiceJournal(tmp_path).transition("k", "meditating")

    def test_fold_tracks_lifecycle_and_totals(self, tmp_path):
        journal = ServiceJournal(tmp_path)
        journal.epoch(pid=1)
        journal.transition("k1", "submitted", label="pr/pipm")
        journal.transition("k1", "admitted")
        journal.transition("k1", "running")
        journal.transition("k1", "done", attempts=1)
        journal.transition("k2", "submitted")
        journal.transition("k2", "done", cache_hit=True)
        journal.reject("queue-full", key="k3")
        view = journal.fold()
        assert view.epoch == 1
        assert view.entries["k1"].state == "done"
        assert view.entries["k1"].label == "pr/pipm"
        assert view.entries["k1"].runs == 1
        assert view.entries["k2"].cache_hits == 1
        assert view.entries["k2"].runs == 0
        assert view.totals["executions"] == 1
        assert view.totals["cache_hit_completions"] == 1
        assert view.totals["rejected"] == 1

    def test_empty_string_error_survives_fold(self, tmp_path):
        journal = ServiceJournal(tmp_path)
        journal.transition("k", "failed", error="")
        assert journal.fold().entries["k"].error == ""

    def test_torn_tail_is_skipped(self, tmp_path):
        journal = ServiceJournal(tmp_path)
        journal.transition("k1", "submitted")
        journal.transition("k1", "running")
        with open(journal.path, "ab") as fh:
            fh.write(b'{"event": "state", "key": "k1", "sta')
        view = journal.fold()
        assert view.entries["k1"].state == "running"
        assert view.lines == 2

    def test_compaction_bounds_lines_and_keeps_accounting(self, tmp_path):
        journal = ServiceJournal(tmp_path)
        journal.epoch(pid=1)
        for step in ("submitted", "admitted", "running", "done"):
            journal.transition("k1", step, label="pr/pipm")
        journal.transition("k2", "submitted")
        journal.transition("k2", "done", cache_hit=True)
        before = journal.fold()
        folded = journal.compact()
        assert folded == before.lines - 1
        assert journal.line_count() == 1
        after = journal.fold()
        assert after.entries["k1"].runs == 1
        assert after.entries["k1"].label == "pr/pipm"
        assert after.entries["k2"].cache_hits == 1
        assert after.epoch == 1
        assert after.compactions == 1
        assert after.totals == before.totals
        # Appends after compaction fold on top of the snapshot, and a
        # second completion of k1 keeps accumulating its run counter.
        journal.transition("k1", "submitted")
        journal.transition("k1", "done")
        assert journal.fold().entries["k1"].runs == 2

    def test_repeated_compaction_is_idempotent(self, tmp_path):
        journal = ServiceJournal(tmp_path)
        for _ in range(3):
            journal.transition("k", "submitted")
            journal.transition("k", "done")
        journal.compact()
        first = journal.fold()
        journal.compact()
        second = journal.fold()
        assert second.entries["k"].runs == first.entries["k"].runs == 3
        assert second.compactions == 2
        assert journal.line_count() == 1

    def test_kill_mid_compaction_leaves_old_journal(self, tmp_path):
        """A temp file left by a dead compactor is swept; log intact."""
        journal = ServiceJournal(tmp_path)
        journal.transition("k1", "submitted")
        journal.transition("k1", "done")
        # Simulate a compactor killed after writing its temp file but
        # before the atomic os.replace: the real journal is untouched.
        orphan = tmp_path / f".{journal.path.name}.dead0.tmp"
        orphan.write_bytes(b'{"event": "snapshot", "entries": []}\n')
        view = journal.fold()
        assert view.entries["k1"].state == "done"
        assert journal.cleanup_temp() == 1
        assert not orphan.exists()
        assert journal.fold().entries["k1"].runs == 1

    def test_missing_journal_folds_empty(self, tmp_path):
        journal = ServiceJournal(tmp_path / "nowhere")
        view = journal.fold()
        assert view.entries == {} and view.lines == 0
        assert journal.line_count() == 0


class TestServeConfig:
    def test_defaults_validate(self):
        ServeConfig().validate()

    def test_validation_rejects_bad_knobs(self):
        with pytest.raises(ValueError):
            ServeConfig(queue_limit=0).validate()
        with pytest.raises(ValueError):
            ServeConfig(compact_every=2).validate()
        with pytest.raises(ValueError):
            ServeConfig(
                breaker_cooldown_s=10.0, breaker_cooldown_max_s=1.0
            ).validate()

    def test_round_trip(self):
        config = ServeConfig(slots=3, breaker_threshold=5)
        again = ServeConfig.from_dict(config.to_dict())
        assert again == config

    def test_from_dict_ignores_unknown_keys(self):
        config = ServeConfig.from_dict({"slots": 1, "vibe": "immaculate"})
        assert config.slots == 1


class TestStatus:
    def test_round_trip_and_liveness(self, tmp_path):
        import os

        status = ServiceStatus(
            pid=os.getpid(), state="running", epoch=2, tick=9,
            queue_depth=1, totals={"done": 4},
            breakers={"k": {"state": "open", "failures": 3, "opens": 1,
                            "remaining_s": 4.5}},
        )
        from repro.serve.status import write_status

        write_status(tmp_path, status)
        loaded = read_status(tmp_path)
        assert loaded == status
        assert pid_alive(loaded.pid)
        assert not pid_alive(-1)
        text = format_status(loaded, alive=True)
        assert "running" in text and "alive" in text and "done=4" in text

    def test_dead_without_drain_is_called_out(self):
        status = ServiceStatus(pid=1, state="running", epoch=1, tick=1)
        assert "DEAD" in format_status(status, alive=False)
        drained = ServiceStatus(pid=1, state="drained", epoch=1, tick=1)
        assert "exited after drain" in format_status(drained, alive=False)

    def test_missing_status_reads_none(self, tmp_path):
        assert read_status(tmp_path / "nowhere") is None


def _service(tmp_path, clock=None, **overrides):
    overrides.setdefault("retries", 0)
    overrides.setdefault("backoff_s", 0.01)
    overrides.setdefault("breaker_cooldown_s", 0.2)
    overrides.setdefault("breaker_cooldown_max_s", 1.0)
    overrides.setdefault("tick_s", 0.01)
    config = ServeConfig(**overrides)
    kwargs = {"clock": clock} if clock is not None else {}
    return ExperimentService(tmp_path / "svc", config=config, **kwargs)


class TestExperimentService:
    def test_submit_is_idempotent_by_content_key(self, tmp_path):
        spec = _spec()
        first = submit_spec(tmp_path, spec)
        second = submit_spec(tmp_path, spec)
        assert first == second
        assert len(list((tmp_path / "spool").glob("*.json"))) == 1

    def test_exit_when_idle_completes_submissions(self, tmp_path):
        service = _service(tmp_path, slots=2)
        specs = [_spec("pr", "pipm"), _spec("pr", "native")]
        for spec in specs:
            submit_spec(service.root, spec)
        assert service.run(exit_when_idle=True) == 0
        view = service.journal.fold()
        for spec in specs:
            entry = view.entries[spec.key()]
            assert entry.state == "done"
            assert entry.runs == 1
        assert view.totals["executions"] == len(specs)
        assert all(spec.key() in service.store for spec in specs)
        # The spool was drained and the accepted payloads persisted.
        assert not list(service.spool.glob("*.json"))
        status = read_status(service.root)
        assert status.state == "drained"

    def test_resubmitting_done_spec_is_a_cache_hit(self, tmp_path):
        service = _service(tmp_path)
        spec = _spec()
        submit_spec(service.root, spec)
        assert service.run(exit_when_idle=True) == 0
        submit_spec(service.root, spec)
        again = _service(tmp_path)
        assert again.run(exit_when_idle=True) == 0
        entry = again.journal.fold().entries[spec.key()]
        assert entry.runs == 1          # executed exactly once, ever
        assert entry.cache_hits >= 1

    def test_recovery_completes_published_result_without_rerun(
        self, tmp_path
    ):
        """Kill after ResultStore.put but before journalling ``done``."""
        spec = _spec()
        service = _service(tmp_path)
        service._ensure_dirs()
        # The dead service accepted the spec and its worker published
        # the result, but the ``done`` transition never hit the journal.
        run_spec(spec, service.cache_dir)
        from repro.sweep.store import atomic_write_json

        atomic_write_json(
            service.specs_dir / f"{spec.key()}.json", spec.to_dict()
        )
        journal = ServiceJournal(service.root)
        journal.epoch(pid=99999)
        journal.transition("k-" + spec.key(), "done")  # unrelated, done
        journal.transition(spec.key(), "submitted", label=spec.label())
        journal.transition(spec.key(), "admitted")
        journal.transition(spec.key(), "running")
        fresh = _service(tmp_path)
        assert fresh.run(exit_when_idle=True) == 0
        entry = fresh.journal.fold().entries[spec.key()]
        assert entry.state == "done"
        assert entry.runs == 0          # recovery never re-executed it
        assert entry.cache_hits == 1

    def test_recovery_resumes_pending_spec_exactly_once(self, tmp_path):
        """Kill mid-run, before any result: restart runs it once."""
        spec = _spec()
        service = _service(tmp_path)
        service._ensure_dirs()
        from repro.sweep.store import atomic_write_json

        atomic_write_json(
            service.specs_dir / f"{spec.key()}.json", spec.to_dict()
        )
        journal = ServiceJournal(service.root)
        journal.epoch(pid=99999)
        journal.transition(spec.key(), "submitted", label=spec.label())
        journal.transition(spec.key(), "running")
        fresh = _service(tmp_path)
        assert fresh.run(exit_when_idle=True) == 0
        entry = fresh.journal.fold().entries[spec.key()]
        assert entry.state == "done" and entry.runs == 1

    def test_recovery_marks_missing_payload_lost(self, tmp_path):
        journal = ServiceJournal(tmp_path / "svc")
        journal.transition("gone", "admitted", label="x")
        service = _service(tmp_path)
        assert service.run(exit_when_idle=True) == 0
        entry = service.journal.fold().entries["gone"]
        assert entry.state == "lost"
        assert "missing" in entry.error

    def test_poison_spec_trips_breaker_without_stalling_queue(
        self, tmp_path
    ):
        clock = FakeClock()
        service = _service(
            tmp_path, clock=clock, slots=2, breaker_threshold=2
        )
        poison = _poison_spec()
        healthy = _spec()
        submit_spec(service.root, poison)
        submit_spec(service.root, healthy)
        assert service.run(exit_when_idle=True) == 0
        view = service.journal.fold()
        assert view.entries[healthy.key()].state == "done"
        bad = view.entries[poison.key()]
        assert bad.state == "quarantined"
        assert bad.opens == 1
        assert bad.failures >= 2
        assert bad.error            # attribution journalled
        breaker = service.breakers.get(poison.key())
        assert breaker.state == OPEN
        # While the cooldown runs, a resubmission is refused outright.
        clock.advance(0.0)
        assert breaker.admit() == "quarantined"

    def test_drain_stops_admitting_and_exits_zero(self, tmp_path):
        service = _service(tmp_path)
        submit_spec(service.root, _spec())
        service.request_drain()
        assert service.run() == 0
        # Never admitted: the submission is still spooled for later.
        assert len(list(service.spool.glob("*.json"))) == 1
        assert read_status(service.root).state == "drained"

    def test_invalid_submission_moved_aside_and_journalled(self, tmp_path):
        service = _service(tmp_path)
        service._ensure_dirs()
        (service.spool / "garbage.json").write_text("{not json")
        assert service.run(exit_when_idle=True) == 0
        assert (service.rejected_dir / "garbage.json").exists()
        assert not list(service.spool.glob("*.json"))
        assert service.journal.fold().totals["rejected"] == 1

    def test_service_compacts_when_journal_grows(self, tmp_path):
        service = _service(tmp_path, compact_every=8)
        journal = ServiceJournal(service.root)
        for i in range(10):
            journal.transition(f"k{i}", "done")
        assert service.run(exit_when_idle=True) == 0
        assert service.journal.line_count() <= 8
        # Accounting survived the fold.
        assert service.journal.fold().totals["executions"] == 10
