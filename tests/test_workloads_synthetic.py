"""Synthetic workload builder and the adversarial split-page pattern."""

import pytest

from repro import SystemConfig, WorkloadScale, make_scheme, simulate, units
from repro.workloads.synthetic import (
    SyntheticSpec,
    partitioned_split_trace,
    synthetic_trace,
)

SCALE = WorkloadScale.tiny()


class TestSyntheticSpec:
    def test_defaults_validate(self):
        SyntheticSpec().validate()

    def test_fraction_bounds(self):
        with pytest.raises(ValueError):
            SyntheticSpec(own_fraction=1.2).validate()
        with pytest.raises(ValueError):
            SyntheticSpec(own_fraction=0.7, shared_fraction=0.5).validate()
        with pytest.raises(ValueError):
            SyntheticSpec(write_fraction=-0.1).validate()


class TestSyntheticTrace:
    def test_shape(self):
        trace = synthetic_trace(SyntheticSpec(), num_hosts=4, scale=SCALE)
        assert trace.num_hosts == 4
        assert all(len(s) == SCALE.accesses_per_host for s in trace.streams)
        assert {r.name for r in trace.regions} == {
            "own_partitions", "shared", "cold",
        }

    def test_own_partitions_disjoint(self):
        trace = synthetic_trace(
            SyntheticSpec(own_fraction=1.0, shared_fraction=0.0),
            num_hosts=2, scale=SCALE,
        )
        pages = [
            {a >> 12 for _, a, _, _ in stream} for stream in trace.streams
        ]
        assert not (pages[0] & pages[1])

    def test_shared_region_contested(self):
        trace = synthetic_trace(
            SyntheticSpec(own_fraction=0.0, shared_fraction=1.0),
            num_hosts=2, scale=SCALE,
        )
        pages = [
            {a >> 12 for _, a, _, _ in stream} for stream in trace.streams
        ]
        assert pages[0] & pages[1]

    def test_write_fraction_zero_means_read_only(self):
        trace = synthetic_trace(
            SyntheticSpec(write_fraction=0.0), scale=SCALE,
        )
        assert sum(w for s in trace.streams for _, _, w, _ in s) == 0

    def test_simulates_end_to_end(self):
        trace = synthetic_trace(SyntheticSpec(), scale=SCALE)
        result = simulate(trace, make_scheme("pipm"), SystemConfig.scaled())
        assert result.exec_time_ns > 0


class TestSplitPagePattern:
    def test_halves_disjoint_lines_shared_pages(self):
        trace = partitioned_split_trace(num_hosts=2, scale=SCALE)
        shared = next(r for r in trace.regions if r.name == "split_pages")
        lines = [
            {a >> 6 for _, a, _, _ in stream if shared.contains(a)}
            for stream in trace.streams
        ]
        pages = [
            {line >> 6 for line in host_lines} for host_lines in lines
        ]
        assert not (lines[0] & lines[1])  # no line is shared...
        assert pages[1] <= pages[0]  # ...but the minor host's pages are
        assert pages[1]  # the minority traffic exists

    def test_split_point_respected(self):
        trace = partitioned_split_trace(num_hosts=2, scale=SCALE,
                                        split_lines=16)
        shared = next(r for r in trace.regions if r.name == "split_pages")
        for _, addr, _, _ in trace.streams[0][:500]:
            assert units.line_of_page(addr) < 16
        for _, addr, _, _ in trace.streams[1][:500]:
            if shared.contains(addr):
                assert units.line_of_page(addr) >= 16

    def test_split_lines_validated(self):
        with pytest.raises(ValueError):
            partitioned_split_trace(split_lines=0)
        with pytest.raises(ValueError):
            partitioned_split_trace(split_lines=64)
        with pytest.raises(ValueError):
            partitioned_split_trace(num_hosts=3)
        with pytest.raises(ValueError):
            partitioned_split_trace(minor_fraction=0.5)

    def test_pipm_wins_the_adversarial_case(self):
        """The distilled thesis: sub-page splits favour partial migration."""
        cfg = SystemConfig.scaled()
        trace = partitioned_split_trace(num_hosts=4, scale=SCALE)
        native = simulate(trace, make_scheme("native"), cfg)
        pipm = simulate(trace, make_scheme("pipm"), cfg)
        memtis = simulate(trace, make_scheme("memtis"), cfg)
        assert pipm.exec_time_ns < native.exec_time_ns
        assert pipm.exec_time_ns < memtis.exec_time_ns
        assert pipm.local_hit_rate > memtis.local_hit_rate
