"""Kernel migration mechanics inside the system model: costs, flushes,
transfers, ledger wiring, and the interval machinery."""

import pytest

from repro import SystemConfig, units
from repro.policies import make_scheme
from repro.policies.base import MigrationPlan
from repro.sim.system import MultiHostSystem


@pytest.fixture()
def cfg() -> SystemConfig:
    return SystemConfig.scaled()


def system_with(cfg, scheme="memtis", **kw) -> MultiHostSystem:
    return MultiHostSystem(cfg, make_scheme(scheme), workload_mlp=4.0,
                           footprint_pages=512, **kw)


def warm_page(system, host, page, accesses=40):
    now = 0.0
    for i in range(accesses):
        addr = (page << 12) + (i % 64) * 64
        system.access(host, 0, addr, False, now)
        now += 50.0
    return now


class TestApplyPlan:
    def test_promotion_charges_all_hosts(self, cfg):
        system = system_with(cfg)
        plan = MigrationPlan(promotions=[(5, 0), (6, 1)])
        clocks = [h.clock_ns for h in system.hosts]
        system._apply_plan(plan, now=1000.0)
        assert system.page_map == {5: 0, 6: 1}
        for host, before in zip(system.hosts, clocks):
            assert host.clock_ns > before  # mgmt charged everywhere
        assert system.mgmt_ns > 0
        assert system.transfer_ns > 0

    def test_budget_round_robin_across_hosts(self, cfg):
        cfg2 = cfg.replace_nested("kernel", max_pages_per_interval=2)
        system = system_with(cfg2)
        plan = MigrationPlan(
            promotions=[(1, 0), (2, 0), (3, 0), (4, 1)]
        )
        system._apply_plan(plan, now=0.0)
        # With budget 2 and two initiators, each host gets one page.
        assert 4 in system.page_map
        assert sum(1 for h in system.page_map.values() if h == 0) == 1

    def test_promotion_flushes_caches_everywhere(self, cfg):
        system = system_with(cfg)
        page = 5
        warm_page(system, 1, page, accesses=4)
        line = page << 6
        assert system.hosts[1].holds_line(line)
        system._apply_plan(MigrationPlan(promotions=[(page, 0)]), 1e6)
        assert not system.hosts[1].holds_line(line)
        assert system.device_dir.peek(line) is None

    def test_demotion_frees_frame_and_map(self, cfg):
        system = system_with(cfg)
        system._apply_plan(MigrationPlan(promotions=[(5, 0)]), 0.0)
        in_use = system.frames[0].in_use
        system._apply_plan(MigrationPlan(demotions=[(5, 0)]), 1e6)
        assert 5 not in system.page_map
        assert system.frames[0].in_use == in_use - 1
        assert system.demotions == 1

    def test_demotion_of_unmigrated_page_ignored(self, cfg):
        system = system_with(cfg)
        system._apply_plan(MigrationPlan(demotions=[(7, 0)]), 0.0)
        assert system.demotions == 0

    def test_clean_demotion_free_for_nomad(self, cfg):
        nomad = system_with(cfg, scheme="nomad")
        nomad._apply_plan(MigrationPlan(promotions=[(5, 0)]), 0.0)
        transfer_after_promo = nomad.transfer_ns
        nomad._apply_plan(MigrationPlan(demotions=[(5, 0)]), 1e6)
        # Non-exclusive shadow copy: a clean page demotes without transfer.
        assert nomad.transfer_ns == transfer_after_promo

    def test_dirty_demotion_always_transfers(self, cfg):
        nomad = system_with(cfg, scheme="nomad")
        nomad._apply_plan(MigrationPlan(promotions=[(5, 0)]), 0.0)
        nomad.dirty_pages.add(5)
        before = nomad.transfer_ns
        nomad._apply_plan(MigrationPlan(demotions=[(5, 0)]), 1e6)
        assert nomad.transfer_ns > before

    def test_ledger_records_promotions(self, cfg):
        system = system_with(cfg)
        system._apply_plan(MigrationPlan(promotions=[(5, 0)]), 0.0)
        assert system.ledger.total_migrations == 1


class TestIntervalMachinery:
    def test_tick_noop_before_boundary(self, cfg):
        system = system_with(cfg)
        system.maybe_tick(cfg.kernel.interval_ns / 2)
        assert system.migrations == 0

    def test_tick_advances_past_multiple_boundaries(self, cfg):
        system = system_with(cfg)
        system.maybe_tick(cfg.kernel.interval_ns * 5.5)
        assert system._next_interval > cfg.kernel.interval_ns * 5.5

    def test_nomad_learns_effective_interval(self, cfg):
        scheme = make_scheme("nomad")
        assert scheme.interval_ns() is None
        MultiHostSystem(cfg, scheme, footprint_pages=512)
        assert scheme.interval_ns() == cfg.kernel.interval_ns

    def test_resident_cap_applies(self, cfg):
        system = MultiHostSystem(
            cfg, make_scheme("memtis"), footprint_pages=100,
        )
        expected = max(16, int(cfg.kernel.resident_fraction_cap * 100))
        assert system.frames[0].num_frames == expected

    def test_no_footprint_hint_uses_capacity(self, cfg):
        system = MultiHostSystem(cfg, make_scheme("memtis"))
        capacity_frames = int(
            cfg.local_dram.capacity_bytes * cfg.migration_capacity_fraction
        ) // units.PAGE_SIZE
        assert system.frames[0].num_frames == capacity_frames


class TestPipmHasNoKernelMachinery:
    def test_no_interval(self, cfg):
        system = MultiHostSystem(cfg, make_scheme("pipm"))
        assert system._next_interval is None
        system.maybe_tick(1e12)  # must be a no-op
        assert system.migrations == 0

    def test_no_ledger_or_frames(self, cfg):
        system = MultiHostSystem(cfg, make_scheme("pipm"))
        assert system.ledger is None
        assert system.frames == []
