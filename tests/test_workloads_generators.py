"""All thirteen Table 1 workload generators."""

import numpy as np
import pytest

from repro import units
from repro.workloads import WorkloadScale, generate, workload_names
from repro.workloads.registry import WORKLOADS

SCALE = WorkloadScale.tiny()


@pytest.fixture(scope="module")
def all_traces():
    return {name: generate(name, scale=SCALE) for name in workload_names()}


class TestInventory:
    def test_thirteen_workloads(self):
        assert len(workload_names()) == 13

    def test_paper_order_and_suites(self):
        names = workload_names()
        assert names[:6] == ["sssp", "bfs", "pr", "cc", "bc", "tc"]
        assert WORKLOADS["xsbench"].suite == "XSBench"
        assert WORKLOADS["tpcc"].suite == "Silo"

    def test_paper_footprints_recorded(self):
        assert WORKLOADS["sssp"].paper_footprint_gb == 48
        assert WORKLOADS["xsbench"].paper_footprint_gb == 42
        assert WORKLOADS["bodytrack"].paper_footprint_gb == 8
        assert WORKLOADS["ycsb"].paper_footprint_gb == 15

    def test_unknown_rejected(self):
        with pytest.raises(ValueError):
            generate("spec2017", scale=SCALE)


class TestEveryGenerator:
    @pytest.mark.parametrize("name", workload_names())
    def test_shape(self, all_traces, name):
        trace = all_traces[name]
        assert trace.name == name
        assert trace.num_hosts == 4
        assert len(trace.streams) == 4
        for stream in trace.streams:
            assert len(stream) == SCALE.accesses_per_host

    @pytest.mark.parametrize("name", workload_names())
    def test_records_valid(self, all_traces, name):
        trace = all_traces[name]
        for stream in trace.streams:
            for gap, addr, is_write, core in stream[:200]:
                assert gap >= 1
                assert addr >= 0
                # Mixture generators emit line-aligned addresses; GAPBS
                # walkers emit element-granular (8B) addresses.
                assert addr % 8 == 0
                assert is_write in (0, 1)
                assert 0 <= core < 4

    @pytest.mark.parametrize("name", workload_names())
    def test_addresses_inside_regions(self, all_traces, name):
        trace = all_traces[name]
        hi = max(r.end for r in trace.regions)
        for stream in trace.streams:
            addrs = np.array([a for _, a, _, _ in stream])
            assert addrs.max() < hi

    @pytest.mark.parametrize("name", workload_names())
    def test_metadata(self, all_traces, name):
        trace = all_traces[name]
        assert trace.footprint_bytes > 0
        assert trace.mlp >= 1.0
        assert trace.description
        assert trace.total_accesses == 4 * SCALE.accesses_per_host
        assert trace.total_instructions > trace.total_accesses

    @pytest.mark.parametrize("name", workload_names())
    def test_deterministic(self, name):
        a = generate(name, scale=SCALE)
        b = generate(name, scale=SCALE)
        assert a.streams[0][:50] == b.streams[0][:50]


class TestSharingStructure:
    """The properties the paper's analysis depends on."""

    def _host_page_sets(self, trace):
        return [
            {a >> 12 for _, a, _, _ in stream} for stream in trace.streams
        ]

    def test_gapbs_partitions_mostly_private(self, all_traces):
        """Each host's adjacency data is not touched by other hosts."""
        trace = all_traces["pr"]
        edges = next(r for r in trace.regions if r.name == "edges")
        per_host = []
        for stream in trace.streams:
            per_host.append({
                a >> 12 for _, a, _, _ in stream if edges.contains(a)
            })
        overlap = len(per_host[0] & per_host[1])
        assert overlap <= max(2, len(per_host[0]) // 20)

    def test_gapbs_props_are_shared(self, all_traces):
        trace = all_traces["pr"]
        props = [r for r in trace.regions if r.name.startswith("prop")]
        shared = 0
        sets = self._host_page_sets(trace)
        for region in props:
            pages0 = {p for p in sets[0] if region.contains(p << 12)}
            pages1 = {p for p in sets[1] if region.contains(p << 12)}
            shared += len(pages0 & pages1)
        assert shared > 0

    def test_fluidanimate_boundary_pages_shared(self, all_traces):
        sets = self._host_page_sets(all_traces["fluidanimate"])
        assert sets[0] & sets[1]  # neighbours share boundary pages

    def test_canneal_uniformly_shared(self, all_traces):
        sets = self._host_page_sets(all_traces["canneal"])
        inter = sets[0] & sets[1] & sets[2] & sets[3]
        assert len(inter) > len(sets[0]) // 2

    def test_tc_read_only(self, all_traces):
        trace = all_traces["tc"]
        writes = sum(w for s in trace.streams for _, _, w, _ in s)
        assert writes == 0

    def test_xsbench_read_only(self, all_traces):
        trace = all_traces["xsbench"]
        writes = sum(w for s in trace.streams for _, _, w, _ in s)
        assert writes == 0

    def test_ycsb_read_write_mix(self, all_traces):
        trace = all_traces["ycsb"]
        writes = sum(w for s in trace.streams for _, _, w, _ in s)
        frac = writes / trace.total_accesses
        assert 0.1 < frac < 0.3  # R:W 4:1

    def test_tpcc_write_heavier_than_ycsb(self, all_traces):
        def write_frac(t):
            return sum(
                w for s in t.streams for _, _, w, _ in s
            ) / t.total_accesses
        assert write_frac(all_traces["tpcc"]) > write_frac(all_traces["ycsb"])

    def test_validate_passes_inside_map(self, all_traces):
        trace = all_traces["pr"]
        trace.validate(cxl_capacity=1 << 40, total_capacity=1 << 42)
