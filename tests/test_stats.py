"""Statistics registry and histogram."""

import pytest

from repro.stats import Histogram, ScopedStats, StatRegistry, ratio


class TestStatRegistry:
    def test_add_accumulates(self):
        reg = StatRegistry()
        reg.add("x", 2)
        reg.add("x", 3)
        assert reg.get("x") == 5

    def test_put_overwrites(self):
        reg = StatRegistry()
        reg.add("x", 2)
        reg.put("x", 1)
        assert reg.get("x") == 1

    def test_get_default(self):
        assert StatRegistry().get("missing", 42.0) == 42.0

    def test_scoped_prefixes(self):
        reg = StatRegistry()
        scope = reg.scoped("host0")
        scope.add("llc.misses")
        assert reg.get("host0.llc.misses") == 1

    def test_nested_scopes(self):
        reg = StatRegistry()
        inner = reg.scoped("host0").scoped("llc")
        inner.add("hits", 7)
        assert reg.get("host0.llc.hits") == 7

    def test_snapshot_is_a_copy(self):
        reg = StatRegistry()
        reg.add("x")
        snap = reg.snapshot()
        reg.add("x")
        assert snap["x"] == 1

    def test_merge(self):
        reg = StatRegistry()
        reg.add("x", 1)
        reg.merge({"x": 2, "y": 3})
        assert reg.get("x") == 3
        assert reg.get("y") == 3

    def test_contains_and_clear(self):
        reg = StatRegistry()
        reg.add("x")
        assert "x" in reg
        reg.clear()
        assert "x" not in reg


class TestHistogram:
    def test_mean(self):
        h = Histogram(bucket_width=10)
        for v in (5, 15, 25):
            h.record(v)
        assert h.mean == 15

    def test_max(self):
        h = Histogram(bucket_width=10)
        h.record(3)
        h.record(99)
        assert h.maximum == 99

    def test_percentile_monotone(self):
        h = Histogram(bucket_width=1)
        for v in range(100):
            h.record(v)
        assert h.percentile(0.5) <= h.percentile(0.9) <= h.percentile(1.0)

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            Histogram(bucket_width=1).record(-1)

    def test_percentile_rejects_out_of_range(self):
        with pytest.raises(ValueError):
            Histogram(bucket_width=1).percentile(1.5)

    def test_empty_percentile_is_zero(self):
        assert Histogram(bucket_width=1).percentile(0.5) == 0.0


def test_ratio_zero_denominator():
    assert ratio(5, 0) == 0
    assert ratio(6, 3) == 2
