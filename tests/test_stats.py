"""Statistics registry and histogram."""

import pytest

from repro.stats import Histogram, ScopedStats, StatRegistry, ratio


class TestStatRegistry:
    def test_add_accumulates(self):
        reg = StatRegistry()
        reg.add("x", 2)
        reg.add("x", 3)
        assert reg.get("x") == 5

    def test_put_overwrites(self):
        reg = StatRegistry()
        reg.add("x", 2)
        reg.put("x", 1)
        assert reg.get("x") == 1

    def test_get_default(self):
        assert StatRegistry().get("missing", 42.0) == 42.0

    def test_scoped_prefixes(self):
        reg = StatRegistry()
        scope = reg.scoped("host0")
        scope.add("llc.misses")
        assert reg.get("host0.llc.misses") == 1

    def test_nested_scopes(self):
        reg = StatRegistry()
        inner = reg.scoped("host0").scoped("llc")
        inner.add("hits", 7)
        assert reg.get("host0.llc.hits") == 7

    def test_snapshot_is_a_copy(self):
        reg = StatRegistry()
        reg.add("x")
        snap = reg.snapshot()
        reg.add("x")
        assert snap["x"] == 1

    def test_merge(self):
        reg = StatRegistry()
        reg.add("x", 1)
        reg.merge({"x": 2, "y": 3})
        assert reg.get("x") == 3
        assert reg.get("y") == 3

    def test_merge_does_not_sum_gauges(self):
        """Regression: merging worker snapshots double-counted ``put``s."""
        merged = StatRegistry()
        for _worker in range(3):
            worker = StatRegistry()
            worker.add("accesses", 100)       # counter: additive
            worker.put("hit_rate", 0.5)       # gauge: not additive
            merged.merge(worker)
        assert merged.get("accesses") == 300
        assert merged.get("hit_rate") == 0.5  # not 1.5
        assert merged.is_gauge("hit_rate")
        assert not merged.is_gauge("accesses")

    def test_merge_plain_mapping_with_explicit_gauges(self):
        worker = StatRegistry()
        worker.add("ops", 10)
        worker.put("occupancy", 7.0)
        merged = StatRegistry()
        merged.merge(worker.snapshot(), gauges=worker.gauge_keys())
        merged.merge(worker.snapshot(), gauges=worker.gauge_keys())
        assert merged.get("ops") == 20
        assert merged.get("occupancy") == 7.0

    def test_put_then_add_reverts_to_counter(self):
        reg = StatRegistry()
        reg.put("x", 5)
        assert reg.is_gauge("x")
        reg.add("x", 1)
        assert not reg.is_gauge("x")

    def test_scoped_put_marks_gauge(self):
        reg = StatRegistry()
        reg.scoped("host0").put("queue_depth", 4)
        assert reg.is_gauge("host0.queue_depth")

    def test_clear_prefix_drops_gauge_marks(self):
        reg = StatRegistry()
        reg.scoped("host0").put("g", 1)
        reg.clear_prefix("host0.")
        assert reg.gauge_keys() == set()

    def test_contains_and_clear(self):
        reg = StatRegistry()
        reg.add("x")
        assert "x" in reg
        reg.clear()
        assert "x" not in reg


class TestHistogram:
    def test_mean(self):
        h = Histogram(bucket_width=10)
        for v in (5, 15, 25):
            h.record(v)
        assert h.mean == 15

    def test_max(self):
        h = Histogram(bucket_width=10)
        h.record(3)
        h.record(99)
        assert h.maximum == 99

    def test_percentile_monotone(self):
        h = Histogram(bucket_width=1)
        for v in range(100):
            h.record(v)
        assert h.percentile(0.5) <= h.percentile(0.9) <= h.percentile(1.0)

    def test_percentile_zero_is_minimum(self):
        """Regression: p0 returned the first bucket's *upper* edge."""
        h = Histogram(bucket_width=10)
        for v in (42, 55, 90):
            h.record(v)
        assert h.percentile(0.0) == 42
        assert h.minimum == 42

    def test_percentile_never_exceeds_maximum(self):
        h = Histogram(bucket_width=10)
        h.record(3)
        assert h.percentile(1.0) == 3
        assert h.percentile(0.0) == 3

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            Histogram(bucket_width=1).record(-1)

    def test_percentile_rejects_out_of_range(self):
        with pytest.raises(ValueError):
            Histogram(bucket_width=1).percentile(1.5)

    def test_empty_percentile_is_zero(self):
        assert Histogram(bucket_width=1).percentile(0.5) == 0.0


def test_ratio_zero_denominator():
    assert ratio(5, 0) == 0
    assert ratio(6, 3) == 2
