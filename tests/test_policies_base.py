"""Scheme interface, access book, kernel cost model."""

import pytest

from repro.config import KernelMigrationConfig
from repro.policies import SCHEME_CLASSES, make_scheme
from repro.policies.base import (
    IntervalSchemeBase,
    Mechanism,
    MigrationPlan,
    PageAccessBook,
)
from repro.policies.costs import KernelCostModel


class TestRegistry:
    def test_all_seven_plus_ideal(self):
        assert set(SCHEME_CLASSES) == {
            "native", "nomad", "memtis", "hemem", "os-skew", "hw-static",
            "pipm", "local-only",
        }

    def test_make_scheme(self):
        assert make_scheme("pipm").mechanism is Mechanism.PIPM
        assert make_scheme("native").mechanism is Mechanism.NONE
        assert make_scheme("nomad").mechanism is Mechanism.PAGE_MAP

    def test_unknown_rejected(self):
        with pytest.raises(ValueError):
            make_scheme("tpp")

    def test_mechanism_flags(self):
        assert make_scheme("hw-static").static_map
        assert not make_scheme("pipm").static_map
        assert make_scheme("local-only").all_local


class TestPageAccessBook:
    def test_record_and_fold(self):
        book = PageAccessBook()
        book.record(1, now=10.0)
        book.record(1, now=20.0)
        book.record(2, now=30.0)
        book.fold()
        assert book.freq[1] == 2
        assert book.freq[2] == 1
        assert not book.counts
        assert book.last_access[1] == 20.0

    def test_cool_halves_and_prunes(self):
        book = PageAccessBook()
        book.record(1, 0.0, weight=8)
        book.record(2, 0.0)
        book.fold()
        book.cool(0.5)
        assert book.freq[1] == 4
        book.cool(0.5)
        book.cool(0.5)
        # page 2: 1 -> 0.5 -> 0.25 -> pruned below 0.25
        assert 2 not in book.freq

    def test_observed_counter(self):
        book = PageAccessBook()
        for _ in range(5):
            book.record(1, 0.0)
        assert book.observed_since_cool == 5
        book.cool()
        assert book.observed_since_cool == 0

    def test_hottest_ordering(self):
        book = PageAccessBook()
        book.record(1, 0.0, weight=5)
        book.record(2, 0.0, weight=10)
        book.record(3, 0.0, weight=1)
        book.fold()
        assert book.hottest(2) == [2, 1]

    def test_decay_is_fold_plus_cool(self):
        book = PageAccessBook()
        book.record(1, 0.0, weight=4)
        book.decay(0.5)
        assert book.freq[1] == 2


class TestIntervalSchemeBase:
    def test_bind_creates_books(self):
        scheme = IntervalSchemeBase(interval_ns=100.0)
        scheme.bind(num_hosts=3, frames_per_host=10)
        assert len(scheme.books) == 3
        assert scheme.interval_ns() == 100.0

    def test_observe_records(self):
        scheme = IntervalSchemeBase()
        scheme.bind(2, 10)
        scheme.observe_shared_access(1, page=9, now=5.0, is_write=False)
        assert scheme.books[1].counts[9] == 1

    def test_cold_demotions_only_own_pages(self):
        scheme = IntervalSchemeBase()
        scheme.bind(2, 10)
        locations = {1: 0, 2: 1}
        victims = scheme.cold_demotions(0, locations, min_freq=1.0,
                                        keep=set())
        assert victims == [(1, 0)]

    def test_cold_demotions_respect_keep_and_heat(self):
        scheme = IntervalSchemeBase()
        scheme.bind(1, 10)
        scheme.books[0].freq[1] = 5.0
        locations = {1: 0, 2: 0, 3: 0}
        victims = scheme.cold_demotions(0, locations, 1.0, keep={2})
        assert (1, 0) not in victims  # hot
        assert (2, 0) not in victims  # kept
        assert (3, 0) in victims

    def test_pick_demotions_coldest_first(self):
        scheme = IntervalSchemeBase()
        scheme.bind(1, 10)
        scheme.books[0].last_access = {1: 100.0, 2: 50.0, 3: 75.0}
        locations = {1: 0, 2: 0, 3: 0}
        victims = scheme.pick_demotions(0, locations, needed=2, keep=set())
        assert victims == [(2, 0), (3, 0)]

    def test_plan_default_empty(self):
        plan = IntervalSchemeBase().plan_interval(0.0, {}, {})
        assert plan.empty


class TestKernelCostModel:
    @pytest.fixture()
    def model(self) -> KernelCostModel:
        return KernelCostModel(KernelMigrationConfig(), num_hosts=4)

    def test_empty_batch(self, model):
        charge = model.charge({})
        assert charge.total_mgmt_ns == 0
        assert charge.pages_moved == 0

    def test_initiator_pays_more(self, model):
        charge = model.charge({0: 10})
        assert charge.per_host_mgmt_ns[0] > charge.per_host_mgmt_ns[1]
        assert charge.pages_moved == 10

    def test_every_host_pays_shootdowns(self, model):
        charge = model.charge({0: 1})
        assert len(charge.per_host_mgmt_ns) == 4
        assert charge.shootdown_batches == 1

    def test_shootdown_batching(self, model):
        charge = model.charge({0: 64})
        assert charge.shootdown_batches == 2  # batch of 32

    def test_cost_arithmetic(self, model):
        cfg = KernelMigrationConfig()
        charge = model.charge({0: 2, 1: 3})
        expected_h0 = (
            2 * cfg.initiator_cost_ns
            + 3 * cfg.other_core_cost_ns
            + charge.shootdown_batches * cfg.tlb_shootdown_ns
        )
        assert charge.per_host_mgmt_ns[0] == pytest.approx(expected_h0)

    def test_cap_pages(self, model):
        assert model.cap_pages(10_000) == 512
        assert model.cap_pages(3) == 3


def test_migration_plan_empty_property():
    assert MigrationPlan().empty
    assert not MigrationPlan(promotions=[(1, 0)]).empty
