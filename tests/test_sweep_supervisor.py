"""The crash-isolating job supervisor: raise/hang/kill/flaky workers."""

from __future__ import annotations

import atexit
import os
import signal
import time
from pathlib import Path

import pytest

from repro.sweep import FailedRun, Job, JobOutcome, JobSupervisor
from repro.sweep.supervisor import SupervisorPolicy


def _worker(payload):
    """Scriptable test worker; fork-inherited, so no pickling needed."""
    mode = payload["mode"]
    if mode == "ok":
        return payload["value"]
    if mode == "raise":
        raise ValueError(f"deliberate failure {payload['value']}")
    if mode == "hang":
        time.sleep(600)
        return "never"
    if mode == "kill":
        os.kill(os.getpid(), signal.SIGKILL)
    if mode == "flaky":
        marker = Path(payload["marker"])
        if marker.exists():
            return "recovered"
        marker.write_text("attempted")
        raise RuntimeError("first attempt fails")
    if mode == "linger":
        # Deliver the result, then wedge the interpreter's shutdown: a
        # stuck destructor/atexit hook must not block the supervisor.
        atexit.register(time.sleep, 600)
        return "lingered"
    raise AssertionError(f"unknown mode {mode!r}")


def _job(name, **payload):
    return Job(key=name, label=name, payload=payload)


def _run(jobs, **kwargs):
    policy = SupervisorPolicy(
        timeout_s=kwargs.pop("timeout_s", None),
        retries=kwargs.pop("retries", 0),
        backoff_s=kwargs.pop("backoff_s", 0.01),
    )
    supervisor = JobSupervisor(_worker, policy=policy, **kwargs)
    return {o.key: o for o in supervisor.run(jobs)}


class TestPolicy:
    def test_validation(self):
        with pytest.raises(ValueError, match="timeout_s"):
            SupervisorPolicy(timeout_s=0.0).validate()
        with pytest.raises(ValueError, match="retries"):
            SupervisorPolicy(retries=-1).validate()
        with pytest.raises(ValueError, match="backoff_s"):
            SupervisorPolicy(backoff_s=-0.1).validate()

    def test_backoff_doubles_per_reattempt(self):
        policy = SupervisorPolicy(backoff_s=0.5)
        assert policy.backoff_for(2) == 0.5
        assert policy.backoff_for(3) == 1.0
        assert policy.backoff_for(4) == 2.0

    def test_backoff_capped_at_max(self):
        policy = SupervisorPolicy(backoff_s=0.5, max_backoff_s=1.5)
        assert policy.backoff_for(2) == 0.5
        assert policy.backoff_for(3) == 1.0
        assert policy.backoff_for(4) == 1.5
        assert policy.backoff_for(20) == 1.5
        # None disables the cap (the pre-existing unbounded behaviour).
        uncapped = SupervisorPolicy(backoff_s=0.5, max_backoff_s=None)
        assert uncapped.backoff_for(12) == 0.5 * 2 ** 10

    def test_backoff_cap_and_jitter_validation(self):
        with pytest.raises(ValueError, match="max_backoff_s"):
            SupervisorPolicy(max_backoff_s=0.0).validate()
        with pytest.raises(ValueError, match="jitter"):
            SupervisorPolicy(jitter=1.0).validate()
        with pytest.raises(ValueError, match="jitter"):
            SupervisorPolicy(jitter=-0.1).validate()

    def test_jitter_is_deterministic_and_bounded(self):
        policy = SupervisorPolicy(backoff_s=1.0, jitter=0.5, jitter_seed=7)
        delays = [policy.backoff_for(2, token="job-a") for _ in range(3)]
        # Same (seed, token, attempt) always draws the same multiplier.
        assert len(set(delays)) == 1
        assert 0.5 <= delays[0] <= 1.5
        # Different tokens decorrelate, so a retry storm spreads out.
        others = {policy.backoff_for(2, token=f"job-{i}")
                  for i in range(20)}
        assert len(others) > 1
        for delay in others:
            assert 0.5 <= delay <= 1.5
        # A different seed re-rolls every draw.
        reseeded = SupervisorPolicy(
            backoff_s=1.0, jitter=0.5, jitter_seed=8
        )
        assert reseeded.backoff_for(2, token="job-a") != delays[0]

    def test_zero_jitter_stays_exact(self):
        policy = SupervisorPolicy(backoff_s=0.5, jitter=0.0)
        assert policy.backoff_for(3, token="anything") == 1.0

    def test_slots_validation(self):
        with pytest.raises(ValueError, match="slots"):
            JobSupervisor(_worker, slots=0)


class TestOutcomes:
    def test_ok_jobs_return_results(self):
        outcomes = _run(
            [_job("a", mode="ok", value=1), _job("b", mode="ok", value=2)],
            slots=2,
        )
        assert outcomes["a"].ok and outcomes["a"].result == 1
        assert outcomes["b"].ok and outcomes["b"].result == 2
        assert all(o.attempts == 1 for o in outcomes.values())

    def test_raising_worker_becomes_failed_run(self):
        outcomes = _run([_job("boom", mode="raise", value=7)])
        outcome = outcomes["boom"]
        assert not outcome.ok
        failure = outcome.failure
        assert isinstance(failure, FailedRun)
        assert failure.status == "failed"
        assert failure.attempts == 1
        # The child's traceback crossed the pipe intact.
        assert "ValueError" in failure.error
        assert "deliberate failure 7" in failure.error

    def test_hanging_worker_times_out(self):
        started = time.monotonic()
        outcomes = _run([_job("stuck", mode="hang")], timeout_s=1.0)
        failure = outcomes["stuck"].failure
        assert failure is not None
        assert failure.status == "timeout"
        assert "timed out after 1.0s" in failure.error
        # Enforced promptly: nowhere near the worker's 600s sleep.
        assert time.monotonic() - started < 30.0

    def test_killed_worker_attributed_to_signal(self):
        outcomes = _run([_job("oom", mode="kill")])
        failure = outcomes["oom"].failure
        assert failure is not None
        assert failure.status == "failed"
        assert "SIGKILL" in failure.error

    def test_flaky_job_recovers_on_retry(self, tmp_path):
        marker = tmp_path / "attempted"
        outcomes = _run(
            [_job("flaky", mode="flaky", marker=str(marker))], retries=1
        )
        outcome = outcomes["flaky"]
        assert outcome.ok
        assert outcome.result == "recovered"
        assert outcome.attempts == 2
        assert marker.exists()

    def test_retries_exhausted_reports_final_attempt_count(self):
        outcomes = _run([_job("boom", mode="raise", value=0)], retries=2)
        failure = outcomes["boom"].failure
        assert failure is not None
        assert failure.attempts == 3

    def test_mixed_batch_isolates_failures(self, tmp_path):
        """One raising and one hung worker must not hurt healthy jobs."""
        jobs = [
            _job("good-1", mode="ok", value="x"),
            _job("bad", mode="raise", value=1),
            _job("stuck", mode="hang"),
            _job("good-2", mode="ok", value="y"),
        ]
        outcomes = _run(jobs, slots=2, timeout_s=2.0)
        assert len(outcomes) == len(jobs)
        assert outcomes["good-1"].result == "x"
        assert outcomes["good-2"].result == "y"
        assert outcomes["bad"].failure.status == "failed"
        assert outcomes["stuck"].failure.status == "timeout"

    def test_lingering_worker_does_not_block_settle(self):
        """A child that wedges after reporting its result is escalated
        (SIGTERM, then SIGKILL) instead of being joined forever."""
        started = time.monotonic()
        outcomes = _run([_job("zombie", mode="linger")])
        elapsed = time.monotonic() - started
        outcome = outcomes["zombie"]
        assert outcome.ok
        assert outcome.result == "lingered"
        # Bounded by the grace escalation, nowhere near the 600s wedge.
        assert elapsed < 30.0

    def test_outcome_ok_property(self):
        assert JobOutcome(key="k", label="l", attempts=1, result=3).ok
        failed = JobOutcome(
            key="k", label="l", attempts=1,
            failure=FailedRun("k", "l", "failed", 1, "tb", 0.1),
        )
        assert not failed.ok
