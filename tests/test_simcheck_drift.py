"""Table<->code drift pass (PROTO007) against the real protocol modules.

The declarative ``TRANSITION_TABLE``s and the imperative model classes
in ``base_protocol.py`` / ``pipm_protocol.py`` describe the same
machine twice.  These tests assert the pass proves them equal on the
current tree, then inject the canonical drift defects — a deleted
table row, a lost handler annotation, a handler that starts raising —
and assert PROTO007 reports each one.
"""

import dataclasses
import pathlib
import textwrap

import pytest

from repro.coherence import base_protocol, pipm_protocol
from repro.simcheck.drift import analyze_module_drift, analyze_repo_drift

REPO_ROOT = pathlib.Path(__file__).resolve().parents[1]
BASE_RELPATH = "src/repro/coherence/base_protocol.py"
PIPM_RELPATH = "src/repro/coherence/pipm_protocol.py"


@pytest.fixture(scope="module")
def base_source():
    return (REPO_ROOT / BASE_RELPATH).read_text()


@pytest.fixture(scope="module")
def pipm_source():
    return (REPO_ROOT / PIPM_RELPATH).read_text()


def _without_row(table, role, state, event):
    kept = tuple(
        row for row in table.transitions
        if (row.role, row.state, row.event) != (role, state, event)
    )
    assert len(kept) < len(table.transitions), "row to delete not found"
    return dataclasses.replace(table, transitions=kept)


class TestCleanTree:
    def test_base_table_matches_model(self, base_source):
        findings = analyze_module_drift(
            base_source, base_protocol.TRANSITION_TABLE, BASE_RELPATH
        )
        assert findings == []

    def test_pipm_table_matches_model(self, pipm_source):
        findings = analyze_module_drift(
            pipm_source, pipm_protocol.TRANSITION_TABLE, PIPM_RELPATH
        )
        assert findings == []

    def test_repo_entry_point_checks_both_tables(self):
        findings, checked = analyze_repo_drift(str(REPO_ROOT))
        assert findings == []
        assert len(checked) == 2


class TestSeededDefects:
    def test_deleted_table_row_is_caught(self, base_source):
        # Acceptance defect: drop the dirty-writeback row.  The model
        # still handles device(M, wb), so the table has drifted.
        table = _without_row(
            base_protocol.TRANSITION_TABLE, "device", "M", "wb"
        )
        findings = analyze_module_drift(base_source, table, BASE_RELPATH)
        assert [f.rule for f in findings] == ["PROTO007"]
        assert "device(M, wb)" in findings[0].message
        assert "no row" in findings[0].message

    def test_lost_handler_annotation_is_caught(self, base_source):
        source = base_source.replace(
            "            # simcheck: handles device(M, wb)\n", ""
        )
        assert source != base_source
        findings = analyze_module_drift(
            source, base_protocol.TRANSITION_TABLE, BASE_RELPATH
        )
        assert [f.rule for f in findings] == ["PROTO007"]
        assert "device(M, wb)" in findings[0].message

    def test_handler_that_raises_on_legal_stimulus_is_caught(
        self, base_source
    ):
        # Make _evict raise for non-M lines: host(S, evict) stays legal
        # in the table but every inferred model path now raises.  (The
        # device-role S eviction survives via its handles annotation —
        # explicit claims are exempt from path inference by design.)
        source = base_source.replace(
            "        if cache_state == _M:\n",
            "        if cache_state != _M:\n"
            "            raise ValueError('no S eviction anymore')\n"
            "        if cache_state == _M:\n",
        )
        assert source != base_source
        findings = analyze_module_drift(
            source, base_protocol.TRANSITION_TABLE, BASE_RELPATH
        )
        assert findings, "raising handler must be reported"
        assert all(f.rule == "PROTO007" for f in findings)
        assert any(
            "host(S, evict)" in f.message and "raises" in f.message
            for f in findings
        )

    def test_annotation_naming_unknown_state_is_caught(self, pipm_source):
        source = pipm_source.replace(
            "# simcheck: handles device(M, wb)",
            "# simcheck: handles device(Q, wb)",
        )
        assert source != pipm_source
        findings = analyze_module_drift(
            source, pipm_protocol.TRANSITION_TABLE, PIPM_RELPATH
        )
        assert findings
        assert all(f.rule == "PROTO007" for f in findings)

    def test_unparseable_module_is_one_finding(self):
        findings = analyze_module_drift(
            "def broken(:\n", base_protocol.TRANSITION_TABLE, BASE_RELPATH
        )
        assert [f.rule for f in findings] == ["PROTO007"]
        assert "parse" in findings[0].message
