"""Set-associative cache and replacement policies."""

import pytest

from repro.cache.replacement import LruPolicy, RandomPolicy, SrripPolicy, make_policy
from repro.cache.sa_cache import CacheEntry, SetAssocCache, cache_from_geometry


class TestBasicOperations:
    def test_miss_then_hit(self):
        cache = SetAssocCache(4, 2)
        assert cache.lookup(5) is None
        cache.fill(5)
        assert cache.lookup(5) is not None
        assert cache.hits == 1
        assert cache.misses == 1

    def test_fill_existing_updates_in_place(self):
        cache = SetAssocCache(4, 2)
        cache.fill(5)
        victim = cache.fill(5, dirty=True)
        assert victim is None
        assert cache.peek(5).dirty

    def test_dirty_sticky_on_refill(self):
        cache = SetAssocCache(4, 2)
        cache.fill(5, dirty=True)
        cache.fill(5, dirty=False)
        assert cache.peek(5).dirty

    def test_eviction_within_set(self):
        cache = SetAssocCache(4, 2)
        # lines 0, 4, 8 map to set 0
        cache.fill(0)
        cache.fill(4)
        victim = cache.fill(8)
        assert victim is not None
        assert victim.line == 0  # LRU
        assert cache.occupancy == 2

    def test_lru_respects_recency(self):
        cache = SetAssocCache(4, 2)
        cache.fill(0)
        cache.fill(4)
        cache.lookup(0)  # touch 0, making 4 the LRU
        victim = cache.fill(8)
        assert victim.line == 4

    def test_invalidate(self):
        cache = SetAssocCache(4, 2)
        cache.fill(3, dirty=True)
        entry = cache.invalidate(3)
        assert entry.dirty
        assert cache.peek(3) is None
        assert cache.invalidate(3) is None

    def test_peek_does_not_count_stats(self):
        cache = SetAssocCache(4, 2)
        cache.peek(9)
        assert cache.misses == 0

    def test_state_field(self):
        cache = SetAssocCache(4, 2)
        cache.fill(1, state="S")
        assert cache.peek(1).state == "S"
        cache.fill(1, state="M")
        assert cache.peek(1).state == "M"


class TestBulkOperations:
    def test_flush(self):
        cache = SetAssocCache(4, 2)
        for line in range(6):
            cache.fill(line)
        drained = cache.flush()
        assert len(drained) == 6
        assert cache.occupancy == 0

    def test_invalidate_where(self):
        cache = SetAssocCache(4, 2)
        for line in range(8):
            cache.fill(line, dirty=(line % 2 == 0))
        removed = cache.invalidate_where(lambda e: e.dirty)
        assert len(removed) == 4
        assert all(not e.dirty for e in cache.entries())

    def test_hit_rate(self):
        cache = SetAssocCache(4, 2)
        cache.fill(0)
        cache.lookup(0)
        cache.lookup(1)
        assert cache.hit_rate == pytest.approx(0.5)

    def test_reset_stats(self):
        cache = SetAssocCache(4, 2)
        cache.lookup(0)
        cache.reset_stats()
        assert cache.misses == 0


class TestGeometry:
    def test_from_geometry(self):
        cache = cache_from_geometry(32 * 1024, 8)
        assert cache.capacity == 32 * 1024 // 64

    def test_rejects_non_power_of_two_sets(self):
        with pytest.raises(ValueError):
            SetAssocCache(3, 2)

    def test_rejects_zero_ways(self):
        with pytest.raises(ValueError):
            SetAssocCache(4, 0)

    def test_geometry_rounds_down_to_pow2(self):
        cache = cache_from_geometry(3 * 64 * 8, 8)  # 3 sets -> 2
        assert cache.num_sets == 2

    def test_non_pow2_sets_preserve_capacity(self):
        # 24 KB / 4-way / 64 B lines = 384 lines = 96 sets.  The old
        # code rounded 96 sets down to 64 but kept 4 ways, silently
        # shrinking the cache to 16 KB; the lost sets must fold back in
        # as extra ways instead.
        cache = cache_from_geometry(24 * 1024, 4)
        assert cache.capacity == 384
        assert cache.num_sets == 64
        assert cache.ways == 6

    def test_capacity_loss_bounded_by_one_set(self):
        # 100 lines / 3 ways = 33 sets -> 32 sets; 100 // 32 = 3 ways.
        # Up to one set's worth of lines may be lost to the division,
        # never the ~2x the pure rounddown cost.
        cache = cache_from_geometry(100 * 64, 3)
        assert cache.num_sets == 32
        assert cache.capacity == 96
        assert cache.capacity >= 100 - cache.num_sets


class TestReplacementPolicies:
    def _exercise(self, policy):
        cache = SetAssocCache(1, 4, policy=policy)
        for line in range(4):
            cache.fill(line)
        victim = cache.fill(99)
        assert victim is not None
        assert cache.occupancy == 4

    def test_lru(self):
        self._exercise(LruPolicy())

    def test_random(self):
        self._exercise(RandomPolicy(seed=1))

    def test_srrip(self):
        self._exercise(SrripPolicy())

    def test_srrip_protects_reused_lines(self):
        cache = SetAssocCache(1, 4, policy=SrripPolicy())
        cache.fill(0)
        for _ in range(3):
            cache.lookup(0)  # rrpv -> 0
        for line in (1, 2, 3):
            cache.fill(line)
        victim = cache.fill(99)
        assert victim.line != 0

    def test_make_policy(self):
        assert isinstance(make_policy("lru"), LruPolicy)
        assert isinstance(make_policy("random"), RandomPolicy)
        assert isinstance(make_policy("srrip"), SrripPolicy)
        with pytest.raises(ValueError):
            make_policy("fifo")

    def test_random_is_seeded_deterministic(self):
        def run():
            cache = SetAssocCache(1, 2, policy=RandomPolicy(seed=7))
            cache.fill(0)
            cache.fill(1)
            return cache.fill(2).line
        assert run() == run()
