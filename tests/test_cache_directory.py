"""Sliced coherence directory."""

import pytest

from repro.cache.directory import DirectoryEntry, SlicedDirectory


class TestDirectory:
    def test_allocate_and_lookup(self):
        d = SlicedDirectory(4, 2, 2)
        entry, victim = d.allocate(7, state="S", owner=1)
        assert victim is None
        assert d.lookup(7) is entry
        assert entry.owner == 1

    def test_lookup_miss(self):
        d = SlicedDirectory(4, 2)
        assert d.lookup(9) is None
        assert d.hits == 0
        assert d.lookups == 1

    def test_allocate_existing_updates(self):
        d = SlicedDirectory(4, 2)
        d.allocate(7, state="S")
        entry, victim = d.allocate(7, state="M", owner=2)
        assert victim is None
        assert entry.state == "M"
        assert entry.owner == 2

    def test_capacity_eviction_surfaces_victim(self):
        d = SlicedDirectory(4, 2, 1)
        # Lines mapping to the same set of the same slice: step by sets.
        lines = [0, 4, 8]
        d.allocate(lines[0], "S")
        d.allocate(lines[1], "S")
        _, victim = d.allocate(lines[2], "S")
        assert victim is not None
        assert victim.line == lines[0]
        assert d.capacity_evictions == 1

    def test_sharers_tracked_per_entry(self):
        d = SlicedDirectory(4, 2)
        entry, _ = d.allocate(3, "S")
        entry.sharers.update({0, 2})
        assert d.peek(3).sharers == {0, 2}

    def test_remove(self):
        d = SlicedDirectory(4, 2)
        d.allocate(3, "S")
        assert d.remove(3) is not None
        assert d.remove(3) is None
        assert d.occupancy == 0

    def test_slicing_spreads_lines(self):
        d = SlicedDirectory(4, 1, 4)
        # 16 distinct lines fit without eviction thanks to slicing.
        for line in range(16):
            _, victim = d.allocate(line, "S")
            assert victim is None
        assert d.occupancy == 16

    def test_capacity_property(self):
        assert SlicedDirectory(8, 2, 4).capacity == 64

    def test_entries_iterates_all(self):
        d = SlicedDirectory(4, 2, 2)
        for line in range(5):
            d.allocate(line, "S")
        assert len(list(d.entries())) == 5

    def test_rejects_bad_geometry(self):
        with pytest.raises(ValueError):
            SlicedDirectory(3, 2)
        with pytest.raises(ValueError):
            SlicedDirectory(4, 0)
