"""Behavioural timing properties of the system model."""

import pytest

from repro import SystemConfig, WorkloadScale, generate, make_scheme, simulate
from repro.analysis.breakdown import interval_breakdown
from repro.policies import make_scheme as mk
from repro.sim.system import MultiHostSystem


@pytest.fixture(scope="module")
def cfg():
    return SystemConfig.scaled()


class TestLatencyOrdering:
    """Take-away #1: local < CXL (2-hop) < inter-host (4-hop)."""

    def test_service_latencies_ordered(self, cfg):
        system = MultiHostSystem(cfg, mk("nomad"), workload_mlp=4.0,
                                 footprint_pages=512)
        # local: host 0's own migrated page
        system.page_map[1] = 0
        lat_local, _ = system.access(0, 0, 1 << 12, False, 0.0)
        # CXL: plain shared page
        lat_cxl, _ = system.access(0, 0, 50 << 12, False, 1000.0)
        # inter-host: host 1 touching host 0's migrated page
        lat_inter, _ = system.access(1, 0, 1 << 12, False, 2000.0)
        assert lat_local < lat_cxl < lat_inter

    def test_cxl_roughly_2_to_3x_local(self, cfg):
        system = MultiHostSystem(cfg, mk("nomad"), workload_mlp=4.0,
                                 footprint_pages=512)
        system.page_map[1] = 0
        lat_local, _ = system.access(0, 0, (1 << 12) + 64, False, 0.0)
        lat_cxl, _ = system.access(0, 0, (50 << 12) + 64, False, 1000.0)
        assert 1.5 < lat_cxl / lat_local < 4.5

    def test_link_latency_knob_moves_cxl_latency(self, cfg):
        def cxl_latency(latency_ns):
            c = cfg.replace_nested("cxl_link", latency_ns=latency_ns)
            system = MultiHostSystem(c, mk("native"), workload_mlp=4.0)
            lat, _ = system.access(0, 0, 0x3000, False, 0.0)
            return lat

        assert cxl_latency(100.0) > cxl_latency(50.0) + 90


class TestBandwidthContention:
    def test_migration_burst_delays_demand_traffic(self, cfg):
        """Page transfers occupy the link; demand accesses queue behind."""
        system = MultiHostSystem(cfg, mk("memtis"), workload_mlp=4.0,
                                 footprint_pages=512)
        baseline, _ = system.access(0, 0, 0x9000, False, 0.0)
        # Saturate host 0's link with page-sized migration transfers.
        for page in range(20):
            system._page_transfer(0, 100 + page, to_local=True, now=1000.0)
        # TO_HOST direction (data responses) is now busy.
        loaded, _ = system.access(0, 0, 0xA000, False, 1000.0)
        assert loaded > baseline


class TestDirectoryPressure:
    def test_back_invalidation_under_capacity(self):
        # A deliberately tiny device directory thrashes.
        small = SystemConfig.scaled()
        small = small.replace_nested("directory", sets=64, ways=2, slices=1)
        trace = generate("canneal", scale=WorkloadScale.tiny())
        result = simulate(trace, mk("native"), small)
        assert result.stats["back_invalidations"] > 0

    def test_pipm_relieves_directory_pressure(self, cfg):
        """Migrated lines stop consuming device directory entries (4.3.3)."""
        trace = generate("streamcluster", scale=WorkloadScale.tiny())
        native = simulate(trace, mk("native"), cfg)
        pipm = simulate(trace, mk("pipm"), cfg)
        assert (pipm.stats["back_invalidations"]
                <= native.stats["back_invalidations"])


class TestBreakdownHelper:
    def test_interval_breakdown_shapes(self, cfg):
        trace = generate("ycsb", scale=WorkloadScale.tiny())
        intervals = [cfg.kernel.interval_ns, cfg.kernel.interval_ns / 4]
        out = interval_breakdown(trace, "memtis", intervals, cfg)
        assert set(out) == set(intervals)
        for parts in out.values():
            assert set(parts) == {"other", "management", "transfer", "total"}
            assert parts["total"] == pytest.approx(
                parts["other"] + parts["management"] + parts["transfer"]
            )


class TestMlpEffect:
    def test_lower_mlp_means_longer_stalls(self, cfg):
        trace = generate("xsbench", scale=WorkloadScale.tiny())
        import dataclasses

        low = dataclasses.replace(trace, mlp=1.5)
        high = dataclasses.replace(trace, mlp=8.0)
        slow = simulate(low, mk("native"), cfg)
        fast = simulate(high, mk("native"), cfg)
        assert slow.exec_time_ns > fast.exec_time_ns


class TestRevocationCharging:
    def test_revocation_bulk_transfer_accounted(self, cfg):
        system = MultiHostSystem(cfg, mk("pipm"), workload_mlp=4.0)
        engine = system.engine
        assert engine.request_partial_migration(5, host=0)
        entry = engine.local_tables[0].lookup(5)
        for line in range(10):
            entry.set_line(line)
        before = system.transfer_ns
        system._revocation_transfer(0, 5, list(range(10)), now=0.0)
        assert system.transfer_ns > before
        assert system.demotions == 1
