"""Simulation engine, harness, and result metrics."""

import pytest

from repro import (
    SystemConfig,
    WorkloadScale,
    compare_schemes,
    generate,
    run_experiment,
    simulate,
)
from repro.policies import make_scheme
from repro.sim.engine import SimulationEngine
from repro.sim.harness import DEFAULT_SCHEMES, speedups_over_native
from repro.sim.results import ServicePoint, SimulationResult
from repro.sim.system import MultiHostSystem


@pytest.fixture(scope="module")
def native_result(tiny_pr_trace, scaled_config):
    return simulate(tiny_pr_trace, make_scheme("native"), scaled_config)


@pytest.fixture(scope="module")
def pipm_result(tiny_pr_trace, scaled_config):
    return simulate(tiny_pr_trace, make_scheme("pipm"), scaled_config)


class TestEngine:
    def test_runs_all_accesses(self, native_result, tiny_pr_trace):
        assert native_result.accesses == tiny_pr_trace.total_accesses
        assert native_result.instructions == tiny_pr_trace.total_instructions

    def test_host_clocks_advance(self, native_result):
        assert all(t > 0 for t in native_result.host_time_ns)
        assert native_result.exec_time_ns == max(native_result.host_time_ns)

    def test_service_counts_sum(self, native_result):
        assert sum(native_result.service_counts.values()) == (
            native_result.accesses
        )

    def test_trace_host_mismatch_rejected(self, tiny_pr_trace):
        cfg = SystemConfig.scaled(num_hosts=2)
        system = MultiHostSystem(cfg, make_scheme("native"))
        with pytest.raises(ValueError):
            SimulationEngine(system, tiny_pr_trace)

    def test_deterministic(self, tiny_pr_trace, scaled_config):
        a = simulate(tiny_pr_trace, make_scheme("pipm"), scaled_config)
        b = simulate(tiny_pr_trace, make_scheme("pipm"), scaled_config)
        assert a.exec_time_ns == b.exec_time_ns
        assert a.service_counts == b.service_counts


class TestResultMetrics:
    def test_ipc_positive_and_bounded(self, native_result, scaled_config):
        per_host_ipc = native_result.ipc / scaled_config.num_hosts
        width = scaled_config.core.width * scaled_config.cores_per_host
        assert 0 < per_host_ipc < width

    def test_speedup_identity(self, native_result):
        assert native_result.speedup_over(native_result) == 1.0

    def test_speedup_rejects_cross_workload(self, native_result,
                                            tiny_ycsb_trace, scaled_config):
        other = simulate(tiny_ycsb_trace, make_scheme("native"), scaled_config)
        with pytest.raises(ValueError):
            other.speedup_over(native_result)

    def test_local_hit_rate_native_zero(self, native_result):
        assert native_result.local_hit_rate == 0.0

    def test_local_hit_rate_pipm_positive(self, pipm_result):
        assert pipm_result.local_hit_rate > 0.0

    def test_breakdown_components_sum(self, native_result, tiny_pr_trace,
                                      scaled_config):
        nomad = simulate(tiny_pr_trace, make_scheme("nomad"), scaled_config)
        parts = nomad.breakdown_vs(native_result.exec_time_ns)
        assert parts["total"] == pytest.approx(
            parts["other"] + parts["management"] + parts["transfer"]
        )

    def test_summary_readable(self, pipm_result):
        text = pipm_result.summary()
        assert "pr/pipm" in text
        assert "local_hit" in text

    def test_pipm_stats_present(self, pipm_result):
        assert "pipm_promotions" in pipm_result.stats
        assert "global_remap_cache_hit_rate" in pipm_result.stats

    def test_footprint_fractions_bounded(self, pipm_result):
        assert 0 <= pipm_result.local_page_footprint_fraction <= 1.5
        assert (pipm_result.local_line_footprint_fraction
                <= pipm_result.local_page_footprint_fraction + 1e-9)


class TestHarness:
    def test_run_experiment_by_name(self, scaled_config, tiny_scale):
        result = run_experiment("canneal", "native", scaled_config,
                                scale=tiny_scale)
        assert result.workload == "canneal"
        assert result.scheme == "native"

    def test_compare_schemes_shares_trace(self, scaled_config, tiny_scale):
        results = compare_schemes(
            "streamcluster", schemes=["native", "pipm"],
            config=scaled_config, scale=tiny_scale,
        )
        assert set(results) == {"native", "pipm"}
        assert (results["native"].accesses == results["pipm"].accesses)

    def test_speedups_over_native(self, scaled_config, tiny_scale):
        results = compare_schemes(
            "bodytrack", schemes=["native", "local-only"],
            config=scaled_config, scale=tiny_scale,
        )
        speedups = speedups_over_native(results)
        assert speedups["local-only"] > 1.0

    def test_speedups_need_native(self):
        with pytest.raises(ValueError):
            speedups_over_native({})

    def test_speedups_missing_baseline_names_available_keys(self):
        with pytest.raises(ValueError, match="pipm"):
            speedups_over_native({"pipm": None, "memtis": None})

    def test_speedups_custom_baseline(self, scaled_config, tiny_scale):
        results = compare_schemes(
            "bodytrack", schemes=["pipm", "local-only"],
            config=scaled_config, scale=tiny_scale,
        )
        speedups = speedups_over_native(results, baseline="local-only")
        assert set(speedups) == {"pipm"}

    def test_compare_rejects_duplicate_scheme_names(self, scaled_config,
                                                    tiny_scale):
        from repro.policies import make_scheme

        with pytest.raises(ValueError, match="duplicate scheme names"):
            compare_schemes(
                "bodytrack", schemes=["native", make_scheme("native")],
                config=scaled_config, scale=tiny_scale,
            )

    def test_compare_schemes_through_result_cache(self, scaled_config,
                                                  tiny_scale, tmp_path):
        cached = compare_schemes(
            "streamcluster", schemes=["native", "pipm"],
            config=scaled_config, scale=tiny_scale,
            cache_dir=tmp_path,
        )
        direct = compare_schemes(
            "streamcluster", schemes=["native", "pipm"],
            config=scaled_config, scale=tiny_scale,
        )
        assert cached == direct
        # Second call is served from the cache (same objects' values).
        again = compare_schemes(
            "streamcluster", schemes=["native", "pipm"],
            config=scaled_config, scale=tiny_scale,
            cache_dir=tmp_path,
        )
        assert again == cached

    def test_compare_cache_dir_needs_named_inputs(self, scaled_config,
                                                  tiny_scale,
                                                  tiny_pr_trace, tmp_path):
        with pytest.raises(ValueError, match="cacheable spec"):
            compare_schemes(
                tiny_pr_trace, schemes=["native"],
                config=scaled_config, scale=tiny_scale,
                cache_dir=tmp_path,
            )

    def test_default_scheme_order(self):
        assert DEFAULT_SCHEMES[0] == "native"
        assert DEFAULT_SCHEMES[-2:] == ("pipm", "local-only")

    def test_scheme_instance_accepted(self, tiny_pr_trace, scaled_config):
        scheme = make_scheme("memtis")
        result = run_experiment(tiny_pr_trace, scheme, scaled_config)
        assert result.scheme == "memtis"
