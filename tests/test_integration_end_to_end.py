"""End-to-end integration: every scheme on real traces, paper-shape checks."""

import pytest

from repro import SystemConfig, WorkloadScale, compare_schemes, generate, simulate
from repro.policies import SCHEME_CLASSES, make_scheme
from repro.sim.harness import speedups_over_native
from repro.sim.results import ServicePoint


@pytest.fixture(scope="module")
def cfg():
    return SystemConfig.scaled()


@pytest.fixture(scope="module")
def pr_results(cfg):
    return compare_schemes("pr", schemes=list(SCHEME_CLASSES),
                           config=cfg, scale=WorkloadScale.tiny())


class TestAllSchemesRun:
    def test_every_scheme_completes(self, pr_results):
        assert set(pr_results) == set(SCHEME_CLASSES)
        for result in pr_results.values():
            assert result.exec_time_ns > 0
            assert result.accesses > 0

    def test_native_never_uses_local_memory_for_shared(self, pr_results):
        native = pr_results["native"]
        assert ServicePoint.PIPM_LOCAL not in native.service_counts
        assert ServicePoint.INTER_HOST not in native.service_counts

    def test_local_only_never_touches_cxl(self, pr_results):
        ideal = pr_results["local-only"]
        assert int(ServicePoint.CXL_MEM) not in ideal.service_counts
        assert int(ServicePoint.INTER_HOST) not in ideal.service_counts


class TestPaperShapes:
    """Directional claims from the evaluation, at tiny scale."""

    def test_ideal_is_fastest(self, pr_results):
        ideal = pr_results["local-only"].exec_time_ns
        for name, result in pr_results.items():
            if name != "local-only":
                assert ideal <= result.exec_time_ns

    def test_pipm_beats_native_on_graphs(self, pr_results):
        assert (pr_results["pipm"].exec_time_ns
                < pr_results["native"].exec_time_ns)

    def test_pipm_best_local_hit_among_migrating(self, pr_results):
        pipm_hit = pr_results["pipm"].local_hit_rate
        for name in ("nomad", "memtis", "hemem", "hw-static"):
            assert pipm_hit >= pr_results[name].local_hit_rate

    def test_pipm_low_interhost_stalls(self, pr_results):
        native_exec = pr_results["native"].exec_time_ns
        pipm = pr_results["pipm"].inter_host_stall_fraction(native_exec)
        assert pipm < 0.10

    def test_pipm_no_kernel_mgmt_overhead(self, pr_results):
        assert pr_results["pipm"].mgmt_ns == 0.0
        assert pr_results["nomad"].mgmt_ns >= 0.0

    def test_hw_static_quarter_mapping(self, cfg):
        result = simulate(
            generate("pr", scale=WorkloadScale.tiny()),
            make_scheme("hw-static"), cfg,
        )
        # Each host can map only its static quarter: the page-level local
        # footprint stays near 25% of the touched footprint.
        assert result.local_page_footprint_fraction < 0.40


class TestLinkLatencySensitivity:
    """Fig. 14's direction: slower links widen PIPM's advantage."""

    def test_pipm_gain_grows_with_latency(self, cfg):
        trace = generate("streamcluster", scale=WorkloadScale.tiny())
        gains = {}
        for latency in (50.0, 100.0):
            c = cfg.replace_nested("cxl_link", latency_ns=latency)
            native = simulate(trace, make_scheme("native"), c)
            pipm = simulate(trace, make_scheme("pipm"), c)
            gains[latency] = pipm.speedup_over(native)
        assert gains[100.0] > gains[50.0]


class TestRemapCacheSensitivity:
    """Figs. 16/17 direction: infinite remap caches never hurt."""

    def test_infinite_local_cache_at_least_as_fast(self, cfg):
        trace = generate("xsbench", scale=WorkloadScale.tiny())
        finite = simulate(trace, make_scheme("pipm"), cfg)
        infinite = simulate(trace, make_scheme("pipm"), cfg,
                            infinite_local_remap_cache=True)
        assert infinite.exec_time_ns <= finite.exec_time_ns * 1.02

    def test_infinite_global_cache_at_least_as_fast(self, cfg):
        trace = generate("xsbench", scale=WorkloadScale.tiny())
        finite = simulate(trace, make_scheme("pipm"), cfg)
        infinite = simulate(trace, make_scheme("pipm"), cfg,
                            infinite_global_remap_cache=True)
        assert infinite.exec_time_ns <= finite.exec_time_ns * 1.02


class TestHarmfulMigrationAccounting:
    def test_kernel_schemes_record_harm(self, cfg):
        trace = generate("canneal", scale=WorkloadScale.tiny())
        result = simulate(trace, make_scheme("memtis"), cfg)
        if result.stats.get("total_migrations", 0):
            assert 0.0 <= result.stats["harmful_fraction"] <= 1.0

    def test_pipm_has_no_ledger(self, pr_results):
        assert "harmful_fraction" not in pr_results["pipm"].stats


class TestMultiHostScaling:
    @pytest.mark.parametrize("hosts", [2, 8])
    def test_other_host_counts(self, hosts):
        cfg = SystemConfig.scaled(num_hosts=hosts)
        trace = generate("ycsb", num_hosts=hosts, scale=WorkloadScale.tiny())
        result = simulate(trace, make_scheme("pipm"), cfg)
        assert result.num_hosts == hosts
        assert result.exec_time_ns > 0
