"""Fault injection and resilience: config, link faults, transactions,
watchdog, and the end-to-end zero-cost / reproducibility guarantees."""

from __future__ import annotations

import dataclasses

import pytest

from repro import units
from repro.config import FaultConfig, SystemConfig
from repro.coherence.litmus import run_all
from repro.coherence import BaseCxlDsmModel, PipmModel
from repro.faults import (
    FaultInjector,
    FaultPlan,
    InvariantWatchdog,
    LinkTransferError,
    MessageFaultModel,
)
from repro.faults.injector import LinkFaultModel
from repro.faults.watchdog import WatchdogError
from repro.mem.cxl_link import TO_DEVICE, CxlLink
from repro.policies import make_scheme
from repro.sim.engine import SimulationEngine, simulate
from repro.sim.harness import DEFAULT_SCHEMES
from repro.sim.system import MultiHostSystem
from repro.stats import StatRegistry
from repro.workloads.trace import WorkloadTrace


def _with_faults(config: SystemConfig, spec: str) -> SystemConfig:
    return dataclasses.replace(config, faults=FaultConfig.parse(spec))


# ======================================================================
# FaultConfig parsing and validation
# ======================================================================
class TestFaultConfig:
    def test_none_preset_is_idle(self):
        config = FaultConfig.parse("none")
        assert config.idle
        assert not config.has_degrade_window
        assert not config.has_stalls
        assert not config.has_poison

    def test_presets_exist_and_validate(self):
        for preset in FaultConfig.PRESETS:
            FaultConfig.parse(preset).validate()

    def test_preset_with_overrides(self):
        config = FaultConfig.parse("degraded:seed=3,max-attempts=7")
        assert config.seed == 3
        assert config.max_attempts == 7
        assert config.degrade_latency_x == 4.0  # preset value survives

    def test_bare_overrides_imply_none_preset(self):
        config = FaultConfig.parse("transfer-error-rate=0.25")
        assert config.transfer_error_rate == 0.25
        assert not config.has_degrade_window

    def test_host_list_parsing(self):
        config = FaultConfig.parse(
            "none:degrade-hosts=0+2,degrade-start-ns=0,degrade-end-ns=100,"
            "degrade-latency-x=2"
        )
        assert config.degrade_hosts == (0, 2)

    def test_unknown_preset_rejected(self):
        with pytest.raises(ValueError, match="unknown fault preset"):
            FaultConfig.parse("cosmic-rays")

    def test_bad_override_rejected(self):
        with pytest.raises(ValueError, match="bad fault override"):
            FaultConfig.parse("none:not_a_knob=1")

    def test_validate_rejects_bad_values(self):
        with pytest.raises(ValueError):
            FaultConfig(transfer_error_rate=1.5).validate()
        with pytest.raises(ValueError):
            FaultConfig(max_attempts=0).validate()
        with pytest.raises(ValueError):
            FaultConfig(degrade_latency_x=0.5).validate()
        with pytest.raises(ValueError):
            FaultConfig(watchdog_mode="panic").validate()

    def test_system_config_validates_fault_hosts(self):
        base = SystemConfig.scaled(num_hosts=2)
        bad = dataclasses.replace(
            base,
            faults=FaultConfig(
                degrade_hosts=(5,), degrade_end_ns=10.0, degrade_latency_x=2.0
            ),
        )
        with pytest.raises(ValueError):
            bad.validate()


# ======================================================================
# FaultPlan expansion
# ======================================================================
class TestFaultPlan:
    def test_idle_plan_attaches_no_link_models(self):
        plan = FaultPlan.from_config(FaultConfig(), num_hosts=4, num_lines=64)
        assert plan.is_idle
        injector = FaultInjector(plan)
        assert all(injector.link(h) is None for h in range(4))
        assert not injector.can_disrupt_transfers
        assert not injector.has_stalls
        assert not injector.has_poison

    def test_degrade_window_expansion(self):
        config = FaultConfig.parse(
            "none:degrade-start-ns=10,degrade-end-ns=20,degrade-latency-x=3,"
            "degrade-hosts=1"
        )
        plan = FaultPlan.from_config(config, num_hosts=4, num_lines=64)
        assert plan.windows_for(0) == []
        (window,) = plan.windows_for(1)
        assert window.active(15.0) and not window.active(25.0)
        assert plan.can_disrupt_transfers

    def test_poison_events_seeded_and_sorted(self):
        config = FaultConfig.parse(
            "none:poison-count=8,poison-period-ns=100,seed=5"
        )
        plan_a = FaultPlan.from_config(config, num_hosts=2, num_lines=512)
        plan_b = FaultPlan.from_config(config, num_hosts=2, num_lines=512)
        assert plan_a.poison_events == plan_b.poison_events
        ats = [e.at_ns for e in plan_a.poison_events]
        assert ats == sorted(ats) and len(ats) == 8
        other_seed = dataclasses.replace(config, seed=6)
        plan_c = FaultPlan.from_config(other_seed, num_hosts=2, num_lines=512)
        assert plan_c.poison_events != plan_a.poison_events

    def test_stall_resume_windows(self):
        config = FaultConfig.parse(
            "none:stall-period-ns=100,stall-duration-ns=10"
        )
        plan = FaultPlan.from_config(config, num_hosts=2, num_lines=64)
        assert plan.stall_resume(0, 50.0) is None  # before first boundary
        assert plan.stall_resume(0, 105.0) == pytest.approx(110.0)
        assert plan.stall_resume(0, 115.0) is None  # window over
        assert plan.stall_resume(0, 205.0) == pytest.approx(210.0)


# ======================================================================
# CxlLink: guards, retries, degradation, reset
# ======================================================================
class TestCxlLink:
    def _link(self, config=None, stats=None):
        if config is None:
            config = SystemConfig.scaled().cxl_link
        return CxlLink(config, stats)

    def test_transfer_rejects_non_positive_sizes(self):
        link = self._link()
        for size in (0, -64):
            with pytest.raises(ValueError, match="must be positive"):
                link.transfer(TO_DEVICE, 0.0, size)
            with pytest.raises(ValueError, match="must be positive"):
                link.try_transfer(TO_DEVICE, 0.0, size)

    def test_reset_clears_busy_and_stats(self):
        registry = StatRegistry()
        link = self._link(stats=registry.scoped("link0"))
        link.transfer(TO_DEVICE, 0.0, 4096)
        assert registry.get("link0.messages") == 1
        assert link.occupancy_until(TO_DEVICE) > 0
        link.reset()
        assert link.occupancy_until(TO_DEVICE) == 0.0
        # Counters are preresolved cells, so the keys survive a reset with
        # their values zeroed (rather than vanishing from the registry).
        assert registry.get("link0.messages") == 0.0
        assert registry.get("link0.bytes") == 0.0
        link.transfer(TO_DEVICE, 0.0, 4096)
        assert registry.get("link0.messages") == 1

    def _faulty_link(self, spec: str, host: int = 0):
        config = SystemConfig.scaled()
        plan = FaultPlan.from_config(
            FaultConfig.parse(spec), config.num_hosts, 4096
        )
        injector = FaultInjector(plan)
        link = CxlLink(config.cxl_link)
        link.attach_faults(injector.link(host))
        return link, injector, config.cxl_link

    def test_retries_inflate_latency_and_count(self):
        clean = self._link()
        base = clean.transfer(TO_DEVICE, 0.0, units.CACHE_LINE)
        link, injector, _ = self._faulty_link(
            "none:transfer-error-rate=0.5,seed=11"
        )
        total_faulty = 0.0
        for i in range(200):
            total_faulty += link.transfer(
                TO_DEVICE, link.occupancy_until(TO_DEVICE), units.CACHE_LINE
            )
        counters = injector.counters
        assert counters.injected_errors > 0
        assert counters.link_retries > 0
        assert total_faulty > 200 * base

    def test_demand_giveup_absorbs_penalty_without_raising(self):
        link, injector, _ = self._faulty_link(
            "none:transfer-error-rate=0.9,max-attempts=2,seed=1"
        )
        for _ in range(50):
            link.transfer(TO_DEVICE, 0.0, units.CACHE_LINE)  # must not raise
        assert injector.counters.link_giveups > 0
        assert injector.counters.recovery_ns > 0

    def test_faultable_giveup_raises(self):
        link, injector, _ = self._faulty_link(
            "none:transfer-error-rate=0.9,max-attempts=2,seed=1"
        )
        with pytest.raises(LinkTransferError):
            for _ in range(50):
                link.try_transfer(TO_DEVICE, 0.0, units.CACHE_LINE)
        assert injector.counters.link_giveups > 0

    def test_degrade_window_multiplies_latency_and_serialization(self):
        link, _, link_cfg = self._faulty_link(
            "none:degrade-start-ns=0,degrade-end-ns=1e9,"
            "degrade-latency-x=4,degrade-bandwidth-x=2"
        )
        clean = self._link()
        base = clean.transfer(TO_DEVICE, 0.0, units.PAGE_SIZE)
        degraded = link.transfer(TO_DEVICE, 0.0, units.PAGE_SIZE)
        serialization = units.transfer_ns(
            units.PAGE_SIZE, link_cfg.bandwidth_gbs
        )
        expected = (
            4 * link_cfg.latency_ns + 2 * serialization
        )
        assert degraded == pytest.approx(expected)
        assert degraded > base
        # Outside the window the link behaves nominally again.
        after = link.transfer(TO_DEVICE, 2e9, units.PAGE_SIZE)
        assert after == pytest.approx(base)


# ======================================================================
# Engine trace validation (satellite)
# ======================================================================
class TestEngineValidation:
    def _system(self, config):
        return MultiHostSystem(config, make_scheme("native"))

    def test_negative_gap_rejected(self, scaled_config):
        trace = WorkloadTrace(
            name="bad-gap",
            num_hosts=scaled_config.num_hosts,
            streams=[[(10.0, 0, 0, 0), (-1.0, 64, 0, 0)]]
            + [[] for _ in range(scaled_config.num_hosts - 1)],
            footprint_bytes=4096,
        )
        with pytest.raises(ValueError, match="negative inter-access gap"):
            SimulationEngine(self._system(scaled_config), trace)

    def test_empty_trace_rejected(self, scaled_config):
        trace = WorkloadTrace(
            name="empty",
            num_hosts=scaled_config.num_hosts,
            streams=[[] for _ in range(scaled_config.num_hosts)],
            footprint_bytes=4096,
        )
        with pytest.raises(ValueError, match="no accesses"):
            SimulationEngine(self._system(scaled_config), trace)

    def test_partially_empty_trace_allowed(self, scaled_config):
        trace = WorkloadTrace(
            name="one-host",
            num_hosts=scaled_config.num_hosts,
            streams=[[(10.0, 64, 0, 0)]]
            + [[] for _ in range(scaled_config.num_hosts - 1)],
            footprint_bytes=4096,
        )
        result = SimulationEngine(self._system(scaled_config), trace).run()
        assert result.accesses == 1


# ======================================================================
# Zero-cost-when-idle: byte-identical results (acceptance criterion)
# ======================================================================
class TestZeroCostWhenIdle:
    @pytest.mark.parametrize("scheme", DEFAULT_SCHEMES)
    def test_idle_plan_is_byte_identical(self, scheme, scaled_config,
                                         tiny_pr_trace):
        plain = simulate(tiny_pr_trace, make_scheme(scheme), scaled_config)
        idle = simulate(
            tiny_pr_trace,
            make_scheme(scheme),
            _with_faults(scaled_config, "none"),
        )
        assert plain == idle  # full dataclass equality, stats included

    def test_idle_plan_identical_on_second_workload(self, scaled_config,
                                                    tiny_ycsb_trace):
        for scheme in ("pipm", "nomad"):
            plain = simulate(tiny_ycsb_trace, make_scheme(scheme),
                             scaled_config)
            idle = simulate(
                tiny_ycsb_trace,
                make_scheme(scheme),
                _with_faults(scaled_config, "none"),
            )
            assert plain == idle


# ======================================================================
# Seeded fault runs: reproducibility + the degraded-link scenario
# ======================================================================
class TestFaultedRuns:
    def test_seeded_runs_reproduce_bit_for_bit(self, scaled_config,
                                               tiny_pr_trace):
        config = _with_faults(
            scaled_config, "flaky:transfer-error-rate=0.05,seed=9"
        )
        first = simulate(tiny_pr_trace, make_scheme("pipm"), config)
        second = simulate(tiny_pr_trace, make_scheme("pipm"), config)
        assert first == second
        assert first.fault_stats  # something actually fired

    def test_different_seed_changes_fault_draws(self, scaled_config,
                                                tiny_pr_trace):
        base = "flaky:transfer-error-rate=0.05,seed={}"
        a = simulate(tiny_pr_trace, make_scheme("pipm"),
                     _with_faults(scaled_config, base.format(9)))
        b = simulate(tiny_pr_trace, make_scheme("pipm"),
                     _with_faults(scaled_config, base.format(10)))
        assert a.fault_stats != b.fault_stats

    def test_degraded_link_scenario(self, scaled_config, tiny_pr_trace):
        """The ISSUE acceptance scenario: completes, retries, clean audit."""
        config = _with_faults(
            scaled_config,
            "degraded:seed=7,watchdog-period-ns=100000,"
            "watchdog-mode=fail-fast",
        )
        system = MultiHostSystem(
            config, make_scheme("pipm"),
            footprint_pages=max(1, tiny_pr_trace.footprint_bytes // 4096),
        )
        result = SimulationEngine(system, tiny_pr_trace).run()  # no deadlock
        assert result.stats["fault_link_retries"] > 0
        assert system.watchdog.ok  # fail-fast would have raised
        assert system.watchdog.audits >= 1
        # Degradation slows the run down but never wedges it.
        clean = simulate(tiny_pr_trace, make_scheme("pipm"), scaled_config)
        assert result.exec_time_ns > clean.exec_time_ns

    def test_aborts_roll_back_and_stay_consistent(self, scaled_config,
                                                  tiny_pr_trace):
        config = _with_faults(
            scaled_config,
            "flaky:transfer-error-rate=0.4,max-attempts=3,seed=3,"
            "watchdog-mode=fail-fast,watchdog-period-ns=50000",
        )
        result = simulate(tiny_pr_trace, make_scheme("pipm"), config)
        stats = result.fault_stats
        assert stats.get("fault_migration_aborts", 0) > 0
        assert stats.get("fault_rollbacks", 0) == stats.get(
            "fault_migration_aborts"
        )
        assert "watchdog_violations" not in result.stats

    def test_kernel_scheme_aborts_under_faults(self, scaled_config,
                                               tiny_pr_trace):
        config = _with_faults(
            scaled_config,
            "flaky:transfer-error-rate=0.4,max-attempts=3,seed=3,"
            "watchdog-mode=fail-fast,watchdog-period-ns=50000",
        )
        result = simulate(tiny_pr_trace, make_scheme("nomad"), config)
        assert result.fault_stats.get("fault_migration_aborts", 0) > 0
        assert "watchdog_violations" not in result.stats

    def test_host_stalls_charge_stall_time(self, scaled_config,
                                           tiny_pr_trace):
        config = _with_faults(
            scaled_config,
            "none:stall-period-ns=50000,stall-duration-ns=5000",
        )
        result = simulate(tiny_pr_trace, make_scheme("native"), config)
        clean = simulate(tiny_pr_trace, make_scheme("native"), scaled_config)
        assert result.stats["fault_host_stall_ns"] > 0
        assert result.exec_time_ns > clean.exec_time_ns

    def test_poisoned_lines_recover(self, scaled_config, tiny_pr_trace):
        config = _with_faults(
            scaled_config,
            "none:poison-count=64,poison-period-ns=2000,seed=2",
        )
        result = simulate(tiny_pr_trace, make_scheme("pipm"), config)
        assert result.stats["fault_poison_recoveries"] > 0
        assert result.stats["fault_recovery_ns"] > 0


# ======================================================================
# Engine-level transactional rollback (bit-for-bit)
# ======================================================================
class TestMigrationTxn:
    def _engine(self):
        config = SystemConfig.scaled()
        system = MultiHostSystem(config, make_scheme("pipm"))
        return system.engine

    def _snapshot(self, engine, owner, page):
        global_entry = engine.global_table.peek(page)
        local = engine.local_tables[owner].lookup(page)
        return (
            None if global_entry is None else (
                global_entry.current_host,
                global_entry.candidate_host,
                global_entry.counter,
            ),
            None if local is None else (
                local.local_pfn, local.counter, local.migrated_lines
            ),
            engine.frames[owner].in_use,
            engine.local_caches[owner].contains(page),
            dataclasses.replace(engine.counters),
        )

    def test_rollback_restores_revocation_bit_for_bit(self):
        engine = self._engine()
        owner, page = 1, 5
        assert engine.request_partial_migration(page, owner)
        entry = engine.local_tables[owner].lookup(page)
        for line in (0, 7, 63):
            entry.set_line(line)

        # Drive inter-host accesses until one revokes, transactionally.
        revoked = None
        for _ in range(engine.config.migration_threshold + 1):
            before = self._snapshot(engine, owner, page)
            txn = engine.begin_txn(owner, page)
            _, revoked = engine.inter_host_access(owner, page, 7)
            if revoked is not None:
                break
        assert revoked is not None  # the revocation fired
        assert engine.local_tables[owner].lookup(page) is None

        engine.rollback(txn)
        after = self._snapshot(engine, owner, page)
        assert after[:4] == before[:4]
        assert after[4] == before[4]  # counters dataclass equality
        restored = engine.local_tables[owner].lookup(page)
        assert restored.migrated_lines == before[1][2]
        assert restored.local_pfn == before[1][0]

    def test_rollback_of_migrate_back_only(self):
        engine = self._engine()
        owner, page = 0, 3
        assert engine.request_partial_migration(page, owner)
        entry = engine.local_tables[owner].lookup(page)
        entry.set_line(12)
        before = self._snapshot(engine, owner, page)
        txn = engine.begin_txn(owner, page)
        migrated, revoked = engine.inter_host_access(owner, page, 12)
        assert migrated and revoked is None
        assert not entry.line_migrated(12)  # the line moved back
        engine.rollback(txn)
        assert self._snapshot(engine, owner, page) == before


# ======================================================================
# Invariant watchdog
# ======================================================================
class TestWatchdog:
    def _pipm_system(self, spec="none"):
        config = _with_faults(SystemConfig.scaled(), spec)
        return MultiHostSystem(config, make_scheme("pipm"))

    def test_clean_system_audits_clean(self):
        system = self._pipm_system()
        assert system.watchdog.audit(0.0) == []
        assert system.watchdog.ok
        assert "PASS" in system.watchdog.summary()

    def test_detects_bogus_global_host(self):
        system = self._pipm_system()
        engine = system.engine
        assert engine.request_partial_migration(3, 0)
        engine.global_table.entry(3).current_host = 77  # corrupt
        violations = system.watchdog.audit(0.0)
        assert any(v.kind == "remap" for v in violations)
        assert not system.watchdog.ok

    def test_detects_leaked_frame(self):
        system = self._pipm_system()
        engine = system.engine
        assert engine.request_partial_migration(4, 1)
        engine.local_tables[1].remove(4)  # drop the entry, leak the frame
        violations = system.watchdog.audit(0.0)
        assert any(v.kind == "frames" for v in violations)

    def test_fail_fast_raises(self):
        system = self._pipm_system()
        engine = system.engine
        assert engine.request_partial_migration(3, 0)
        engine.global_table.entry(3).current_host = 77
        watchdog = InvariantWatchdog(system, mode="fail-fast")
        with pytest.raises(WatchdogError, match="violation"):
            watchdog.audit(0.0)

    def test_rejects_unknown_mode(self):
        system = self._pipm_system()
        with pytest.raises(ValueError, match="watchdog mode"):
            InvariantWatchdog(system, mode="shrug")

    def test_periodic_audits_run_during_simulation(self, scaled_config,
                                                   tiny_pr_trace):
        config = _with_faults(scaled_config, "none:watchdog-period-ns=10000")
        system = MultiHostSystem(config, make_scheme("pipm"))
        SimulationEngine(system, tiny_pr_trace).run()
        assert system.watchdog.audits > 1  # periodic + final
        assert system.watchdog.ok


# ======================================================================
# Protocol-level message faults: litmus under a lossy fabric (satellite)
# ======================================================================
class TestMessageFaults:
    def test_litmus_passes_with_message_delays(self):
        wrapped = []

        def factory():
            model = MessageFaultModel(
                BaseCxlDsmModel(2), seed=4, error_rate=0.3
            )
            wrapped.append(model)
            return model

        counts = run_all(factory)  # raises AssertionError on SC violations
        assert all(count > 0 for count in counts.values())
        assert sum(m.retries for m in wrapped) > 0

    def test_litmus_passes_for_pipm_model(self):
        counts = run_all(
            lambda: MessageFaultModel(
                PipmModel(2, remap_host=0), seed=4, error_rate=0.3
            )
        )
        assert all(count > 0 for count in counts.values())

    def test_rejects_certain_loss(self):
        with pytest.raises(ValueError):
            MessageFaultModel(BaseCxlDsmModel(2), error_rate=1.0)


# ======================================================================
# Deliberately botched rollback (soak sabotage) vs the watchdog
# ======================================================================
class TestRollbackSabotage:
    """`rollback-sabotage-count` drops the local-side snapshot before a
    migration-abort rollback, leaving the page globally mapped to a host
    whose local table no longer has it — exactly the cross-table
    inconsistency the invariant watchdog exists to catch."""

    SPEC = ("flaky:transfer-error-rate=0.4,max-attempts=3,seed=3,"
            "watchdog-period-ns=20000,watchdog-mode={mode},"
            "rollback-sabotage-count=1")

    def test_fail_fast_catches_botched_rollback(self, scaled_config,
                                                tiny_pr_trace):
        config = _with_faults(scaled_config, self.SPEC.format(mode="fail-fast"))
        system = MultiHostSystem(config, make_scheme("pipm"))
        with pytest.raises(WatchdogError) as excinfo:
            SimulationEngine(system, tiny_pr_trace).run()
        assert "remap" in excinfo.value.kinds

    def test_failure_is_deterministic(self, scaled_config, tiny_pr_trace):
        spec = self.SPEC.format(mode="fail-fast")
        kinds = []
        for _ in range(2):
            config = _with_faults(scaled_config, spec)
            system = MultiHostSystem(config, make_scheme("pipm"))
            with pytest.raises(WatchdogError) as excinfo:
                SimulationEngine(system, tiny_pr_trace).run()
            kinds.append(tuple(excinfo.value.kinds))
        assert kinds[0] == kinds[1]

    def test_log_mode_records_violation_and_stat(self, scaled_config,
                                                 tiny_pr_trace):
        config = _with_faults(scaled_config, self.SPEC.format(mode="log"))
        system = MultiHostSystem(config, make_scheme("pipm"))
        SimulationEngine(system, tiny_pr_trace).run()  # must not raise
        assert not system.watchdog.ok
        assert any(v.kind == "remap" for v in system.watchdog.violations)
        stats = system.fault_stats()
        assert stats["fault_sabotaged_rollbacks"] == 1.0
        assert stats["watchdog_violations"] >= 1.0

    def test_unused_budget_corrupts_nothing(self, scaled_config,
                                            tiny_pr_trace):
        """Sabotage piggybacks on aborts: without transfer errors there is
        no rollback to botch, so the system stays consistent."""
        config = _with_faults(
            scaled_config,
            "none:watchdog-period-ns=20000,watchdog-mode=fail-fast,"
            "rollback-sabotage-count=5",
        )
        system = MultiHostSystem(config, make_scheme("pipm"))
        SimulationEngine(system, tiny_pr_trace).run()
        assert system.watchdog.ok
        assert "fault_sabotaged_rollbacks" not in system.fault_stats()

    def test_negative_count_rejected(self):
        with pytest.raises(ValueError, match="rollback_sabotage_count"):
            dataclasses.replace(
                FaultConfig(), rollback_sabotage_count=-1
            ).validate()
