"""Chaos acceptance for `repro serve`: SIGKILL twice, drain, no re-runs.

The scripted sequence from the service's acceptance criteria, end to
end against the real CLI in a subprocess:

1. submit N healthy specs plus one poison spec,
2. start the daemon and SIGKILL it twice mid-run,
3. restart and SIGTERM-drain,
4. assert every healthy spec completed with **zero duplicate
   simulation executions** (per-key ``runs <= 1`` in the journal, which
   survives compaction), the poison spec tripped its breaker without
   stalling the queue, the compacted journal stayed bounded, and the
   drain exited 0.
"""

from __future__ import annotations

import os
import signal
import subprocess
import sys
import time
from pathlib import Path

from repro import SystemConfig
from repro.serve import ServiceJournal, submit_spec
from repro.serve.status import read_status
from repro.sweep import ExperimentSpec, ResultStore
from repro.workloads.trace import WorkloadScale

SRC = Path(__file__).resolve().parents[1] / "src"
TINY = WorkloadScale.tiny()

#: Journal line bound the compacted log must stay under: the compaction
#: threshold we run the daemon with, plus one batch of slack for the
#: transitions appended since the last fold.
COMPACT_EVERY = 20
JOURNAL_BOUND = COMPACT_EVERY + 16


def _spec(workload, scheme, **scheme_kwargs):
    return ExperimentSpec.build(
        workload, scheme,
        config=SystemConfig.scaled(num_hosts=4),
        scale=TINY,
        scheme_kwargs=scheme_kwargs,
    )


def _serve(root, *extra):
    env = dict(os.environ)
    env["PYTHONPATH"] = str(SRC)
    return subprocess.Popen(
        [
            sys.executable, "-m", "repro", "serve", "run",
            "--dir", str(root),
            "--slots", "2",
            "--tick-s", "0.05",
            "--retries", "0",
            "--backoff-s", "0.01",
            "--breaker-threshold", "2",
            "--breaker-cooldown-s", "300",   # park poison for the test
            "--compact-every", str(COMPACT_EVERY),
            *extra,
        ],
        env=env,
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
    )


def _wait(predicate, timeout_s, what):
    deadline = time.monotonic() + timeout_s
    while time.monotonic() < deadline:
        if predicate():
            return
        time.sleep(0.1)
    raise AssertionError(f"timed out waiting for {what}")


def _done_keys(journal):
    return {
        key for key, entry in journal.fold().entries.items()
        if entry.state == "done"
    }


def _wait_until_serving(root, daemon):
    """Block until *this* daemon's loop is up (drain handler armed).

    A SIGTERM that lands while the interpreter is still importing hits
    the default disposition and kills the process — that window is
    interpreter startup, not service code, so the test steps over it.
    """

    def loop_started():
        status = read_status(root)
        return (
            status is not None
            and status.pid == daemon.pid
            and status.state == "running"
        )

    _wait(loop_started, 60, "service loop to start")


def test_chaos_kill_twice_then_drain(tmp_path):
    root = tmp_path / "svc"
    healthy = [
        _spec("pr", "native"),
        _spec("pr", "pipm"),
        _spec("ycsb", "pipm"),
    ]
    poison = _spec("pr", "pipm", chaos_poison_marker=1)
    for spec in healthy + [poison]:
        submit_spec(root, spec)
    journal = ServiceJournal(root)
    healthy_keys = {spec.key() for spec in healthy}

    # Round 1: run until first blood, then SIGKILL.
    daemon = _serve(root)
    try:
        _wait(lambda: len(_done_keys(journal)) >= 1, 120,
              "first completion")
    finally:
        daemon.kill()
        daemon.wait(30)

    # Round 2: resume, make some progress, SIGKILL again.  The service
    # may already have everything — the kill must be safe regardless.
    daemon = _serve(root)
    try:
        _wait(lambda: journal.fold().epoch >= 2, 60, "second epoch")
        time.sleep(1.0)
    finally:
        daemon.kill()
        daemon.wait(30)

    # Round 3: resume, finish every healthy spec, then drain.
    daemon = _serve(root)
    try:
        _wait_until_serving(root, daemon)
        _wait(lambda: healthy_keys <= _done_keys(journal), 180,
              "all healthy specs done")
        _wait(
            lambda: journal.fold().entries[poison.key()].state
            == "quarantined",
            120, "poison spec quarantined",
        )
        daemon.send_signal(signal.SIGTERM)
        code = daemon.wait(60)
    finally:
        if daemon.poll() is None:
            daemon.kill()
            daemon.wait(30)
    assert code == 0, daemon.stdout.read().decode()

    view = journal.fold()
    # Zero duplicate executions: the per-key run counters are
    # cumulative across every epoch and survive compaction.
    for key in healthy_keys:
        entry = view.entries[key]
        assert entry.state == "done"
        assert entry.runs <= 1, f"{key} executed {entry.runs} times"
        assert entry.runs + entry.cache_hits >= 1
    assert view.totals["executions"] == sum(
        view.entries[key].runs for key in view.entries
    )
    store = ResultStore(root / "cache")
    assert healthy_keys <= set(store.keys())
    assert poison.key() not in store

    # The poison spec is parked open, not hot-looping, not blocking.
    bad = view.entries[poison.key()]
    assert bad.state == "quarantined"
    assert bad.opens >= 1
    assert bad.failures >= 2

    # Compaction kept the journal bounded despite three epochs.
    assert journal.line_count() < JOURNAL_BOUND

    status = read_status(root)
    assert status.state == "drained"
    assert status.queue_depth == 0 and status.in_flight == 0


def test_status_cli_reports_dead_daemon(tmp_path):
    root = tmp_path / "svc"
    submit_spec(root, _spec("pr", "native"))
    journal = ServiceJournal(root)
    daemon = _serve(root)
    try:
        _wait(lambda: journal.fold().epoch >= 1, 60, "first epoch")
    finally:
        daemon.kill()
        daemon.wait(30)
    env = dict(os.environ)
    env["PYTHONPATH"] = str(SRC)
    probe = subprocess.run(
        [sys.executable, "-m", "repro", "serve", "status",
         "--dir", str(root)],
        env=env, capture_output=True, text=True,
    )
    # A killed daemon must be reported as a corpse, exit code 1.
    assert probe.returncode == 1
    assert "DEAD" in probe.stdout
