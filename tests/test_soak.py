"""Chaos soak harness: clauses, ddmin, signatures, end-to-end minimize."""

from __future__ import annotations

import json
import random
from pathlib import Path

import pytest

from repro.soak import (
    FailureSignature,
    FaultClause,
    SoakHarness,
    SoakTrial,
    build_fault_config,
    ddmin,
    draw_clauses,
    replay_artifact,
    run_trial,
)

#: The clause schedule verified to corrupt a rollback deterministically:
#: enough transfer errors to force migration aborts, one sabotaged
#: rollback that drops the local-side snapshot.
SABOTAGE_CLAUSES = (
    FaultClause("errors", {"transfer_error_rate": 0.4, "max_attempts": 3}),
    FaultClause("sabotage", {"count": 1}),
)


def _sabotage_trial():
    return SoakTrial(
        seed=3, workload="pr", scheme="pipm", scale_name="tiny",
        num_hosts=4, clauses=SABOTAGE_CLAUSES,
        watchdog_period_ns=20_000.0,
    )


class TestDdmin:
    def test_finds_minimal_pair(self):
        minimal, _evals = ddmin(
            list(range(10)), lambda xs: 3 in xs and 7 in xs
        )
        assert sorted(minimal) == [3, 7]

    def test_single_culprit(self):
        minimal, _evals = ddmin(list(range(8)), lambda xs: 5 in xs)
        assert minimal == [5]

    def test_empty_schedule_fast_path(self):
        minimal, evals = ddmin([1, 2, 3], lambda xs: True)
        assert minimal == []
        assert evals == 1

    def test_empty_input(self):
        minimal, evals = ddmin([], lambda xs: True)
        assert minimal == []
        assert evals == 0

    def test_budget_bounds_evaluations(self):
        calls = 0

        def still_fails(items):
            nonlocal calls
            calls += 1
            return 3 in items and 17 in items

        minimal, evals = ddmin(list(range(24)), still_fails, budget=4)
        assert evals <= 4
        assert calls == evals
        # Whatever it returns is a known-failing list (or the original).
        assert 3 in minimal and 17 in minimal

    def test_result_preserves_order(self):
        minimal, _evals = ddmin(
            ["a", "b", "c", "d"], lambda xs: "d" in xs and "b" in xs
        )
        assert minimal == ["b", "d"]


class TestFaultClauses:
    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="clause kind"):
            FaultClause("frobnicate", {})

    def test_round_trip(self):
        clause = FaultClause("errors", {"transfer_error_rate": 0.1})
        assert FaultClause.from_dict(clause.to_dict()) == clause

    def test_fold_is_conservative_and_order_independent(self):
        clauses = [
            FaultClause("errors", {"transfer_error_rate": 0.1}),
            FaultClause("errors", {"transfer_error_rate": 0.3,
                                   "max_attempts": 4}),
            FaultClause("sabotage", {"count": 2}),
            FaultClause("sabotage", {"count": 1}),
        ]
        config = build_fault_config(clauses, seed=9)
        assert config.transfer_error_rate == 0.3  # max, not sum
        assert config.max_attempts == 4
        assert config.rollback_sabotage_count == 3  # counts sum
        assert config.seed == 9
        reversed_cfg = build_fault_config(list(reversed(clauses)), seed=9)
        assert reversed_cfg == config

    def test_watchdog_always_armed(self):
        config = build_fault_config([], seed=0)
        assert config.watchdog_mode == "fail-fast"
        assert config.watchdog_period_ns == 20_000.0

    def test_draw_clauses_is_seed_deterministic(self):
        a = draw_clauses(random.Random(42), sabotage_rate=0.5)
        b = draw_clauses(random.Random(42), sabotage_rate=0.5)
        assert a == b
        assert all(c.kind in ("errors", "degrade", "stall", "poison",
                              "sabotage") for c in a)

    def test_sabotage_only_drawn_when_enabled(self):
        rng = random.Random(1)
        drawn = [
            clause.kind
            for _ in range(50)
            for clause in draw_clauses(rng, sabotage_rate=0.0)
        ]
        assert "sabotage" not in drawn


class TestFailureSignature:
    def test_matches_ignores_message_text(self):
        a = FailureSignature("WatchdogError", ("remap",), "page 0xa5")
        b = FailureSignature("WatchdogError", ("remap",), "page 0xae")
        assert a.matches(b)

    def test_kind_and_type_mismatches(self):
        base = FailureSignature("WatchdogError", ("remap",), "")
        assert not base.matches(None)
        assert not base.matches(
            FailureSignature("WatchdogError", ("frames",), "")
        )
        assert not base.matches(FailureSignature("ValueError", ("remap",), ""))

    def test_round_trip(self):
        sig = FailureSignature("WatchdogError", ("remap", "frames"), "msg")
        assert FailureSignature.from_dict(sig.to_dict()) == sig


class TestRunTrial:
    def test_clean_trial_survives(self):
        trial = SoakTrial(
            seed=1, workload="pr", scheme="pipm", scale_name="tiny",
            num_hosts=4, clauses=(), watchdog_period_ns=20_000.0,
        )
        assert run_trial(trial.spec()) is None

    def test_sabotaged_trial_fails_deterministically(self):
        trial = _sabotage_trial()
        first = run_trial(trial.spec())
        second = run_trial(trial.spec())
        assert first is not None
        assert first.exc_type == "WatchdogError"
        assert "remap" in first.kinds
        assert first.matches(second)

    def test_sub_schedule_without_sabotage_survives(self):
        """Dropping the sabotage clause removes the failure — the
        monotonicity the minimizer leans on."""
        trial = _sabotage_trial()
        assert run_trial(trial.spec(clauses=SABOTAGE_CLAUSES[:1])) is None


class TestSoakHarness:
    def test_validation(self, tmp_path):
        with pytest.raises(ValueError, match="trials"):
            SoakHarness(trials=0, artifact_dir=tmp_path)
        with pytest.raises(ValueError, match="scale"):
            SoakHarness(scale="galactic", artifact_dir=tmp_path)
        with pytest.raises(ValueError, match="sabotage_rate"):
            SoakHarness(sabotage_rate=1.5, artifact_dir=tmp_path)

    def test_clean_soak_survives(self, tmp_path):
        report = SoakHarness(
            seed=11, trials=3, budget_s=300.0, artifact_dir=tmp_path
        ).run()
        assert report.clean
        assert report.trials_run == 3
        assert report.artifact_path is None
        assert list(Path(tmp_path).glob("*.json")) == []

    def test_budget_stops_further_trials(self, tmp_path):
        report = SoakHarness(
            seed=11, trials=50, budget_s=1e-6, artifact_dir=tmp_path
        ).run()
        assert report.trials_run == 1  # budget checked between trials

    def test_sabotage_is_found_minimized_and_replayable(self, tmp_path):
        """End-to-end self-test: an injected corruption bug is caught by
        the fail-fast watchdog, the failing schedule shrinks to the
        clauses that matter, and the emitted artifact replays on its own.
        """
        harness = SoakHarness(
            seed=7, trials=10, budget_s=300.0, schemes=["pipm"],
            sabotage_rate=1.0, artifact_dir=tmp_path,
        )
        report = harness.run()
        assert report.failure_found
        assert report.deterministic
        assert report.signature is not None
        assert report.signature.exc_type == "WatchdogError"
        assert "remap" in report.signature.kinds
        assert 0 < len(report.minimal_clauses) <= report.original_clause_count
        # The deliberate corruption survives minimization; it is the bug.
        assert any(c.kind == "sabotage" for c in report.minimal_clauses)
        assert report.replay_verified

        path = Path(report.artifact_path)
        assert path.exists()
        payload = json.loads(path.read_text())
        assert payload["kind"] == "soak-reproducer"
        assert payload["failure"]["exc_type"] == "WatchdogError"
        assert len(payload["clauses"]) == len(report.minimal_clauses)

        reproduced, actual = replay_artifact(path)
        assert reproduced
        assert report.signature.matches(actual)

    def test_replay_rejects_foreign_json(self, tmp_path):
        path = tmp_path / "not-a-reproducer.json"
        path.write_text(json.dumps({"kind": "something-else"}))
        with pytest.raises(ValueError, match="not a soak reproducer"):
            replay_artifact(path)

    def test_replay_rejects_future_version(self, tmp_path):
        path = tmp_path / "future.json"
        path.write_text(json.dumps({"kind": "soak-reproducer", "v": 99}))
        with pytest.raises(ValueError, match="v99"):
            replay_artifact(path)
