"""Sequential-consistency litmus tests over both protocols."""

import pytest

from repro.coherence.base_protocol import BaseCxlDsmModel
from repro.coherence.litmus import (
    ALL_LITMUS,
    LitmusOutcome,
    LitmusRunner,
    LitmusTest,
    coherence_order,
    message_passing,
    run_all,
    store_buffering,
    verify_sequential_consistency,
)
from repro.coherence.pipm_protocol import PipmModel


class TestPatternsOnBaseline:
    @pytest.mark.parametrize("make", ALL_LITMUS)
    def test_no_forbidden_outcome(self, make):
        runner = LitmusRunner(lambda: BaseCxlDsmModel(2))
        outcomes = runner.run(make())
        assert outcomes  # every interleaving executed

    def test_mp_interleaving_count(self):
        # 2+2 instructions -> C(4,2) = 6 interleavings.
        runner = LitmusRunner(lambda: BaseCxlDsmModel(2))
        assert len(runner.run(message_passing())) == 6

    def test_mp_allows_both_stale(self):
        """SC permits the reader running entirely before the writer."""
        runner = LitmusRunner(lambda: BaseCxlDsmModel(2))
        outcomes = runner.run(message_passing())
        assert any(
            o.loads[(1, 0)] == 0 and o.loads[(1, 1)] == 0 for o in outcomes
        )

    def test_sb_some_host_sees_a_store(self):
        runner = LitmusRunner(lambda: BaseCxlDsmModel(2))
        outcomes = runner.run(store_buffering())
        for outcome in outcomes:
            assert outcome.loads[(0, 1)] > 0 or outcome.loads[(1, 1)] > 0


class TestPatternsOnPipm:
    @pytest.mark.parametrize("remap", [0, 1])
    @pytest.mark.parametrize("make", ALL_LITMUS)
    def test_no_forbidden_outcome(self, make, remap):
        runner = LitmusRunner(lambda: PipmModel(2, remap_host=remap))
        assert runner.run(make())

    def test_verify_all_configs(self):
        results = verify_sequential_consistency(2)
        assert set(results) == {"cxl-dsm-msi", "pipm-remap0", "pipm-remap1"}
        for counts in results.values():
            assert counts == {"MP": 6, "SB": 6, "CoRR": 6}


class TestRunnerCatchesViolations:
    def test_forbidden_predicate_raises(self):
        """A predicate forbidding a legal SC outcome must trip the runner."""
        impossible = LitmusTest(
            name="always-fails",
            threads=[[("store", 0)], [("load", 0)]],
            forbidden=lambda outcome: True,
        )
        runner = LitmusRunner(lambda: BaseCxlDsmModel(2))
        with pytest.raises(AssertionError):
            runner.run(impossible)

    def test_two_threads_required(self):
        bad = LitmusTest("x", threads=[[("load", 0)]],
                         forbidden=lambda o: False)
        runner = LitmusRunner(lambda: BaseCxlDsmModel(2))
        with pytest.raises(ValueError):
            runner.run(bad)

    def test_corr_monotone_reads(self):
        runner = LitmusRunner(lambda: PipmModel(2, remap_host=0))
        outcomes = runner.run(coherence_order())
        for outcome in outcomes:
            assert outcome.loads[(1, 1)] >= outcome.loads[(1, 0)]
