"""The parallel sweep runner and the benches' cached-run entry point."""

from __future__ import annotations

import os
import sys
import time
from pathlib import Path

import pytest

from repro import SystemConfig
from repro.sweep import (
    ExperimentSpec,
    ResultStore,
    SweepRunner,
    TraceStore,
    build_matrix,
    run_spec,
)
from repro.workloads.trace import WorkloadScale

BENCH_DIR = Path(__file__).resolve().parents[1] / "benchmarks"
if str(BENCH_DIR) not in sys.path:
    sys.path.insert(0, str(BENCH_DIR))

TINY = WorkloadScale.tiny()
#: The acceptance matrix: 2 workloads x 3 schemes at tiny scale.
WORKLOADS = ["pr", "ycsb"]
SCHEMES = ["native", "memtis", "pipm"]


def _matrix():
    return build_matrix(WORKLOADS, SCHEMES, scale=TINY)


class TestSweepRunner:
    def test_parallel_is_byte_identical_to_serial(self, tmp_path):
        specs = _matrix()
        serial = SweepRunner(specs, tmp_path / "serial", workers=1).run()
        parallel = SweepRunner(specs, tmp_path / "parallel", workers=2).run()
        assert serial.misses == len(specs) == parallel.misses
        serial_store = ResultStore(tmp_path / "serial")
        parallel_store = ResultStore(tmp_path / "parallel")
        keys = sorted(serial_store.keys())
        assert keys == sorted(parallel_store.keys())
        assert len(keys) == len(specs)
        for key in keys:
            assert (serial_store.path_for(key).read_bytes()
                    == parallel_store.path_for(key).read_bytes())

    def test_second_invocation_is_all_hits(self, tmp_path):
        specs = _matrix()[:3]
        first = SweepRunner(specs, tmp_path, workers=2).run()
        assert first.hits == 0
        second = SweepRunner(specs, tmp_path, workers=2).run()
        assert second.hits == len(specs)
        assert second.hit_rate == 1.0
        # All-hits sweeps touch no traces at all.
        assert second.trace_reports == []

    def test_traces_generated_once_per_workload(self, tmp_path):
        specs = _matrix()
        summary = SweepRunner(specs, tmp_path, workers=2).run()
        # 6 specs share 2 traces: one warm task per workload, none a hit.
        assert len(summary.trace_reports) == len(WORKLOADS)
        assert all(not hit for _wl, hit, _s in summary.trace_reports)
        trace_files = list(TraceStore(tmp_path).traces_dir.glob("*.pkl"))
        assert len(trace_files) == len(WORKLOADS)

    def test_stats_aggregate_counter_vs_gauge(self, tmp_path):
        specs = _matrix()
        summary = SweepRunner(specs, tmp_path, workers=2).run()
        assert summary.stats["sweep.runs"] == len(specs)
        assert summary.stats["sweep.cache_hits"] == 0
        # Gauges must not be multiplied by the number of merged workers:
        # every run reports freq_ghz=4.0 and a merged *sum* would be 24.0.
        assert summary.stats["freq_ghz"] == 4.0
        assert 0.0 <= summary.stats["harmful_fraction"] <= 1.0
        # Counters accumulate across workers.
        assert summary.stats["pipm_promotions"] > 0

    def test_per_run_reports_carry_wall_clock_and_hit(self, tmp_path):
        spec = ExperimentSpec.build("pr", "native", scale=TINY)
        miss = run_spec(spec, tmp_path)
        assert not miss.report.cache_hit
        assert miss.report.elapsed_s > 0
        hit = run_spec(spec, tmp_path)
        assert hit.report.cache_hit
        assert hit.result == miss.result
        assert hit.report.elapsed_s < miss.report.elapsed_s

    def test_workers_validation(self, tmp_path):
        with pytest.raises(ValueError):
            SweepRunner([], tmp_path, workers=-1)

    @pytest.mark.skipif(
        len(os.sched_getaffinity(0)) < 4,
        reason="wall-clock speedup needs >= 4 usable CPUs",
    )
    def test_four_workers_at_least_2x_faster(self, tmp_path):
        specs = _matrix()
        t0 = time.perf_counter()
        SweepRunner(specs, tmp_path / "serial", workers=1).run()
        serial_wall = time.perf_counter() - t0
        t0 = time.perf_counter()
        SweepRunner(specs, tmp_path / "parallel", workers=4).run()
        parallel_wall = time.perf_counter() - t0
        assert parallel_wall * 2.0 <= serial_wall, (
            f"4 workers: {parallel_wall:.2f}s vs serial {serial_wall:.2f}s"
        )


class TestRunCached:
    @pytest.fixture()
    def common(self, tmp_path, monkeypatch):
        import common as module

        monkeypatch.setenv("REPRO_BENCH_SCALE", "tiny")
        monkeypatch.setattr(module, "CACHE_DIR", tmp_path)
        monkeypatch.setattr(module, "_TRACES", TraceStore(tmp_path))
        return module

    def test_config_is_part_of_the_key(self, common):
        """Regression: same tag + different config must not alias.

        The old ``workload|scheme|scale|tag`` key ignored the config, so
        an ablation that forgot a unique tag silently read the base
        config's result.
        """
        base = common.run_cached("pr", "native")
        slow_cfg = SystemConfig.scaled().replace_nested(
            "cxl_link", latency_ns=400.0
        )
        slow = common.run_cached("pr", "native", config=slow_cfg)
        assert slow.exec_time_ns > base.exec_time_ns
        # Both entries coexist; re-reads return the matching result.
        assert common.run_cached("pr", "native") == base
        assert common.run_cached("pr", "native", config=slow_cfg) == slow

    def test_scheme_and_system_kwargs_are_part_of_the_key(self, common):
        default = common.run_cached("pr", "pipm")
        infinite = common.run_cached(
            "pr", "pipm", infinite_local_remap_cache=True
        )
        store = ResultStore(common.CACHE_DIR)
        assert len(store) == 2
        assert default == common.run_cached("pr", "pipm")
        assert infinite == common.run_cached(
            "pr", "pipm", infinite_local_remap_cache=True
        )

    def test_tag_is_label_only(self, common):
        a = common.run_cached("ycsb", "native", tag="one")
        b = common.run_cached("ycsb", "native", tag="two")
        assert a == b
        assert len(ResultStore(common.CACHE_DIR)) == 1

    def test_cache_shared_with_sweep_matrix(self, common):
        """`repro sweep` pre-computes exactly what run_cached reads."""
        specs = build_matrix(["pr"], ["native"], scale=TINY)
        summary = SweepRunner(specs, common.CACHE_DIR, workers=1).run()
        assert summary.misses == 1
        result = common.run_cached("pr", "native")
        assert result.workload == "pr"
        # No new entry: the bench read the sweep's result.
        assert len(ResultStore(common.CACHE_DIR)) == 1
