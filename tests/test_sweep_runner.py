"""The parallel sweep runner and the benches' cached-run entry point."""

from __future__ import annotations

import os
import sys
import time
from pathlib import Path

import pytest

from repro import SystemConfig
from repro.sweep import (
    ExperimentSpec,
    ResultStore,
    SweepJournal,
    SweepRunner,
    TraceStore,
    build_matrix,
    run_spec,
)
from repro.workloads.trace import WorkloadScale

BENCH_DIR = Path(__file__).resolve().parents[1] / "benchmarks"
if str(BENCH_DIR) not in sys.path:
    sys.path.insert(0, str(BENCH_DIR))

TINY = WorkloadScale.tiny()
#: The acceptance matrix: 2 workloads x 3 schemes at tiny scale.
WORKLOADS = ["pr", "ycsb"]
SCHEMES = ["native", "memtis", "pipm"]


def _matrix():
    return build_matrix(WORKLOADS, SCHEMES, scale=TINY)


class TestSweepRunner:
    def test_parallel_is_byte_identical_to_serial(self, tmp_path):
        specs = _matrix()
        serial = SweepRunner(specs, tmp_path / "serial", workers=1).run()
        parallel = SweepRunner(specs, tmp_path / "parallel", workers=2).run()
        assert serial.misses == len(specs) == parallel.misses
        serial_store = ResultStore(tmp_path / "serial")
        parallel_store = ResultStore(tmp_path / "parallel")
        keys = sorted(serial_store.keys())
        assert keys == sorted(parallel_store.keys())
        assert len(keys) == len(specs)
        for key in keys:
            assert (serial_store.path_for(key).read_bytes()
                    == parallel_store.path_for(key).read_bytes())

    def test_second_invocation_is_all_hits(self, tmp_path):
        specs = _matrix()[:3]
        first = SweepRunner(specs, tmp_path, workers=2).run()
        assert first.hits == 0
        second = SweepRunner(specs, tmp_path, workers=2).run()
        assert second.hits == len(specs)
        assert second.hit_rate == 1.0
        # All-hits sweeps touch no traces at all.
        assert second.trace_reports == []

    def test_traces_generated_once_per_workload(self, tmp_path):
        specs = _matrix()
        summary = SweepRunner(specs, tmp_path, workers=2).run()
        # 6 specs share 2 traces: one warm task per workload, none a hit.
        assert len(summary.trace_reports) == len(WORKLOADS)
        assert all(not hit for _wl, hit, _s in summary.trace_reports)
        trace_files = list(TraceStore(tmp_path).traces_dir.glob("*.pkl"))
        assert len(trace_files) == len(WORKLOADS)

    def test_stats_aggregate_counter_vs_gauge(self, tmp_path):
        specs = _matrix()
        summary = SweepRunner(specs, tmp_path, workers=2).run()
        assert summary.stats["sweep.runs"] == len(specs)
        assert summary.stats["sweep.cache_hits"] == 0
        # Gauges must not be multiplied by the number of merged workers:
        # every run reports freq_ghz=4.0 and a merged *sum* would be 24.0.
        assert summary.stats["freq_ghz"] == 4.0
        assert 0.0 <= summary.stats["harmful_fraction"] <= 1.0
        # Counters accumulate across workers.
        assert summary.stats["pipm_promotions"] > 0

    def test_per_run_reports_carry_wall_clock_and_hit(self, tmp_path):
        spec = ExperimentSpec.build("pr", "native", scale=TINY)
        miss = run_spec(spec, tmp_path)
        assert not miss.report.cache_hit
        assert miss.report.elapsed_s > 0
        hit = run_spec(spec, tmp_path)
        assert hit.report.cache_hit
        assert hit.result == miss.result
        assert hit.report.elapsed_s < miss.report.elapsed_s

    def test_workers_validation(self, tmp_path):
        with pytest.raises(ValueError):
            SweepRunner([], tmp_path, workers=-1)

    @pytest.mark.skipif(
        len(os.sched_getaffinity(0)) < 4,
        reason="wall-clock speedup needs >= 4 usable CPUs",
    )
    def test_four_workers_at_least_2x_faster(self, tmp_path):
        specs = _matrix()
        t0 = time.perf_counter()
        SweepRunner(specs, tmp_path / "serial", workers=1).run()
        serial_wall = time.perf_counter() - t0
        t0 = time.perf_counter()
        SweepRunner(specs, tmp_path / "parallel", workers=4).run()
        parallel_wall = time.perf_counter() - t0
        assert parallel_wall * 2.0 <= serial_wall, (
            f"4 workers: {parallel_wall:.2f}s vs serial {serial_wall:.2f}s"
        )


class TestSweepResilience:
    """Crash isolation, failure attribution, resume, interrupt hygiene."""

    def test_failures_isolated_and_resume_retries_only_them(
        self, tmp_path, monkeypatch
    ):
        """The ISSUE acceptance scenario: one raising + one hanging worker.

        The sweep must complete, the healthy results must land, both
        failures must be attributed (failed vs timeout), and a resumed
        invocation must re-attempt only the failed specs.
        """
        import repro.sweep.runner as runner_mod

        real_simulate = runner_mod.simulate

        def hang_on_ycsb(trace, scheme, config, **kwargs):
            if trace.name == "ycsb":
                time.sleep(600)
            return real_simulate(trace, scheme, config, **kwargs)

        # Workers fork from this process, so they inherit the patch.
        monkeypatch.setattr(runner_mod, "simulate", hang_on_ycsb)
        healthy = build_matrix(["pr"], ["native", "memtis"], scale=TINY)
        raising = ExperimentSpec.build(
            "pr", "pipm", scale=TINY,
            system_kwargs={"definitely_not_a_kwarg": True},
        )
        hanging = ExperimentSpec.build("ycsb", "native", scale=TINY)
        specs = healthy + [raising, hanging]

        summary = SweepRunner(
            specs, tmp_path, workers=2, timeout_s=3.0
        ).run()

        assert summary.runs == len(healthy)
        assert summary.failed == 2
        by_key = {f.key: f for f in summary.failures}
        assert by_key[raising.key()].status == "failed"
        assert "definitely_not_a_kwarg" in by_key[raising.key()].error
        assert by_key[hanging.key()].status == "timeout"
        store = ResultStore(tmp_path)
        for spec in healthy:
            assert spec.key() in store

        # Resume with the hang cured: healthy specs are skipped without
        # re-running, the hung spec now completes, the intrinsically
        # broken spec fails again.
        monkeypatch.setattr(runner_mod, "simulate", real_simulate)
        resumed = SweepRunner(specs, tmp_path, workers=1, resume=True).run()
        assert resumed.skipped == len(healthy)
        assert hanging.key() in store
        assert resumed.failed == 1
        assert resumed.failures[0].key == raising.key()

    def test_serial_path_isolates_failures_too(self, tmp_path):
        good = ExperimentSpec.build("pr", "native", scale=TINY)
        bad = ExperimentSpec.build(
            "pr", "pipm", scale=TINY, system_kwargs={"nope": 1}
        )
        summary = SweepRunner([bad, good], tmp_path, workers=1).run()
        assert summary.failed == 1
        assert summary.failures[0].status == "failed"
        assert "nope" in summary.failures[0].error
        assert good.key() in ResultStore(tmp_path)

    def test_retry_marks_report_and_journal(self, tmp_path, monkeypatch):
        import repro.sweep.runner as runner_mod

        real_simulate = runner_mod.simulate
        flag = tmp_path / "attempted"

        def fail_once(trace, scheme, config, **kwargs):
            if not flag.exists():
                flag.write_text("x")
                raise RuntimeError("transient")
            return real_simulate(trace, scheme, config, **kwargs)

        monkeypatch.setattr(runner_mod, "simulate", fail_once)
        spec = ExperimentSpec.build("pr", "native", scale=TINY)
        summary = SweepRunner(
            [spec], tmp_path, workers=1, retries=1, backoff_s=0.01
        ).run()
        assert summary.failed == 0
        assert summary.retried == 1
        report = summary.reports[0]
        assert report.status == "retried"
        assert report.attempts == 2
        entry = SweepJournal(tmp_path).outcomes()[spec.key()]
        assert entry.status == "retried"
        assert entry.succeeded

    def test_interrupt_purges_orphaned_temp_files(self, tmp_path):
        specs = _matrix()[:2]
        store = ResultStore(tmp_path)
        traces = TraceStore(tmp_path)
        store.results_dir.mkdir(parents=True, exist_ok=True)
        traces.traces_dir.mkdir(parents=True, exist_ok=True)
        (store.results_dir / ".orphan-result.tmp").write_text("torn")
        (traces.traces_dir / ".orphan-trace.tmp").write_text("torn")

        def interrupt(_line):
            raise KeyboardInterrupt

        with pytest.raises(KeyboardInterrupt):
            SweepRunner(specs, tmp_path, workers=1).run(progress=interrupt)
        assert list(store.results_dir.glob(".*.tmp")) == []
        assert list(traces.traces_dir.glob(".*.tmp")) == []
        # The interrupted sweep is resumable: at least the first spec's
        # completion reached the journal before the interrupt landed.
        journal = SweepJournal(tmp_path)
        assert any(e.succeeded for e in journal.outcomes().values())

    def test_resume_reruns_when_results_were_cleared(self, tmp_path):
        """A journal that outlived its cache must not fake a skip."""
        spec = ExperimentSpec.build("pr", "native", scale=TINY)
        SweepRunner([spec], tmp_path, workers=1).run()
        store = ResultStore(tmp_path)
        store.path_for(spec.key()).unlink()
        resumed = SweepRunner([spec], tmp_path, workers=1, resume=True).run()
        assert resumed.skipped == 0
        assert resumed.misses == 1
        assert spec.key() in store

    def test_resume_skip_reports_cached_exec_time(self, tmp_path):
        spec = ExperimentSpec.build("pr", "native", scale=TINY)
        first = SweepRunner([spec], tmp_path, workers=1).run()
        resumed = SweepRunner([spec], tmp_path, workers=1, resume=True).run()
        assert resumed.skipped == 1
        report = resumed.reports[0]
        assert report.attempts == 0
        assert report.exec_time_ns == first.reports[0].exec_time_ns


class TestSweepJournal:
    def test_last_entry_wins_across_epochs(self, tmp_path):
        journal = SweepJournal(tmp_path)
        journal.begin(2)
        journal.record("k1", "pr/native", "failed", error="Boom")
        journal.record("k2", "pr/pipm", "ok")
        journal.begin(1)
        journal.record("k1", "pr/native", "ok", cache_hit=True)
        outcomes = journal.outcomes()
        assert outcomes["k1"].succeeded
        assert outcomes["k1"].run == 2
        assert outcomes["k2"].run == 1
        assert journal.epochs() == 2

    def test_torn_tail_is_skipped(self, tmp_path):
        journal = SweepJournal(tmp_path)
        journal.record("k1", "pr/native", "ok")
        with open(journal.path, "ab") as fh:
            fh.write(b'{"event":"spec","key":"k2","stat')  # writer died
        assert set(journal.outcomes()) == {"k1"}

    def test_error_tail_is_bounded(self, tmp_path):
        journal = SweepJournal(tmp_path)
        journal.record("k1", "l", "failed", error="x" * 10_000)
        entry = journal.outcomes()["k1"]
        assert entry.error is not None
        assert len(entry.error) == 2000

    def test_rejects_unknown_status(self, tmp_path):
        with pytest.raises(ValueError, match="status"):
            SweepJournal(tmp_path).record("k", "l", "exploded")

    def test_empty_string_error_is_not_dropped(self, tmp_path):
        """A failure whose message is '' must still journal the field.

        The old ``if error:`` truthiness test silently discarded it,
        making the entry indistinguishable from a success record."""
        journal = SweepJournal(tmp_path)
        journal.record("k1", "l", "failed", error="")
        entry = journal.outcomes()["k1"]
        assert entry.error == ""
        journal.record("k2", "l", "failed")  # genuinely no attribution
        assert journal.outcomes()["k2"].error is None

    def test_two_concurrent_invocations_interleave_cleanly(self, tmp_path):
        """Two writers on the same journal (O_APPEND, one write per
        line) interleave without tearing, and the fold is last-wins."""
        left = SweepJournal(tmp_path)
        right = SweepJournal(tmp_path)
        left.begin(2)
        right.begin(2)
        for run in range(25):
            left.record("shared", "pr/pipm", "failed",
                        error=f"left {run}")
            right.record(f"r{run}", "pr/native", "ok")
            left.record(f"l{run}", "pr/pipm", "ok")
            right.record("shared", "pr/pipm", "ok", cache_hit=True)
        outcomes = left.outcomes()
        assert outcomes == right.outcomes()  # one log, two handles
        assert len(outcomes) == 51
        assert len(left.path.read_text().splitlines()) == 102
        assert outcomes["shared"].succeeded  # right's record landed last
        assert all(outcomes[f"l{i}"].succeeded for i in range(25))
        assert all(outcomes[f"r{i}"].succeeded for i in range(25))
        assert left.epochs() == 2

    def test_missing_journal_reads_empty(self, tmp_path):
        journal = SweepJournal(tmp_path / "nowhere")
        assert journal.outcomes() == {}
        assert journal.epochs() == 0


class TestRunCached:
    @pytest.fixture()
    def common(self, tmp_path, monkeypatch):
        import common as module

        monkeypatch.setenv("REPRO_BENCH_SCALE", "tiny")
        monkeypatch.setattr(module, "CACHE_DIR", tmp_path)
        monkeypatch.setattr(module, "_TRACES", TraceStore(tmp_path))
        return module

    def test_config_is_part_of_the_key(self, common):
        """Regression: same tag + different config must not alias.

        The old ``workload|scheme|scale|tag`` key ignored the config, so
        an ablation that forgot a unique tag silently read the base
        config's result.
        """
        base = common.run_cached("pr", "native")
        slow_cfg = SystemConfig.scaled().replace_nested(
            "cxl_link", latency_ns=400.0
        )
        slow = common.run_cached("pr", "native", config=slow_cfg)
        assert slow.exec_time_ns > base.exec_time_ns
        # Both entries coexist; re-reads return the matching result.
        assert common.run_cached("pr", "native") == base
        assert common.run_cached("pr", "native", config=slow_cfg) == slow

    def test_scheme_and_system_kwargs_are_part_of_the_key(self, common):
        default = common.run_cached("pr", "pipm")
        infinite = common.run_cached(
            "pr", "pipm", infinite_local_remap_cache=True
        )
        store = ResultStore(common.CACHE_DIR)
        assert len(store) == 2
        assert default == common.run_cached("pr", "pipm")
        assert infinite == common.run_cached(
            "pr", "pipm", infinite_local_remap_cache=True
        )

    def test_tag_is_label_only(self, common):
        a = common.run_cached("ycsb", "native", tag="one")
        b = common.run_cached("ycsb", "native", tag="two")
        assert a == b
        assert len(ResultStore(common.CACHE_DIR)) == 1

    def test_cache_shared_with_sweep_matrix(self, common):
        """`repro sweep` pre-computes exactly what run_cached reads."""
        specs = build_matrix(["pr"], ["native"], scale=TINY)
        summary = SweepRunner(specs, common.CACHE_DIR, workers=1).run()
        assert summary.misses == 1
        result = common.run_cached("pr", "native")
        assert result.workload == "pr"
        # No new entry: the bench read the sweep's result.
        assert len(ResultStore(common.CACHE_DIR)) == 1
