"""Coherence state vocabulary and Fig. 9 encodings."""

import pytest

from repro.coherence.messages import MessageType
from repro.coherence.states import (
    CacheState,
    MemBit,
    encode_device_state,
    encode_local_state,
)


class TestCacheState:
    def test_writers(self):
        assert CacheState.M.is_writer
        assert CacheState.E.is_writer
        assert CacheState.ME.is_writer
        assert not CacheState.S.is_writer
        assert not CacheState.I.is_writer
        assert not CacheState.I_MIG.is_writer

    def test_valid_copies(self):
        assert CacheState.S.is_valid_copy
        assert CacheState.ME.is_valid_copy
        assert not CacheState.I.is_valid_copy
        assert not CacheState.I_MIG.is_valid_copy


class TestLocalEncoding:
    """Upper table of Fig. 9."""

    def test_i_plus_bit_is_i_mig(self):
        assert (
            encode_local_state(CacheState.I, MemBit.MIGRATED)
            is CacheState.I_MIG
        )

    def test_i_without_bit_is_i(self):
        assert encode_local_state(CacheState.I, MemBit.HOME) is CacheState.I

    def test_me_requires_bit(self):
        assert (
            encode_local_state(CacheState.ME, MemBit.MIGRATED)
            is CacheState.ME
        )
        with pytest.raises(ValueError):
            encode_local_state(CacheState.ME, MemBit.HOME)

    def test_msi_pass_through(self):
        for state in (CacheState.M, CacheState.S):
            assert encode_local_state(state, MemBit.HOME) is state


class TestDeviceEncoding:
    """Lower table of Fig. 9."""

    def test_i_plus_bit_is_i_mig(self):
        assert (
            encode_device_state(CacheState.I, MemBit.MIGRATED)
            is CacheState.I_MIG
        )

    def test_device_never_holds_me(self):
        with pytest.raises(ValueError):
            encode_device_state(CacheState.ME, MemBit.MIGRATED)

    def test_msi_pass_through(self):
        for state in (CacheState.M, CacheState.S, CacheState.I):
            assert encode_device_state(state, MemBit.HOME) is state


class TestMessages:
    def test_data_carrying(self):
        assert MessageType.DATA.carries_data
        assert MessageType.WB.carries_data
        assert MessageType.MIG_BACK.carries_data
        assert not MessageType.RD_REQ.carries_data
        assert not MessageType.INV.carries_data

    def test_sizes(self):
        assert MessageType.DATA.size_bytes == 64
        assert MessageType.RD_REQ.size_bytes == 16
