"""Loop/vector engine-backend equivalence.

The vector backend's contract is *byte identity*: for any trace, scheme,
and configuration, ``SimulationResult.to_record()`` must match the
reference loop backend exactly — same floats, same counters, same
per-host breakdowns.  These tests sweep the profile microbench matrix
plus the configurations that disable or fence the flattened fast path
(fault plans, watchdog audits, interval schemes) so both the fast path
and every bail-to-slow-path seam stay pinned.
"""

import dataclasses
import json

import pytest

from repro import SystemConfig
from repro.config import FaultConfig
from repro.policies import make_scheme
from repro.sim.engine import BACKENDS, SimulationEngine, simulate
from repro.sim.profile import PROFILE_CASES
from repro.sim.system import MultiHostSystem
from repro.workloads.registry import generate
from repro.workloads.trace import WorkloadScale


def _canon(result) -> str:
    return json.dumps(result.to_record(), sort_keys=True)


def _trace(workload: str, config: SystemConfig):
    return generate(
        workload,
        num_hosts=config.num_hosts,
        scale=WorkloadScale.tiny(),
        cores_per_host=config.cores_per_host,
    )


def _records_for_backends(workload: str, scheme: str, config: SystemConfig):
    trace = _trace(workload, config)
    return {
        backend: _canon(
            simulate(trace, make_scheme(scheme), config, backend=backend)
        )
        for backend in BACKENDS
    }


class TestBackendParity:
    @pytest.mark.parametrize("workload,scheme", PROFILE_CASES)
    def test_profile_cases_identical(self, workload, scheme):
        config = SystemConfig.scaled()
        records = _records_for_backends(workload, scheme, config)
        assert records["vector"] == records["loop"]

    @pytest.mark.parametrize("scheme", ["native", "pipm"])
    def test_fault_plan_identical(self, scheme):
        # Active faults disable the flat path entirely; stall windows and
        # poison arrivals additionally fence the batched L1-hit path, so
        # this pins the eventful turn loop against the reference.
        config = dataclasses.replace(
            SystemConfig.scaled(), faults=FaultConfig.parse("storm:seed=5")
        )
        records = _records_for_backends("pr", scheme, config)
        assert records["vector"] == records["loop"]

    def test_watchdog_audits_identical(self):
        config = dataclasses.replace(
            SystemConfig.scaled(),
            faults=FaultConfig.parse("none:watchdog-period-ns=5e5"),
        )
        records = _records_for_backends("pr", "pipm", config)
        assert records["vector"] == records["loop"]

    def test_interval_scheme_identical(self):
        # memtis ticks on an interval: the vector backend must break its
        # bursts at exactly the tick boundaries the loop backend sees.
        config = SystemConfig.scaled()
        records = _records_for_backends("ycsb", "memtis", config)
        assert records["vector"] == records["loop"]


class TestBackendSelection:
    def test_unknown_backend_rejected(self, tiny_pr_trace, scaled_config):
        system = MultiHostSystem(scaled_config, make_scheme("native"))
        with pytest.raises(ValueError, match="backend"):
            SimulationEngine(system, tiny_pr_trace, backend="warp")

    def test_simulate_passes_backend(self, tiny_pr_trace, scaled_config):
        result = simulate(
            tiny_pr_trace, make_scheme("native"), scaled_config,
            backend="vector",
        )
        assert result.accesses == tiny_pr_trace.total_accesses
