"""System model: access workflows for every mechanism."""

import pytest

from repro import units
from repro.config import SystemConfig
from repro.policies import make_scheme
from repro.sim.results import ServicePoint
from repro.sim.system import MultiHostSystem


@pytest.fixture()
def cfg() -> SystemConfig:
    return SystemConfig.scaled()


def make_system(cfg, scheme_name, **kw) -> MultiHostSystem:
    return MultiHostSystem(cfg, make_scheme(scheme_name), workload_mlp=4.0,
                           **kw)


class TestCacheFrontEnd:
    def test_l1_hit_after_fill(self, cfg):
        system = make_system(cfg, "native")
        lat1, svc1 = system.access(0, 0, 0x1000, False, 0.0)
        lat2, svc2 = system.access(0, 0, 0x1000, False, 100.0)
        assert svc1 == ServicePoint.CXL_MEM
        assert svc2 == ServicePoint.L1
        assert lat2 < lat1

    def test_llc_hit_from_other_core(self, cfg):
        system = make_system(cfg, "native")
        system.access(0, 0, 0x1000, False, 0.0)
        _, svc = system.access(0, 1, 0x1000, False, 100.0)
        assert svc == ServicePoint.LLC

    def test_private_data_local(self, cfg):
        system = make_system(cfg, "native")
        start, _ = system.address_map.local_window(0)
        _, svc = system.access(0, 0, start, False, 0.0)
        assert svc == ServicePoint.LOCAL_MEM


class TestNativeCoherence:
    def test_dirty_owner_forward_is_4hop(self, cfg):
        system = make_system(cfg, "native")
        # Host 0 writes, then host 1 reads the same line.
        lat_w, _ = system.access(0, 0, 0x2000, True, 0.0)
        lat_r, svc = system.access(1, 0, 0x2000, False, 1000.0)
        assert svc == ServicePoint.CXL_FWD
        # 4-hop forward costs more than the plain 2-hop read.
        lat_plain, _ = system.access(1, 0, 0x9000, False, 2000.0)
        assert lat_r > lat_plain

    def test_forward_downgrades_owner(self, cfg):
        system = make_system(cfg, "native")
        system.access(0, 0, 0x2000, True, 0.0)
        system.access(1, 0, 0x2000, False, 1000.0)
        line = 0x2000 >> 6
        entry = system.hosts[0].llc.peek(line)
        assert entry is not None and not entry.dirty

    def test_write_invalidates_sharers(self, cfg):
        system = make_system(cfg, "native")
        system.access(0, 0, 0x2000, False, 0.0)
        system.access(1, 0, 0x2000, False, 100.0)
        system.access(2, 0, 0x2000, True, 200.0)
        line = 0x2000 >> 6
        assert not system.hosts[0].holds_line(line)
        assert not system.hosts[1].holds_line(line)
        assert system.hosts[2].holds_line(line)

    def test_upgrade_on_write_to_shared_copy(self, cfg):
        system = make_system(cfg, "native")
        system.access(0, 0, 0x2000, False, 0.0)
        system.access(1, 0, 0x2000, False, 100.0)
        # Host 0 writes its S copy -> upgrade path invalidates host 1.
        system.access(0, 0, 0x2000, True, 200.0)
        assert not system.hosts[1].holds_line(0x2000 >> 6)

    def test_directory_tracks_sharers(self, cfg):
        system = make_system(cfg, "native")
        system.access(0, 0, 0x2000, False, 0.0)
        system.access(1, 0, 0x2000, False, 100.0)
        entry = system.device_dir.peek(0x2000 >> 6)
        assert entry.sharers == {0, 1}


class TestLocalOnly:
    def test_everything_local(self, cfg):
        system = make_system(cfg, "local-only")
        _, svc = system.access(0, 0, 0x4000, False, 0.0)
        assert svc == ServicePoint.LOCAL_MEM


class TestPageMapMechanism:
    def _system_with_migrated_page(self, cfg):
        system = make_system(cfg, "nomad")
        page = 8
        system.page_map[page] = 0
        return system, page

    def test_owner_access_local(self, cfg):
        system, page = self._system_with_migrated_page(cfg)
        _, svc = system.access(0, 0, page << 12, False, 0.0)
        assert svc == ServicePoint.LOCAL_MEM

    def test_other_host_non_cacheable_4hop(self, cfg):
        system, page = self._system_with_migrated_page(cfg)
        addr = page << 12
        _, svc = system.access(1, 0, addr, False, 0.0)
        assert svc == ServicePoint.INTER_HOST
        # Non-cacheable: a repeat access is NOT an L1 hit.
        _, svc2 = system.access(1, 0, addr, False, 1000.0)
        assert svc2 == ServicePoint.INTER_HOST

    def test_interval_applies_plan(self, cfg):
        system = make_system(cfg, "nomad", footprint_pages=256)
        page = 12
        addr = page << 12
        # Hammer one page from host 0 so Nomad promotes it.
        now = 0.0
        for _ in range(50):
            system.access(0, 0, addr, False, now)
            system.hosts[0].llc.invalidate(addr >> 6)
            system.hosts[0].l1s[0].invalidate(addr >> 6)
            now += 1000.0
        system.maybe_tick(cfg.kernel.interval_ns + 1)
        assert system.page_map.get(page) == 0
        assert system.migrations >= 1
        assert system.mgmt_ns > 0
        assert system.transfer_ns > 0

    def test_migration_shoots_down_tlbs(self, cfg):
        system = make_system(cfg, "nomad", footprint_pages=256)
        addr = 12 << 12
        now = 0.0
        for _ in range(50):
            system.access(0, 0, addr, False, now)
            system.hosts[0].llc.invalidate(addr >> 6)
            system.hosts[0].l1s[0].invalidate(addr >> 6)
            now += 1000.0
        before = system.hosts[1].tlb.shootdowns
        system.maybe_tick(cfg.kernel.interval_ns + 1)
        assert system.hosts[1].tlb.shootdowns > before


class TestPipmMechanism:
    def test_full_cycle(self, cfg):
        """Promote -> evict (incremental migrate) -> local serve."""
        system = make_system(cfg, "pipm")
        page, now = 5, 0.0
        for rep in range(3):
            for lip in range(8):
                system.access(0, 0, (page << 12) + lip * 64, True, now)
                now += 100.0
        assert system.engine.counters.promotions == 1
        # Force eviction of line 0 by filling its LLC set.
        llc = system.hosts[0].llc
        base_line = page << 6
        for i in range(1, llc.ways + 2):
            conflict = (base_line + i * llc.num_sets) << 6
            if conflict < cfg.cxl_dram.capacity_bytes:
                system.access(0, 0, conflict, False, now)
                now += 100.0
        assert system.engine.counters.incremental_migrations >= 1
        entry = system.engine.local_tables[0].lookup(page)
        lip = next(i for i in range(64) if entry.line_migrated(i))
        lat, svc = system.access(0, 0, (page << 12) + lip * 64, False, now)
        assert svc == ServicePoint.PIPM_LOCAL

    def test_interhost_migrate_back_is_cacheable(self, cfg):
        system = make_system(cfg, "pipm")
        page, now = 5, 0.0
        for rep in range(3):
            for lip in range(8):
                system.access(0, 0, (page << 12) + lip * 64, True, now)
                now += 100.0
        entry = system.engine.local_tables[0].lookup(page)
        entry.set_line(40)  # pretend line 40 migrated
        addr = (page << 12) + 40 * 64
        _, svc = system.access(1, 0, addr, False, now)
        assert svc == ServicePoint.INTER_HOST
        assert not entry.line_migrated(40)  # migrated back
        # Cacheable at the requester: next access hits L1.
        _, svc2 = system.access(1, 0, addr, False, now + 100)
        assert svc2 == ServicePoint.L1

    def test_hw_static_materializes_own_partition(self, cfg):
        system = make_system(cfg, "hw-static")
        page = 4  # static home = page % 4 = 0
        system.access(0, 0, page << 12, False, 0.0)
        assert page in system.engine.local_tables[0]
        system.access(1, 0, (page + 1) << 12, False, 100.0)
        assert (page + 1) in system.engine.local_tables[1]

    def test_remap_walk_charged_on_cache_miss(self, cfg):
        system = make_system(cfg, "pipm")
        lat_cold, _ = system.access(0, 0, 0x7000, False, 0.0)
        system.hosts[0].llc.invalidate(0x7000 >> 6)
        system.hosts[0].l1s[0].invalidate(0x7000 >> 6)
        lat_warm, _ = system.access(0, 0, 0x7000, False, 10000.0)
        # Second access: remap cache + TLB warm -> cheaper.
        assert lat_warm < lat_cold
