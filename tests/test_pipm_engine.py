"""PIPM engine: promotion, incremental migration, migrate-back, revocation."""

import pytest

from repro import units
from repro.config import PipmConfig
from repro.pipm.engine import PipmEngine


def make_engine(static=False, frames=64, **kwargs) -> PipmEngine:
    return PipmEngine(
        PipmConfig(), num_hosts=4, cxl_capacity_bytes=16 * units.MB,
        frames_per_host=frames, static_map=static, **kwargs
    )


def promote(engine, page, host):
    dest = None
    for _ in range(PipmConfig().migration_threshold):
        dest = engine.record_cxl_access(page, host)
    assert dest == host
    return engine.local_tables[host].lookup(page)


class TestPromotion:
    def test_threshold_promotes(self):
        engine = make_engine()
        entry = promote(engine, 5, host=2)
        assert entry is not None
        assert engine.counters.promotions == 1
        assert engine.global_table.current_host(5) == 2

    def test_no_frames_denies(self):
        engine = make_engine(frames=1)
        promote(engine, 1, host=0)
        dest = None
        for _ in range(20):
            dest = engine.record_cxl_access(2, 0)
        assert dest is None
        assert engine.counters.promotions_denied > 0

    def test_migrated_page_stops_voting(self):
        engine = make_engine()
        promote(engine, 5, host=2)
        assert engine.record_cxl_access(5, 3) is None


class TestIncrementalMigration:
    def test_fresh_line_counts(self):
        engine = make_engine()
        entry = promote(engine, 5, 0)
        assert engine.incremental_migrate(0, entry, 7)
        assert not engine.incremental_migrate(0, entry, 7)  # case 4 refresh
        assert engine.counters.incremental_migrations == 1
        assert entry.line_migrated(7)

    def test_peak_footprints_tracked(self):
        engine = make_engine()
        entry = promote(engine, 5, 0)
        engine.incremental_migrate(0, entry, 0)
        assert engine.counters.peak_pages[0] == 1
        assert engine.counters.peak_lines[0] == 1
        assert engine.peak_page_footprint_bytes(0) == units.PAGE_SIZE
        assert engine.peak_line_footprint_bytes(0) == units.CACHE_LINE


class TestInterHostAndRevocation:
    def test_migrate_back_clears_line(self):
        engine = make_engine()
        entry = promote(engine, 5, 0)
        engine.incremental_migrate(0, entry, 3)
        # local accesses defend the counter first
        for _ in range(8):
            engine.record_local_access(entry)
        migrated, revoked = engine.inter_host_access(0, 5, 3)
        assert migrated
        assert revoked is None
        assert not entry.line_migrated(3)
        assert engine.counters.migrate_backs == 1

    def test_inter_host_on_unmigrated_line(self):
        engine = make_engine()
        entry = promote(engine, 5, 0)
        migrated, _ = engine.inter_host_access(0, 5, 9)
        assert not migrated

    def test_inter_host_without_entry(self):
        engine = make_engine()
        migrated, revoked = engine.inter_host_access(1, 77, 0)
        assert not migrated
        assert revoked is None

    def test_revocation_returns_lines_and_frees_frame(self):
        engine = make_engine()
        entry = promote(engine, 5, 0)
        for line in (1, 2, 3):
            engine.incremental_migrate(0, entry, line)
        in_use = engine.frames[0].in_use
        revoked = None
        for _ in range(20):
            migrated, revoked = engine.inter_host_access(0, 5, 0)
            if revoked is not None:
                break
        assert revoked == [1, 2, 3]
        assert engine.counters.revocations == 1
        assert 5 not in engine.local_tables[0]
        assert engine.frames[0].in_use == in_use - 1
        assert engine.global_table.current_host(5) == -1

    def test_page_can_remigrate_after_revocation(self):
        engine = make_engine()
        entry = promote(engine, 5, 0)
        engine.incremental_migrate(0, entry, 0)
        for _ in range(20):
            _, revoked = engine.inter_host_access(0, 5, 0)
            if revoked is not None:
                break
        entry2 = promote(engine, 5, 1)
        assert entry2 is not None
        assert engine.global_table.current_host(5) == 1


class TestStaticMap:
    def test_uniform_partition(self):
        engine = make_engine(static=True)
        homes = {engine.static_home(p) for p in range(8)}
        assert homes == {0, 1, 2, 3}

    def test_lazy_materialization_on_home_host(self):
        engine = make_engine(static=True)
        page = 4  # home = 0
        entry, _ = engine.local_lookup(0, page)
        assert entry is not None
        entry_other, _ = engine.local_lookup(1, page)
        assert entry_other is None

    def test_static_never_votes(self):
        engine = make_engine(static=True)
        for _ in range(50):
            assert engine.record_cxl_access(3, 3) is None

    def test_static_never_revokes(self):
        engine = make_engine(static=True)
        page = 4
        entry, _ = engine.local_lookup(0, page)
        engine.incremental_migrate(0, entry, 2)
        for _ in range(50):
            migrated, revoked = engine.inter_host_access(0, page, 2)
            assert revoked is None
        assert page in engine.local_tables[0]


class TestRemapCacheIntegration:
    def test_local_lookup_caches_negatives(self):
        engine = make_engine()
        engine.local_lookup(0, 9)
        _, hit = engine.local_lookup(0, 9)
        assert hit

    def test_device_lookup_tracks_hits(self):
        engine = make_engine()
        assert not engine.device_lookup(3)
        assert engine.device_lookup(3)

    def test_infinite_caches(self):
        engine = make_engine(infinite_global_cache=True,
                             infinite_local_cache=True)
        assert engine.device_lookup(123)
        _, hit = engine.local_lookup(0, 456)
        assert hit
