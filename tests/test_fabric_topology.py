"""Fabric topology: config parsing, segment/path timing, flat identity,
cross-host contention, the switchdown fault, and link-accounting parity
between the fault-free and faulted transfer paths."""

from __future__ import annotations

import dataclasses

import pytest

from repro import units
from repro.config import FabricConfig, FaultConfig, SystemConfig
from repro.faults.injector import FaultCounters, LinkFaultModel
from repro.faults.plan import FaultPlan, LinkDegradeWindow
from repro.mem.cxl_link import TO_DEVICE, TO_HOST, CxlLink
from repro.mem.fabric import (
    FabricSegment,
    FabricTopology,
    SwitchedPath,
)
from repro.sim.harness import run_experiment
from repro.stats import StatRegistry
from repro.workloads.trace import WorkloadScale


def _topology(preset: str, hosts: int = 4, stats=None) -> FabricTopology:
    config = SystemConfig.scaled(num_hosts=hosts)
    return FabricTopology(
        FabricConfig.parse(preset), config.cxl_link, hosts, stats
    )


# ======================================================================
# FabricConfig parsing and validation
# ======================================================================
class TestFabricConfig:
    def test_presets_exist_and_validate(self):
        for preset in FabricConfig.PRESETS:
            config = FabricConfig.parse(preset)
            config.validate()
            assert config.topology == preset

    def test_default_is_flat(self):
        assert FabricConfig().is_flat
        assert SystemConfig.scaled().fabric.is_flat

    def test_parse_overrides(self):
        config = FabricConfig.parse(
            "two-tier:hosts-per-leaf=4,uplink-bandwidth-gbs=10"
        )
        assert config.topology == "two-tier"
        assert config.hosts_per_leaf == 4
        assert config.uplink_bandwidth_gbs == 10.0
        assert config.switch_latency_ns == 25.0  # preset value survives

    def test_unknown_preset_rejected(self):
        with pytest.raises(ValueError, match="unknown fabric topology"):
            FabricConfig.parse("hypercube")

    def test_bad_override_rejected(self):
        with pytest.raises(ValueError, match="bad fabric override"):
            FabricConfig.parse("flat:not_a_knob=1")

    def test_topology_not_overridable(self):
        with pytest.raises(ValueError, match="bad fabric override"):
            FabricConfig.parse("flat:topology=two-tier")

    def test_switch_counts(self):
        flat = FabricConfig.parse("flat")
        single = FabricConfig.parse("single-switch")
        two = FabricConfig.parse("two-tier")
        assert flat.num_switches(32) == 0
        assert single.num_switches(32) == 1
        # 32 hosts / 8 per leaf = 4 leaves + the spine.
        assert two.num_leaves(32) == 4
        assert two.num_switches(32) == 5
        # Partial leaves round up.
        assert two.num_leaves(9) == 2

    def test_validate_rejects_bad_values(self):
        with pytest.raises(ValueError):
            FabricConfig(switch_port_bandwidth_gbs=0.0).validate()
        with pytest.raises(ValueError):
            FabricConfig(switch_latency_ns=-1.0).validate()
        with pytest.raises(ValueError):
            FabricConfig(hosts_per_leaf=0).validate()

    def test_rack_classmethod(self):
        config = SystemConfig.rack(num_hosts=16, topology="two-tier")
        assert config.num_hosts == 16
        assert config.fabric.topology == "two-tier"

    def test_switchdown_preset(self):
        faults = FaultConfig.parse("switchdown")
        assert faults.has_switch_down
        assert not faults.idle
        assert faults.switch_down == 0

    def test_switchdown_rejected_on_flat_fabric(self):
        config = dataclasses.replace(
            SystemConfig.scaled(), faults=FaultConfig.parse("switchdown")
        )
        with pytest.raises(ValueError, match="non-flat fabric"):
            config.validate()

    def test_switchdown_switch_index_bounds_checked(self):
        config = dataclasses.replace(
            SystemConfig.scaled(),
            fabric=FabricConfig.parse("single-switch"),
            faults=FaultConfig.parse("switchdown:switch-down=3"),
        )
        with pytest.raises(ValueError):
            config.validate()


# ======================================================================
# Segment and path timing
# ======================================================================
class TestFabricSegment:
    def test_uncontended_transfer(self):
        seg = FabricSegment("s", latency_ns=25.0, bandwidth_gbs=20.0)
        size = 4096
        expected = 25.0 + size * 1e9 / (20.0 * units.GB)
        assert seg.transfer(TO_DEVICE, 0.0, size) == expected

    def test_back_to_back_transfers_queue(self):
        seg = FabricSegment("s", latency_ns=25.0, bandwidth_gbs=20.0)
        first = seg.transfer(TO_DEVICE, 0.0, 4096)
        serialization = first - 25.0
        second = seg.transfer(TO_DEVICE, 0.0, 4096)
        assert second == pytest.approx(first + serialization)
        # Directions queue independently.
        assert seg.transfer(TO_HOST, 0.0, 4096) == first

    def test_degrade_window_slows_only_inside(self):
        seg = FabricSegment("s", latency_ns=25.0, bandwidth_gbs=20.0)
        clean = seg.transfer(TO_DEVICE, 0.0, 64)
        seg.reset()
        seg.set_degrade(100.0, 200.0, latency_x=4.0, bandwidth_x=4.0)
        assert not seg.degraded_at(0.0)
        assert seg.degraded_at(100.0)
        assert not seg.degraded_at(200.0)
        assert seg.transfer(TO_DEVICE, 0.0, 64) == clean
        degraded = seg.transfer(TO_DEVICE, 500.0, 64)  # queue is drained
        assert degraded == clean
        seg.reset()
        seg.set_degrade(100.0, 200.0, latency_x=4.0, bandwidth_x=4.0)
        assert seg.transfer(TO_DEVICE, 150.0, 64) > 4 * 25.0

    def test_reset_clears_queue_state(self):
        seg = FabricSegment("s", latency_ns=25.0, bandwidth_gbs=20.0)
        seg.transfer(TO_DEVICE, 0.0, 4096)
        assert seg.occupancy_until(TO_DEVICE) > 0
        seg.reset()
        assert seg.occupancy_until(TO_DEVICE) == 0.0


class TestSwitchedPath:
    def _path(self):
        link = CxlLink(SystemConfig.scaled().cxl_link)
        seg = FabricSegment("s", latency_ns=25.0, bandwidth_gbs=20.0)
        return SwitchedPath(link, (seg,)), link, seg

    def test_transfer_composes_edge_then_segments(self):
        path, link, seg = self._path()
        ref_link = CxlLink(SystemConfig.scaled().cxl_link)
        ref_seg = FabricSegment("s", latency_ns=25.0, bandwidth_gbs=20.0)
        total = path.transfer(TO_DEVICE, 0.0, 4096)
        edge = ref_link.transfer(TO_DEVICE, 0.0, 4096)
        expected = edge + ref_seg.transfer(TO_DEVICE, edge, 4096)
        assert total == expected

    def test_round_trip_is_out_then_back(self):
        path, _, _ = self._path()
        ref, _, _ = self._path()
        out = ref.transfer(TO_DEVICE, 0.0, units.CACHE_LINE)
        back = ref.transfer(TO_HOST, out, units.CACHE_LINE)
        assert path.round_trip(0.0) == out + back

    def test_path_is_link_compatible(self):
        path, link, _ = self._path()
        assert path.config is link.config
        assert path.hop_count() == 1
        path.transfer(TO_DEVICE, 0.0, 4096)
        assert path.occupancy_until(TO_DEVICE) >= link.occupancy_until(
            TO_DEVICE
        )
        path.reset()
        assert path.occupancy_until(TO_DEVICE) == 0.0


# ======================================================================
# Topology construction and contention
# ======================================================================
class TestFabricTopology:
    def test_flat_paths_are_the_links_themselves(self):
        topo = _topology("flat")
        for h in range(4):
            assert topo.paths[h] is topo.links[h]
        assert topo.num_switches == 0

    def test_single_switch_shares_one_port(self):
        topo = _topology("single-switch")
        assert topo.num_switches == 1
        port = topo.paths[0].segments[0]
        assert all(p.segments == (port,) for p in topo.paths)
        assert topo.hosts_behind(0) == (0, 1, 2, 3)

    def test_two_tier_groups_hosts_under_leaves(self):
        topo = FabricTopology(
            FabricConfig.parse("two-tier:hosts-per-leaf=4"),
            SystemConfig.scaled().cxl_link,
            8,
        )
        # 2 leaves + spine.
        assert topo.num_switches == 3
        assert topo.hosts_behind(0) == (0, 1, 2, 3)
        assert topo.hosts_behind(1) == (4, 5, 6, 7)
        assert topo.hosts_behind(2) == (0, 1, 2, 3, 4, 5, 6, 7)
        assert topo.paths[0].segments[0] is not topo.paths[4].segments[0]
        assert topo.paths[0].segments[1] is topo.paths[4].segments[1]

    def test_hosts_contend_on_the_shared_port(self):
        topo = _topology("single-switch")
        first = topo.paths[0].transfer(TO_DEVICE, 0.0, 4096)
        # A different host at the same instant queues behind host 0's
        # serialization on the shared switch port.
        second = topo.paths[1].transfer(TO_DEVICE, 0.0, 4096)
        assert second > first

    def test_flat_hosts_never_contend(self):
        topo = _topology("flat")
        first = topo.paths[0].transfer(TO_DEVICE, 0.0, 4096)
        second = topo.paths[1].transfer(TO_DEVICE, 0.0, 4096)
        assert second == first

    def test_pair_resolution(self):
        topo = _topology("single-switch")
        pair = topo.pair(1, 3)
        assert pair.requester is topo.paths[1]
        assert pair.owner is topo.paths[3]
        assert pair.hop_count() == 2
        assert topo.pair(1, 3) is pair  # cached

    def test_switch_down_degrades_only_paths_behind_it(self):
        topo = FabricTopology(
            FabricConfig.parse("two-tier:hosts-per-leaf=4"),
            SystemConfig.scaled().cxl_link,
            8,
        )
        clean = FabricTopology(
            FabricConfig.parse("two-tier:hosts-per-leaf=4"),
            SystemConfig.scaled().cxl_link,
            8,
        )
        topo.apply_switch_down(0, 0.0, 1e9, 4.0, 4.0)
        assert topo.paths[0].degraded_at(10.0)
        assert not topo.paths[4].degraded_at(10.0)
        # Compare against an otherwise-identical clean fabric so spine
        # queueing between sequential transfers can't confound the check.
        slow = topo.paths[0].transfer(TO_DEVICE, 0.0, 4096)
        assert slow > clean.paths[0].transfer(TO_DEVICE, 0.0, 4096)
        topo.reset()
        clean.reset()
        assert topo.paths[4].transfer(TO_DEVICE, 0.0, 4096) == (
            clean.paths[4].transfer(TO_DEVICE, 0.0, 4096)
        )

    def test_spine_down_degrades_everyone(self):
        topo = FabricTopology(
            FabricConfig.parse("two-tier:hosts-per-leaf=4"),
            SystemConfig.scaled().cxl_link,
            8,
        )
        topo.apply_switch_down(2, 0.0, 1e9, 4.0, 4.0)
        assert all(p.degraded_at(10.0) for p in topo.paths)

    def test_switch_down_bad_index_raises(self):
        topo = _topology("single-switch")
        with pytest.raises(ValueError, match="out of range"):
            topo.apply_switch_down(1, 0.0, 1e9, 4.0, 4.0)

    def test_segment_stats_scoped_per_switch(self):
        registry = StatRegistry()
        topo = _topology("single-switch", stats=registry)
        topo.paths[0].transfer(TO_DEVICE, 0.0, 4096)
        assert registry.get("switch0.messages") == 1
        assert registry.get("link0.messages") == 1


# ======================================================================
# Link accounting: fault path vs fast path (satellite bugfix)
# ======================================================================
def _noop_fault_model(host: int = 0) -> LinkFaultModel:
    """A fault model whose window multiplies nothing and never errors."""
    plan = FaultPlan(config=FaultConfig(), num_hosts=host + 1)
    plan.degrade_windows[host] = [
        LinkDegradeWindow(host, 0.0, 1e15, 1.0, 1.0)
    ]
    return LinkFaultModel(host, plan, FaultCounters())


class TestLinkAccountingParity:
    SEQUENCE = (
        (TO_DEVICE, 0.0, 4096),
        (TO_DEVICE, 10.0, 64),
        (TO_HOST, 20.0, 256),
        (TO_DEVICE, 100.0, 4096),
    )

    def test_fault_path_counts_like_fast_path_with_registry(self):
        reg_clean, reg_faulty = StatRegistry(), StatRegistry()
        clean = CxlLink(
            SystemConfig.scaled().cxl_link, reg_clean.scoped("link0")
        )
        faulty = CxlLink(
            SystemConfig.scaled().cxl_link, reg_faulty.scoped("link0")
        )
        faulty.attach_faults(_noop_fault_model())
        for direction, now, size in self.SEQUENCE:
            assert faulty.transfer(direction, now, size) == clean.transfer(
                direction, now, size
            )
        assert reg_faulty.snapshot() == reg_clean.snapshot()
        assert reg_clean.get("link0.messages") == len(self.SEQUENCE)

    def test_fault_path_counts_without_registry(self):
        """The old code skipped counting entirely with no registry."""
        link = CxlLink(SystemConfig.scaled().cxl_link)
        link.attach_faults(_noop_fault_model())
        for direction, now, size in self.SEQUENCE:
            link.transfer(direction, now, size)
        assert link._messages.value == len(self.SEQUENCE)
        assert link._bytes.value == sum(s for _, _, s in self.SEQUENCE)

    def test_queue_delay_parity_under_noop_window(self):
        """``transfer`` and ``_transfer_with_faults`` must evolve the
        same ``_busy_until`` and charge the same queue_ns under a no-op
        fault window."""
        clean = CxlLink(SystemConfig.scaled().cxl_link)
        faulty = CxlLink(SystemConfig.scaled().cxl_link)
        faulty.attach_faults(_noop_fault_model())
        for direction, now, size in self.SEQUENCE:
            clean.transfer(direction, now, size)
            faulty.transfer(direction, now, size)
            assert faulty._busy_until == clean._busy_until
        assert faulty._queue_ns.value == clean._queue_ns.value
        assert faulty._queue_ns.value > 0  # the sequence does queue

    def test_retries_count_messages_and_bytes(self):
        config = SystemConfig.scaled()
        plan = FaultPlan.from_config(
            FaultConfig.parse("none:transfer-error-rate=0.5,seed=11"),
            config.num_hosts,
            4096,
        )
        from repro.faults import FaultInjector

        injector = FaultInjector(plan)
        link = CxlLink(config.cxl_link)
        link.attach_faults(injector.link(0))
        sent = 0
        for _ in range(100):
            link.transfer(TO_DEVICE, link.occupancy_until(TO_DEVICE), 64)
            sent += 1
        assert link._retries.value == injector.counters.link_retries
        assert link._retries.value > 0
        # Each retry re-sends the message on the wire.
        assert link._messages.value == sent + link._retries.value


# ======================================================================
# End-to-end: flat identity and backend agreement
# ======================================================================
class TestTopologyEndToEnd:
    def _run(self, topology, scheme="pipm", backend="loop", hosts=4,
             faults=None):
        config = SystemConfig.scaled(num_hosts=hosts)
        if topology is not None:
            config = dataclasses.replace(
                config, fabric=FabricConfig.parse(topology)
            )
        if faults is not None:
            config = dataclasses.replace(
                config, faults=FaultConfig.parse(faults)
            )
        config.validate()
        return run_experiment(
            "pr", scheme, config, scale=WorkloadScale.tiny(),
            backend=backend,
        )

    @pytest.mark.parametrize("backend", ["loop", "vector"])
    def test_flat_is_byte_identical_to_default(self, backend):
        """An explicit flat fabric must not move a single float of the
        pre-fabric (default-config) model the goldens pin."""
        for scheme in ("pipm", "native", "memtis"):
            default = self._run(None, scheme, backend)
            flat = self._run("flat", scheme, backend)
            assert flat.to_record() == default.to_record(), (
                scheme, backend
            )

    @pytest.mark.parametrize("topology", ["single-switch", "two-tier"])
    def test_backends_agree_on_switched_fabrics(self, topology):
        loop = self._run(topology, backend="loop")
        vector = self._run(topology, backend="vector")
        assert vector.to_record() == loop.to_record()

    def test_backends_agree_under_switchdown(self):
        loop = self._run("single-switch", backend="loop",
                         faults="switchdown")
        vector = self._run("single-switch", backend="vector",
                           faults="switchdown")
        assert vector.to_record() == loop.to_record()

    def test_switched_fabrics_cost_time(self):
        flat = self._run("flat")
        single = self._run("single-switch")
        two_tier = self._run("two-tier")
        assert flat.exec_time_ns < single.exec_time_ns
        assert single.exec_time_ns < two_tier.exec_time_ns

    def test_switchdown_costs_time(self):
        clean = self._run("single-switch")
        down = self._run("single-switch", faults="switchdown")
        assert down.exec_time_ns > clean.exec_time_ns
