"""Exit-code matrix and flag behavior of the simcheck CLI driver.

Exit contract: 0 = clean (info notes allowed), 1 = error findings
survived suppressions + baseline, 2 = usage/environment problem.  Each
cell of the matrix is pinned here under ``--json``, ``--baseline``,
and empty-scope variations, plus the v2 flags (``--prune-baseline``,
``--strict-ignores``, ``--protocol-only``).
"""

import json

import pytest

from repro.simcheck.baseline import (
    apply_baseline,
    load_baseline,
    write_baseline,
)
from repro.simcheck.cli import main
from repro.simcheck.findings import Finding

CLEAN = "def f(a, b):\n    return a + b\n"
DIRTY = "import time\n\nt = time.time()\n"
STALE_PRAGMA = "x = 1  # simcheck: ignore[DET001]\n"


@pytest.fixture()
def repo(tmp_path, monkeypatch):
    """A scratch repo the CLI treats as its root."""
    (tmp_path / "src" / "repro").mkdir(parents=True)
    monkeypatch.chdir(tmp_path)
    return tmp_path


def _write(repo, relpath, source):
    path = repo / relpath
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(source)
    return path


class TestExitZero:
    def test_clean_tree(self, repo, capsys):
        _write(repo, "src/repro/ok.py", CLEAN)
        assert main(["src/repro"]) == 0
        assert "0 error(s)" in capsys.readouterr().out

    def test_clean_tree_json(self, repo, capsys):
        _write(repo, "src/repro/ok.py", CLEAN)
        assert main(["src/repro", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["errors"] == 0
        assert payload["files_checked"] == 1

    def test_info_notes_do_not_fail(self, repo, capsys):
        _write(repo, "src/repro/noted.py", STALE_PRAGMA)
        assert main(["src/repro"]) == 0
        out = capsys.readouterr().out
        assert "SUPP001" in out and "1 note(s)" in out

    def test_baselined_error_passes(self, repo, capsys):
        _write(repo, "src/repro/old.py", DIRTY)
        assert main(["src/repro", "--write-baseline"]) == 0
        capsys.readouterr()
        assert main(["src/repro"]) == 0
        assert "1 baselined" in capsys.readouterr().out

    def test_empty_scope_checks_nothing(self, repo, capsys):
        # Default scope is src-only; a tests/ tree yields zero files
        # checked, which is clean, not an error.
        _write(repo, "tests/test_x.py", DIRTY)
        assert main(["tests", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["files_checked"] == 0
        assert payload["findings"] == []


class TestExitOne:
    def test_error_finding(self, repo, capsys):
        _write(repo, "src/repro/bad.py", DIRTY)
        assert main(["src/repro"]) == 1
        assert "DET001" in capsys.readouterr().out

    def test_error_finding_json(self, repo, capsys):
        _write(repo, "src/repro/bad.py", DIRTY)
        assert main(["src/repro", "--json"]) == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload["errors"] == 1
        assert payload["findings"][0]["rule"] == "DET001"

    def test_fresh_finding_beats_stale_baseline(self, repo, capsys):
        _write(repo, "src/repro/old.py", DIRTY)
        assert main(["src/repro", "--write-baseline"]) == 0
        _write(repo, "src/repro/new.py", DIRTY)
        capsys.readouterr()
        assert main(["src/repro"]) == 1
        assert "new.py" in capsys.readouterr().out

    def test_strict_ignores_escalates_stale_pragma(self, repo, capsys):
        _write(repo, "src/repro/noted.py", STALE_PRAGMA)
        assert main(["src/repro", "--strict-ignores"]) == 1
        out = capsys.readouterr().out
        assert "SUPP001 [error]" in out

    def test_scoped_opt_in_surfaces_benchmark_findings(self, repo):
        # Determinism rules skip the tests scope entirely, but the
        # benchmarks scope opts in via --scope.
        _write(repo, "benchmarks/bench_x.py", DIRTY)
        assert main(["benchmarks"]) == 0  # default scope: not checked
        assert main(["benchmarks", "--scope", "benchmarks"]) == 1


class TestExitTwo:
    def test_missing_path(self, repo, capsys):
        assert main(["no/such/dir"]) == 2
        assert "no such path" in capsys.readouterr().err

    def test_unreadable_baseline(self, repo, capsys):
        _write(repo, "src/repro/ok.py", CLEAN)
        (repo / "corrupt.json").write_text("{not json")
        assert main(["src/repro", "--baseline", "corrupt.json"]) == 2
        assert "cannot read baseline" in capsys.readouterr().err

    def test_conflicting_protocol_flags(self, repo, capsys):
        _write(repo, "src/repro/ok.py", CLEAN)
        assert main(["src/repro", "--no-protocol", "--protocol-only"]) == 2
        assert "mutually exclusive" in capsys.readouterr().err

    def test_prune_missing_baseline(self, repo, capsys):
        assert main(["--prune-baseline", "--baseline", "gone.json"]) == 2
        assert "cannot prune baseline" in capsys.readouterr().err


class TestPruneBaseline:
    def test_drops_entries_for_deleted_files(self, repo, capsys):
        _write(repo, "src/repro/old.py", DIRTY)
        assert main(["src/repro", "--write-baseline"]) == 0
        (repo / "src/repro/old.py").unlink()
        capsys.readouterr()
        assert main(["--prune-baseline"]) == 0
        out = capsys.readouterr().out
        assert "dropped 1" in out
        assert load_baseline("simcheck-baseline.json") == {}

    def test_keeps_live_entries(self, repo, capsys):
        _write(repo, "src/repro/old.py", DIRTY)
        assert main(["src/repro", "--write-baseline"]) == 0
        capsys.readouterr()
        assert main(["--prune-baseline"]) == 0
        assert "dropped 0" in capsys.readouterr().out
        assert len(load_baseline("simcheck-baseline.json")) == 1


class TestConformanceNeverBaselined:
    def test_vec_and_proto007_are_ineligible(self, tmp_path):
        vec = Finding(
            rule="VEC001", path="src/repro/sim/engine.py", line=10,
            message="cell never flushed", line_text="t_h += 1",
        )
        drift = Finding(
            rule="PROTO007", path="src/repro/coherence/base_protocol.py",
            line=1, message="drift", line_text="pipm::drift::x",
        )
        det = Finding(
            rule="DET001", path="src/repro/x.py", line=2,
            message="wall clock", line_text="t = time.time()",
        )
        baseline_path = tmp_path / "b.json"
        write_baseline(str(baseline_path), [vec, drift, det])
        baseline = load_baseline(str(baseline_path))
        assert list(baseline) == [det.fingerprint()]

        # Even a hand-edited entry must not grandfather them.
        forced = {
            vec.fingerprint(): 1,
            drift.fingerprint(): 1,
            det.fingerprint(): 1,
        }
        fresh, grandfathered = apply_baseline([vec, drift, det], forced)
        assert grandfathered == 1
        assert {f.rule for f in fresh} == {"VEC001", "PROTO007"}
