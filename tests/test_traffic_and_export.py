"""Traffic reports and trace export/import."""

import numpy as np
import pytest

from repro import SystemConfig, WorkloadScale, generate, make_scheme
from repro.analysis.traffic import LinkTraffic, TrafficReport, traffic_report
from repro.sim.engine import SimulationEngine
from repro.sim.system import MultiHostSystem
from repro.workloads.export import load_trace, save_trace


@pytest.fixture(scope="module")
def run_with_stats():
    cfg = SystemConfig.scaled()
    trace = generate("streamcluster", scale=WorkloadScale.tiny())
    system = MultiHostSystem(cfg, make_scheme("native"),
                             workload_mlp=trace.mlp)
    result = SimulationEngine(system, trace).run()
    return system, result


class TestTrafficReport:
    def test_links_carry_traffic(self, run_with_stats):
        system, result = run_with_stats
        report = traffic_report(system.stats.snapshot(),
                                result.exec_time_ns, system.config.num_hosts)
        assert len(report.links) == 4
        assert report.total_link_bytes > 0
        for link in report.links.values():
            assert link.messages > 0
            assert link.mean_message_bytes > 0

    def test_cxl_dram_traffic_recorded(self, run_with_stats):
        system, result = run_with_stats
        report = traffic_report(system.stats.snapshot(),
                                result.exec_time_ns, 4)
        assert report.cxl_dram_bytes > 0

    def test_achieved_bandwidth_below_limit(self, run_with_stats):
        system, result = run_with_stats
        report = traffic_report(system.stats.snapshot(),
                                result.exec_time_ns, 4)
        for host in range(4):
            # Achieved bandwidth cannot exceed both directions' capacity.
            assert report.link_bandwidth_gbs(host) <= (
                2 * system.config.cxl_link.bandwidth_gbs * 1.05
            )

    def test_busiest_link(self, run_with_stats):
        system, result = run_with_stats
        report = traffic_report(system.stats.snapshot(),
                                result.exec_time_ns, 4)
        busiest = report.busiest_link()
        assert report.links[busiest].bytes == max(
            l.bytes for l in report.links.values()
        )

    def test_render(self, run_with_stats):
        system, result = run_with_stats
        report = traffic_report(system.stats.snapshot(),
                                result.exec_time_ns, 4)
        text = report.render()
        assert "host0" in text
        assert "cxl-dram" in text

    def test_empty_report(self):
        report = TrafficReport(exec_time_ns=0.0)
        assert report.total_link_bytes == 0
        with pytest.raises(ValueError):
            report.busiest_link()
        assert report.link_bandwidth_gbs(0) == 0.0

    def test_link_traffic_mean(self):
        link = LinkTraffic(0, bytes=640, messages=10)
        assert link.mean_message_bytes == 64


class TestTraceExport:
    def test_round_trip(self, tmp_path):
        trace = generate("ycsb", scale=WorkloadScale.tiny())
        path = save_trace(trace, tmp_path / "ycsb.npz")
        loaded = load_trace(path)
        assert loaded.name == trace.name
        assert loaded.num_hosts == trace.num_hosts
        assert loaded.footprint_bytes == trace.footprint_bytes
        assert loaded.mlp == trace.mlp
        assert loaded.streams == trace.streams
        assert [r.name for r in loaded.regions] == [
            r.name for r in trace.regions
        ]

    def test_round_trip_simulates_identically(self, tmp_path):
        from repro import simulate

        cfg = SystemConfig.scaled()
        trace = generate("canneal", scale=WorkloadScale.tiny())
        path = save_trace(trace, tmp_path / "c.npz")
        loaded = load_trace(path)
        a = simulate(trace, make_scheme("native"), cfg)
        b = simulate(loaded, make_scheme("native"), cfg)
        assert a.exec_time_ns == b.exec_time_ns

    def test_suffix_appended(self, tmp_path):
        trace = generate("ycsb", scale=WorkloadScale.tiny())
        path = save_trace(trace, tmp_path / "noext")
        assert str(path).endswith(".npz")
        assert load_trace(str(tmp_path / "noext.npz")).name == "ycsb"

    def test_bad_version_rejected(self, tmp_path):
        import json

        trace = generate("ycsb", scale=WorkloadScale.tiny())
        arrays = {
            f"stream{h}": np.asarray(s, dtype=np.int64)
            for h, s in enumerate(trace.streams)
        }
        meta = {"version": 99, "num_hosts": 4}
        arrays["meta_json"] = np.frombuffer(
            json.dumps(meta).encode(), dtype=np.uint8
        )
        path = tmp_path / "bad.npz"
        np.savez_compressed(path, **arrays)
        with pytest.raises(ValueError):
            load_trace(path)
