"""The Section 6 extension: software control over partial migration."""

import pytest

from repro import units
from repro.config import PipmConfig
from repro.pipm.engine import PipmEngine


def make_engine(**kwargs) -> PipmEngine:
    return PipmEngine(PipmConfig(), num_hosts=4,
                      cxl_capacity_bytes=16 * units.MB,
                      frames_per_host=64, **kwargs)


def drive_vote(engine, page, host, times=8):
    dest = None
    for _ in range(times):
        dest = engine.record_cxl_access(page, host)
    return dest


class TestPinToCxl:
    def test_pinned_page_never_promoted(self):
        engine = make_engine()
        engine.pin_to_cxl(5)
        assert drive_vote(engine, 5, 0, times=50) is None
        assert engine.counters.promotions == 0

    def test_pin_revokes_existing_migration(self):
        engine = make_engine()
        assert drive_vote(engine, 5, 0) == 0
        entry = engine.local_tables[0].lookup(5)
        engine.incremental_migrate(0, entry, 3)
        engine.pin_to_cxl(5)
        assert 5 not in engine.local_tables[0]
        assert engine.counters.revocations == 1

    def test_unpin_restores_migration(self):
        engine = make_engine()
        engine.pin_to_cxl(5)
        engine.unpin(5)
        assert engine.migration_enabled(5)
        assert drive_vote(engine, 5, 0) == 0

    def test_migration_enabled_query(self):
        engine = make_engine()
        assert engine.migration_enabled(9)
        engine.pin_to_cxl(9)
        assert not engine.migration_enabled(9)


class TestExplicitMigrationRequest:
    def test_request_creates_mapping_without_vote(self):
        engine = make_engine()
        assert engine.request_partial_migration(7, host=2)
        assert 7 in engine.local_tables[2]
        assert engine.global_table.current_host(7) == 2
        assert engine.counters.promotions == 1

    def test_request_respects_pin(self):
        engine = make_engine()
        engine.pin_to_cxl(7)
        assert not engine.request_partial_migration(7, host=2)

    def test_request_respects_existing_mapping(self):
        engine = make_engine()
        engine.request_partial_migration(7, host=2)
        assert not engine.request_partial_migration(7, host=3)

    def test_request_respects_frame_budget(self):
        engine = PipmEngine(PipmConfig(), 4, 16 * units.MB,
                            frames_per_host=1)
        assert engine.request_partial_migration(1, host=0)
        assert not engine.request_partial_migration(2, host=0)
        assert engine.counters.promotions_denied == 1

    def test_static_map_rejects_requests(self):
        engine = make_engine(static_map=True)
        assert not engine.request_partial_migration(7, host=2)

    def test_requested_page_migrates_incrementally(self):
        engine = make_engine()
        engine.request_partial_migration(7, host=2)
        entry = engine.local_tables[2].lookup(7)
        assert engine.incremental_migrate(2, entry, 0)
        assert entry.line_migrated(0)
