"""Harmful-migration ledger, breakdowns, report formatting."""

import pytest

from repro import SystemConfig
from repro.analysis.harmful import MigrationLedger, reference_latencies
from repro.analysis.report import Table, format_series, format_table, geomean, mean


class TestReferenceLatencies:
    def test_ordering(self, scaled_config):
        local, cxl, inter = reference_latencies(scaled_config)
        assert local < cxl < inter

    def test_cxl_is_2_to_3x_local(self, paper_config):
        """The paper's headline latency ratio (Section 1)."""
        local, cxl, _ = reference_latencies(paper_config)
        assert 1.8 < cxl / local < 3.5

    def test_latency_knob_feeds_through(self, scaled_config):
        slow = scaled_config.replace_nested("cxl_link", latency_ns=100.0)
        _, cxl_fast, _ = reference_latencies(scaled_config)
        _, cxl_slow, _ = reference_latencies(slow)
        assert cxl_slow > cxl_fast + 90


class TestMigrationLedger:
    @pytest.fixture()
    def ledger(self, scaled_config) -> MigrationLedger:
        return MigrationLedger(scaled_config)

    def test_beneficial_migration(self, ledger):
        ledger.record_migration(1, dest=0)
        for _ in range(10_000):
            ledger.record_local_access(1)
        ledger.record_demotion(1)
        assert ledger.total_migrations == 1
        assert ledger.harmful_migrations == 0

    def test_harmful_migration(self, ledger):
        ledger.record_migration(1, dest=0)
        for _ in range(1000):
            ledger.record_remote_access(1)
        ledger.record_demotion(1)
        assert ledger.harmful_migrations == 1

    def test_migration_cost_counts_as_harm(self, ledger):
        """A migration with zero subsequent traffic is net harmful."""
        ledger.record_migration(1, dest=0)
        ledger.record_demotion(1)
        assert ledger.harmful_migrations == 1

    def test_finalize_classifies_live(self, ledger):
        ledger.record_migration(1, dest=0)
        ledger.record_migration(2, dest=1)
        ledger.finalize()
        assert ledger.total_migrations == 2
        assert ledger.harmful_migrations == 2

    def test_remigration_finalizes_previous(self, ledger):
        ledger.record_migration(1, dest=0)
        ledger.record_migration(1, dest=1)
        assert ledger.total_migrations == 2

    def test_harmful_fraction(self, ledger):
        assert ledger.harmful_fraction == 0.0
        ledger.record_migration(1, 0)
        ledger.record_demotion(1)
        ledger.record_migration(2, 0)
        for _ in range(10_000):
            ledger.record_local_access(2)
        ledger.record_demotion(2)
        assert ledger.harmful_fraction == 0.5

    def test_untracked_events_ignored(self, ledger):
        ledger.record_local_access(99)
        ledger.record_remote_access(99)
        ledger.record_demotion(99)
        assert ledger.total_migrations == 0


class TestAggregates:
    def test_mean(self):
        assert mean([1, 2, 3]) == 2
        assert mean([]) == 0

    def test_geomean(self):
        assert geomean([1, 4]) == pytest.approx(2.0)
        assert geomean([]) == 0
        assert geomean([0, 2]) == 2  # zeros skipped


class TestTables:
    def test_table_renders_aligned(self):
        table = Table("T", ["a", "bb"])
        table.add_row("x", 1)
        out = table.render()
        assert "T" in out
        assert "x" in out

    def test_row_arity_checked(self):
        with pytest.raises(ValueError):
            Table("T", ["a"]).add_row(1, 2)

    def test_format_table(self):
        out = format_table("T", ["w", "v"], [("pr", 1.5), ("bfs", 2.0)])
        assert "pr" in out and "2.0" in out

    def test_format_series_with_geomean_row(self):
        out = format_series(
            "S", {"pr": {"pipm": 2.0}, "bfs": {"pipm": 0.5}}, mean_row="gmean"
        )
        assert "gmean" in out
        assert "1.000" in out  # geomean(2, 0.5)

    def test_format_series_empty(self):
        assert "empty" in format_series("S", {})
