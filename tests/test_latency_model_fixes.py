"""Regression tests for the shared-access-path latency-model fixes.

Each class pins one of the four bugs fixed in PR 5:

* owner-drop on LLC eviction (``_S if sharers else _S`` dead ternary),
* local remap radix walk charged as ``2 *`` one read at the data address,
* global remap-table walk reading the data page's own first line (and
  thereby faking a row hit on the data read that follows),
* inter-host non-cacheable writes charged as owner-DRAM *reads*.
"""

import pytest

from repro import units
from repro.config import SystemConfig
from repro.policies import make_scheme
from repro.sim.system import MultiHostSystem


@pytest.fixture()
def cfg() -> SystemConfig:
    return SystemConfig.scaled()


def make_system(cfg, scheme_name, **kw) -> MultiHostSystem:
    return MultiHostSystem(cfg, make_scheme(scheme_name), workload_mlp=4.0,
                           **kw)


class RecordingController:
    """Wraps a MemoryController and logs which API served each address."""

    def __init__(self, inner):
        self.inner = inner
        self.reads = []
        self.writes = []

    def read_line(self, addr, now):
        self.reads.append(addr)
        return self.inner.read_line(addr, now)

    def write_line(self, addr, now):
        self.writes.append(addr)
        return self.inner.write_line(addr, now)

    def transfer_page(self, addr, now):
        return self.inner.transfer_page(addr, now)


class TestOwnerDropOnEviction:
    """``_handle_llc_eviction`` must drop the evicting owner for real."""

    def test_owner_eviction_keeps_remaining_sharers_shared(self, cfg):
        system = make_system(cfg, "native")
        addr = 0x2000
        line = addr >> units.LINE_SHIFT
        # Host 0 writes (M, owner 0), host 1 reads (S, sharers {0, 1}).
        system.access(0, 0, addr, True, 0.0)
        system.access(1, 0, addr, False, 1000.0)
        entry = system.device_dir.peek(line)
        assert entry.owner == 0 and entry.sharers == {0, 1}
        victim = system.hosts[0].llc.peek(line)
        assert victim is not None
        system._handle_llc_eviction(system.hosts[0], victim, 2000.0)
        entry = system.device_dir.peek(line)
        assert entry is not None
        assert entry.owner == -1
        assert entry.state == 1  # Shared: host 1 still holds a copy
        assert entry.sharers == {1}

    def test_sole_owner_eviction_removes_entry(self, cfg):
        system = make_system(cfg, "native")
        addr = 0x3000
        line = addr >> units.LINE_SHIFT
        system.access(0, 0, addr, True, 0.0)
        victim = system.hosts[0].llc.peek(line)
        assert victim is not None
        system._handle_llc_eviction(system.hosts[0], victim, 1000.0)
        assert system.device_dir.peek(line) is None


class TestLocalRemapWalk:
    """A local remap-cache miss walks the *table*, not the data address."""

    def test_walk_issues_two_distinct_table_reads(self, cfg):
        system = make_system(cfg, "pipm")
        host = system.hosts[0]
        spy = RecordingController(host.local_mem)
        host.local_mem = spy
        addr = 0x40_0000  # shared page, never touched: cold walk
        system.access(0, 0, addr, False, 0.0)
        # Exactly one read per radix level, nothing else in local DRAM.
        assert len(spy.reads) == 2
        root_read, leaf_read = spy.reads
        assert root_read != leaf_read
        table_base = system.address_map.total_capacity
        assert root_read >= table_base
        assert leaf_read >= table_base
        assert addr not in spy.reads

    def test_walk_cannot_alias_data_rows(self, cfg):
        """No walk address shares a DRAM row with any data address."""
        system = make_system(cfg, "pipm")
        row_bytes = cfg.local_dram.row_bytes
        data_top_row = (system.address_map.total_capacity - 1) // row_bytes
        host = system.hosts[0]
        spy = RecordingController(host.local_mem)
        host.local_mem = spy
        for page_offset in (0, 1, 1024, 4096):
            system.access(0, 0, 0x40_0000 + page_offset * units.PAGE_SIZE,
                          False, float(page_offset))
        assert spy.reads, "expected cold-page walks"
        assert all(a // row_bytes > data_top_row for a in spy.reads)

    def test_repeat_page_hits_remap_cache_no_walk(self, cfg):
        system = make_system(cfg, "pipm")
        host = system.hosts[0]
        addr = 0x40_0000
        system.access(0, 0, addr, False, 0.0)
        spy = RecordingController(host.local_mem)
        host.local_mem = spy
        # Second access to the same page, different line: remap cache hit.
        system.access(0, 0, addr + 2 * units.CACHE_LINE, False, 1000.0)
        assert spy.reads == []


class TestGlobalRemapWalk:
    """A global remap-table walk must not warm the data line's row."""

    def _cxl_stat(self, system, name):
        return sum(
            value
            for key, value in system.stats.snapshot().items()
            if key.startswith("cxl_mem.") and key.endswith(name)
        )

    def test_walk_miss_does_not_fake_a_row_hit(self, cfg):
        system = make_system(cfg, "pipm")
        page = 64
        addr = page << units.PAGE_SHIFT  # the page's own first line
        system.access(0, 0, addr, False, 0.0)
        # Pre-fix the walk read *was* `read_line(page << PAGE_SHIFT)`: it
        # opened the data row and turned the data read into a guaranteed
        # row hit.  Cold banks must now see two genuine row misses (table
        # walk + data read).
        assert self._cxl_stat(system, "row_hits") == 0
        assert self._cxl_stat(system, "row_misses") == 2

    def test_walk_address_is_in_dedicated_region(self, cfg):
        system = make_system(cfg, "pipm")
        spy = RecordingController(system.cxl_mem)
        system.cxl_mem = spy
        page = 64
        addr = page << units.PAGE_SHIFT
        system.access(0, 0, addr, False, 0.0)
        walk_reads = [a for a in spy.reads if a != addr]
        assert len(walk_reads) == 1
        assert walk_reads[0] >= system.address_map.total_capacity


class TestInterHostWriteModeling:
    """Fig. 3 step 4: inter-host writes land in the owner's DRAM."""

    def _setup(self, cfg):
        system = make_system(cfg, "memtis")
        page = 16
        system.page_map[page] = 1  # page migrated to host 1
        owner = system.hosts[1]
        spy = RecordingController(owner.local_mem)
        owner.local_mem = spy
        return system, page, spy

    def test_uncached_inter_host_write_is_a_dram_write(self, cfg):
        system, page, spy = self._setup(cfg)
        addr = page << units.PAGE_SHIFT
        lat, svc = system.access(0, 0, addr, True, 0.0)
        assert svc == 6  # ServicePoint.INTER_HOST
        assert spy.writes == [addr]
        assert spy.reads == []

    def test_uncached_inter_host_read_still_reads(self, cfg):
        system, page, spy = self._setup(cfg)
        addr = page << units.PAGE_SHIFT
        lat, svc = system.access(0, 0, addr, False, 0.0)
        assert svc == 6
        assert spy.reads == [addr]
        assert spy.writes == []
