"""Units for the simcheck dataflow layer and golden tests for FLOW rules.

The flow subpackage is the dataflow substrate (CFG -> reaching defs ->
taint); the FLOW rules are its first clients.  The defect-injection
cases at the bottom are the acceptance tests for the family: an
unseeded RNG threaded through aliases into simulation code must be
caught by FLOW001 via a real def-use chain, not a line grep.
"""

import ast
import textwrap

from repro.simcheck import lint_source
from repro.simcheck.engine import REGISTRY
from repro.simcheck.flow import (
    ReachingDefinitions,
    TaintAnalysis,
    build_cfg,
    iter_function_units,
)


def _unit(source, name=None):
    """CFG for the first function in ``source`` (or the module body)."""
    tree = ast.parse(textwrap.dedent(source))
    units = dict((n, u) for u, n in iter_function_units(tree))
    if name is None:
        name = next(n for n in units if n != "<module>")
    return build_cfg(units[name], name)


def _lint(source, rule_id, **kwargs):
    return lint_source(
        textwrap.dedent(source), rules=[REGISTRY[rule_id]], **kwargs
    )


class TestCfg:
    def test_straight_line_is_single_path(self):
        cfg = _unit("""
            def f():
                a = 1
                b = a + 1
                return b
        """)
        body = next(b for b in cfg.blocks if b.stmts)
        assert [type(s).__name__ for s in body.stmts] == [
            "Assign", "Assign", "Return",
        ]
        assert cfg.exit in body.succs

    def test_if_else_branches_rejoin(self):
        cfg = _unit("""
            def f(c):
                if c:
                    x = 1
                else:
                    x = 2
                return x
        """)
        return_blocks = [
            b for b in cfg.blocks
            if any(isinstance(s, ast.Return) for s in b.stmts)
        ]
        assert len(return_blocks) == 1
        # Both arms of the if feed the join block holding the return.
        assert len(return_blocks[0].preds) == 2

    def test_while_has_back_edge(self):
        cfg = _unit("""
            def f(n):
                while n:
                    n -= 1
                return n
        """)
        header = next(
            b for b in cfg.blocks
            if any(isinstance(s, ast.While) for s in b.stmts)
        )
        body = next(
            b for b in cfg.blocks
            if any(isinstance(s, ast.AugAssign) for s in b.stmts)
        )
        assert header.bid in body.succs  # loop back edge
        assert len(header.succs) == 2  # body + fall-through

    def test_code_after_return_is_disconnected(self):
        cfg = _unit("""
            def f():
                return 1
                x = 2
        """)
        dead = next(
            b for b in cfg.blocks
            if any(isinstance(s, ast.Assign) for s in b.stmts)
        )
        assert not dead.preds

    def test_unit_enumeration_and_qualified_names(self):
        tree = ast.parse(textwrap.dedent("""
            def top():
                def inner():
                    pass

            class Box:
                def method(self):
                    pass
        """))
        names = [name for _, name in iter_function_units(tree)]
        assert names == ["<module>", "top", "top.inner", "Box.method"]


class TestReachingDefinitions:
    def test_redefinition_kills_earlier_def(self):
        cfg = _unit("""
            def f():
                x = 1
                x = 2
                return x
        """)
        rd = ReachingDefinitions(cfg)
        use = next(
            (node, b, i) for node, b, i, _ in rd.iter_uses()
            if node.id == "x"
        )
        defs = rd.defs_at(use[1], use[2], "x")
        assert [d.line for d in defs] == [4]

    def test_branch_join_keeps_both_defs(self):
        cfg = _unit("""
            def f(c):
                if c:
                    x = 1
                else:
                    x = 2
                return x
        """)
        rd = ReachingDefinitions(cfg)
        use = next(
            (node, b, i) for node, b, i, _ in rd.iter_uses()
            if node.id == "x"
        )
        defs = rd.defs_at(use[1], use[2], "x")
        assert sorted(d.line for d in defs) == [4, 6]

    def test_loop_carried_def_reaches_header(self):
        cfg = _unit("""
            def f(n):
                total = 0
                while n:
                    total = total + n
                    n -= 1
                return total
        """)
        rd = ReachingDefinitions(cfg)
        final_use = max(
            ((node, b, i) for node, b, i, _ in rd.iter_uses()
             if node.id == "total"),
            key=lambda u: u[0].lineno,
        )
        lines = sorted(d.line for d in rd.defs_at(final_use[1], final_use[2], "total"))
        assert lines == [3, 5]  # init and loop body both reach the return

    def test_parameters_are_definitions(self):
        cfg = _unit("""
            def f(a, b=1):
                return a + b
        """)
        rd = ReachingDefinitions(cfg)
        use = next(
            (node, b, i) for node, b, i, _ in rd.iter_uses()
            if node.id == "a"
        )
        defs = rd.defs_at(use[1], use[2], "a")
        assert len(defs) == 1 and next(iter(defs)).var == "a"


class TestTaintAnalysis:
    @staticmethod
    def _tag_calls(tag_by_func):
        def transfer(d, env):
            value = d.value
            if isinstance(value, ast.Call) and isinstance(value.func, ast.Name):
                name = value.func.id
                if name in tag_by_func:
                    return frozenset({tag_by_func[name]})
            if isinstance(value, ast.Name):
                return env.get(value.id, frozenset())
            return frozenset()
        return transfer

    def test_tags_flow_through_aliases(self):
        cfg = _unit("""
            def f():
                a = make()
                b = a
                c = b
                return c
        """)
        rd = ReachingDefinitions(cfg)
        ta = TaintAnalysis(cfg, rd, self._tag_calls({"make": "hot"}))
        use = next(
            (node, b, i) for node, b, i, _ in rd.iter_uses()
            if node.id == "c"
        )
        assert ta.tags_at(use[0], use[1], use[2]) == frozenset({"hot"})

    def test_branch_join_unions_tags(self):
        cfg = _unit("""
            def f(c):
                if c:
                    g = cold()
                else:
                    g = hot()
                return g
        """)
        rd = ReachingDefinitions(cfg)
        ta = TaintAnalysis(
            cfg, rd, self._tag_calls({"hot": "hot", "cold": "cold"})
        )
        use = next(
            (node, b, i) for node, b, i, _ in rd.iter_uses()
            if node.id == "g"
        )
        assert ta.tags_at(use[0], use[1], use[2]) == frozenset({"hot", "cold"})


class TestFlow001RngProvenance:
    def test_unseeded_rng_drawn_from_is_flagged(self):
        findings = _lint("""
            import random

            def pick(n):
                rng = random.Random()
                gen = rng
                return gen.randrange(n)
        """, "FLOW001")
        assert [f.rule for f in findings] == ["FLOW001"]
        assert findings[0].line == 7  # the escaping use, not the ctor

    def test_seeded_rng_is_clean(self):
        findings = _lint("""
            import random

            def pick(n, seed):
                rng = random.Random(seed)
                return rng.randrange(n)
        """, "FLOW001")
        assert findings == []

    def test_seed_call_sanitizes(self):
        findings = _lint("""
            import random

            def pick(n, seed):
                rng = random.Random()
                rng.seed(seed)
                return rng.randrange(n)
        """, "FLOW001")
        assert findings == []

    def test_defect_unseeded_rng_reaches_simulate(self):
        # Acceptance defect: an unseeded generator threaded through an
        # alias into the simulation entry point.
        findings = _lint("""
            import numpy as np

            def run(spec):
                rng = np.random.default_rng()
                gen = rng
                return simulate(spec, gen)
        """, "FLOW001")
        assert [f.rule for f in findings] == ["FLOW001"]
        assert "without a seed" in findings[0].message

    def test_partially_unseeded_branch_is_flagged(self):
        findings = _lint("""
            import random

            def pick(flag, n):
                if flag:
                    rng = random.Random(7)
                else:
                    rng = random.Random()
                return rng.randrange(n)
        """, "FLOW001")
        assert [f.rule for f in findings] == ["FLOW001"]


class TestFlow002LatencyUnitTaint:
    def test_ns_plus_counter_is_flagged(self):
        findings = _lint("""
            def cost(events):
                total_ns = 0.0
                n_hits = 0
                for ev in events:
                    total_ns += ev.lat_ns
                    n_hits += 1
                return total_ns + n_hits
        """, "FLOW002")
        assert [f.rule for f in findings] == ["FLOW002"]

    def test_ns_times_counter_is_clean(self):
        findings = _lint("""
            def cost(events, lat_ns):
                n_hits = 0
                for ev in events:
                    n_hits += 1
                return lat_ns * n_hits
        """, "FLOW002")
        assert findings == []

    def test_counter_augadded_into_ns_accumulator_is_flagged(self):
        findings = _lint("""
            def cost(samples):
                total_ns = 0.0
                n = 0
                for s in samples:
                    n += 1
                total_ns += n
                return total_ns
        """, "FLOW002")
        assert [f.rule for f in findings] == ["FLOW002"]
