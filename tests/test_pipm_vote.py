"""Boyer-Moore majority-vote migration policy (Section 4.2, Fig. 7)."""

import pytest

from repro.config import PipmConfig
from repro.pipm.majority_vote import MajorityVote, VoteDecision
from repro.pipm.remap_global import NO_HOST, GlobalRemapEntry
from repro.pipm.remap_local import LocalRemapEntry


@pytest.fixture()
def vote() -> MajorityVote:
    return MajorityVote(PipmConfig())


@pytest.fixture()
def entry() -> GlobalRemapEntry:
    return GlobalRemapEntry()


class TestGlobalCounter:
    def test_first_access_claims_candidacy(self, vote, entry):
        assert vote.on_cxl_access(entry, 2) is VoteDecision.NONE
        assert entry.candidate_host == 2
        assert entry.counter == 1

    def test_candidate_accumulates_to_threshold(self, vote, entry):
        decisions = [vote.on_cxl_access(entry, 1) for _ in range(8)]
        assert decisions[-1] is VoteDecision.PROMOTE
        assert VoteDecision.PROMOTE not in decisions[:-1]

    def test_other_hosts_decrement(self, vote, entry):
        for _ in range(4):
            vote.on_cxl_access(entry, 1)
        for _ in range(3):
            assert vote.on_cxl_access(entry, 2) is VoteDecision.NONE
        assert entry.counter == 1
        assert entry.candidate_host == 1

    def test_candidate_swap_at_zero(self, vote, entry):
        vote.on_cxl_access(entry, 1)
        vote.on_cxl_access(entry, 2)  # counter back to 0
        assert entry.counter == 0
        vote.on_cxl_access(entry, 3)  # step 1: next accessor claims
        assert entry.candidate_host == 3
        assert entry.counter == 1

    def test_balanced_access_never_promotes(self, vote, entry):
        """Short-term-balanced sharing correctly avoids migration (4.5)."""
        for i in range(100):
            decision = vote.on_cxl_access(entry, i % 4)
            assert decision is VoteDecision.NONE

    def test_counter_saturates_at_6_bits(self, vote, entry):
        for _ in range(100):
            vote.on_cxl_access(entry, 1)
        assert entry.counter <= 63

    def test_promote_commits(self, vote, entry):
        for _ in range(8):
            vote.on_cxl_access(entry, 1)
        dest = vote.promote(entry)
        assert dest == 1
        assert entry.current_host == 1
        assert entry.candidate_host == NO_HOST
        assert entry.counter == 0

    def test_promote_without_candidate_rejected(self, vote, entry):
        with pytest.raises(ValueError):
            vote.promote(entry)

    def test_vote_on_migrated_page_rejected(self, vote, entry):
        entry.current_host = 1
        with pytest.raises(ValueError):
            vote.on_cxl_access(entry, 0)


class TestLocalCounter:
    def _local(self) -> LocalRemapEntry:
        return LocalRemapEntry(page=1, local_pfn=0, counter=8)

    def test_local_access_saturates_at_4_bits(self, vote):
        entry = self._local()
        for _ in range(100):
            vote.on_local_access(entry)
        assert entry.counter == 15

    def test_inter_host_decrements_to_revoke(self, vote):
        entry = self._local()
        decisions = [vote.on_inter_host_access(entry) for _ in range(8)]
        assert decisions[-1] is VoteDecision.REVOKE
        assert VoteDecision.REVOKE not in decisions[:-1]
        assert entry.counter == 0

    def test_local_accesses_defend_migration(self, vote):
        entry = self._local()
        for _ in range(50):
            vote.on_inter_host_access(entry)
            vote.on_local_access(entry)
            vote.on_local_access(entry)
        assert entry.counter > 0

    def test_revoke_resets_global(self, vote, entry):
        entry.current_host = 3
        entry.counter = 5
        vote.revoke(entry)
        assert entry.current_host == NO_HOST
        assert entry.counter == 0


def test_threshold_validation():
    import dataclasses

    cfg = dataclasses.replace(PipmConfig(), migration_threshold=0)
    with pytest.raises(ValueError):
        MajorityVote(cfg)
