"""Golden-record determinism: the full figure-matrix output, pinned.

``tests/golden/core_records.json`` holds the complete
``SimulationResult.to_record()`` of each microbench case (a PIPM run, a
baseline CXL run, and a kernel-migration run) at tiny scale.  Two
distinct failure modes land here:

* a *model* change (including a latency-bug fix) moves the numbers —
  expected exactly once per intentional change, regenerate with
  ``python -m repro profile --scale tiny --write-golden
  tests/golden/core_records.json``;
* a *performance* change moves the numbers — never acceptable; the perf
  work in this repo is required to be output-neutral.
"""

import json
from pathlib import Path

from repro.sim.profile import PROFILE_CASES, compare_records, run_microbench
from repro.sim.results import SimulationResult

GOLDEN = Path(__file__).parent / "golden" / "core_records.json"


def test_records_match_golden_file():
    golden = json.loads(GOLDEN.read_text())
    assert golden["scale"] == "tiny"
    result = run_microbench(scale="tiny", cases=PROFILE_CASES)
    problems = compare_records(result.records(), golden["records"])
    assert problems == [], "\n".join(problems)


def test_vector_backend_matches_golden_file():
    """The batched engine backend must reproduce the same pinned bytes."""
    golden = json.loads(GOLDEN.read_text())
    result = run_microbench(
        scale="tiny", cases=PROFILE_CASES, backend="vector"
    )
    problems = compare_records(result.records(), golden["records"])
    assert problems == [], "\n".join(problems)


def test_golden_covers_pipm_and_kernel_migration():
    """The pinned matrix must exercise both mechanisms' hot paths."""
    schemes = {scheme for _, scheme in PROFILE_CASES}
    assert "pipm" in schemes
    assert "memtis" in schemes  # kernel page migration
    golden = json.loads(GOLDEN.read_text())
    assert set(golden["records"]) == {
        f"{w}/{s}" for w, s in PROFILE_CASES
    }


def test_golden_records_round_trip():
    """Every pinned record must still load through from_record."""
    golden = json.loads(GOLDEN.read_text())
    for key, record in golden["records"].items():
        result = SimulationResult.from_record(record)
        assert result.to_record() == record, key
