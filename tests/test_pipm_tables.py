"""Global/local remapping tables and remap caches (Sections 4.2, 4.4)."""

import pytest

from repro import units
from repro.config import PipmConfig
from repro.pipm.remap_cache import InfiniteRemapCache, RemapCache
from repro.pipm.remap_global import NO_HOST, GlobalRemapTable
from repro.pipm.remap_local import LEAF_ENTRIES, LocalRemapTable


@pytest.fixture()
def pipm_cfg() -> PipmConfig:
    return PipmConfig()


class TestGlobalRemapTable:
    def test_lazy_entries(self, pipm_cfg):
        table = GlobalRemapTable(pipm_cfg, 1 * units.MB)
        assert table.peek(5) is None
        entry = table.entry(5)
        assert entry.current_host == NO_HOST
        assert table.peek(5) is entry
        assert table.touched_entries() == 1

    def test_range_check(self, pipm_cfg):
        table = GlobalRemapTable(pipm_cfg, 1 * units.MB)
        with pytest.raises(ValueError):
            table.entry(table.num_pages)
        with pytest.raises(ValueError):
            table.entry(-1)

    def test_space_overhead_is_paper_fraction(self, pipm_cfg):
        """2B per 4KB page = 0.05% of CXL-DSM (Section 4.4)."""
        table = GlobalRemapTable(pipm_cfg, 128 * units.GB)
        assert table.overhead_fraction == pytest.approx(0.000488, rel=0.01)
        assert table.size_bytes == table.num_pages * 2

    def test_migrated_pages_iterator(self, pipm_cfg):
        table = GlobalRemapTable(pipm_cfg, 1 * units.MB)
        table.entry(1).current_host = 2
        table.entry(3)
        migrated = dict(table.migrated_pages())
        assert list(migrated) == [1]


class TestLocalRemapTable:
    def test_insert_lookup_remove(self, pipm_cfg):
        table = LocalRemapTable(pipm_cfg, host_id=0)
        entry = table.insert(7, local_pfn=42)
        assert table.lookup(7) is entry
        assert entry.counter == pipm_cfg.migration_threshold
        assert 7 in table
        removed = table.remove(7)
        assert removed is entry
        assert table.lookup(7) is None

    def test_double_insert_rejected(self, pipm_cfg):
        table = LocalRemapTable(pipm_cfg, 0)
        table.insert(7, 1)
        with pytest.raises(ValueError):
            table.insert(7, 2)

    def test_pfn_must_fit_28_bits(self, pipm_cfg):
        table = LocalRemapTable(pipm_cfg, 0)
        with pytest.raises(ValueError):
            table.insert(1, 1 << 28)

    def test_remove_missing_rejected(self, pipm_cfg):
        with pytest.raises(KeyError):
            LocalRemapTable(pipm_cfg, 0).remove(9)

    def test_line_bitmask(self, pipm_cfg):
        entry = LocalRemapTable(pipm_cfg, 0).insert(1, 0)
        assert not entry.line_migrated(5)
        entry.set_line(5)
        entry.set_line(63)
        assert entry.line_migrated(5)
        assert entry.migrated_count == 2
        entry.clear_line(5)
        assert not entry.line_migrated(5)
        assert entry.migrated_count == 1

    def test_footprint_accounting(self, pipm_cfg):
        table = LocalRemapTable(pipm_cfg, 0)
        e = table.insert(1, 0)
        e.set_line(0)
        e.set_line(1)
        assert table.page_footprint_bytes() == units.PAGE_SIZE
        assert table.line_footprint_bytes() == 2 * units.CACHE_LINE
        assert table.migrated_line_total() == 2

    def test_two_level_walk_cost(self, pipm_cfg):
        assert LocalRemapTable(pipm_cfg, 0).walk_accesses == 2

    def test_overhead_fraction_is_paper_ratio(self, pipm_cfg):
        """4B per 4KB resident page ~ 0.1% of RSS (Section 4.4)."""
        table = LocalRemapTable(pipm_cfg, 0)
        assert table.overhead_fraction(48 * units.GB) == pytest.approx(
            4 / 4096
        )

    def test_size_includes_fixed_root(self, pipm_cfg):
        table = LocalRemapTable(pipm_cfg, 0)
        table.insert(0, 0)
        assert table.size_bytes(resident_pages=1) >= pipm_cfg.radix_root_bytes

    def test_leaves_tracked(self, pipm_cfg):
        table = LocalRemapTable(pipm_cfg, 0)
        table.insert(0, 0)
        table.insert(LEAF_ENTRIES, 1)  # second leaf
        assert table.size_bytes(2) >= (
            pipm_cfg.radix_root_bytes + 2 * units.PAGE_SIZE
        )


class TestRemapCache:
    def test_miss_then_hit(self):
        cache = RemapCache(16 * units.KB, 2, 8, latency_ns=2.0)
        assert not cache.probe(5)
        cache.install(5)
        assert cache.probe(5)
        assert cache.hits == 1
        assert cache.misses == 1

    def test_capacity_entries(self):
        cache = RemapCache(16 * units.KB, 2, 8, 2.0)
        assert cache.capacity_entries == 8192

    def test_eviction_returns_page(self):
        cache = RemapCache(16, 2, 8, 2.0)  # 1 set x 8 ways
        for page in range(8):
            cache.install(page)
        victim = cache.install(100)
        assert victim is not None

    def test_invalidate(self):
        cache = RemapCache(16 * units.KB, 2, 8, 2.0)
        cache.install(5)
        cache.invalidate(5)
        assert not cache.probe(5)

    def test_too_small_rejected(self):
        with pytest.raises(ValueError):
            RemapCache(4, 2, 8, 2.0)

    def test_infinite_cache_always_hits(self):
        cache = InfiniteRemapCache(2.0)
        assert cache.probe(123456)
        assert cache.hit_rate == 1.0
        assert cache.misses == 0
        assert cache.install(1) is None
