"""Per-scheme policy behaviour: Nomad, Memtis, HeMem, OS-skew."""

import pytest

from repro.policies.hemem import HeMemScheme
from repro.policies.memtis import MemtisScheme
from repro.policies.nomad import NomadScheme
from repro.policies.os_skew import OsSkewScheme


def feed(scheme, host, page, times, now=0.0, step=1.0):
    for i in range(times):
        scheme.observe_shared_access(host, page, now + i * step, False)


class TestNomad:
    def make(self, **kw) -> NomadScheme:
        scheme = NomadScheme(interval_ns=100.0, **kw)
        scheme.bind(2, frames_per_host=64)
        return scheme

    def test_promotes_recently_touched(self):
        scheme = self.make(promotion_min_touches=3)
        feed(scheme, 0, page=7, times=5)
        plan = scheme.plan_interval(100.0, {}, {0: 64, 1: 64})
        assert (7, 0) in plan.promotions

    def test_ignores_single_touch(self):
        scheme = self.make(promotion_min_touches=3)
        feed(scheme, 0, page=7, times=1)
        plan = scheme.plan_interval(100.0, {}, {0: 64, 1: 64})
        assert plan.promotions == []

    def test_skips_already_migrated(self):
        scheme = self.make()
        feed(scheme, 0, page=7, times=5)
        plan = scheme.plan_interval(100.0, {7: 1}, {0: 64, 1: 64})
        assert (7, 0) not in plan.promotions

    def test_recency_orders_candidates(self):
        scheme = self.make(max_pages_per_interval=1)
        feed(scheme, 0, page=7, times=4, now=0.0)
        feed(scheme, 0, page=9, times=4, now=50.0)
        plan = scheme.plan_interval(100.0, {}, {0: 64, 1: 64})
        assert plan.promotions == [(9, 0)]

    def test_inactive_aging_demotes(self):
        scheme = self.make(demote_after_intervals=2)
        feed(scheme, 0, page=7, times=5, now=0.0)
        # Page 7 resident at host 0 but untouched for a long time.
        plan = scheme.plan_interval(10_000.0, {7: 0}, {0: 64, 1: 64})
        assert (7, 0) in plan.demotions

    def test_reduced_initiator_cost_flag(self):
        assert NomadScheme.initiator_cost_scale == 0.5
        assert NomadScheme.free_clean_demotions


class TestMemtis:
    def make(self, **kw) -> MemtisScheme:
        scheme = MemtisScheme(interval_ns=100.0, **kw)
        scheme.bind(2, frames_per_host=64)
        return scheme

    def test_promotes_above_threshold(self):
        scheme = self.make(hot_threshold=4.0)
        feed(scheme, 0, page=7, times=6)
        plan = scheme.plan_interval(100.0, {}, {0: 64, 1: 64})
        assert (7, 0) in plan.promotions

    def test_frequency_accumulates_across_intervals(self):
        scheme = self.make(hot_threshold=6.0)
        feed(scheme, 0, page=7, times=4)
        plan = scheme.plan_interval(100.0, {}, {0: 64, 1: 64})
        assert plan.promotions == []
        feed(scheme, 0, page=7, times=4)
        plan = scheme.plan_interval(200.0, {}, {0: 64, 1: 64})
        assert (7, 0) in plan.promotions

    def test_cooling_is_sample_driven(self):
        scheme = self.make(cooling_samples=10, hot_threshold=100.0)
        feed(scheme, 0, page=7, times=12)
        scheme.plan_interval(100.0, {}, {0: 64, 1: 64})
        assert scheme.books[0].freq[7] == 6.0  # 12 folded, then halved

    def test_cooling_demotes_cold_resident(self):
        scheme = self.make(cooling_samples=10, demote_min_freq=2.0)
        feed(scheme, 0, page=9, times=12)  # traffic, but not to page 7
        plan = scheme.plan_interval(100.0, {7: 0}, {0: 64, 1: 64})
        assert (7, 0) in plan.demotions

    def test_no_promotion_without_free_frames(self):
        """Warm residents are never displaced; promotions truncate."""
        scheme = self.make(hot_threshold=2.0)
        scheme.books[0].last_access = {5: 1.0}
        feed(scheme, 0, page=7, times=8)
        plan = scheme.plan_interval(100.0, {5: 0}, {0: 0, 1: 0})
        assert (5, 0) not in plan.demotions
        assert (7, 0) not in plan.promotions


class TestHeMem:
    def test_sampling_reduces_observations(self):
        scheme = HeMemScheme(interval_ns=100.0, sample_period=4)
        scheme.bind(1, 64)
        feed(scheme, 0, page=7, times=7)
        # Only the 4th access sampled, with weight 4.
        assert scheme.books[0].counts.get(7, 0) == 4

    def test_sample_period_validated(self):
        with pytest.raises(ValueError):
            HeMemScheme(sample_period=0)

    def test_promotes_sampled_hot_page(self):
        scheme = HeMemScheme(interval_ns=100.0, sample_period=2,
                             hot_threshold=4.0)
        scheme.bind(1, 64)
        feed(scheme, 0, page=7, times=8)
        plan = scheme.plan_interval(100.0, {}, {0: 64})
        assert (7, 0) in plan.promotions


class TestOsSkew:
    def make(self) -> OsSkewScheme:
        scheme = OsSkewScheme(interval_ns=100.0)
        scheme.bind(2, frames_per_host=64)
        return scheme

    def test_majority_vote_gates_promotion(self):
        scheme = self.make()
        # Balanced access: never promoted.
        for i in range(40):
            scheme.observe_shared_access(i % 2, 7, float(i), False)
        plan = scheme.plan_interval(100.0, {}, {0: 64, 1: 64})
        assert plan.promotions == []

    def test_dominant_host_promoted(self):
        scheme = self.make()
        feed(scheme, 0, page=7, times=10)
        plan = scheme.plan_interval(100.0, {}, {0: 64, 1: 64})
        assert (7, 0) in plan.promotions

    def test_interhost_traffic_triggers_demotion(self):
        scheme = self.make()
        feed(scheme, 0, page=7, times=10)
        plan = scheme.plan_interval(100.0, {}, {0: 64, 1: 64})
        assert (7, 0) in plan.promotions
        # Now host 1 hammers the migrated page.
        feed(scheme, 1, page=7, times=10)
        plan = scheme.plan_interval(200.0, {7: 0}, {0: 63, 1: 64})
        assert (7, 0) in plan.demotions

    def test_revoked_page_cools_down(self):
        scheme = self.make()
        feed(scheme, 0, page=7, times=10)
        scheme.plan_interval(100.0, {}, {0: 64, 1: 64})
        feed(scheme, 1, page=7, times=10)
        scheme.plan_interval(200.0, {7: 0}, {0: 63, 1: 64})
        # Immediately re-dominating must NOT re-queue during the cooldown.
        feed(scheme, 0, page=7, times=10)
        plan = scheme.plan_interval(300.0, {}, {0: 64, 1: 64})
        assert (7, 0) not in plan.promotions

    def test_local_accesses_defend_page(self):
        scheme = self.make()
        feed(scheme, 0, page=7, times=10)
        scheme.plan_interval(100.0, {}, {0: 64, 1: 64})
        # Interleaved: owner keeps winning.
        for i in range(30):
            scheme.observe_shared_access(0, 7, 200.0 + i, False)
            scheme.observe_shared_access(0, 7, 200.0 + i, False)
            scheme.observe_shared_access(1, 7, 200.0 + i, False)
        plan = scheme.plan_interval(300.0, {7: 0}, {0: 63, 1: 64})
        assert (7, 0) not in plan.demotions

    def test_frames_respected(self):
        scheme = self.make()
        feed(scheme, 0, page=7, times=10)
        plan = scheme.plan_interval(100.0, {}, {0: 0, 1: 0})
        assert plan.promotions == []
