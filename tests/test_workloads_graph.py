"""RMAT graph generation and CSR layout."""

import numpy as np
import pytest

from repro import units
from repro.mem.address import HeapAllocator
from repro.workloads.graph import (
    CsrGraph,
    graph_for_footprint,
    layout_graph,
    line_sample,
    rmat_graph,
)


class TestRmatGraph:
    def test_basic_structure(self):
        g = rmat_graph(1024, avg_degree=4, seed=1)
        assert g.num_vertices == 1024
        assert g.num_edges == 1024 * 4
        assert len(g.offsets) == 1025
        assert g.offsets[0] == 0
        assert g.offsets[-1] == g.num_edges

    def test_offsets_monotone(self):
        g = rmat_graph(512, seed=2)
        assert (np.diff(g.offsets) >= 0).all()

    def test_neighbors_in_range(self):
        g = rmat_graph(512, seed=3)
        assert g.neighbors.min() >= 0
        assert g.neighbors.max() < g.num_vertices

    def test_adjacency_lists_sorted(self):
        g = rmat_graph(512, seed=4)
        for v in range(0, 512, 37):
            adj = g.adjacency(v)
            assert (np.diff(adj) >= 0).all()

    def test_power_law_degree_skew(self):
        g = rmat_graph(4096, avg_degree=8, seed=5)
        degrees = np.diff(g.offsets)
        assert degrees.max() > 8 * degrees.mean()

    def test_rounds_to_power_of_two(self):
        g = rmat_graph(1000)
        assert g.num_vertices == 1024

    def test_deterministic(self):
        a = rmat_graph(256, seed=9)
        b = rmat_graph(256, seed=9)
        assert (a.neighbors == b.neighbors).all()

    def test_degree_and_adjacency_accessors(self):
        g = rmat_graph(256, seed=1)
        v = int(np.argmax(np.diff(g.offsets)))
        assert g.degree(v) == len(g.adjacency(v))

    def test_rejects_tiny(self):
        with pytest.raises(ValueError):
            rmat_graph(1)


class TestLayout:
    def test_layout_allocates_four_regions(self):
        g = rmat_graph(256, seed=1)
        heap = HeapAllocator(64 * units.MB)
        lay = layout_graph(heap, g)
        names = [r.name for r in heap.regions]
        assert names == ["offsets", "edges", "prop_a", "prop_b"]
        assert lay.edges_region.size >= g.num_edges * 8

    def test_address_helpers(self):
        g = rmat_graph(256, seed=1)
        heap = HeapAllocator(64 * units.MB)
        lay = layout_graph(heap, g)
        v = np.array([0, 1])
        assert lay.prop_a_addr(v)[1] - lay.prop_a_addr(v)[0] == 8
        assert (lay.offsets_addr(v) >= lay.offsets_region.start).all()

    def test_graph_for_footprint_sizing(self):
        g = graph_for_footprint(4 * units.MB)
        assert 2 * units.MB < g.csr_bytes < 12 * units.MB


class TestLineSample:
    def test_collapses_same_line_runs(self):
        addrs = np.array([0, 8, 16, 64, 72, 128])
        sampled = line_sample(addrs)
        assert sampled.tolist() == [0, 64, 128]

    def test_preserves_alternation(self):
        addrs = np.array([0, 64, 0, 64])
        assert line_sample(addrs).tolist() == [0, 64, 0, 64]

    def test_empty(self):
        assert len(line_sample(np.array([], dtype=np.int64))) == 0
