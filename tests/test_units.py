"""Unit helpers: address arithmetic, conversions, formatting."""

import pytest

from repro import units


class TestAddressMath:
    def test_line_addr(self):
        assert units.line_addr(0) == 0
        assert units.line_addr(63) == 0
        assert units.line_addr(64) == 1
        assert units.line_addr(4096) == 64

    def test_page_addr(self):
        assert units.page_addr(4095) == 0
        assert units.page_addr(4096) == 1

    def test_line_of_page_cycles(self):
        assert units.line_of_page(0) == 0
        assert units.line_of_page(64) == 1
        assert units.line_of_page(4096) == 0
        assert units.line_of_page(4096 - 64) == 63

    def test_page_of_line_inverts_line_addr(self):
        addr = 123 * 4096 + 17 * 64
        assert units.page_of_line(units.line_addr(addr)) == 123

    def test_line_base_inverts(self):
        for line in (0, 1, 77, 2**20):
            assert units.line_addr(units.line_base(line)) == line

    def test_page_base_inverts(self):
        for page in (0, 1, 77, 2**20):
            assert units.page_addr(units.page_base(page)) == page

    def test_lines_per_page(self):
        assert units.LINES_PER_PAGE == 64
        assert units.PAGE_SIZE // units.CACHE_LINE == units.LINES_PER_PAGE


class TestConversions:
    def test_cycles_ns_round_trip(self):
        assert units.cycles_to_ns(4, 4.0) == 1.0
        assert units.ns_to_cycles(1.0, 4.0) == 4.0

    def test_transfer_ns_line_at_5gbs(self):
        # 64B at 5 GB/s ~= 11.9ns
        ns = units.transfer_ns(64, 5.0)
        assert 10 < ns < 14

    def test_transfer_ns_page_scales_linearly(self):
        one = units.transfer_ns(64, 5.0)
        page = units.transfer_ns(4096, 5.0)
        assert page == pytest.approx(one * 64)

    def test_transfer_rejects_nonpositive_bandwidth(self):
        with pytest.raises(ValueError):
            units.transfer_ns(64, 0)


class TestFormatting:
    def test_pretty_size(self):
        assert units.pretty_size(512) == "512B"
        assert units.pretty_size(2048) == "2.0KB"
        assert units.pretty_size(48 * units.GB) == "48.0GB"

    def test_pretty_time(self):
        assert units.pretty_time(50) == "50.0ns"
        assert "us" in units.pretty_time(5000)
        assert "ms" in units.pretty_time(2.5 * units.MS)
        assert "s" in units.pretty_time(3 * units.S)
