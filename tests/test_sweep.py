"""Experiment specs, the content-addressed result store, and trace cache.

Includes the concurrent-writers regression suite for the bug class the
old ``benchmarks/.bench_cache.json`` design had: a single JSON blob read
at import time and rewritten wholesale on every put, so two processes
doing read-modify-write lost each other's entries (and a crash mid-write
corrupted the file for everyone).
"""

from __future__ import annotations

import dataclasses
import json
import multiprocessing
import random
import sys
from pathlib import Path

import pytest

from repro import FaultConfig, SystemConfig
from repro.sim.results import SimulationResult
from repro.sweep import (
    ExperimentSpec,
    ResultStore,
    TraceStore,
    build_matrix,
    content_key,
)
from repro.workloads.trace import WorkloadScale

BENCH_DIR = Path(__file__).resolve().parents[1] / "benchmarks"
if str(BENCH_DIR) not in sys.path:  # for the legacy ResultCache tests
    sys.path.insert(0, str(BENCH_DIR))


# ----------------------------------------------------------------------
# Synthetic results (no simulation needed)
# ----------------------------------------------------------------------
def make_result(rng: random.Random, tag: int = 0) -> SimulationResult:
    """A randomized result exercising every nested field."""
    hosts = rng.randint(1, 8)
    return SimulationResult(
        workload=f"wl{tag}",
        scheme=rng.choice(["native", "pipm", "memtis"]),
        num_hosts=hosts,
        exec_time_ns=rng.random() * 1e9,
        host_time_ns=[rng.random() * 1e9 for _ in range(hosts)],
        instructions=rng.randint(0, 10**12),
        accesses=rng.randint(0, 10**9),
        service_counts={rng.randint(0, 6): rng.randint(0, 10**6)
                        for _ in range(rng.randint(0, 7))},
        stall_ns_by_service={rng.randint(0, 6): rng.random() * 1e8
                             for _ in range(rng.randint(0, 7))},
        mgmt_ns=rng.random() * 1e7,
        transfer_ns=rng.random() * 1e7,
        migrations=rng.randint(0, 10**5),
        demotions=rng.randint(0, 10**5),
        footprint_bytes=rng.randint(0, 2**40),
        peak_local_pages={h: rng.randint(0, 10**4) for h in range(hosts)},
        peak_local_lines={h: rng.randint(0, 10**6) for h in range(hosts)},
        stats={
            "freq_ghz": 4.0,
            "harmful_fraction": rng.random(),
            "pipm_promotions": float(rng.randint(0, 10**4)),
            "fault_link_retries": float(rng.randint(0, 100)),
            "watchdog_violations": float(rng.randint(0, 3)),
        },
    )


def make_spec(**overrides) -> ExperimentSpec:
    kwargs = dict(
        workload="pr",
        scheme="pipm",
        config=SystemConfig.scaled(),
        scale=WorkloadScale.tiny(),
    )
    kwargs.update(overrides)
    return ExperimentSpec.build(**kwargs)


# ----------------------------------------------------------------------
# Spec hashing
# ----------------------------------------------------------------------
class TestExperimentSpec:
    def test_key_is_deterministic(self):
        assert make_spec().key() == make_spec().key()

    def test_defaults_hash_like_explicit_defaults(self):
        implicit = ExperimentSpec.build("pr", "pipm")
        explicit = ExperimentSpec.build(
            "pr", "pipm", config=SystemConfig.scaled(),
            scale=WorkloadScale.default(),
        )
        assert implicit.key() == explicit.key()

    @pytest.mark.parametrize("mutate", [
        lambda: make_spec(workload="ycsb"),
        lambda: make_spec(scheme="native"),
        lambda: make_spec(scale=WorkloadScale.small()),
        lambda: make_spec(config=SystemConfig.scaled().replace_nested(
            "cxl_link", latency_ns=100.0)),
        lambda: make_spec(config=SystemConfig.scaled().replace_nested(
            "pipm", migration_threshold=4)),
        lambda: make_spec(config=SystemConfig.scaled(num_hosts=8)),
        lambda: make_spec(config=dataclasses.replace(
            SystemConfig.scaled(), faults=FaultConfig.parse("flaky"))),
        lambda: make_spec(scheme_kwargs={"interval_ns": 1e5}),
        lambda: make_spec(system_kwargs={"infinite_local_remap_cache": True}),
    ])
    def test_every_spec_dimension_changes_the_key(self, mutate):
        assert mutate().key() != make_spec().key()

    def test_trace_key_ignores_scheme_but_not_hosts(self):
        assert make_spec().trace_key() == make_spec(
            scheme="native").trace_key()
        assert make_spec().trace_key() != make_spec(
            config=SystemConfig.scaled(num_hosts=2)).trace_key()

    def test_unknown_scheme_rejected(self):
        with pytest.raises(ValueError, match="unknown scheme"):
            make_spec(scheme="turbo")

    def test_unserializable_kwargs_rejected(self):
        with pytest.raises(TypeError, match="spec-serializable"):
            make_spec(system_kwargs={"callback": object()})

    def test_matrix_is_deduplicated(self):
        specs = build_matrix(
            ["pr"], ["native", "pipm"], scale=WorkloadScale.tiny(),
            variants=["base", "threshold"],
        )
        keys = [spec.key() for spec in specs]
        assert len(keys) == len(set(keys))
        # base contributes pr/native + pr/pipm; threshold adds the three
        # non-default thresholds (t=8 duplicates base pr/pipm; native
        # baseline duplicates base pr/native).
        assert len(specs) == 5

    def test_matrix_rejects_unknown_variant(self):
        with pytest.raises(ValueError, match="unknown sweep variant"):
            build_matrix(["pr"], ["pipm"], variants=["bogus"])


# ----------------------------------------------------------------------
# Round-trip fidelity
# ----------------------------------------------------------------------
class TestRoundTrip:
    def test_record_round_trip_is_exact(self):
        rng = random.Random(1234)
        for tag in range(25):
            result = make_result(rng, tag)
            assert SimulationResult.from_record(result.to_record()) == result

    def test_record_round_trip_survives_json(self):
        rng = random.Random(99)
        for tag in range(25):
            result = make_result(rng, tag)
            record = json.loads(json.dumps(result.to_record()))
            assert SimulationResult.from_record(record) == result

    def test_store_round_trip_is_exact(self, tmp_path):
        rng = random.Random(7)
        store = ResultStore(tmp_path)
        for tag in range(10):
            spec = make_spec(config=SystemConfig.scaled().replace_nested(
                "cxl_link", latency_ns=25.0 + tag))
            result = make_result(rng, tag)
            store.put(spec, result)
            assert store.get(spec) == result

    def test_store_entries_are_deterministic_bytes(self, tmp_path):
        spec = make_spec()
        result = make_result(random.Random(5))
        a, b = ResultStore(tmp_path / "a"), ResultStore(tmp_path / "b")
        a.put(spec, result)
        b.put(spec, result)
        assert (a.path_for(spec.key()).read_bytes()
                == b.path_for(spec.key()).read_bytes())

    def test_get_miss_and_corrupt_entry(self, tmp_path):
        store = ResultStore(tmp_path)
        spec = make_spec()
        assert store.get(spec) is None
        store.results_dir.mkdir(parents=True, exist_ok=True)
        store.path_for(spec.key()).write_text("{not json")
        assert store.get(spec) is None  # treated as a miss, not a crash

    def test_clear(self, tmp_path):
        store = ResultStore(tmp_path)
        store.put(make_spec(), make_result(random.Random(0)))
        assert len(store) == 1
        assert store.clear() == 1
        assert len(store) == 0


# ----------------------------------------------------------------------
# Trace store
# ----------------------------------------------------------------------
class TestTraceStore:
    def test_disk_round_trip(self, tmp_path):
        store = TraceStore(tmp_path)
        scale = WorkloadScale.tiny()
        trace, hit = store.warm("pr", 4, 4, scale)
        assert not hit
        # A fresh store (new process stand-in) must load, not regenerate.
        fresh = TraceStore(tmp_path)
        again, hit = fresh.warm("pr", 4, 4, scale)
        assert hit
        assert again.streams == trace.streams
        assert again.footprint_bytes == trace.footprint_bytes

    def test_memo_hit(self, tmp_path):
        store = TraceStore(tmp_path)
        scale = WorkloadScale.tiny()
        first, _ = store.warm("ycsb", 4, 4, scale)
        second, hit = store.warm("ycsb", 4, 4, scale)
        assert hit and second is first

    def test_key_depends_on_scale_and_hosts(self):
        tiny = WorkloadScale.tiny()
        assert (TraceStore.key_for("pr", 4, 4, tiny)
                != TraceStore.key_for("pr", 2, 4, tiny))
        assert (TraceStore.key_for("pr", 4, 4, tiny)
                != TraceStore.key_for("pr", 4, 4, WorkloadScale.small()))


# ----------------------------------------------------------------------
# Concurrency regression: no lost entries, no corruption
# ----------------------------------------------------------------------
N_WRITERS = 4
KEYS_PER_WRITER = 12


def _store_writer(args):
    root, writer = args
    rng = random.Random(writer)
    store = ResultStore(root)
    for i in range(KEYS_PER_WRITER):
        store.put_record(
            f"writer{writer}-key{i}",
            {"writer": writer, "i": i, "payload": [rng.random()] * 8},
        )
    return writer


def _legacy_cache_writer(args):
    root, writer = args
    from common import ResultCache  # benchmarks/common.py

    cache = ResultCache(Path(root))
    rng = random.Random(1000 + writer)
    for i in range(KEYS_PER_WRITER):
        cache.put(f"w{writer}|k{i}", make_result(rng, tag=i))
    return writer


def _same_key_writer(args):
    root, writer = args
    store = ResultStore(root)
    for i in range(50):
        store.put_record("contended", {"writer": writer, "i": i})
    return writer


class TestConcurrentWriters:
    def test_parallel_writers_lose_nothing(self, tmp_path):
        with multiprocessing.Pool(N_WRITERS) as pool:
            pool.map(_store_writer,
                     [(str(tmp_path), w) for w in range(N_WRITERS)])
        store = ResultStore(tmp_path)
        assert len(store) == N_WRITERS * KEYS_PER_WRITER
        for writer in range(N_WRITERS):
            for i in range(KEYS_PER_WRITER):
                entry = store.get_record(f"writer{writer}-key{i}")
                assert entry is not None, "lost a concurrent write"
                assert entry["writer"] == writer and entry["i"] == i

    def test_legacy_result_cache_concurrent_writers(self, tmp_path):
        """The bench ResultCache no longer loses concurrent entries."""
        with multiprocessing.Pool(N_WRITERS) as pool:
            pool.map(_legacy_cache_writer,
                     [(str(tmp_path), w) for w in range(N_WRITERS)])
        from common import ResultCache

        cache = ResultCache(tmp_path)
        for writer in range(N_WRITERS):
            rng = random.Random(1000 + writer)
            for i in range(KEYS_PER_WRITER):
                expected = make_result(rng, tag=i)
                got = cache.get(f"w{writer}|k{i}")
                assert got == expected, "lost or corrupted a concurrent write"

    def test_same_key_hammering_never_corrupts(self, tmp_path):
        with multiprocessing.Pool(N_WRITERS) as pool:
            pool.map(_same_key_writer,
                     [(str(tmp_path), w) for w in range(N_WRITERS)])
        entry = ResultStore(tmp_path).get_record("contended")
        assert entry is not None  # valid JSON: last atomic replace won
        assert entry["i"] == 49

    def test_no_temp_file_litter(self, tmp_path):
        store = ResultStore(tmp_path)
        store.put_record("k", {"v": 1})
        leftovers = [p for p in store.results_dir.iterdir()
                     if p.suffix == ".tmp"]
        assert leftovers == []
