"""The static protocol-table analyzer (simcheck's Murphi-compile step)."""

from repro.coherence.messages import MessageType
from repro.coherence.table import (
    ProtocolTable,
    RoleSpec,
    emit,
    illegal,
    t,
    wait,
)
from repro.simcheck.protocol import analyze_repo_tables, analyze_table

REQ = RoleSpec("req", states=("I", "V"), events=("load", "reply"))
DIR = RoleSpec("dir", states=("I", "V"), events=("rd",))


def _rules(findings):
    return sorted({f.rule for f in findings})


def _errors(findings):
    return [f for f in findings if f.severity == "error"]


def _tiny_table(transitions, roles=(REQ, DIR), name="tiny"):
    return ProtocolTable(name=name, roles=tuple(roles),
                         transitions=tuple(transitions))


class TestCleanFixture:
    def test_complete_table_passes(self):
        table = _tiny_table([
            t("req", "I", "load", "V",
              emits=[emit(MessageType.RD_REQ, "dir")],
              waits=[wait(MessageType.DATA, "dir")]),
            t("req", "V", "reply", "V", consumes=[MessageType.DATA]),
            illegal("req", "I", "reply", note="no outstanding request"),
            illegal("req", "V", "load", note="hit, no fabric traffic"),
            t("dir", "I", "rd", "V",
              consumes=[MessageType.RD_REQ],
              emits=[emit(MessageType.DATA, "req")]),
            t("dir", "V", "rd", "V",
              consumes=[MessageType.RD_REQ],
              emits=[emit(MessageType.DATA, "req")]),
        ])
        findings = analyze_table(table)
        assert not _errors(findings)
        # Only the unused-message note remains.
        assert _rules(findings) == ["PROTO006"]


class TestExhaustiveness:
    def test_missing_pair_is_flagged(self):
        table = _tiny_table([
            t("req", "I", "load", "V",
              emits=[emit(MessageType.RD_REQ, "dir")]),
            # (req, I, reply), (req, V, *) and (dir, V, rd) all missing.
            t("dir", "I", "rd", "V", consumes=[MessageType.RD_REQ]),
        ])
        findings = _errors(analyze_table(table))
        assert "PROTO001" in _rules(findings)
        messages = " ".join(f.message for f in findings)
        assert "(req, I, reply)" in messages
        assert "(dir, V, rd)" in messages

    def test_illegal_declaration_counts_as_covered(self):
        table = _tiny_table([
            t("req", "I", "load", "V"),
            illegal("req", "I", "reply"),
            illegal("req", "V", "load"),
            illegal("req", "V", "reply"),
            illegal("dir", "I", "rd"),
            illegal("dir", "V", "rd"),
        ])
        findings = analyze_table(table)
        assert "PROTO001" not in _rules(findings)


class TestDeterminism:
    def test_unguarded_duplicate_is_ambiguous(self):
        table = _tiny_table([
            t("req", "I", "load", "V"),
            t("req", "I", "load", "I"),  # same stimulus, no guards
        ])
        findings = _errors(analyze_table(table))
        ambiguous = [f for f in findings if f.rule == "PROTO002"]
        assert len(ambiguous) == 1
        assert "(req, I, load)" in ambiguous[0].message

    def test_duplicate_guards_are_ambiguous(self):
        table = _tiny_table([
            t("req", "I", "load", "V", guard="migrated"),
            t("req", "I", "load", "I", guard="migrated"),
        ])
        assert "PROTO002" in _rules(_errors(analyze_table(table)))

    def test_distinct_guards_are_deterministic(self):
        table = _tiny_table([
            t("req", "I", "load", "V", guard="line_home"),
            t("req", "I", "load", "I", guard="line_migrated"),
        ])
        assert "PROTO002" not in _rules(analyze_table(table))


class TestClosure:
    def test_orphan_emit_is_flagged(self):
        table = _tiny_table([
            # req emits INV to dir, but no dir transition consumes INV.
            t("req", "I", "load", "V",
              emits=[emit(MessageType.INV, "dir")]),
            t("dir", "I", "rd", "V", consumes=[MessageType.RD_REQ]),
        ])
        orphans = [
            f for f in _errors(analyze_table(table)) if f.rule == "PROTO003"
        ]
        assert len(orphans) == 1
        assert "INV" in orphans[0].message
        assert "orphaned" in orphans[0].message

    def test_wait_without_producer_is_flagged(self):
        table = _tiny_table([
            t("req", "I", "load", "V",
              waits=[wait(MessageType.DATA, "dir")]),
            t("dir", "I", "rd", "V"),  # never emits DATA
        ])
        unsatisfied = [
            f for f in _errors(analyze_table(table)) if f.rule == "PROTO003"
        ]
        assert len(unsatisfied) == 1
        assert "never be satisfied" in unsatisfied[0].message

    def test_wait_counts_as_consumption(self):
        table = _tiny_table([
            t("req", "I", "load", "V",
              emits=[emit(MessageType.RD_REQ, "dir")],
              waits=[wait(MessageType.DATA, "dir")]),
            t("dir", "I", "rd", "V",
              consumes=[MessageType.RD_REQ],
              emits=[emit(MessageType.DATA, "req")]),
        ])
        assert "PROTO003" not in _rules(analyze_table(table))


class TestWaitCycles:
    def test_static_deadlock_is_flagged(self):
        # req stalls on DATA from dir; dir's only DATA-producing
        # transition itself stalls on ACK from req; req's only
        # ACK-producing transition is the stalled one.  Classic cycle.
        table = _tiny_table([
            t("req", "I", "load", "V",
              emits=[emit(MessageType.ACK, "dir")],
              waits=[wait(MessageType.DATA, "dir")]),
            t("dir", "I", "rd", "V",
              emits=[emit(MessageType.DATA, "req")],
              waits=[wait(MessageType.ACK, "req")]),
        ])
        cycles = [
            f for f in _errors(analyze_table(table)) if f.rule == "PROTO004"
        ]
        assert len(cycles) == 1
        assert "wait-for cycle" in cycles[0].message

    def test_nonblocking_producer_breaks_the_cycle(self):
        table = _tiny_table([
            t("req", "I", "load", "V",
              emits=[emit(MessageType.ACK, "dir")],
              waits=[wait(MessageType.DATA, "dir")]),
            # DATA comes from a transition that does not block.
            t("dir", "I", "rd", "V",
              consumes=[MessageType.ACK],
              emits=[emit(MessageType.DATA, "req")]),
        ])
        assert "PROTO004" not in _rules(analyze_table(table))


class TestStructure:
    def test_unknown_state_and_role(self):
        table = _tiny_table([
            t("req", "I", "load", "Z"),  # Z is not a req state
            t("ghost", "I", "load", "V"),  # ghost is not a role
        ])
        findings = _errors(analyze_table(table))
        assert _rules(findings) == ["PROTO005"]
        # Structural breakage suppresses the deeper (noisier) checks.
        assert all(f.rule == "PROTO005" for f in findings)

    def test_unknown_event_and_emit_target(self):
        table = _tiny_table([
            t("req", "I", "poke", "V"),  # poke is not a req event
            t("req", "I", "load", "V",
              emits=[emit(MessageType.RD_REQ, "nowhere")]),
        ])
        messages = " ".join(
            f.message for f in _errors(analyze_table(table))
        )
        assert "poke" in messages
        assert "nowhere" in messages


class TestRealTables:
    def test_base_and_pipm_tables_are_clean(self):
        findings, checked = analyze_repo_tables(".")
        assert sorted(checked) == ["cxl-dsm-msi", "pipm"]
        assert not _errors(findings)

    def test_findings_point_at_the_defining_modules(self):
        findings, _ = analyze_repo_tables(".")
        paths = {f.path for f in findings}
        assert paths <= {
            "src/repro/coherence/base_protocol.py",
            "src/repro/coherence/pipm_protocol.py",
        }
        assert all(f.line > 1 for f in findings)

    def test_module_filter(self):
        findings, checked = analyze_repo_tables(
            ".", ["src/repro/coherence/pipm_protocol.py"]
        )
        assert checked == ["pipm"]

    def test_pipm_table_models_the_migration_states(self):
        from repro.coherence.pipm_protocol import TRANSITION_TABLE

        host = TRANSITION_TABLE.role("host")
        device = TRANSITION_TABLE.role("device")
        assert "ME" in host.states
        assert "I_MIG" in device.states
        # Case 4: an ME eviction is purely local (no fabric messages).
        rows = TRANSITION_TABLE.by_stimulus()[("host", "ME", "evict")]
        assert all(not row.emits and not row.waits for row in rows)
        # Cases 2/5/6: inter-host access to a migrated line migrates back.
        mig_back = [
            row for row in TRANSITION_TABLE.transitions
            if any(e.msg.name == "MIG_BACK" for e in row.emits)
        ]
        assert len(mig_back) >= 3
