"""Explicit-state model checker: the Section 5.1.4 verification."""

import pytest

from repro.coherence.base_protocol import Action, BaseCxlDsmModel
from repro.coherence.checker import CheckResult, ModelChecker, check_protocol
from repro.coherence.pipm_protocol import PipmModel


class TestBaseProtocolVerification:
    @pytest.mark.parametrize("hosts", [1, 2, 3])
    def test_msi_passes(self, hosts):
        result = check_protocol(BaseCxlDsmModel(hosts))
        assert result.ok, [str(v) for v in result.violations]
        assert result.exhausted
        assert result.states_explored > 0

    def test_state_space_grows_with_hosts(self):
        small = check_protocol(BaseCxlDsmModel(2))
        large = check_protocol(BaseCxlDsmModel(3))
        assert large.states_explored > small.states_explored


class TestPipmVerification:
    @pytest.mark.parametrize("hosts,remap", [(2, 0), (2, 1), (3, 0), (3, 2)])
    def test_pipm_passes(self, hosts, remap):
        result = check_protocol(PipmModel(hosts, remap_host=remap))
        assert result.ok, [str(v) for v in result.violations]
        assert result.exhausted

    def test_pipm_explores_migration_states(self):
        base = check_protocol(BaseCxlDsmModel(2))
        pipm = check_protocol(PipmModel(2, remap_host=0))
        # The in-memory bit and ME state enlarge the reachable space.
        assert pipm.states_explored > base.states_explored


class _BuggyModel(BaseCxlDsmModel):
    """MSI with a deliberately broken store: sharers are not invalidated."""

    name = "buggy"

    def _store(self, state, host):
        latest = self.latest_version(state)
        new_version = latest + 1
        caches = list(state.caches)
        caches[host] = (3, new_version)  # M without invalidating others
        return state._replace(
            caches=tuple(caches), dir_state=3, dir_owner=host,
        ), {"written_version": new_version, "latest": latest}


class TestCheckerCatchesBugs:
    def test_missing_invalidation_is_caught(self):
        result = check_protocol(_BuggyModel(2))
        assert not result.ok
        kinds = {v.kind for v in result.violations}
        assert "invariant" in kinds or "data-value" in kinds

    def test_violation_carries_trace(self):
        result = check_protocol(_BuggyModel(2))
        worst = result.violations[0]
        assert isinstance(worst.trace, tuple)
        assert "via" in str(worst)

    def test_max_violations_caps_output(self):
        result = ModelChecker(_BuggyModel(2)).run(max_violations=1)
        assert len(result.violations) == 1


class TestCheckerMechanics:
    def test_state_cap_reported(self):
        result = ModelChecker(BaseCxlDsmModel(3), max_states=5).run()
        assert not result.exhausted

    def test_summary_strings(self):
        ok = check_protocol(BaseCxlDsmModel(2))
        assert "PASS" in ok.summary()
        bad = check_protocol(_BuggyModel(2))
        assert "FAIL" in bad.summary()

    def test_result_dataclass(self):
        r = CheckResult("m", 1, 2)
        assert r.ok
