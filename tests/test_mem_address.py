"""Physical address map, heap allocator, frame allocator."""

import pytest

from repro import units
from repro.mem.address import (
    CXL_NODE,
    AddressMap,
    FrameAllocator,
    HeapAllocator,
    Region,
)


@pytest.fixture()
def amap() -> AddressMap:
    return AddressMap(num_hosts=4, cxl_capacity=16 * units.MB,
                      local_capacity=4 * units.MB)


class TestAddressMap:
    def test_cxl_range_at_bottom(self, amap):
        assert amap.is_cxl(0)
        assert amap.is_cxl(16 * units.MB - 1)
        assert not amap.is_cxl(16 * units.MB)

    def test_home_of_cxl(self, amap):
        assert amap.home_of(123) == CXL_NODE

    def test_home_of_each_host_window(self, amap):
        for host in range(4):
            start, end = amap.local_window(host)
            assert amap.home_of(start) == host
            assert amap.home_of(end - 1) == host

    def test_windows_disjoint_and_ordered(self, amap):
        ends = [amap.local_window(h) for h in range(4)]
        for (s1, e1), (s2, e2) in zip(ends, ends[1:]):
            assert e1 == s2

    def test_out_of_range_rejected(self, amap):
        with pytest.raises(ValueError):
            amap.home_of(amap.total_capacity)
        with pytest.raises(ValueError):
            amap.home_of(-1)

    def test_local_page_to_addr(self, amap):
        addr = amap.local_page_to_addr(1, 3)
        start, _ = amap.local_window(1)
        assert addr == start + 3 * units.PAGE_SIZE

    def test_local_page_bounds(self, amap):
        with pytest.raises(ValueError):
            amap.local_page_to_addr(0, 4 * units.MB // units.PAGE_SIZE)

    def test_unaligned_capacity_rejected(self):
        with pytest.raises(ValueError):
            AddressMap(2, 4096 + 1, 4096)

    def test_needs_a_host(self):
        with pytest.raises(ValueError):
            AddressMap(0, 4096, 4096)


class TestHeapAllocator:
    def test_bump_allocation(self):
        heap = HeapAllocator(1 * units.MB)
        a = heap.alloc("a", 1000)
        b = heap.alloc("b", 1000)
        assert a.start == 0
        assert b.start >= a.end
        assert a.size % units.PAGE_SIZE == 0  # page-aligned padding

    def test_exhaustion(self):
        heap = HeapAllocator(8 * units.KB)
        heap.alloc("a", 4096)
        heap.alloc("b", 4096)
        with pytest.raises(MemoryError):
            heap.alloc("c", 1)

    def test_region_of(self):
        heap = HeapAllocator(1 * units.MB)
        a = heap.alloc("a", 4096)
        assert heap.region_of(a.start) is a
        assert heap.region_of(a.end) is None

    def test_rejects_bad_args(self):
        heap = HeapAllocator(1 * units.MB)
        with pytest.raises(ValueError):
            heap.alloc("zero", 0)
        with pytest.raises(ValueError):
            heap.alloc("align", 100, align=100)

    def test_region_num_pages(self):
        region = Region("r", 4096, 3 * 4096)
        assert region.num_pages == 3


class TestFrameAllocator:
    def test_alloc_until_exhausted(self):
        frames = FrameAllocator(2)
        assert frames.alloc() == 0
        assert frames.alloc() == 1
        assert frames.alloc() is None

    def test_free_recycles(self):
        frames = FrameAllocator(1)
        pfn = frames.alloc()
        frames.free(pfn)
        assert frames.alloc() == pfn

    def test_in_use_and_available(self):
        frames = FrameAllocator(3)
        frames.alloc()
        frames.alloc()
        assert frames.in_use == 2
        assert frames.available == 1

    def test_free_unallocated_rejected(self):
        with pytest.raises(ValueError):
            FrameAllocator(4).free(0)

    def test_needs_positive_capacity(self):
        with pytest.raises(ValueError):
            FrameAllocator(0)
