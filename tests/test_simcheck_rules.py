"""Golden tests for every simcheck AST rule, suppressions, and baseline."""

import textwrap

import pytest

from repro.simcheck import lint_source
from repro.simcheck.baseline import (
    apply_baseline,
    load_baseline,
    write_baseline,
)
from repro.simcheck.engine import LintEngine, all_rules, classify_scope
from repro.simcheck.findings import Finding


def _lint(source, **kwargs):
    return lint_source(textwrap.dedent(source), **kwargs)


def _rules(findings):
    return [f.rule for f in findings]


class TestDeterminismRules:
    def test_wall_clock_flagged(self):
        findings = _lint("""
            import time
            def stamp():
                return time.time()
        """)
        assert _rules(findings) == ["DET001"]
        assert findings[0].line == 4

    def test_datetime_now_flagged_via_alias(self):
        findings = _lint("""
            from datetime import datetime as dt
            def stamp():
                return dt.now()
        """)
        assert _rules(findings) == ["DET001"]

    def test_perf_counter_allowed(self):
        findings = _lint("""
            import time
            def elapsed(t0):
                return time.perf_counter() - t0
        """)
        assert findings == []

    def test_unseeded_rng_flagged(self):
        findings = _lint("""
            import random
            import numpy as np
            a = random.Random()
            b = np.random.default_rng()
        """)
        assert _rules(findings) == ["DET002", "DET002"]

    def test_seeded_rng_allowed(self):
        findings = _lint("""
            import random
            import numpy as np
            a = random.Random(7)
            b = np.random.default_rng(seed=7)
        """)
        assert findings == []

    def test_global_rng_flagged(self):
        findings = _lint("""
            import random
            import numpy as np
            x = random.randint(0, 9)
            y = np.random.shuffle([1, 2])
        """)
        assert _rules(findings) == ["DET003", "DET003"]


class TestConsistencyRule:
    def test_identical_ternary_branches_flagged(self):
        findings = _lint("""
            _S = 1
            def drop(entry):
                entry.state = _S if entry.sharers else _S
        """)
        assert _rules(findings) == ["CON001"]
        assert findings[0].line == 4

    def test_identical_call_branches_flagged(self):
        findings = _lint("""
            def pick(cond, x):
                return f(x) if cond else f(x)
        """)
        assert _rules(findings) == ["CON001"]

    def test_distinct_branches_allowed(self):
        findings = _lint("""
            _I = 0
            _S = 1
            def drop(entry):
                entry.state = _S if entry.sharers else _I
        """)
        assert findings == []

    def test_structurally_equal_not_textually_equal_flagged(self):
        # Whitespace/parens differ but the AST is the same expression.
        findings = _lint("""
            def pick(cond, a, b):
                return (a + b) if cond else a+b
        """)
        assert _rules(findings) == ["CON001"]


class TestOrderingRule:
    def test_for_over_set_literal(self):
        findings = _lint("""
            def f():
                for host in {3, 1, 2}:
                    print(host)
        """)
        assert _rules(findings) == ["ORD001"]

    def test_tracked_set_variable(self):
        findings = _lint("""
            def f(xs):
                sharers = set(xs)
                return [x + 1 for x in sharers]
        """)
        assert _rules(findings) == ["ORD001"]

    def test_annotated_attribute(self):
        findings = _lint("""
            from typing import Set
            class Dir:
                def __init__(self):
                    self.sharers: Set[int] = set()
                def recall(self):
                    for s in self.sharers:
                        yield s
        """)
        assert "ORD001" in _rules(findings)

    def test_list_of_set_flagged_sorted_not(self):
        flagged = _lint("""
            def f(xs):
                return list(set(xs))
        """)
        assert _rules(flagged) == ["ORD001"]
        clean = _lint("""
            def f(xs):
                return sorted(set(xs))
        """)
        assert clean == []

    def test_order_insensitive_consumers_allowed(self):
        findings = _lint("""
            def f(xs):
                s = set(xs)
                return len(s), sum(s), max(s), 3 in s
        """)
        assert findings == []

    def test_reassignment_to_list_clears_tracking(self):
        findings = _lint("""
            def f(xs):
                items = set(xs)
                items = sorted(items)
                for item in items:
                    print(item)
        """)
        assert findings == []


class TestUnitRules:
    def test_rules_only_watch_config_and_mem(self):
        source = """
            size_bytes = 8192
        """
        assert _lint(source, relpath="src/repro/sim/foo.py") == []
        assert _rules(
            _lint(source, relpath="src/repro/config.py")
        ) == ["UNIT001"]
        assert _rules(
            _lint(source, relpath="src/repro/mem/tiering.py")
        ) == ["UNIT001"]

    def test_byte_literal_message_suggests_units(self):
        findings = _lint(
            "llc = dict(size_bytes=4 * 1024 * 1024)",
            relpath="src/repro/config.py",
        )
        assert all(f.rule == "UNIT001" for f in findings)
        assert findings and "units" in findings[0].message

    def test_non_byteish_names_ignored(self):
        findings = _lint(
            "iterations = 2048", relpath="src/repro/config.py"
        )
        assert findings == []

    def test_geometry_literals(self):
        findings = _lint("""
            def lines(total_bytes, addr):
                count = total_bytes // 64
                page = addr >> 12
                return count, page
        """, relpath="src/repro/mem/cxl_mem.py")
        assert _rules(findings) == ["UNIT002", "UNIT002"]

    def test_unit_constant_operand_is_fine(self):
        findings = _lint("""
            from repro.units import KB, CACHE_LINE
            size_bytes = 64 * KB
            lines = size_bytes // CACHE_LINE
        """, relpath="src/repro/config.py")
        assert findings == []


class TestStatsRules:
    def test_mixed_add_and_put(self):
        findings = _lint("""
            def record(stats, n):
                stats.add("migrations", n)
                stats.put("migrations", n)
        """)
        assert _rules(findings) == ["STAT001"]
        assert "migrations" in findings[0].message

    def test_distinct_keys_fine(self):
        findings = _lint("""
            def record(stats, n):
                stats.add("migrations", n)
                stats.put("hit_rate", 0.5)
        """)
        assert findings == []

    def test_counter_via_put_get(self):
        findings = _lint("""
            def bump(stats):
                stats.put("evictions", stats.get("evictions") + 1)
        """)
        assert _rules(findings) == ["STAT002"]

    def test_string_add_with_preresolved_cells(self):
        findings = _lint("""
            class Link:
                def __init__(self, stats):
                    self._stats = stats
                    self._messages = stats.counter("messages")

                def slow_path(self, n):
                    if self._stats is not None:
                        self._stats.add("messages", n)
        """)
        assert _rules(findings) == ["STAT003"]
        assert "messages" in findings[0].message

    def test_string_add_without_cells_fine(self):
        findings = _lint("""
            def record(stats, n):
                stats.add("sweep.runs", n)
        """)
        assert findings == []

    def test_set_add_not_flagged(self):
        findings = _lint("""
            def track(stats, seen, key):
                cell = stats.counter("messages")
                seen.add("messages")
                return cell
        """)
        assert findings == []


class TestMutableDefaults:
    def test_function_default(self):
        findings = _lint("""
            def f(xs=[]):
                return xs
        """)
        assert _rules(findings) == ["MUT001"]

    def test_kwonly_and_constructor_defaults(self):
        findings = _lint("""
            from collections import defaultdict
            def f(*, table=defaultdict(list), tags=set()):
                return table, tags
        """)
        assert _rules(findings) == ["MUT001", "MUT001"]

    def test_dataclass_field(self):
        findings = _lint("""
            from dataclasses import dataclass
            @dataclass
            class Plan:
                steps: list = []
        """)
        assert _rules(findings) == ["MUT001"]
        assert "default_factory" in findings[0].message

    def test_field_factory_is_fine(self):
        findings = _lint("""
            from dataclasses import dataclass, field
            @dataclass
            class Plan:
                steps: list = field(default_factory=list)
                count: int = 0
        """)
        assert findings == []

    def test_plain_class_attribute_not_flagged(self):
        findings = _lint("""
            class Registry:
                instances = []
        """)
        assert findings == []


class TestScopesAndSuppressions:
    def test_scope_classification(self):
        assert classify_scope("src/repro/sim/system.py") == "src"
        assert classify_scope("tests/test_cli.py") == "tests"
        assert classify_scope("benchmarks/bench_figures.py") == "benchmarks"

    def test_determinism_rules_skip_tests_scope(self):
        source = """
            import random
            x = random.randint(0, 9)
        """
        assert _rules(_lint(source)) == ["DET003"]
        assert _lint(source, relpath="tests/test_foo.py") == []

    def test_line_suppression_specific_rule(self):
        findings = _lint("""
            import time
            t = time.time()  # simcheck: ignore[DET001]
        """)
        assert findings == []

    def test_line_suppression_wrong_rule_does_not_hide(self):
        findings = _lint("""
            import time
            t = time.time()  # simcheck: ignore[ORD001]
        """)
        # The real finding survives, and the mistargeted pragma is itself
        # reported as an unused suppression (see TestUnusedSuppressions).
        assert sorted(_rules(findings)) == ["DET001", "SUPP001"]
        by_rule = {f.rule: f.severity for f in findings}
        assert by_rule == {"DET001": "error", "SUPP001": "info"}

    def test_bare_ignore_suppresses_everything_on_line(self):
        findings = _lint("""
            import random
            r = random.Random()  # simcheck: ignore
        """)
        assert findings == []

    def test_file_level_suppression_in_header(self):
        findings = _lint("""\
            # simcheck: ignore-file[DET003]
            import random
            x = random.randint(0, 9)
            y = random.random()
        """)
        assert findings == []

    def test_file_level_suppression_after_line_5_inert(self):
        findings = _lint("""
            import random




            # simcheck: ignore-file[DET003]
            x = random.randint(0, 9)
        """)
        # Past line 5 the pragma degrades to a line suppression on its
        # own (finding-free) line, so it also earns a stale-pragma note.
        assert _rules(findings) == ["SUPP001", "DET003"]


class TestUnusedSuppressions:
    """SUPP001: pragmas that hide nothing are themselves findings."""

    def test_used_pragma_is_silent(self):
        findings = _lint("""
            import time
            t = time.time()  # simcheck: ignore[DET001]
        """)
        assert findings == []

    def test_unused_bare_ignore_noted(self):
        findings = _lint("""
            x = 1  # simcheck: ignore
        """)
        assert _rules(findings) == ["SUPP001"]
        assert findings[0].severity == "info"
        assert "every rule" in findings[0].message

    def test_unknown_rule_id_noted(self):
        findings = _lint("""
            import time
            t = time.time()  # simcheck: ignore[DET0O1]
        """)
        assert sorted(_rules(findings)) == ["DET001", "SUPP001"]
        supp = next(f for f in findings if f.rule == "SUPP001")
        assert "unknown rule" in supp.message

    def test_unused_file_level_pragma_noted(self):
        findings = _lint("""\
            # simcheck: ignore-file[DET001]
            x = 1
        """)
        assert _rules(findings) == ["SUPP001"]
        assert "file-level" in findings[0].message

    def test_rule_subset_does_not_flag_other_pragmas(self):
        # A golden test linting with only DET001 must not call the
        # ORD001 pragma stale — ORD001 simply didn't run.
        from repro.simcheck.engine import REGISTRY

        findings = _lint(
            """
            import time
            t = time.time()  # simcheck: ignore[ORD001]
            """,
            rules=[REGISTRY["DET001"]],
        )
        assert _rules(findings) == ["DET001"]

    def test_quoted_pragma_text_not_a_claim(self):
        findings = _lint('''
            def helper():
                """Suppress with `# simcheck: ignore[DET001]` on the line."""
                return 1
        ''')
        assert findings == []


class TestEngineAndBaseline:
    def test_engine_reports_syntax_errors(self, tmp_path):
        bad = tmp_path / "src" / "broken.py"
        bad.parent.mkdir()
        bad.write_text("def f(:\n")
        result = LintEngine(root=str(tmp_path)).run([str(tmp_path)])
        assert _rules(result.findings) == ["SYNTAX"]

    def test_engine_walk_and_scope_filter(self, tmp_path):
        (tmp_path / "pkg").mkdir()
        (tmp_path / "pkg" / "a.py").write_text(
            "import random\nx = random.random()\n"
        )
        (tmp_path / "tests").mkdir()
        (tmp_path / "tests" / "t.py").write_text(
            "import random\nx = random.random()\n"
        )
        result = LintEngine(root=str(tmp_path)).run([str(tmp_path)])
        assert [f.path for f in result.findings] == ["pkg/a.py"]
        assert result.files_checked == 1

    def test_fingerprint_ignores_line_number(self):
        a = Finding(rule="DET001", path="src/x.py", line=10,
                    message="m", line_text="t = time.time()")
        b = Finding(rule="DET001", path="src/x.py", line=99,
                    message="m", line_text="t = time.time()")
        assert a.fingerprint() == b.fingerprint()

    def test_baseline_round_trip(self, tmp_path):
        findings = [
            Finding(rule="DET001", path="src/x.py", line=3,
                    message="m", line_text="t = time.time()"),
            Finding(rule="DET001", path="src/x.py", line=9,
                    message="m", line_text="t = time.time()"),
        ]
        path = tmp_path / "baseline.json"
        write_baseline(str(path), findings)
        baseline = load_baseline(str(path))
        assert sum(baseline.values()) == 2

        fresh, grandfathered = apply_baseline(findings, baseline)
        assert fresh == [] and grandfathered == 2

        # A *new* finding is not covered by the old budget.
        extra = findings + [
            Finding(rule="ORD001", path="src/y.py", line=1,
                    message="m", line_text="for x in {1, 2}: pass"),
        ]
        fresh, grandfathered = apply_baseline(extra, baseline)
        assert _rules(fresh) == ["ORD001"] and grandfathered == 2

    def test_baseline_counts_are_a_budget(self, tmp_path):
        finding = Finding(rule="DET001", path="src/x.py", line=3,
                          message="m", line_text="t = time.time()")
        path = tmp_path / "baseline.json"
        write_baseline(str(path), [finding])
        baseline = load_baseline(str(path))
        # Two identical lines against a budget of one: one leaks through.
        fresh, grandfathered = apply_baseline(
            [finding, finding], baseline
        )
        assert len(fresh) == 1 and grandfathered == 1

    def test_info_findings_never_baselined(self, tmp_path):
        note = Finding(rule="PROTO006", path="src/x.py", line=1,
                       message="n", severity="info", line_text="x")
        path = tmp_path / "baseline.json"
        write_baseline(str(path), [note])
        assert load_baseline(str(path)) == {}
        fresh, grandfathered = apply_baseline([note], {"k": 5})
        assert fresh == [note] and grandfathered == 0

    def test_baseline_version_check(self, tmp_path):
        path = tmp_path / "baseline.json"
        path.write_text('{"version": 99, "findings": {}}')
        with pytest.raises(ValueError):
            load_baseline(str(path))

    def test_every_registered_rule_has_identity(self):
        rules = all_rules()
        assert len(rules) >= 9
        assert len({r.id for r in rules}) == len(rules)
        for rule in rules:
            assert rule.id and rule.title and rule.scopes


class TestRobustnessRules:
    def test_bare_except_flagged_even_with_real_body(self):
        findings = _lint("""
            def load(path):
                try:
                    return read(path)
                except:
                    note("unreadable")
        """)
        assert _rules(findings) == ["ROB001"]
        assert findings[0].line == 5

    def test_broad_noop_handler_flagged(self):
        findings = _lint("""
            def cleanup(path):
                try:
                    path.unlink()
                except Exception:
                    pass
        """)
        assert _rules(findings) == ["ROB001"]

    def test_base_exception_ellipsis_flagged(self):
        findings = _lint("""
            def poke(conn):
                try:
                    conn.send(b"x")
                except BaseException:
                    ...
        """)
        assert _rules(findings) == ["ROB001"]

    def test_broad_inside_tuple_flagged(self):
        findings = _lint("""
            def fetch(url):
                try:
                    return get(url)
                except (ValueError, Exception):
                    pass
        """)
        assert _rules(findings) == ["ROB001"]

    def test_narrow_swallow_not_flagged(self):
        findings = _lint("""
            def cleanup(path):
                try:
                    path.unlink()
                except OSError:
                    pass
        """)
        assert findings == []

    def test_broad_handler_with_real_body_not_flagged(self):
        findings = _lint("""
            def run(job):
                try:
                    return job()
                except Exception as exc:
                    record_failure(job, exc)
                    return None
        """)
        assert findings == []

    def test_bare_except_with_reraise_not_flagged(self):
        findings = _lint("""
            def run(job):
                try:
                    return job()
                except:
                    release(job)
                    raise
        """)
        assert findings == []

    def test_suppression_comment_honoured(self):
        findings = _lint("""
            def cleanup(path):
                try:
                    path.unlink()
                except Exception:  # simcheck: ignore[ROB001]
                    pass
        """)
        assert findings == []


class TestUnboundedSleepLoopRule:
    def test_while_true_sleep_without_exit_flagged(self):
        findings = _lint("""
            import time
            def watch(path):
                while True:
                    poll(path)
                    time.sleep(1.0)
        """)
        assert _rules(findings) == ["ROB002"]
        assert findings[0].line == 4

    def test_from_import_alias_resolved(self):
        findings = _lint("""
            from time import sleep as snooze
            def watch(path):
                while 1:
                    poll(path)
                    snooze(0.5)
        """)
        assert _rules(findings) == ["ROB002"]

    def test_break_bounds_the_loop(self):
        findings = _lint("""
            import time
            def watch(path, deadline):
                while True:
                    if ready(path) or time.monotonic() > deadline:
                        break
                    time.sleep(1.0)
        """)
        assert findings == []

    def test_return_and_raise_bound_the_loop(self):
        findings = _lint("""
            import time
            def wait(path, attempts):
                while True:
                    if ready(path):
                        return path
                    if attempts == 0:
                        raise TimeoutError(path)
                    attempts -= 1
                    time.sleep(0.1)
        """)
        assert findings == []

    def test_real_condition_not_flagged(self):
        findings = _lint("""
            import time
            def drain(queue):
                while queue:
                    queue.pop()
                    time.sleep(0.01)
        """)
        assert findings == []

    def test_loop_without_sleep_not_flagged(self):
        findings = _lint("""
            def spin(queue):
                while True:
                    queue.tick()
        """)
        assert findings == []

    def test_sleep_inside_nested_def_not_attributed_to_loop(self):
        """A loop that *defines* a sleeper never blocks on it itself;
        exits inside the nested function must not count either."""
        findings = _lint("""
            import time
            def build(jobs):
                while True:
                    def worker():
                        time.sleep(5)
                        return 1
                    jobs.append(worker)
        """)
        assert findings == []

    def test_suppression_comment_honoured(self):
        findings = _lint("""
            import time
            def serve_forever(handler):
                while True:  # simcheck: ignore[ROB002]
                    handler.poll()
                    time.sleep(0.2)
        """)
        assert findings == []


class TestUnboundedRetryLoopRule:
    def test_unconditional_continue_flagged(self):
        findings = _lint("""
            def fetch(job):
                while True:
                    try:
                        return job.run()
                    except Exception:
                        continue
        """)
        assert _rules(findings) == ["ROB003"]

    def test_swallow_and_fall_through_flagged(self):
        findings = _lint("""
            def fetch(job):
                while True:
                    try:
                        job.step()
                    except ValueError:
                        pass
        """)
        assert _rules(findings) == ["ROB003"]

    def test_attempt_bounded_continue_not_flagged(self):
        """The sweep runner's idiom: retry only while attempts remain."""
        findings = _lint("""
            def fetch(job, retries):
                attempt = 0
                while True:
                    attempt += 1
                    try:
                        return job.run()
                    except Exception as exc:
                        if attempt <= retries:
                            continue
                        record_failure(job, exc)
                        break
        """)
        assert findings == []

    def test_reraising_handler_not_flagged(self):
        findings = _lint("""
            def fetch(job):
                while True:
                    try:
                        return job.run()
                    except KeyboardInterrupt:
                        raise
        """)
        assert findings == []

    def test_bounded_outer_loop_not_flagged(self):
        findings = _lint("""
            def fetch(job, attempts):
                for _ in range(attempts):
                    try:
                        return job.run()
                    except Exception:
                        continue
        """)
        assert findings == []

    def test_inner_loop_handler_not_attributed_to_outer(self):
        """A retrying handler inside a bounded inner loop continues the
        inner loop, so the outer while-True must not be blamed."""
        findings = _lint("""
            def drain(queue):
                while True:
                    batch = queue.take()
                    if not batch:
                        break
                    for job in batch:
                        try:
                            job.run()
                        except Exception:
                            continue
        """)
        assert findings == []

    def test_suppression_comment_honoured(self):
        findings = _lint("""
            def poll_forever(source):
                while True:
                    try:
                        source.read()
                    except OSError:  # simcheck: ignore[ROB003]
                        continue
        """)
        assert findings == []
