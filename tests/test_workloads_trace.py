"""Trace machinery: scales, mixtures, stream builder, partitioning."""

import numpy as np
import pytest

from repro import units
from repro.mem.address import Region
from repro.workloads.trace import (
    MixtureComponent,
    StreamBuilder,
    WorkloadScale,
    WorkloadTrace,
    partition_region,
    private_region,
    random_lines,
    seq_lines,
    zipf_indices,
)


@pytest.fixture()
def region() -> Region:
    return Region("r", 0, 64 * units.KB)


class TestWorkloadScale:
    def test_presets_ordered(self):
        tiny, small, default, large = (
            WorkloadScale.tiny(), WorkloadScale.small(),
            WorkloadScale.default(), WorkloadScale.large(),
        )
        assert (tiny.accesses_per_host < small.accesses_per_host
                < default.accesses_per_host < large.accesses_per_host)
        assert tiny.footprint_bytes < large.footprint_bytes


class TestAddressPools:
    def test_seq_lines_cover_region(self, region):
        lines = seq_lines(region)
        assert len(lines) == region.size // 64
        assert lines[0] == region.start
        assert lines[-1] == region.end - 64

    def test_seq_lines_rotation(self, region):
        rotated = seq_lines(region, start=2)
        assert rotated[0] == region.start + 2 * 64

    def test_random_lines_in_bounds(self, region):
        rng = np.random.default_rng(0)
        addrs = random_lines(rng, region, 1000)
        assert (addrs >= region.start).all()
        assert (addrs < region.end).all()
        assert (addrs % 64 == 0).all()

    def test_zipf_skews(self, region):
        rng = np.random.default_rng(0)
        addrs = random_lines(rng, region, 5000, alpha=1.2)
        _, counts = np.unique(addrs, return_counts=True)
        # The hottest line gets far more than the uniform share.
        assert counts.max() > 5000 / (region.size // 64) * 5

    def test_zipf_indices_bounds(self):
        rng = np.random.default_rng(0)
        idx = zipf_indices(rng, 100, 1000, alpha=1.1)
        assert idx.min() >= 0
        assert idx.max() < 100

    def test_zipf_rejects_empty(self):
        with pytest.raises(ValueError):
            zipf_indices(np.random.default_rng(0), 0, 10)


def _rank_frequencies(idx: np.ndarray, n: int) -> np.ndarray:
    """Observed probability per zipf rank (undoing the spread permutation)."""
    perm = np.random.default_rng(12345).permutation(n)
    inverse = np.empty(n, dtype=np.int64)
    inverse[perm] = np.arange(n)
    counts = np.bincount(inverse[idx], minlength=n)
    return counts / len(idx)


class TestZipfSkewRegression:
    """The requested ``alpha`` must be honored, not silently replaced.

    The old implementation sampled ``numpy.random.zipf`` — defined only
    for ``alpha > 1`` — with ``max(alpha, 1.01)`` and clipped the unbounded
    tail onto the last rank.  Any workload asking for the common
    ``alpha < 1`` regime got a wildly different distribution (for
    ``alpha`` near 1 most of the mass landed on the single *coldest*
    rank) with no error and no warning.
    """

    N = 64
    COUNT = 40_000

    def _expected(self, alpha: float) -> np.ndarray:
        weights = np.arange(1, self.N + 1, dtype=np.float64) ** -alpha
        return weights / weights.sum()

    @pytest.mark.parametrize("alpha", [0.6, 0.99, 1.3])
    def test_alpha_honored(self, alpha):
        rng = np.random.default_rng(3)
        freq = _rank_frequencies(
            zipf_indices(rng, self.N, self.COUNT, alpha=alpha), self.N
        )
        expect = self._expected(alpha)
        # Hot and cold ends both match the bounded-zipf pmf to well
        # within sampling noise (the old clamp-to-1.01 bug was off by
        # integer factors at alpha=0.6).
        assert freq[0] == pytest.approx(expect[0], rel=0.15)
        assert freq[: self.N // 4].sum() == pytest.approx(
            expect[: self.N // 4].sum(), rel=0.1
        )

    def test_no_tail_mass_clipped_onto_last_rank(self):
        rng = np.random.default_rng(3)
        freq = _rank_frequencies(
            zipf_indices(rng, self.N, self.COUNT, alpha=0.99), self.N
        )
        # Under the old clipping, the last rank absorbed the entire
        # unbounded tail and dwarfed rank 0; bounded sampling keeps it
        # the coldest rank.
        assert freq[-1] < freq[0]
        assert freq[-1] == pytest.approx(
            self._expected(0.99)[-1], rel=0.5, abs=2 / self.COUNT
        )

    def test_rejects_nonpositive_alpha(self):
        rng = np.random.default_rng(0)
        with pytest.raises(ValueError, match="alpha"):
            zipf_indices(rng, 10, 5, alpha=0.0)
        with pytest.raises(ValueError, match="alpha"):
            zipf_indices(rng, 10, 5, alpha=-1.0)


class TestTraceValidate:
    CXL = 1 * units.MB
    TOTAL = 3 * units.MB  # two hosts -> one 1 MB local window each

    def _trace(self, streams) -> WorkloadTrace:
        return WorkloadTrace(
            name="t", num_hosts=len(streams), streams=streams,
            footprint_bytes=self.TOTAL,
        )

    def test_accepts_shared_and_own_window(self):
        streams = [
            [(1, 0, 0, 0), (1, self.CXL + 64, 0, 0)],
            [(1, 64, 1, 0), (1, self.CXL + 1 * units.MB + 64, 0, 0)],
        ]
        self._trace(streams).validate(self.CXL, self.TOTAL)

    def test_rejects_address_outside_map(self):
        streams = [[(1, 0, 0, 0)], [(1, self.TOTAL + 64, 0, 0)]]
        with pytest.raises(ValueError, match="outside the physical map"):
            self._trace(streams).validate(self.CXL, self.TOTAL)

    def test_rejects_negative_address(self):
        streams = [[(1, -64, 0, 0)], [(1, 0, 0, 0)]]
        with pytest.raises(ValueError, match="outside the physical map"):
            self._trace(streams).validate(self.CXL, self.TOTAL)

    def test_rejects_foreign_local_window(self):
        # Host 0 touching host 1's private window used to pass silently
        # (and simulate as if it were host-0-private data).
        streams = [
            [(1, self.CXL + 1 * units.MB + 64, 0, 0)],
            [(1, 0, 0, 0)],
        ]
        with pytest.raises(
            ValueError, match="another host's local window"
        ):
            self._trace(streams).validate(self.CXL, self.TOTAL)

    def test_rejects_bad_capacity_split(self):
        trace = self._trace([[(1, 0, 0, 0)], [(1, 0, 0, 0)]])
        with pytest.raises(ValueError, match="divide"):
            trace.validate(self.CXL, self.TOTAL + 1)
        with pytest.raises(ValueError, match="capacity"):
            trace.validate(self.TOTAL + 1, self.TOTAL)

    def test_validates_deep_into_stream(self):
        # The old check sampled only each stream's first 64 records.
        good = [(1, 0, 0, 0)] * 100
        streams = [good + [(1, self.TOTAL + 64, 0, 0)], list(good)]
        with pytest.raises(ValueError, match="record 100"):
            self._trace(streams).validate(self.CXL, self.TOTAL)


class TestBakedStream:
    def _trace(self) -> WorkloadTrace:
        streams = [[(2, 128, 1, 0), (5, 4096, 0, 1), (1, 64, 0, 3)]]
        return WorkloadTrace(
            name="t", num_hosts=1, streams=streams, footprint_bytes=8192,
        )

    def test_arrays_match_records(self):
        baked = self._trace().baked_arrays(0, ns_per_instr=0.5)
        assert len(baked) == 3
        assert baked.compute_ns.tolist() == [1.0, 2.5, 0.5]
        assert baked.addr.tolist() == [128, 4096, 64]
        assert baked.is_write.tolist() == [True, False, False]
        assert baked.core.tolist() == [0, 1, 3]
        assert baked.line.tolist() == [2, 64, 1]
        assert baked.page.tolist() == [0, 1, 0]

    def test_records_round_trip(self):
        trace = self._trace()
        baked = trace.baked_arrays(0, ns_per_instr=0.5)
        records = baked.records()
        assert records == trace.baked_stream(0, ns_per_instr=0.5)
        assert all(isinstance(w, bool) for _, _, w, _ in records)


class TestStreamBuilder:
    def _components(self, region):
        return [
            MixtureComponent("seq", 0.5, seq_lines(region), 0.0, True),
            MixtureComponent(
                "rand", 0.5,
                random_lines(np.random.default_rng(1), region, 100),
                1.0, False,
            ),
        ]

    def test_build_length_and_shape(self, region):
        builder = StreamBuilder(np.random.default_rng(0), cores=4, mean_gap=10)
        stream = builder.build(self._components(region), 500)
        assert len(stream) == 500
        gaps, addrs, writes, cores = zip(*stream)
        assert all(g >= 1 for g in gaps)
        assert set(cores) <= {0, 1, 2, 3}
        assert all(a % 64 == 0 for a in addrs)

    def test_write_fractions_respected(self, region):
        builder = StreamBuilder(np.random.default_rng(0))
        stream = builder.build(self._components(region), 2000)
        writes = [w for _, a, w, _ in stream]
        frac = sum(writes) / len(writes)
        assert 0.35 < frac < 0.65  # only the 'rand' half writes

    def test_deterministic_for_seed(self, region):
        def run():
            builder = StreamBuilder(np.random.default_rng(7))
            return builder.build(self._components(region), 100)
        assert run() == run()

    def test_mean_gap_approx(self, region):
        builder = StreamBuilder(np.random.default_rng(0), mean_gap=12)
        stream = builder.build(self._components(region), 5000)
        mean = sum(g for g, *_ in stream) / len(stream)
        assert 10 < mean < 14

    def test_rejects_empty_components(self, region):
        with pytest.raises(ValueError):
            StreamBuilder(np.random.default_rng(0)).build([], 10)

    def test_rejects_bad_weights(self, region):
        comp = MixtureComponent("x", 0.0, seq_lines(region))
        with pytest.raises(ValueError):
            StreamBuilder(np.random.default_rng(0)).build([comp], 10)

    def test_from_arrays(self):
        builder = StreamBuilder(np.random.default_rng(0), cores=2)
        addrs = np.array([0, 64, 128])
        writes = np.array([0, 1, 0])
        stream = builder.from_arrays(addrs, writes)
        assert [a for _, a, _, _ in stream] == [0, 64, 128]
        assert [w for _, _, w, _ in stream] == [0, 1, 0]

    def test_from_arrays_length_mismatch(self):
        builder = StreamBuilder(np.random.default_rng(0))
        with pytest.raises(ValueError):
            builder.from_arrays(np.array([0]), np.array([0, 1]))


class TestPartitioning:
    def test_partition_covers_region(self):
        region = Region("r", 0, 40 * units.PAGE_SIZE)
        parts = [partition_region(region, i, 4) for i in range(4)]
        assert parts[0].start == region.start
        for a, b in zip(parts, parts[1:]):
            assert a.end == b.start
        assert parts[-1].end == region.end

    def test_uneven_split(self):
        region = Region("r", 0, 10 * units.PAGE_SIZE)
        parts = [partition_region(region, i, 3) for i in range(3)]
        assert sum(p.num_pages for p in parts) == 10

    def test_page_aligned(self):
        region = Region("r", 0, 16 * units.PAGE_SIZE)
        part = partition_region(region, 1, 4)
        assert part.start % units.PAGE_SIZE == 0

    def test_out_of_range(self):
        region = Region("r", 0, 16 * units.PAGE_SIZE)
        with pytest.raises(ValueError):
            partition_region(region, 4, 4)

    def test_private_region_inside_window(self):
        region = private_region((1000 * 4096, 2000 * 4096), 64 * units.KB)
        assert region.start == 1000 * 4096

    def test_private_region_overflow(self):
        with pytest.raises(ValueError):
            private_region((0, 4096), 64 * units.KB)
