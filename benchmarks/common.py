"""Shared infrastructure for the figure/table benchmarks.

Every bench regenerates one table or figure of the paper's evaluation
(see DESIGN.md's experiment index).  Simulation results are memoized in a
JSON cache keyed by (workload, scheme, scale, config tag) so figures that
share runs (Figs. 10-13 all need the Fig. 10 sweep) don't recompute them;
delete ``benchmarks/.bench_cache.json`` to force fresh runs.

Environment knobs:

* ``REPRO_BENCH_SCALE`` — ``tiny`` / ``small`` / ``default`` / ``large``
  (default ``small``): trace size per run.
* ``REPRO_BENCH_WORKLOADS`` — comma-separated subset override.
"""

from __future__ import annotations

import json
import os
from pathlib import Path
from typing import Dict, List, Optional

from repro import SystemConfig, WorkloadScale, generate, simulate
from repro.policies import make_scheme
from repro.sim.results import SimulationResult

BENCH_DIR = Path(__file__).parent
RESULTS_DIR = BENCH_DIR / "results"
CACHE_PATH = BENCH_DIR / ".bench_cache.json"

#: The paper's Fig. 10 scheme order (Native first: the normalization base).
ALL_SCHEMES = [
    "native", "nomad", "memtis", "hemem", "os-skew", "hw-static", "pipm",
    "local-only",
]

#: Subset used by the sensitivity figures (Figs. 14-17) to bound runtime.
SENSITIVITY_WORKLOADS = ["pr", "bfs", "xsbench", "streamcluster", "ycsb",
                         "tpcc"]

_SCALES = {
    "tiny": WorkloadScale.tiny,
    "small": WorkloadScale.small,
    "default": WorkloadScale.default,
    "large": WorkloadScale.large,
}


def bench_scale_name() -> str:
    name = os.environ.get("REPRO_BENCH_SCALE", "small")
    if name not in _SCALES:
        raise ValueError(f"REPRO_BENCH_SCALE must be one of {sorted(_SCALES)}")
    return name


def bench_scale() -> WorkloadScale:
    return _SCALES[bench_scale_name()]()


def bench_workloads() -> List[str]:
    override = os.environ.get("REPRO_BENCH_WORKLOADS")
    if override:
        return [w.strip() for w in override.split(",") if w.strip()]
    from repro import workload_names

    return workload_names()


# ----------------------------------------------------------------------
# Result cache
# ----------------------------------------------------------------------
_RESULT_FIELDS = (
    "workload", "scheme", "num_hosts", "exec_time_ns", "host_time_ns",
    "instructions", "accesses", "mgmt_ns", "transfer_ns", "migrations",
    "demotions", "footprint_bytes",
)


def _to_record(result: SimulationResult) -> Dict:
    record = {field: getattr(result, field) for field in _RESULT_FIELDS}
    record["service_counts"] = {
        str(k): v for k, v in result.service_counts.items()
    }
    record["stall_ns_by_service"] = {
        str(k): v for k, v in result.stall_ns_by_service.items()
    }
    record["peak_local_pages"] = {
        str(k): v for k, v in result.peak_local_pages.items()
    }
    record["peak_local_lines"] = {
        str(k): v for k, v in result.peak_local_lines.items()
    }
    record["stats"] = result.stats
    return record


def _from_record(record: Dict) -> SimulationResult:
    kwargs = {field: record[field] for field in _RESULT_FIELDS}
    kwargs["service_counts"] = {
        int(k): v for k, v in record["service_counts"].items()
    }
    kwargs["stall_ns_by_service"] = {
        int(k): v for k, v in record["stall_ns_by_service"].items()
    }
    kwargs["peak_local_pages"] = {
        int(k): v for k, v in record["peak_local_pages"].items()
    }
    kwargs["peak_local_lines"] = {
        int(k): v for k, v in record["peak_local_lines"].items()
    }
    kwargs["stats"] = record["stats"]
    return SimulationResult(**kwargs)


class ResultCache:
    """Disk-backed memo of simulation results."""

    def __init__(self, path: Path = CACHE_PATH) -> None:
        self.path = path
        self._data: Dict[str, Dict] = {}
        if path.exists():
            try:
                self._data = json.loads(path.read_text())
            except (json.JSONDecodeError, OSError):
                self._data = {}

    def get(self, key: str) -> Optional[SimulationResult]:
        record = self._data.get(key)
        return _from_record(record) if record is not None else None

    def put(self, key: str, result: SimulationResult) -> None:
        self._data[key] = _to_record(result)
        self.path.write_text(json.dumps(self._data))


_CACHE = ResultCache()
_TRACE_CACHE: Dict[str, object] = {}


def _trace(workload: str, config: SystemConfig, scale: WorkloadScale):
    key = f"{workload}|{scale.accesses_per_host}|{scale.footprint_bytes}"
    key += f"|{config.num_hosts}"
    if key not in _TRACE_CACHE:
        _TRACE_CACHE[key] = generate(
            workload, num_hosts=config.num_hosts, scale=scale,
            cores_per_host=config.cores_per_host,
        )
    return _TRACE_CACHE[key]


def run_cached(
    workload: str,
    scheme: str,
    config: Optional[SystemConfig] = None,
    tag: str = "base",
    scheme_kwargs: Optional[Dict] = None,
    **system_kwargs,
) -> SimulationResult:
    """Simulate (or fetch) one (workload, scheme, config-tag) result.

    ``tag`` must uniquely name any config/scheme deviation from the scaled
    defaults; results are memoized across bench modules under that key.
    """
    if config is None:
        config = SystemConfig.scaled()
    scale = bench_scale()
    key = f"{workload}|{scheme}|{bench_scale_name()}|{tag}"
    cached = _CACHE.get(key)
    if cached is not None:
        return cached
    trace = _trace(workload, config, scale)
    instance = make_scheme(scheme, **(scheme_kwargs or {}))
    result = simulate(trace, instance, config, **system_kwargs)
    _CACHE.put(key, result)
    return result


def write_output(name: str, text: str) -> Path:
    """Persist a bench's table under benchmarks/results/ and echo it."""
    RESULTS_DIR.mkdir(exist_ok=True)
    path = RESULTS_DIR / f"{name}.txt"
    path.write_text(text + "\n")
    print(f"\n{text}\n[saved to {path}]")
    return path
