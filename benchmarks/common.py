"""Shared infrastructure for the figure/table benchmarks.

Every bench regenerates one table or figure of the paper's evaluation
(see DESIGN.md's experiment index).  Simulation results are memoized in
the content-addressed cache under ``benchmarks/.cache/`` shared with
``python -m repro sweep``: each entry is one atomically-written file
keyed by a hash of the *complete* experiment spec (workload, scheme +
scheme kwargs, scale, full serialized SystemConfig including faults, and
system kwargs), so config ablations can never read a stale base-config
result and any number of bench processes can run concurrently.  Warm the
cache in parallel with ``python -m repro sweep --figures`` and the
benches become pure cache reads; invalidate with ``python -m repro sweep
--invalidate`` (or delete ``benchmarks/.cache/``).

Environment knobs:

* ``REPRO_BENCH_SCALE`` — ``tiny`` / ``small`` / ``default`` / ``large``
  (default ``small``): trace size per run.
* ``REPRO_BENCH_WORKLOADS`` — comma-separated subset override.
* ``REPRO_CACHE_DIR`` — cache root override (default
  ``benchmarks/.cache``).
"""

from __future__ import annotations

import os
from pathlib import Path
from typing import Dict, List, Optional

from repro import SystemConfig, WorkloadScale
from repro.sim.results import SimulationResult
from repro.sweep import (
    ALL_SCHEMES,
    SENSITIVITY_WORKLOADS,
    ExperimentSpec,
    ResultStore,
    TraceStore,
    content_key,
    run_spec,
)

BENCH_DIR = Path(__file__).parent
RESULTS_DIR = BENCH_DIR / "results"
CACHE_DIR = Path(os.environ.get("REPRO_CACHE_DIR", BENCH_DIR / ".cache"))

__all__ = [
    "ALL_SCHEMES", "SENSITIVITY_WORKLOADS", "BENCH_DIR", "RESULTS_DIR",
    "CACHE_DIR", "ResultCache", "bench_scale", "bench_scale_name",
    "bench_workloads", "run_cached", "write_output",
]

_SCALES = {
    "tiny": WorkloadScale.tiny,
    "small": WorkloadScale.small,
    "default": WorkloadScale.default,
    "large": WorkloadScale.large,
}


def bench_scale_name() -> str:
    name = os.environ.get("REPRO_BENCH_SCALE", "small")
    if name not in _SCALES:
        raise ValueError(f"REPRO_BENCH_SCALE must be one of {sorted(_SCALES)}")
    return name


def bench_scale() -> WorkloadScale:
    return _SCALES[bench_scale_name()]()


def bench_workloads() -> List[str]:
    override = os.environ.get("REPRO_BENCH_WORKLOADS")
    if override:
        return [w.strip() for w in override.split(",") if w.strip()]
    from repro import workload_names

    return workload_names()


# ----------------------------------------------------------------------
# Result cache
# ----------------------------------------------------------------------
def _to_record(result: SimulationResult) -> Dict:
    """Kept for callers/tests; delegates to the canonical serializer."""
    return result.to_record()


def _from_record(record: Dict) -> SimulationResult:
    return SimulationResult.from_record(record)


class ResultCache:
    """Disk-backed memo of simulation results under arbitrary string keys.

    Legacy interface kept for ad-hoc memoization; entries now live as
    one atomically-replaced file per key (hashed filename) instead of a
    single JSON blob, so concurrent writers can no longer lose each
    other's entries or corrupt the cache, and nothing is snapshotted at
    import time.
    """

    def __init__(self, path: Path = CACHE_DIR) -> None:
        # ``path`` historically named a .json blob; treat a file path as
        # its parent directory so stale call sites keep working.
        path = Path(path)
        if path.suffix == ".json":
            path = path.parent / ".cache"
        self.path = path
        self._store = ResultStore(path)

    @staticmethod
    def _file_key(key: str) -> str:
        return content_key({"legacy_key": key})

    def get(self, key: str) -> Optional[SimulationResult]:
        entry = self._store.get_record(self._file_key(key))
        if entry is None or "result" not in entry:
            return None
        return SimulationResult.from_record(entry["result"])

    def put(self, key: str, result: SimulationResult) -> None:
        self._store.put_record(
            self._file_key(key),
            {"legacy_key": key, "result": result.to_record()},
        )


def run_cached(
    workload: str,
    scheme: str,
    config: Optional[SystemConfig] = None,
    tag: str = "base",
    scheme_kwargs: Optional[Dict] = None,
    **system_kwargs,
) -> SimulationResult:
    """Simulate (or fetch) one fully-specified experiment.

    The cache key is a content hash of the complete spec — workload,
    scheme and its kwargs, scale, the entire ``config`` (including any
    fault plan), and ``system_kwargs`` — so two calls share a result
    **iff** every simulation input matches.  ``tag`` is a display label
    only; it no longer affects caching, and forgetting it can no longer
    alias an ablation onto the base configuration's result.

    Traces are shared through the on-disk trace store, so concurrent
    bench processes (and ``python -m repro sweep`` workers) generate
    each trace once.
    """
    del tag  # labels never influence identity
    spec = ExperimentSpec.build(
        workload=workload,
        scheme=scheme,
        config=config,
        scale=bench_scale(),
        scheme_kwargs=scheme_kwargs,
        system_kwargs=system_kwargs,
    )
    return run_spec(spec, CACHE_DIR, trace_store=_TRACES).result


_TRACES = TraceStore(CACHE_DIR)


def write_output(name: str, text: str) -> Path:
    """Persist a bench's table under benchmarks/results/ and echo it."""
    RESULTS_DIR.mkdir(exist_ok=True)
    path = RESULTS_DIR / f"{name}.txt"
    path.write_text(text + "\n")
    print(f"\n{text}\n[saved to {path}]")
    return path
