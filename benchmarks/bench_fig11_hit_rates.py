"""Fig. 11: local memory hit rates.

Paper shape: PIPM 56.1% average, far above Nomad 26.5%, Memtis 31.0%,
HeMem 28.1%, HW-static 21.6%; OS-skew relatively high thanks to the PIPM
policy.
"""

from common import ALL_SCHEMES, bench_workloads, run_cached, write_output
from repro.analysis.report import format_series, mean


def _sweep():
    series = {}
    for workload in bench_workloads():
        series[workload] = {
            scheme: run_cached(workload, scheme).local_hit_rate
            for scheme in ALL_SCHEMES
            if scheme not in ("native", "local-only")
        }
    return series


def test_fig11_local_hit_rates(benchmark):
    series = benchmark.pedantic(_sweep, rounds=1, iterations=1)
    table = format_series(
        "Fig. 11: Local memory hit rate", series, fmt="{:.3f}",
        mean_row=None,
    )
    avg = {
        scheme: mean(v[scheme] for v in series.values())
        for scheme in next(iter(series.values()))
    }
    table += "\nmean: " + "  ".join(
        f"{k}={v:.1%}" for k, v in avg.items()
    )
    write_output("fig11_hit_rates", table)

    assert avg["pipm"] > avg["nomad"]
    assert avg["pipm"] > avg["memtis"]
    assert avg["pipm"] > avg["hemem"]
    assert avg["pipm"] > avg["hw-static"]
    assert avg["pipm"] > 0.25
