"""Ablation: PIPM majority-vote migration threshold.

Section 5.1.4: the authors "observe similar performance with threshold
ranging from 4 to 16" and default to 8.  This bench sweeps the threshold
and checks that the performance plateau the paper reports exists — with a
very low threshold, noisy promotions increase migrate-back/revocation
churn; with a very high one, promotion starves.
"""

import dataclasses

from common import SENSITIVITY_WORKLOADS, run_cached, write_output
from repro import SystemConfig
from repro.analysis.report import format_series, geomean

THRESHOLDS = [2, 4, 8, 15]


def _sweep():
    series = {}
    for workload in SENSITIVITY_WORKLOADS:
        native = run_cached(workload, "native")
        row = {}
        for threshold in THRESHOLDS:
            cfg = SystemConfig.scaled()
            cfg = cfg.replace(pipm=dataclasses.replace(
                cfg.pipm, migration_threshold=threshold
            ))
            result = run_cached(workload, "pipm", config=cfg,
                                tag=f"thresh{threshold}")
            row[f"t={threshold}"] = result.speedup_over(native)
        series[workload] = row
    return series


def test_ablation_migration_threshold(benchmark):
    series = benchmark.pedantic(_sweep, rounds=1, iterations=1)
    table = format_series(
        "Ablation: PIPM speedup over Native vs majority-vote threshold",
        series, mean_row="geomean",
    )
    write_output("ablation_threshold", table)

    means = {t: geomean(v[f"t={t}"] for v in series.values())
             for t in THRESHOLDS}
    # The paper's plateau: thresholds 4-15 all deliver real speedups and
    # stay within a modest band of each other.
    assert means[4] > 1.05
    assert means[8] > 1.05
    assert abs(means[4] - means[8]) < 0.35
    assert abs(means[8] - means[15]) < 0.35
