"""Fig. 14: PIPM speedup over Native under different CXL link latencies.

Paper shape: at 100ns per direction (a switched fabric) PIPM's relative
improvement grows by an extra 55.7% on average versus the 50ns baseline —
local memory matters more when remote memory is slower.
"""

from common import SENSITIVITY_WORKLOADS, run_cached, write_output
from repro import SystemConfig
from repro.analysis.report import format_series, geomean

LATENCIES_NS = [25.0, 50.0, 100.0]


def _sweep():
    series = {}
    for workload in SENSITIVITY_WORKLOADS:
        row = {}
        for latency in LATENCIES_NS:
            cfg = SystemConfig.scaled().replace_nested(
                "cxl_link", latency_ns=latency
            )
            tag = f"lat{latency:g}"
            native = run_cached(workload, "native", config=cfg, tag=tag)
            pipm = run_cached(workload, "pipm", config=cfg, tag=tag)
            row[f"{latency:g}ns"] = pipm.speedup_over(native)
        series[workload] = row
    return series


def test_fig14_link_latency(benchmark):
    series = benchmark.pedantic(_sweep, rounds=1, iterations=1)
    table = format_series(
        "Fig. 14: PIPM speedup over Native vs CXL link latency",
        series, mean_row="geomean",
    )
    write_output("fig14_link_latency", table)

    base = geomean(v["50ns"] for v in series.values())
    slow = geomean(v["100ns"] for v in series.values())
    fast = geomean(v["25ns"] for v in series.values())
    # Higher link latency -> bigger PIPM advantage (and vice versa).
    assert slow > base > fast
