"""Fig. 15: PIPM speedup over Native under different CXL link bandwidths.

Paper shape: with half the lanes (x8, 2.5 GB/s effective) applications
become bandwidth- and latency-bound and PIPM's relative gain grows (+48.4%
over the x16 result); with double the lanes (x32) PIPM retains ~97.9% of
its x16 advantage because most workloads stay latency-bound.
"""

from common import SENSITIVITY_WORKLOADS, run_cached, write_output
from repro import SystemConfig
from repro.analysis.report import format_series, geomean

#: effective per-direction GB/s for x8 / x16 / x32 CXL lanes (scaled).
BANDWIDTHS = {"x8": 2.5, "x16": 5.0, "x32": 10.0}


def _sweep():
    series = {}
    for workload in SENSITIVITY_WORKLOADS:
        row = {}
        for label, gbs in BANDWIDTHS.items():
            cfg = SystemConfig.scaled().replace_nested(
                "cxl_link", bandwidth_gbs=gbs
            )
            tag = f"bw{label}"
            native = run_cached(workload, "native", config=cfg, tag=tag)
            pipm = run_cached(workload, "pipm", config=cfg, tag=tag)
            row[label] = pipm.speedup_over(native)
        series[workload] = row
    return series


def test_fig15_link_bandwidth(benchmark):
    series = benchmark.pedantic(_sweep, rounds=1, iterations=1)
    table = format_series(
        "Fig. 15: PIPM speedup over Native vs CXL link bandwidth",
        series, mean_row="geomean",
    )
    write_output("fig15_bandwidth", table)

    x8 = geomean(v["x8"] for v in series.values())
    x16 = geomean(v["x16"] for v in series.values())
    x32 = geomean(v["x32"] for v in series.values())
    # Narrower links -> larger gains; doubling lanes keeps most of the gain
    # (latency-bound workloads).
    assert x8 >= x16 * 0.98
    assert x32 > (x16 - 1.0) * 0.5 + 1.0 or x32 > 1.0
