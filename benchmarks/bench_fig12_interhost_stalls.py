"""Fig. 12: stalling cycles of inter-host memory accesses, normalized to
Native total execution time.

Paper shape: Nomad 19.1%, Memtis 16.6%, HeMem 16.8% (whole-page migration
makes other hosts' accesses non-cacheable 4-hop); OS-skew 8.7%; HW-static
4.1%; PIPM lowest at 1.5%.
"""

from common import ALL_SCHEMES, bench_workloads, run_cached, write_output
from repro.analysis.report import format_series, mean


def _sweep():
    series = {}
    for workload in bench_workloads():
        native = run_cached(workload, "native")
        series[workload] = {
            scheme: run_cached(workload, scheme).inter_host_stall_fraction(
                native.exec_time_ns
            )
            for scheme in ALL_SCHEMES
            if scheme not in ("native", "local-only")
        }
    return series


def test_fig12_inter_host_stalls(benchmark):
    series = benchmark.pedantic(_sweep, rounds=1, iterations=1)
    table = format_series(
        "Fig. 12: Inter-host access stalls / native execution time",
        series, fmt="{:.4f}", mean_row=None,
    )
    avg = {
        scheme: mean(v[scheme] for v in series.values())
        for scheme in next(iter(series.values()))
    }
    table += "\nmean: " + "  ".join(
        f"{k}={v:.1%}" for k, v in avg.items()
    )
    write_output("fig12_interhost_stalls", table)

    # PIPM stalls far less on inter-host accesses than whole-page migration
    # (paper: 1.5% vs 16-19%) and less than static hardware tiering.  The
    # OS-skew ablation is not compared: at compressed scale the kernel
    # budget starves it into migrating almost nothing, which trivially
    # zeroes its inter-host traffic (see EXPERIMENTS.md, fidelity gap 3).
    for scheme in ("nomad", "memtis", "hemem", "hw-static"):
        assert avg["pipm"] <= avg[scheme] + 1e-9
    assert avg["pipm"] < 0.05
