"""Table 2: system configuration — paper values and the scaled analogue."""

from common import write_output
from repro import SystemConfig
from repro.analysis.report import format_table


def _build_table() -> str:
    paper = SystemConfig.paper().describe()
    scaled = SystemConfig.scaled().describe()
    rows = [(key, paper[key], scaled[key]) for key in paper]
    return format_table(
        "Table 2: System configuration (paper vs scaled simulation)",
        ["component", "paper", "scaled"],
        rows,
    )


def test_table2_config(benchmark):
    table = benchmark.pedantic(_build_table, rounds=1, iterations=1)
    write_output("table2_config", table)
    assert "50ns" in table
    assert "5GB/s" in table
