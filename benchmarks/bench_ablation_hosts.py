"""Ablation: host-count scalability of the majority vote.

Section 4.5: "As the host count increases, the majority-vote approach
continues to suppress performance-degrading migrations and consistently
outperforms prior designs."  This bench runs 2/4/8-host systems and checks
PIPM keeps beating Native and the frequency baseline at every host count.
"""

from common import bench_scale, write_output
from repro import SystemConfig, generate, make_scheme, simulate
from repro.analysis.report import format_table

HOST_COUNTS = [2, 4, 8]
WORKLOADS = ["pr", "ycsb"]


def _sweep():
    rows = []
    checks = []
    for hosts in HOST_COUNTS:
        cfg = SystemConfig.scaled(num_hosts=hosts)
        for workload in WORKLOADS:
            trace = generate(workload, num_hosts=hosts, scale=bench_scale())
            native = simulate(trace, make_scheme("native"), cfg)
            memtis = simulate(trace, make_scheme("memtis"), cfg)
            pipm = simulate(trace, make_scheme("pipm"), cfg)
            rows.append((
                hosts, workload,
                f"{memtis.speedup_over(native):.2f}x",
                f"{pipm.speedup_over(native):.2f}x",
                f"{pipm.local_hit_rate:.1%}",
            ))
            checks.append((
                hosts, workload,
                pipm.speedup_over(native), memtis.speedup_over(native),
            ))
    table = format_table(
        "Ablation: scalability with host count",
        ["hosts", "workload", "memtis", "pipm", "pipm local hits"],
        rows,
    )
    return table, checks


def test_ablation_host_scalability(benchmark):
    table, checks = benchmark.pedantic(_sweep, rounds=1, iterations=1)
    write_output("ablation_hosts", table)

    for hosts, workload, pipm, memtis in checks:
        assert pipm > 1.0, f"PIPM must beat Native at {hosts} hosts"
        assert pipm > memtis, (
            f"PIPM must beat Memtis at {hosts} hosts on {workload}"
        )
