"""Ablation: host-count scalability of the majority vote.

Section 4.5: "As the host count increases, the majority-vote approach
continues to suppress performance-degrading migrations and consistently
outperforms prior designs."  This bench runs 2/4/8-host systems and checks
PIPM keeps beating Native and the frequency baseline at every host count.
"""

from common import run_cached, write_output
from repro import SystemConfig
from repro.analysis.report import format_table

HOST_COUNTS = [2, 4, 8]
WORKLOADS = ["pr", "ycsb"]


def _sweep():
    rows = []
    checks = []
    for hosts in HOST_COUNTS:
        cfg = SystemConfig.scaled(num_hosts=hosts)
        for workload in WORKLOADS:
            # The host count is part of the config, which is part of the
            # cache key — no per-host-count tag needed (or possible to
            # forget).
            native = run_cached(workload, "native", config=cfg)
            memtis = run_cached(workload, "memtis", config=cfg)
            pipm = run_cached(workload, "pipm", config=cfg)
            rows.append((
                hosts, workload,
                f"{memtis.speedup_over(native):.2f}x",
                f"{pipm.speedup_over(native):.2f}x",
                f"{pipm.local_hit_rate:.1%}",
            ))
            checks.append((
                hosts, workload,
                pipm.speedup_over(native), memtis.speedup_over(native),
            ))
    table = format_table(
        "Ablation: scalability with host count",
        ["hosts", "workload", "memtis", "pipm", "pipm local hits"],
        rows,
    )
    return table, checks


def test_ablation_host_scalability(benchmark):
    table, checks = benchmark.pedantic(_sweep, rounds=1, iterations=1)
    write_output("ablation_hosts", table)

    for hosts, workload, pipm, memtis in checks:
        assert pipm > 1.0, f"PIPM must beat Native at {hosts} hosts"
        assert pipm > memtis, (
            f"PIPM must beat Memtis at {hosts} hosts on {workload}"
        )
