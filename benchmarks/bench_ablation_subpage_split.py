"""Ablation: the distilled sub-page sharing pattern (Section 1's thesis).

A synthetic workload where each shared page has a dominant accessor on most
of its lines and a minority sharer on the rest — exactly the structure that
makes whole-page migration a "local gain, global pain" trade.  Partial
migration should win decisively; whole-page frequency migration should gain
far less (or lose) because every migrated page punishes the minority
sharer with non-cacheable 4-hop accesses.
"""

from common import bench_scale, write_output
from repro import SystemConfig, make_scheme, simulate
from repro.analysis.report import format_table
from repro.workloads.synthetic import partitioned_split_trace

SCHEMES = ["memtis", "os-skew", "hw-static", "pipm"]


def _sweep():
    cfg = SystemConfig.scaled()
    trace = partitioned_split_trace(num_hosts=4, scale=bench_scale())
    native = simulate(trace, make_scheme("native"), cfg)
    rows = []
    speedups = {}
    for scheme in SCHEMES:
        result = simulate(trace, make_scheme(scheme), cfg)
        speedups[scheme] = result.speedup_over(native)
        rows.append((
            scheme,
            f"{speedups[scheme]:.2f}x",
            f"{result.local_hit_rate:.1%}",
            f"{result.inter_host_stall_fraction(native.exec_time_ns):.1%}",
            result.migrations,
        ))
    table = format_table(
        "Ablation: dominant/minority sub-page sharing "
        f"(footprint {trace.footprint_bytes >> 20}MB)",
        ["scheme", "speedup", "local hits", "interhost stalls", "migrations"],
        rows,
    )
    return table, speedups


def test_ablation_subpage_split(benchmark):
    table, speedups = benchmark.pedantic(_sweep, rounds=1, iterations=1)
    write_output("ablation_subpage_split", table)

    assert speedups["pipm"] > 1.1
    assert speedups["pipm"] > speedups["memtis"]
    assert speedups["pipm"] > speedups["hw-static"]
