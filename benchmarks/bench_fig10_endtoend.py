"""Fig. 10: end-to-end performance of every scheme, normalized to Native.

Paper shape: PIPM 1.86x average (up to 2.54x) over Native CXL-DSM and
0.73x of the Local-only ideal; Nomad/Memtis/HeMem marginal (down to 0.82x
on some workloads); OS-skew +31.5%; HW-static +15.7%.
"""

from common import ALL_SCHEMES, bench_workloads, run_cached, write_output
from repro.analysis.report import format_series, geomean


def _sweep():
    series = {}
    for workload in bench_workloads():
        native = run_cached(workload, "native")
        series[workload] = {
            scheme: run_cached(workload, scheme).speedup_over(native)
            for scheme in ALL_SCHEMES
            if scheme != "native"
        }
    return series


def test_fig10_end_to_end(benchmark):
    series = benchmark.pedantic(_sweep, rounds=1, iterations=1)
    table = format_series(
        "Fig. 10: Speedup over Native CXL-DSM", series, mean_row="geomean",
    )
    write_output("fig10_endtoend", table)

    pipm = geomean(v["pipm"] for v in series.values())
    ideal = geomean(v["local-only"] for v in series.values())
    kernel = geomean(
        v[s] for v in series.values() for s in ("nomad", "memtis", "hemem")
    )
    # Shape assertions: who wins, roughly by what factor.
    assert pipm > 1.1, f"PIPM should clearly beat Native (got {pipm:.2f})"
    assert pipm > kernel, "PIPM must beat every single-host kernel scheme"
    assert ideal > pipm, "Local-only is the upper bound"
    assert max(v["pipm"] for v in series.values()) > 1.3
