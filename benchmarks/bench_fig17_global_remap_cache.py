"""Fig. 17: performance vs global remapping cache size, normalized to an
infinite global remapping cache.

Paper shape: the global remapping cache is only consulted on CXL-node
accesses, so even a 16KB cache reaches 99.8% of infinite performance —
flatter than Fig. 16's local-cache curve.
"""

from common import SENSITIVITY_WORKLOADS, run_cached, write_output
from repro import SystemConfig
from repro.analysis.report import format_series, geomean


def _sizes():
    base = SystemConfig.scaled().pipm.global_remap_cache_bytes
    return {
        "1/16x": max(128, base // 16),
        "1/4x": max(128, base // 4),
        "1x": base,
        "4x": base * 4,
    }


def _sweep():
    series = {}
    for workload in SENSITIVITY_WORKLOADS:
        infinite = run_cached(
            workload, "pipm", tag="grc-inf",
            infinite_global_remap_cache=True,
        )
        row = {}
        for label, size in _sizes().items():
            cfg = SystemConfig.scaled().replace_nested(
                "pipm", global_remap_cache_bytes=size
            )
            result = run_cached(workload, "pipm", config=cfg,
                                tag=f"grc-{label}")
            row[label] = infinite.exec_time_ns / result.exec_time_ns
        series[workload] = row
    return series


def test_fig17_global_remap_cache(benchmark):
    series = benchmark.pedantic(_sweep, rounds=1, iterations=1)
    table = format_series(
        "Fig. 17: PIPM performance vs global remapping cache size "
        "(1.0 = infinite cache)",
        series, mean_row="geomean",
    )
    write_output("fig17_global_remap_cache", table)

    default = geomean(v["1x"] for v in series.values())
    tiny = geomean(v["1/16x"] for v in series.values())
    # The default size is within a whisker of infinite (paper: 99.8%).
    assert default > 0.97
    assert default >= tiny - 1e-9
