"""Fig. 13: average per-host local memory footprint / total footprint.

Paper shape: Nomad 7.4%, HeMem 6.0%, Memtis 5.2%, OS-skew 4.6% (page
granularity); HW-static fixed 25% (static quarter); PIPM 7.3% at page
granularity but only 5.5% of actual lines moved (PIPM-line < PIPM-page).
"""

from common import bench_workloads, run_cached, write_output
from repro.analysis.report import format_series, mean

SCHEMES = ["nomad", "memtis", "hemem", "os-skew", "hw-static"]


def _sweep():
    series = {}
    for workload in bench_workloads():
        row = {
            scheme: run_cached(workload, scheme).local_page_footprint_fraction
            for scheme in SCHEMES
        }
        pipm = run_cached(workload, "pipm")
        row["pipm-page"] = pipm.local_page_footprint_fraction
        row["pipm-line"] = pipm.local_line_footprint_fraction
        series[workload] = row
    return series


def test_fig13_memory_footprint(benchmark):
    series = benchmark.pedantic(_sweep, rounds=1, iterations=1)
    table = format_series(
        "Fig. 13: Per-host local footprint / total footprint",
        series, fmt="{:.4f}", mean_row=None,
    )
    avg = {
        key: mean(v[key] for v in series.values())
        for key in next(iter(series.values()))
    }
    table += "\nmean: " + "  ".join(f"{k}={v:.1%}" for k, v in avg.items())
    write_output("fig13_footprint", table)

    # Incremental migration moves fewer lines than it maps pages.
    assert avg["pipm-line"] <= avg["pipm-page"] + 1e-9
    # The kernel schemes' resident sets are a small footprint fraction.
    for scheme in ("nomad", "memtis", "hemem", "os-skew"):
        assert avg[scheme] < 0.20
    # HW-static statically maps (up to) a quarter per host.
    assert avg["hw-static"] <= 0.30
