"""Core speed: accesses/sec of the per-access hot path (bench trajectory).

Unlike the figure benches this one measures the *simulator*, not the
simulated system: it times ``SimulationEngine.run`` over the profile
microbench cases and persists the result as
``benchmarks/results/BENCH_core.json``.  The file carries two sections:

* ``baseline`` — recorded once per optimization campaign (pre-work) with
  ``--set-baseline``; the number every speedup claim is measured against.
* ``current`` — refreshed by any later run at the same scale.  Timed with
  the reference ``loop`` backend so the trajectory stays comparable.
* ``backends`` — one summary per engine backend from the same invocation
  (``loop`` and ``vector``), plus the vector/loop aggregate ratio.

Run as a script (the committed artifact is updated this way)::

    PYTHONPATH=src python benchmarks/bench_core_speed.py [--set-baseline]

or via pytest (plumbing smoke only; never touches the committed file)::

    REPRO_BENCH_SCALE=tiny python -m pytest -x -q benchmarks/bench_core_speed.py
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from pathlib import Path

_REPO = Path(__file__).resolve().parents[1]
if str(_REPO / "src") not in sys.path:  # script mode without PYTHONPATH=src
    sys.path.insert(0, str(_REPO / "src"))

from repro.sim.engine import BACKENDS  # noqa: E402
from repro.sim.profile import run_microbench  # noqa: E402

DEFAULT_OUT = Path(__file__).parent / "results" / "BENCH_core.json"


def bench_core(scale: str, repeats: int, out: Path,
               set_baseline: bool = False) -> dict:
    """Run the microbench under every backend and fold the result into
    ``out``.  The ``baseline``/``current`` trajectory sections stay pinned
    to the reference loop backend; per-backend numbers land next to them.
    """
    summaries = {
        backend: run_microbench(
            scale=scale, repeats=repeats, backend=backend
        ).summary()
        for backend in BACKENDS
    }
    summary = summaries["loop"]
    payload = {"bench": "core_speed"}
    if out.exists():
        payload.update(json.loads(out.read_text()))
    if set_baseline or "baseline" not in payload:
        payload["baseline"] = summary
    payload["current"] = summary
    payload["backends"] = summaries
    payload["vector_speedup_vs_loop"] = round(
        summaries["vector"]["aggregate_accesses_per_s"]
        / summary["aggregate_accesses_per_s"],
        2,
    )
    base = payload["baseline"]
    if base.get("scale") == scale and base.get("aggregate_accesses_per_s"):
        payload["speedup_vs_baseline"] = round(
            summary["aggregate_accesses_per_s"]
            / base["aggregate_accesses_per_s"],
            2,
        )
    out.parent.mkdir(parents=True, exist_ok=True)
    out.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    return payload


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--scale", default=os.environ.get("REPRO_BENCH_SCALE", "small"),
        choices=("tiny", "small", "default", "large"),
    )
    parser.add_argument("--repeats", type=int, default=1)
    parser.add_argument("--out", type=Path, default=DEFAULT_OUT)
    parser.add_argument(
        "--set-baseline", action="store_true",
        help="record this run as the baseline section (pre-optimization)",
    )
    args = parser.parse_args(argv)
    payload = bench_core(args.scale, args.repeats, args.out,
                         set_baseline=args.set_baseline)
    current = payload["current"]
    print(f"core speed [{current['scale']}]: "
          f"{current['aggregate_accesses_per_s']:,} acc/s aggregate "
          f"over {current['total_accesses']:,} accesses")
    for case in current["cases"]:
        print(f"  {case['workload']}/{case['scheme']:<10} "
              f"{case['accesses_per_s']:>12,} acc/s")
    for backend, summary in payload["backends"].items():
        print(f"  [{backend:<6}] "
              f"{summary['aggregate_accesses_per_s']:>12,} acc/s aggregate")
    print(f"  vector backend vs. loop: "
          f"{payload['vector_speedup_vs_loop']}x")
    if "speedup_vs_baseline" in payload:
        print(f"  speedup vs. recorded baseline: "
              f"{payload['speedup_vs_baseline']}x")
    print(f"[saved to {args.out}]")
    return 0


def test_core_speed(tmp_path):
    """Plumbing smoke: tiny run into a scratch file, sane JSON out."""
    out = tmp_path / "BENCH_core.json"
    payload = bench_core("tiny", 1, out)
    assert out.exists()
    assert payload["baseline"] == payload["current"]
    assert payload["current"]["aggregate_accesses_per_s"] > 0
    assert payload["speedup_vs_baseline"] == 1.0
    assert set(payload["backends"]) == {"loop", "vector"}
    assert payload["vector_speedup_vs_loop"] > 0
    for summary in payload["backends"].values():
        assert summary["aggregate_accesses_per_s"] > 0


if __name__ == "__main__":
    sys.exit(main())
