"""Fig. 4: performance breakdown vs kernel migration interval.

Paper shape (normalized to no-migration): at the long interval the
single-host schemes barely help (Nomad +10.5% exec time, Memtis -1.4%); at
the medium interval they help most (-4.8% / -12.2%); at the short interval
management overhead and page transfers dominate and both schemes *increase*
execution time (+26.1% / +15.4%).

Intervals here are the scaled analogues of the paper's 100ms / 10ms / 1ms
(the scaled config divides the 10ms default by time_scale/2).
"""

from common import bench_workloads, run_cached, write_output
from repro import SystemConfig
from repro.analysis.report import format_table, geomean

SCHEMES = ["nomad", "memtis"]


def _intervals():
    base = SystemConfig.scaled().kernel.interval_ns
    return {"100ms~": base * 10, "10ms~": base, "1ms~": base / 10}


def _sweep():
    workloads = bench_workloads()
    rows = []
    totals = {}
    for label, interval in _intervals().items():
        cfg = SystemConfig.scaled().replace_nested(
            "kernel", interval_ns=interval
        )
        for scheme in SCHEMES:
            parts_acc = {"other": [], "management": [], "transfer": [],
                         "total": []}
            for workload in workloads:
                native = run_cached(workload, "native")
                result = run_cached(
                    workload, scheme, config=cfg,
                    tag=f"interval-{label}",
                    scheme_kwargs={"interval_ns": interval},
                )
                parts = result.breakdown_vs(native.exec_time_ns)
                for key in parts_acc:
                    parts_acc[key].append(parts[key])
            row = {k: geomean(v) for k, v in parts_acc.items()}
            totals[(label, scheme)] = row["total"]
            rows.append((
                label, scheme, f"{row['other']:.3f}",
                f"{row['management']:.3f}", f"{row['transfer']:.3f}",
                f"{row['total']:.3f}",
            ))
    table = format_table(
        "Fig. 4: Execution-time breakdown vs migration interval "
        "(normalized to no-migration)",
        ["interval", "scheme", "other", "management", "transfer", "total"],
        rows,
    )
    return table, totals


def test_fig04_interval_breakdown(benchmark):
    table, totals = benchmark.pedantic(_sweep, rounds=1, iterations=1)
    write_output("fig04_interval_breakdown", table)

    for scheme in SCHEMES:
        long_t = totals[("100ms~", scheme)]
        short_t = totals[("1ms~", scheme)]
        # Take-away #4: at short intervals migration overhead dominates and
        # execution time is worse than at the long interval.
        assert short_t > totals[("10ms~", scheme)] * 0.98
        # The schemes never win big at the long interval (stale placement).
        assert long_t > 0.85
