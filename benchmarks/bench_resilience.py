"""Resilience evaluation: PIPM under injected link faults.

Companion to the fault-injection layer (src/repro/faults/): runs the
``none`` / ``flaky`` / ``degraded`` presets against PIPM and Native on
two workloads and reports the performance cost of faults plus the
recovery counters.  Checks the layer's two core guarantees:

* an all-zero fault plan is byte-identical to running with faults off;
* a degraded fabric slows the run down but never wedges it — every
  scenario completes with a clean post-run invariant audit.
"""

import dataclasses

from common import run_cached, write_output
from repro import FaultConfig, SystemConfig
from repro.analysis.report import format_table

PRESETS = ["none", "flaky", "degraded"]
SCHEMES = ["native", "pipm"]
WORKLOADS = ["pr", "ycsb"]

#: Deterministic seed + periodic audits for the faulted runs.
_OVERRIDES = "seed=7,watchdog-period-ns=200000"


def _config(preset):
    base = SystemConfig.scaled()
    if preset is None:
        return base
    spec = preset if preset == "none" else f"{preset}:{_OVERRIDES}"
    return dataclasses.replace(base, faults=FaultConfig.parse(spec))


def _sweep():
    rows = []
    identity_checks = []
    resilience_checks = []
    for workload in WORKLOADS:
        baselines = {
            scheme: run_cached(workload, scheme, _config(None), tag="base")
            for scheme in SCHEMES
        }
        for preset in PRESETS:
            config = _config(preset)
            for scheme in SCHEMES:
                result = run_cached(
                    workload, scheme, config, tag=f"faults-{preset}",
                )
                base = baselines[scheme]
                stats = result.fault_stats
                rows.append((
                    workload, scheme, preset,
                    f"{result.exec_time_ns / base.exec_time_ns:.3f}x",
                    int(stats.get("fault_link_retries", 0)),
                    int(stats.get("fault_migration_aborts", 0)),
                    int(stats.get("fault_rollbacks", 0)),
                    int(stats.get("watchdog_violations", 0)),
                ))
                if preset == "none":
                    identity_checks.append((workload, scheme, result, base))
                else:
                    resilience_checks.append((workload, scheme, preset,
                                              result, base))
    table = format_table(
        "Resilience: slowdown and recovery under fault presets",
        ["workload", "scheme", "preset", "slowdown", "retries", "aborts",
         "rollbacks", "violations"],
        rows,
    )
    return table, identity_checks, resilience_checks


def test_resilience(benchmark):
    table, identity_checks, resilience_checks = benchmark.pedantic(
        _sweep, rounds=1, iterations=1
    )
    write_output("resilience", table)

    for workload, scheme, result, base in identity_checks:
        assert result == base, (
            f"zero fault plan must be byte-identical "
            f"({workload}/{scheme})"
        )
    for workload, scheme, preset, result, base in resilience_checks:
        # Injected faults perturb event interleaving, so small speedups are
        # possible; only the 4x-degraded fabric guarantees a real slowdown.
        assert "watchdog_violations" not in result.stats, (
            f"invariant audit must stay clean ({workload}/{scheme}/{preset})"
        )
        if preset == "degraded":
            assert result.exec_time_ns > base.exec_time_ns, (
                f"a 4x-degraded fabric must cost time ({workload}/{scheme})"
            )
            assert result.fault_stats.get("fault_link_retries", 0) > 0, (
                f"degraded fabric must force retries ({workload}/{scheme})"
            )
