"""Resilience evaluation: PIPM under injected link faults and host crashes.

Companion to the fault-injection layer (src/repro/faults/): runs the
``none`` / ``flaky`` / ``degraded`` link presets plus the ``hostdown`` /
``hostdown-rejoin`` crash presets against PIPM and Native on two
workloads, and reports the performance cost of faults plus the recovery
counters.  Checks the layer's core guarantees:

* an all-zero fault plan is byte-identical to running with faults off;
* a degraded fabric slows the run down but never wedges it — every
  scenario completes with a clean post-run invariant audit;
* a host crash is recovered, not survived by accident: the crash fires,
  recovery reclaims the dead host's directory lines, and MTTR is
  nonzero and deterministic.

Besides the text table, the sweep persists
``benchmarks/results/BENCH_resilience.json`` with availability, MTTR,
and reclaimed-line counts per (workload, scheme, preset) so recovery
cost can be charted across schemes.
"""

import dataclasses
import json

from common import RESULTS_DIR, bench_scale_name, run_cached, write_output
from repro import FaultConfig, SystemConfig
from repro.analysis.report import format_table

PRESETS = ["none", "flaky", "degraded", "hostdown", "hostdown-rejoin"]
CRASH_PRESETS = ("hostdown", "hostdown-rejoin")
SCHEMES = ["native", "pipm"]
WORKLOADS = ["pr", "ycsb"]

#: Deterministic seed + periodic audits for the faulted runs.
_OVERRIDES = "seed=7,watchdog-period-ns=200000"
#: Crash timing pulled inside even a tiny-scale run (which executes for
#: ~170 us of simulated time); the stock preset crashes at 200 us.
_CRASH_OVERRIDES = _OVERRIDES + ",crash-at-ns=5e4"
_REJOIN_OVERRIDES = _CRASH_OVERRIDES + ",crash-rejoin-ns=1.2e5"

JSON_OUT = RESULTS_DIR / "BENCH_resilience.json"


def _config(preset):
    base = SystemConfig.scaled()
    if preset is None:
        return base
    if preset == "none":
        spec = preset
    elif preset == "hostdown-rejoin":
        spec = f"{preset}:{_REJOIN_OVERRIDES}"
    elif preset == "hostdown":
        spec = f"{preset}:{_CRASH_OVERRIDES}"
    else:
        spec = f"{preset}:{_OVERRIDES}"
    return dataclasses.replace(base, faults=FaultConfig.parse(spec))


def _sweep():
    rows = []
    metrics = []
    identity_checks = []
    resilience_checks = []
    for workload in WORKLOADS:
        baselines = {
            scheme: run_cached(workload, scheme, _config(None), tag="base")
            for scheme in SCHEMES
        }
        for preset in PRESETS:
            config = _config(preset)
            for scheme in SCHEMES:
                result = run_cached(
                    workload, scheme, config, tag=f"faults-{preset}",
                )
                base = baselines[scheme]
                stats = result.fault_stats
                rows.append((
                    workload, scheme, preset,
                    f"{result.exec_time_ns / base.exec_time_ns:.3f}x",
                    int(stats.get("fault_link_retries", 0)),
                    int(stats.get("fault_rollbacks", 0)),
                    f"{result.availability:.4f}",
                    f"{result.mttr_ns:.0f}",
                    int(result.lines_reclaimed),
                    int(stats.get("watchdog_violations", 0)),
                ))
                metrics.append({
                    "workload": workload,
                    "scheme": scheme,
                    "preset": preset,
                    "slowdown": round(
                        result.exec_time_ns / base.exec_time_ns, 4
                    ),
                    "availability": round(result.availability, 6),
                    "mttr_ns": result.mttr_ns,
                    "lines_reclaimed": result.lines_reclaimed,
                    "pages_reclaimed": stats.get(
                        "fault_crash_pages_reclaimed", 0.0
                    ),
                    "migrations_aborted": stats.get(
                        "fault_crash_txns_aborted", 0.0
                    ),
                    "lost_updates": stats.get(
                        "fault_crash_lost_updates", 0.0
                    ),
                    "down_ns": stats.get("fault_crash_down_ns", 0.0),
                })
                if preset == "none":
                    identity_checks.append((workload, scheme, result, base))
                else:
                    resilience_checks.append((workload, scheme, preset,
                                              result, base))
    table = format_table(
        "Resilience: slowdown and recovery under fault presets",
        ["workload", "scheme", "preset", "slowdown", "retries",
         "rollbacks", "avail", "mttr_ns", "reclaimed", "violations"],
        rows,
    )
    return table, metrics, identity_checks, resilience_checks


def _write_json(metrics):
    payload = {
        "bench": "resilience",
        "scale": bench_scale_name(),
        "runs": metrics,
    }
    RESULTS_DIR.mkdir(exist_ok=True)
    JSON_OUT.write_text(
        json.dumps(payload, indent=2, sort_keys=True) + "\n"
    )
    return JSON_OUT


def test_resilience(benchmark):
    table, metrics, identity_checks, resilience_checks = benchmark.pedantic(
        _sweep, rounds=1, iterations=1
    )
    write_output("resilience", table)
    path = _write_json(metrics)
    print(f"[metrics saved to {path}]")

    for workload, scheme, result, base in identity_checks:
        assert result == base, (
            f"zero fault plan must be byte-identical "
            f"({workload}/{scheme})"
        )
    for workload, scheme, preset, result, base in resilience_checks:
        # Injected faults perturb event interleaving, so small speedups are
        # possible; only the 4x-degraded fabric guarantees a real slowdown.
        assert "watchdog_violations" not in result.stats, (
            f"invariant audit must stay clean ({workload}/{scheme}/{preset})"
        )
        if preset == "degraded":
            assert result.exec_time_ns > base.exec_time_ns, (
                f"a 4x-degraded fabric must cost time ({workload}/{scheme})"
            )
            assert result.fault_stats.get("fault_link_retries", 0) > 0, (
                f"degraded fabric must force retries ({workload}/{scheme})"
            )
        if preset in CRASH_PRESETS:
            stats = result.fault_stats
            assert stats.get("fault_host_crashes", 0) == 1, (
                f"the scheduled crash must fire ({workload}/{scheme}/{preset})"
            )
            assert result.mttr_ns > 0, (
                f"recovery must charge time ({workload}/{scheme}/{preset})"
            )
            assert result.availability < 1.0, (
                f"a crash must cost host-seconds ({workload}/{scheme}/"
                f"{preset})"
            )
            assert result.lines_reclaimed > 0, (
                f"the dead host's directory lines must be reclaimed "
                f"({workload}/{scheme}/{preset})"
            )
            if preset == "hostdown-rejoin":
                assert stats.get("fault_host_rejoins", 0) == 1, (
                    f"the rejoin must fire ({workload}/{scheme})"
                )
