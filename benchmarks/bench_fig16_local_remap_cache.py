"""Fig. 16: performance vs local remapping cache size, normalized to an
infinite local remapping cache.

Paper shape: the local remapping cache sits on the critical path of local
memory accesses, so capacity matters more than the global cache's; the
paper's 1MB per host achieves 97.8% of infinite.
"""

from common import SENSITIVITY_WORKLOADS, run_cached, write_output
from repro import SystemConfig, units
from repro.analysis.report import format_series, geomean


def _sizes():
    base = SystemConfig.scaled().pipm.local_remap_cache_bytes
    return {
        "1/16x": max(1024, base // 16),
        "1/4x": max(2048, base // 4),
        "1x": base,
        "4x": base * 4,
    }


def _sweep():
    series = {}
    for workload in SENSITIVITY_WORKLOADS:
        infinite = run_cached(
            workload, "pipm", tag="lrc-inf",
            infinite_local_remap_cache=True,
        )
        row = {}
        for label, size in _sizes().items():
            cfg = SystemConfig.scaled().replace_nested(
                "pipm", local_remap_cache_bytes=size
            )
            result = run_cached(workload, "pipm", config=cfg,
                                tag=f"lrc-{label}")
            row[label] = infinite.exec_time_ns / result.exec_time_ns
        series[workload] = row
    return series


def test_fig16_local_remap_cache(benchmark):
    series = benchmark.pedantic(_sweep, rounds=1, iterations=1)
    table = format_series(
        "Fig. 16: PIPM performance vs local remapping cache size "
        "(1.0 = infinite cache)",
        series, mean_row="geomean",
    )
    write_output("fig16_local_remap_cache", table)

    tiny = geomean(v["1/16x"] for v in series.values())
    default = geomean(v["1x"] for v in series.values())
    assert default >= tiny - 1e-9, "bigger caches should not hurt"
    # The paper's sizing achieves ~98% of infinite.
    assert default > 0.90
