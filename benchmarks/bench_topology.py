"""Fabric-topology evaluation: the scheme matrix across switched racks.

Re-runs the PIPM-vs-Native-vs-Memtis comparison under the three fabric
presets (``flat``, ``single-switch``, ``two-tier``) at rack scale
(4/8/16/32 hosts).  The flat fabric is the paper's baseline model — each
host owns a private link to the memory node — while the switched presets
route every access through shared switch ports and leaf uplinks that
contend *across* hosts, so the fabric itself becomes a scaling
bottleneck the schemes must amortize.

Checks the topology layer's core guarantees:

* a switched path is never free: for every (workload, scheme, hosts)
  cell, single-switch and two-tier runs cost strictly more time than
  flat (extra hop latency plus shared-segment queueing);
* switching never erodes PIPM's advantage: migrating hot pages to
  local DRAM removes traffic from the contended shared segments, so
  PIPM's speedup over Native on a switched fabric must stay within a
  small margin of (and typically exceeds) its flat-fabric speedup, and
  on the graph workload PIPM keeps beating Native outright on every
  fabric up to 16 hosts.

Besides the text table, persists
``benchmarks/results/BENCH_topology.json`` with per-cell execution
times, slowdown-vs-flat, and speedup-over-native so fabric sensitivity
can be charted per scheme.
"""

import dataclasses
import json

from common import RESULTS_DIR, bench_scale_name, run_cached, write_output
from repro import SystemConfig
from repro.analysis.report import format_table
from repro.config import FabricConfig

TOPOLOGIES = ["flat", "single-switch", "two-tier"]
HOSTS = [4, 8, 16, 32]
SCHEMES = ["native", "memtis", "pipm"]
WORKLOADS = ["pr", "ycsb"]

JSON_OUT = RESULTS_DIR / "BENCH_topology.json"


def _config(topology, hosts):
    return dataclasses.replace(
        SystemConfig.scaled(num_hosts=hosts),
        fabric=FabricConfig.parse(topology),
    )


def _sweep():
    rows = []
    metrics = []
    ordering_checks = []
    for workload in WORKLOADS:
        for hosts in HOSTS:
            # results[topology][scheme]
            results = {}
            for topology in TOPOLOGIES:
                config = _config(topology, hosts)
                results[topology] = {
                    scheme: run_cached(
                        workload, scheme, config, tag=f"topo-{topology}",
                    )
                    for scheme in SCHEMES
                }
            for topology in TOPOLOGIES:
                native = results[topology]["native"]
                for scheme in SCHEMES:
                    result = results[topology][scheme]
                    flat = results["flat"][scheme]
                    slowdown = result.exec_time_ns / flat.exec_time_ns
                    speedup = result.speedup_over(native)
                    rows.append((
                        workload, hosts, topology, scheme,
                        f"{slowdown:.3f}x",
                        f"{speedup:.2f}x",
                        f"{result.local_hit_rate:.1%}",
                        result.migrations,
                    ))
                    metrics.append({
                        "workload": workload,
                        "hosts": hosts,
                        "topology": topology,
                        "scheme": scheme,
                        "exec_time_ns": result.exec_time_ns,
                        "slowdown_vs_flat": round(slowdown, 4),
                        "speedup_over_native": round(speedup, 4),
                        "local_hit_rate": round(result.local_hit_rate, 6),
                        "migrations": result.migrations,
                    })
                    if topology != "flat":
                        ordering_checks.append(
                            (workload, hosts, topology, scheme, result, flat)
                        )
    table = format_table(
        "Fabric topology: slowdown vs flat and speedup over Native",
        ["workload", "hosts", "topology", "scheme", "vs flat",
         "speedup", "local hits", "migrations"],
        rows,
    )
    return table, metrics, ordering_checks


def _write_json(metrics):
    payload = {
        "bench": "topology",
        "scale": bench_scale_name(),
        "runs": metrics,
    }
    RESULTS_DIR.mkdir(exist_ok=True)
    JSON_OUT.write_text(
        json.dumps(payload, indent=2, sort_keys=True) + "\n"
    )
    return JSON_OUT


def test_topology(benchmark):
    table, metrics, ordering_checks = benchmark.pedantic(
        _sweep, rounds=1, iterations=1
    )
    write_output("topology", table)
    path = _write_json(metrics)
    print(f"[metrics saved to {path}]")

    for workload, hosts, topology, scheme, result, flat in ordering_checks:
        assert result.exec_time_ns > flat.exec_time_ns, (
            f"a switched fabric must cost time "
            f"({workload}/{scheme}/{topology}@{hosts})"
        )
    speedups = {
        (e["workload"], e["hosts"], e["topology"]): e["speedup_over_native"]
        for e in metrics
        if e["scheme"] == "pipm"
    }
    for (workload, hosts, topology), speedup in speedups.items():
        if topology != "flat":
            flat_speedup = speedups[(workload, hosts, "flat")]
            assert speedup >= 0.95 * flat_speedup, (
                f"switching must not erode PIPM's advantage "
                f"({workload}/{topology}@{hosts}: {speedup:.3f}x vs "
                f"{flat_speedup:.3f}x on flat)"
            )
        if workload == "pr" and hosts <= 16:
            assert speedup > 1.0, (
                f"PIPM must keep beating Native on {topology} "
                f"at {hosts} hosts (pr)"
            )
