"""Table 1: evaluated workloads — suite, paper footprint, scaled footprint.

Regenerates the workload inventory and verifies every generator produces a
trace at the bench scale.
"""

from common import bench_scale, write_output
from repro import units
from repro.analysis.report import format_table
from repro.workloads import generate, workload_names
from repro.workloads.registry import WORKLOADS


def _build_table() -> str:
    scale = bench_scale()
    rows = []
    for name in workload_names():
        info = WORKLOADS[name]
        trace = generate(name, scale=scale)
        rows.append((
            name,
            info.suite,
            f"{info.paper_footprint_gb}GB",
            units.pretty_size(trace.footprint_bytes),
            f"{trace.total_accesses}",
            f"{1 - trace.read_write_ratio:.0%}",
            info.description,
        ))
    return format_table(
        "Table 1: Evaluated workloads (paper footprint vs scaled trace)",
        ["workload", "suite", "paper", "scaled", "accesses", "writes",
         "description"],
        rows,
    )


def test_table1_workloads(benchmark):
    table = benchmark.pedantic(_build_table, rounds=1, iterations=1)
    write_output("table1_workloads", table)
    assert "48GB" in table
    assert table.count("\n") >= 14
