"""Benchmark collection config: make `common` importable from this dir."""

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).parent))
