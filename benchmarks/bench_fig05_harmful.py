"""Fig. 5: percentage of harmful page migrations.

Paper shape: Nomad 34% and Memtis 29% of migrations are harmful on average
— they increase total execution time because other hosts' accesses to the
migrated page become 4-hop non-cacheable.
"""

from common import bench_workloads, run_cached, write_output
from repro.analysis.report import format_series, mean

SCHEMES = ["nomad", "memtis", "hemem"]


def _sweep():
    series = {}
    for workload in bench_workloads():
        series[workload] = {
            scheme: run_cached(workload, scheme).stats.get(
                "harmful_fraction", 0.0
            )
            for scheme in SCHEMES
        }
    return series


def test_fig05_harmful_migrations(benchmark):
    series = benchmark.pedantic(_sweep, rounds=1, iterations=1)
    table = format_series(
        "Fig. 5: Fraction of harmful page migrations", series,
        fmt="{:.3f}", mean_row=None,
    )
    avg = {s: mean(v[s] for v in series.values()) for s in SCHEMES}
    table += "\nmean: " + "  ".join(f"{k}={v:.1%}" for k, v in avg.items())
    write_output("fig05_harmful", table)

    # A substantial fraction of single-host-policy migrations is harmful in
    # multi-host CXL-DSM (the paper's take-away #2: ~29-34%).
    assert 0.05 < avg["nomad"] < 0.95
    assert 0.05 < avg["memtis"] < 0.95
