"""PIPM: Partial and Incremental Page Migration for Multi-host CXL-DSM.

A from-scratch Python reproduction of the ASPLOS'26 paper: a multi-host
CXL disaggregated-shared-memory timing simulator, the PIPM coherence
protocol and remapping-table architecture, six baseline migration schemes,
thirteen workload trace generators, and harnesses regenerating every table
and figure of the paper's evaluation.

Quickstart::

    from repro import SystemConfig, compare_schemes, speedups_over_native

    results = compare_schemes("pr", schemes=["native", "pipm"])
    print(speedups_over_native(results))
"""

from .config import (
    CacheConfig,
    CoreConfig,
    CxlLinkConfig,
    DirectoryConfig,
    DramConfig,
    FaultConfig,
    KernelMigrationConfig,
    PipmConfig,
    SystemConfig,
)
from .faults import (
    FaultInjector,
    FaultPlan,
    InvariantWatchdog,
    LinkTransferError,
    MessageFaultModel,
)
from .sim import (
    MultiHostSystem,
    ServicePoint,
    SimulationEngine,
    SimulationResult,
    compare_schemes,
    run_experiment,
    simulate,
)
from .sim.harness import DEFAULT_SCHEMES, speedups_over_native
from .policies import SCHEME_CLASSES, make_scheme
from .workloads import WorkloadScale, WorkloadTrace, generate, workload_names
from .coherence import BaseCxlDsmModel, CheckResult, ModelChecker, PipmModel

__version__ = "1.0.0"

__all__ = [
    "CacheConfig",
    "CoreConfig",
    "CxlLinkConfig",
    "DirectoryConfig",
    "DramConfig",
    "FaultConfig",
    "FaultInjector",
    "FaultPlan",
    "InvariantWatchdog",
    "LinkTransferError",
    "MessageFaultModel",
    "KernelMigrationConfig",
    "PipmConfig",
    "SystemConfig",
    "MultiHostSystem",
    "ServicePoint",
    "SimulationEngine",
    "SimulationResult",
    "compare_schemes",
    "run_experiment",
    "simulate",
    "DEFAULT_SCHEMES",
    "speedups_over_native",
    "SCHEME_CLASSES",
    "make_scheme",
    "WorkloadScale",
    "WorkloadTrace",
    "generate",
    "workload_names",
    "BaseCxlDsmModel",
    "CheckResult",
    "ModelChecker",
    "PipmModel",
    "__version__",
]
