"""The multi-host CXL-DSM system model.

Wires hosts (cores, L1s, LLC, local directory, local DRAM, TLB) to the CXL
memory node (device coherence directory, CXL DRAM, global remapping
table/cache) over per-host CXL links, and implements the access workflows
of the paper for all three placement mechanisms:

* **baseline CXL-DSM** (Fig. 2): cacheable 2-hop CXL access, 4-hop
  owner-forward when another host caches the line dirty, device-directory
  capacity back-invalidation;
* **kernel page migration / GIM** (Fig. 3): pages migrated to one host's
  local memory are served locally by that host and via the *non-cacheable
  4-hop* path by every other host; migration batches charge page-table /
  TLB management time and occupy link + DRAM bandwidth;
* **PIPM** (Figs. 7 and 9): local/global remapping table lookups,
  majority-vote promotion, incremental migration on LLC eviction,
  migrate-back on inter-host access, revocation.

The model charges latency at memory-access granularity; every latency
constant comes from :class:`repro.config.SystemConfig` (Table 2).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from .. import units
from ..analysis.harmful import MigrationLedger
from ..cache.directory import SlicedDirectory
from ..config import SystemConfig
from ..faults.injector import FaultInjector
from ..faults.plan import FaultPlan
from ..faults.watchdog import InvariantWatchdog
from ..host.host import Host
from ..mem.address import AddressMap, FrameAllocator
from ..mem.controller import MemoryController
from ..mem.cxl_link import (
    CONTROL_BYTES,
    TO_DEVICE,
    TO_HOST,
    LinkTransferError,
)
from ..mem.fabric import FabricTopology
from ..pipm.engine import PipmEngine
from ..pipm.remap_global import NO_HOST
from ..pipm.remap_local import LEAF_ENTRIES
from ..policies.base import Mechanism, MigrationScheme
from ..policies.costs import KernelCostModel
from ..stats import StatRegistry
from .results import ServicePoint

_I = 0
_S = 1
_M = 3

#: Radix-root entries are 8-byte pointers to leaves.
_ROOT_PTRS_PER_LINE = units.CACHE_LINE // 8

_SVC_L1 = int(ServicePoint.L1)
_SVC_LLC = int(ServicePoint.LLC)
_SVC_LOCAL = int(ServicePoint.LOCAL_MEM)
_SVC_PIPM = int(ServicePoint.PIPM_LOCAL)
_SVC_CXL = int(ServicePoint.CXL_MEM)
_SVC_FWD = int(ServicePoint.CXL_FWD)
_SVC_INTER = int(ServicePoint.INTER_HOST)

_LINES_MASK = units.LINES_PER_PAGE - 1
_LINE_TO_PAGE = units.PAGE_SHIFT - units.LINE_SHIFT
_LINE_SHIFT = units.LINE_SHIFT
_CACHE_LINE = units.CACHE_LINE


class MultiHostSystem:
    """A complete multi-host CXL-DSM machine running one scheme."""

    def __init__(
        self,
        config: SystemConfig,
        scheme: MigrationScheme,
        workload_mlp: float = 4.0,
        stats: Optional[StatRegistry] = None,
        infinite_global_remap_cache: bool = False,
        infinite_local_remap_cache: bool = False,
        footprint_pages: Optional[int] = None,
    ) -> None:
        config.validate()
        self.config = config
        self.scheme = scheme
        self.stats = stats if stats is not None else StatRegistry()
        self.address_map = AddressMap(
            config.num_hosts,
            config.cxl_dram.capacity_bytes,
            config.local_dram.capacity_bytes,
        )
        self.hosts = [
            Host(h, config, self.stats.scoped(f"host{h}"), workload_mlp)
            for h in range(config.num_hosts)
        ]
        # The fabric graph owns the per-host edge links and resolves each
        # host's route to the memory node into a path object.  Under the
        # flat preset ``paths[h] is links[h]`` (the bare CxlLink), so the
        # default topology cannot perturb a float of the pre-fabric model;
        # switched presets route through shared, contended segments and the
        # vector backend's flat fast path stands down.
        self.topology = FabricTopology(
            config.fabric, config.cxl_link, config.num_hosts, self.stats
        )
        self.links = self.topology.links
        self.paths = self.topology.paths  # simcheck: escalates[switched-path]
        self.device_dir = SlicedDirectory(
            config.directory.sets,
            config.directory.ways,
            config.directory.slices,
            name="device-dir",
        )
        self.cxl_mem = MemoryController(
            config.cxl_dram, self.stats.scoped("cxl_mem")
        )

        # -- fault injection (optional; zero-cost when idle) ---------------
        self.injector: Optional[FaultInjector] = None
        self.watchdog: Optional[InvariantWatchdog] = None
        self._faults_on = False
        if config.faults is not None:
            num_lines = self.address_map.cxl_capacity // units.CACHE_LINE
            if footprint_pages is not None:
                # Poison lines the workload can actually touch; the rest of
                # the pool is never accessed, so poison there never surfaces.
                num_lines = min(
                    num_lines, footprint_pages * units.LINES_PER_PAGE
                )
            plan = FaultPlan.from_config(
                config.faults, config.num_hosts, num_lines
            )
            self.injector = FaultInjector(plan)
            for h, link in enumerate(self.links):
                link.attach_faults(self.injector.link(h))
            self._faults_on = (  # simcheck: escalates[faults-active]
                self.injector.can_disrupt_transfers
            )
            self.watchdog = InvariantWatchdog(
                self,
                mode=config.faults.watchdog_mode,
                period_ns=config.faults.watchdog_period_ns,
            )
            if config.faults.has_switch_down:
                # Switch-level fault: every path traversing the named
                # switch runs degraded for the window (validate() already
                # required a non-flat fabric and a valid switch index).
                self.topology.apply_switch_down(
                    config.faults.switch_down,
                    config.faults.switch_down_start_ns,
                    config.faults.switch_down_end_ns,
                    config.faults.switch_down_latency_x,
                    config.faults.switch_down_bandwidth_x,
                )

        frames_per_host = int(
            config.local_dram.capacity_bytes
            * config.migration_capacity_fraction
        ) // units.PAGE_SIZE

        # -- latency constants (ns) ------------------------------------
        self._l1_ns = config.l1.latency_ns
        self._llc_ns = config.llc.latency_ns
        self._ldir_ns = config.local_dir_latency_ns
        self._ddir_ns = config.directory.latency_ns
        self._grc_ns = config.pipm.global_remap_cache_latency_ns
        self._lrc_ns = config.pipm.local_remap_cache_latency_ns

        # -- remap-table walk address regions --------------------------
        # Table walks occupy DRAM like any other access, but at the
        # *table's* addresses: walking at the data address would prime the
        # data line's row buffer and fake a row hit on the read that
        # follows.  The regions sit above the unified data map, so they can
        # never alias workload data in any bank.  (Per-host local tables
        # live behind per-host controllers; reusing one numeric base across
        # hosts cannot alias either.)
        table_base = self.address_map.total_capacity
        num_pages = self.address_map.cxl_capacity // units.PAGE_SIZE
        root_lines = num_pages // LEAF_ENTRIES // _ROOT_PTRS_PER_LINE + 1
        self._local_root_base = table_base
        self._local_leaf_base = table_base + (root_lines << units.LINE_SHIFT)
        self._global_table_base = table_base
        self._leaf_entries_per_line = (
            units.CACHE_LINE // config.pipm.local_entry_bytes
        )
        self._global_entries_per_line = (
            units.CACHE_LINE // config.pipm.global_entry_bytes
        )

        # -- mechanism state -----------------------------------------------
        self.mechanism = scheme.mechanism
        self.all_local = scheme.all_local
        scheme.bind(config.num_hosts, frames_per_host)

        # -- hot-path predicates (static for the lifetime of the run) ------
        self._is_pipm = self.mechanism is Mechanism.PIPM
        self._is_page_map = self.mechanism is Mechanism.PAGE_MAP
        self._cxl_end = self.address_map.cxl_end
        self._check_poison = (
            self.injector is not None and self.injector.has_poison
        )
        self._check_crash = (
            self.injector is not None and self.injector.has_crashes
        )
        # Promotion gating: degraded links and/or the crash governor.
        self._governed = self.injector is not None and (
            self.injector.can_disrupt_transfers or self.injector.has_crashes
        )

        self.engine: Optional[PipmEngine] = None
        self.page_map: Dict[int, int] = {}
        self._page_frames: Dict[int, int] = {}
        self.frames: List[FrameAllocator] = []
        self.dirty_pages: set = set()
        self.ledger: Optional[MigrationLedger] = None
        self._cost_model: Optional[KernelCostModel] = None
        self._next_interval: Optional[float] = None

        if self.mechanism is Mechanism.PIPM:
            static_frames = (
                self.address_map.cxl_capacity // units.PAGE_SIZE
                // config.num_hosts
                + 1
            )
            self.engine = PipmEngine(
                config.pipm,
                config.num_hosts,
                config.cxl_dram.capacity_bytes,
                static_frames if scheme.static_map else frames_per_host,
                static_map=scheme.static_map,
                infinite_global_cache=infinite_global_remap_cache,
                infinite_local_cache=infinite_local_remap_cache,
            )
        elif self.mechanism is Mechanism.PAGE_MAP:
            kernel_frames = frames_per_host
            if footprint_pages is not None:
                kernel_frames = min(
                    kernel_frames,
                    max(16, int(config.kernel.resident_fraction_cap
                                * footprint_pages)),
                )
            self.frames = [
                FrameAllocator(kernel_frames)
                for _ in range(config.num_hosts)
            ]
            kernel_cfg = config.kernel
            scale = getattr(scheme, "initiator_cost_scale", 1.0)
            if scale != 1.0:
                import dataclasses

                kernel_cfg = dataclasses.replace(
                    kernel_cfg,
                    initiator_cost_ns=kernel_cfg.initiator_cost_ns * scale,
                )
            self._cost_model = KernelCostModel(kernel_cfg, config.num_hosts)
            self.ledger = MigrationLedger(config)
            interval = scheme.interval_ns()
            if interval is None:
                # The scheme inherits the configured interval — and must be
                # told, since interval-relative policy logic (e.g. Nomad's
                # inactive-list aging) depends on it.
                interval = config.kernel.interval_ns
                if hasattr(scheme, "_interval_ns"):
                    scheme._interval_ns = interval
            self._interval_ns = interval
            self._next_interval = interval

        # -- run counters -------------------------------------------------
        self.svc_counts = [0] * 7
        self.migrations = 0
        self.demotions = 0
        self.mgmt_ns = 0.0
        self.transfer_ns = 0.0
        self.peak_local_pages: Dict[int, int] = {}
        self.peak_local_lines: Dict[int, int] = {}
        self.back_invalidations = 0

    # ==================================================================
    # The access path
    # ==================================================================
    def access(
        self, host_id: int, core: int, addr: int, is_write: bool, now: float
    ) -> Tuple[float, int]:
        """Service one memory access; returns ``(latency_ns, service_point)``."""
        line = addr >> _LINE_SHIFT
        page = line >> _LINE_TO_PAGE
        host = self.hosts[host_id]

        shared = addr < self._cxl_end
        lat = host.tlb.translate(page) + self._l1_ns

        if self._check_poison:
            injector = self.injector
            if now >= injector.next_poison_ns:
                for poisoned_line in injector.activate_poison(now):
                    self._poison_line(poisoned_line)
            if injector.poisoned and line in injector.poisoned:
                # Poisoned-line consumption: scrub and re-fetch a clean copy
                # from the device before the access can be served.
                injector.clear_poison(line)
                lat += injector.poison_penalty_ns
        l1s = host.l1s
        l1 = l1s[core % len(l1s)]
        entry = l1.lookup(line)
        if entry is not None:
            if is_write:
                if shared and not entry.dirty and entry.state == 0:
                    # Write hit on a Shared copy: S -> M upgrade must
                    # invalidate the other hosts' copies first.
                    # simcheck: escalates[upgrade-l1-hit]
                    lat += self._upgrade(host_id, line, now)
                    entry.state = 1
                    llc_copy = host.llc.peek(line)
                    if llc_copy is not None:
                        llc_copy.state = 1
                        llc_copy.dirty = True
                entry.dirty = True
            self.svc_counts[_SVC_L1] += 1
            return lat, _SVC_L1

        # Kernel-migrated pages are non-cacheable at *other* hosts: skip the
        # cache hierarchy entirely (Section 3.1).
        if shared and self._is_page_map:
            loc = self.page_map.get(page)
            if loc is not None and loc != host_id:
                # simcheck: escalates[inter-host-page]
                return self._inter_host_nc(host_id, loc, page, addr,
                                           is_write, now, lat)
        else:
            loc = None

        llc_entry = host.llc.lookup(line)
        lat += self._llc_ns
        if llc_entry is not None:
            if is_write and not llc_entry.dirty and llc_entry.state == 0:
                # Upgrade an S copy: other sharers must be invalidated.
                # simcheck: escalates[upgrade-llc-hit]
                lat += self._upgrade(host_id, line, now)
                llc_entry.state = 1
            if is_write:
                llc_entry.dirty = True
            self._fill_l1(host, l1, line, is_write,
                          exclusive=llc_entry.state or 0)
            self.svc_counts[_SVC_LLC] += 1
            return lat, _SVC_LLC

        if not shared:
            # Host-private data (stacks, code, kernel structures).
            lat += self._ldir_ns + host.local_mem.read_line(addr, now)
            self._fill(host, l1, line, page, is_write, exclusive=True, now=now)
            self.svc_counts[_SVC_LOCAL] += 1
            return lat, _SVC_LOCAL

        if self.all_local:
            # Local-only / Ideal: everything served at local latency.
            lat += self._ldir_ns + host.local_mem.read_line(addr, now)
            self._fill(host, l1, line, page, is_write, exclusive=True, now=now)
            self.svc_counts[_SVC_LOCAL] += 1
            return lat, _SVC_LOCAL

        host.page_table.touch(page)

        if self._is_pipm:
            return self._shared_pipm(host_id, l1, line, page, addr,
                                     is_write, now, lat)

        if self._is_page_map:
            self.scheme.observe_shared_access(host_id, page, now, is_write)
            if loc == host_id:
                # Our own migrated page: a plain local-memory access.
                if self.ledger is not None:
                    self.ledger.record_local_access(page)
                if is_write:
                    self.dirty_pages.add(page)
                lat += self._ldir_ns + host.local_mem.read_line(addr, now)
                self._fill(host, l1, line, page, is_write, exclusive=True,
                           now=now)
                self.svc_counts[_SVC_LOCAL] += 1
                return lat, _SVC_LOCAL

        # Baseline cacheable CXL-DSM access (native / page in CXL).
        extra, svc, exclusive = self._cxl_access(host_id, line, addr,
                                                 is_write, now)
        self._fill(host, l1, line, page, is_write, exclusive=exclusive,
                   now=now)
        self.svc_counts[svc] += 1
        return lat + extra, svc

    # ------------------------------------------------------------------
    # Baseline CXL-DSM workflows (Fig. 2)
    # ------------------------------------------------------------------
    def _cxl_access(
        self, host_id: int, line: int, addr: int, is_write: bool, now: float
    ) -> Tuple[float, int, bool]:
        """2-hop cacheable CXL access, or 4-hop dirty-owner forward.

        Returns ``(latency, service_point, exclusive)`` — ``exclusive`` is
        True when the requester ends up the line's only holder (M, or S
        with no other sharers), which decides whether a later write hit
        needs an upgrade transaction.
        """
        path = self.paths[host_id]
        lat = path.round_trip(now, CONTROL_BYTES, _CACHE_LINE)
        lat += self._ddir_ns
        entry = self.device_dir.lookup(line)
        svc = _SVC_CXL
        if (
            entry is not None
            and entry.state == _M
            and entry.owner != host_id
            and entry.owner >= 0
            and self.hosts[entry.owner].holds_line(line)
        ):
            owner = entry.owner  # simcheck: escalates[dirty-owner-forward]
            # Forward to the owner; dirty data returns via the CXL node.
            pair = self.topology.pair(host_id, owner)
            lat += (
                pair.owner.round_trip(now, CONTROL_BYTES, _CACHE_LINE)
                + self._ldir_ns
                + self._llc_ns
            )
            if is_write:
                self.hosts[owner].invalidate_line(line)
            else:
                self.hosts[owner].downgrade_line(line)
            self.cxl_mem.write_line(addr, now)  # async writeback (occupancy)
            svc = _SVC_FWD
        else:
            lat += self.cxl_mem.read_line(addr, now)

        new_entry = self._dir_update(host_id, line, is_write, entry, now)
        exclusive = is_write or len(new_entry.sharers) <= 1
        return lat, svc, exclusive

    def _dir_update(self, host_id, line, is_write, entry, now):
        if is_write:
            if entry is not None:
                for sharer in sorted(entry.sharers):
                    if sharer != host_id:
                        self.hosts[sharer].invalidate_line(line)
            new_entry, victim = self.device_dir.allocate(line, _M, host_id)
            new_entry.sharers = {host_id}
        else:
            new_entry, victim = self.device_dir.allocate(line, _S, -1)
            if new_entry.state == _M:
                new_entry.state = _S
            # E -> S downgrade: earlier sole holders lose exclusivity.
            for sharer in sorted(new_entry.sharers):
                if sharer != host_id:
                    self._drop_exclusivity(sharer, line)
            new_entry.sharers.add(host_id)
        if victim is not None:
            self._back_invalidate(victim, now)
        return new_entry

    def _drop_exclusivity(self, host_id: int, line: int) -> None:
        host = self.hosts[host_id]
        entry = host.llc.peek(line)
        if entry is not None:
            entry.state = 0
        for l1 in host.l1s:
            l1_entry = l1.peek(line)
            if l1_entry is not None:
                l1_entry.state = 0

    def _back_invalidate(self, victim, now: float) -> None:
        """Device-directory capacity eviction: recall the line everywhere."""
        self.back_invalidations += 1
        holders = set(victim.sharers)
        if victim.owner >= 0:
            holders.add(victim.owner)
        for holder in sorted(holders):
            dirty = self.hosts[holder].invalidate_line(victim.line)
            if dirty:
                base = victim.line << _LINE_SHIFT
                self.paths[holder].transfer(TO_DEVICE, now, _CACHE_LINE)
                self.cxl_mem.write_line(base, now)

    def _upgrade(self, host_id: int, line: int, now: float) -> float:
        """S -> M upgrade: invalidate other sharers through the device dir."""
        lat = self.paths[host_id].round_trip(now, CONTROL_BYTES, CONTROL_BYTES)
        lat += self._ddir_ns
        entry = self.device_dir.peek(line)
        if entry is not None:
            for sharer in sorted(entry.sharers):
                if sharer != host_id:
                    self.hosts[sharer].invalidate_line(line)
            entry.sharers = {host_id}
            entry.state = _M
            entry.owner = host_id
        return lat

    # ------------------------------------------------------------------
    # GIM non-cacheable inter-host path (Fig. 3, steps 1-5)
    # ------------------------------------------------------------------
    def _inter_host_nc(
        self, host_id, owner, page, addr, is_write, now, lat
    ) -> Tuple[float, int]:
        owner_host = self.hosts[owner]
        line = addr >> _LINE_SHIFT
        # Requester -> CXL node (routing by unified PA) -> owner -> back,
        # over the pair's two resolved fabric paths.
        pair = self.topology.pair(host_id, owner)
        lat += pair.requester.round_trip(
            now, CONTROL_BYTES,
            CONTROL_BYTES if is_write else _CACHE_LINE,
        )
        lat += self._ddir_ns  # RC routing at the CXL node
        lat += pair.owner.round_trip(
            now,
            _CACHE_LINE if is_write else CONTROL_BYTES,
            _CACHE_LINE,
        )
        lat += self._ldir_ns
        if owner_host.holds_line(line):
            lat += self._llc_ns
            if is_write:
                entry = owner_host.llc.peek(line)
                if entry is not None:
                    entry.dirty = True
        elif is_write:
            # Fig. 3 step 4: the write lands in the owner's DRAM.  (This
            # used to charge ``read_line``, leaving row-buffer/occupancy
            # state inconsistent with the data flow.)
            lat += owner_host.local_mem.write_line(addr, now)
        else:
            lat += owner_host.local_mem.read_line(addr, now)
        if is_write:
            self.dirty_pages.add(page)
        self.scheme.observe_shared_access(host_id, page, now, is_write)
        if self.ledger is not None:
            self.ledger.record_remote_access(page)
        self.svc_counts[_SVC_INTER] += 1
        return lat, _SVC_INTER

    # ------------------------------------------------------------------
    # PIPM workflows (Figs. 7 and 9)
    # ------------------------------------------------------------------
    def _shared_pipm(
        self, host_id, l1, line, page, addr, is_write, now, lat
    ) -> Tuple[float, int]:
        engine = self.engine
        host = self.hosts[host_id]
        line_in_page = line & _LINES_MASK

        # Local remapping lookup decides I vs I' (Section 4.3.3).
        entry, cache_hit = engine.local_lookup(host_id, page)
        lat += self._lrc_ns
        if not cache_hit:
            # Two-level radix walk in local DRAM: one read per level, each
            # at the table's own address.  (This used to charge ``2 *
            # read_line(addr)`` — doubling a single occupancy/row-buffer
            # charge and aliasing the walk into the data line's row.)
            root = page // LEAF_ENTRIES
            lat += host.local_mem.read_line(
                self._local_root_base
                + (root // _ROOT_PTRS_PER_LINE << units.LINE_SHIFT),
                now,
            )
            lat += host.local_mem.read_line(
                self._local_leaf_base
                + (page // self._leaf_entries_per_line << units.LINE_SHIFT),
                now,
            )

        if entry is not None and entry.line_migrated(line_in_page):
            # Case 3 of Fig. 9: I' -> ME, served from local memory.
            engine.record_local_access(entry)
            lat += self._ldir_ns + host.local_mem.read_line(addr, now)
            self._fill(host, l1, line, page, is_write, exclusive=True, now=now)
            self.svc_counts[_SVC_PIPM] += 1
            return lat, _SVC_PIPM

        if entry is not None:
            # The page is partially migrated here but this line still lives
            # in CXL memory; the access still counts as local interest.
            engine.record_local_access(entry)

        # -> CXL memory node.  The global remapping lookup rides the same
        # request/response the device-directory transaction uses, so only
        # the cache probe (and a table walk on a miss) adds latency; the
        # link round-trip itself is charged by the serving path below.
        lat += self._grc_ns
        if not engine.device_lookup(page):
            # Global remapping table access in CXL DRAM, in the table's own
            # address region.  (This used to read ``page << PAGE_SHIFT`` —
            # the data page's first line — so every table-walk miss warmed
            # the row buffer for the data read and faked a row hit.)
            lat += self.cxl_mem.read_line(
                self._global_table_base
                + (page // self._global_entries_per_line
                   << units.LINE_SHIFT),
                now,
            )

        if engine.static_map:
            current = engine.static_home(page)
            if current == host_id:
                current = NO_HOST  # handled as a plain CXL access below
        else:
            current = engine.global_table.current_host(page)

        if current != NO_HOST and current != host_id:
            # simcheck: escalates[pipm-inter-host]
            # Under fault injection the migrate-back/revocation sequence is
            # transactional: snapshot first, roll back on a failed transfer
            # and degrade to a direct device access.
            txn = engine.begin_txn(current, page) if self._faults_on else None
            pair = self.topology.pair(host_id, current)
            migrated, revoked = engine.inter_host_access(
                current, page, line_in_page
            )
            aborted = False
            if revoked:
                try:
                    self._revocation_transfer(current, page, revoked, now)
                except LinkTransferError as exc:
                    self._abort_migration(txn, exc)
                    aborted = True
            if migrated and not aborted:
                # Cases 2/5/6: 4-hop to the owner's local memory; the line
                # migrates back to CXL and the requester caches it normally.
                owner_host = self.hosts[current]
                try:
                    if txn is not None:
                        owner_rtt = pair.owner.try_round_trip(
                            now, CONTROL_BYTES, units.CACHE_LINE
                        )
                    else:
                        owner_rtt = pair.owner.round_trip(
                            now, CONTROL_BYTES, units.CACHE_LINE
                        )
                except LinkTransferError as exc:
                    self._abort_migration(txn, exc)
                    aborted = True
                if not aborted:
                    lat += pair.requester.round_trip(
                        now, CONTROL_BYTES, units.CACHE_LINE
                    )
                    lat += self._ddir_ns
                    lat += self.cxl_mem.read_line(addr, now)  # verify I' bit
                    lat += owner_rtt
                    lat += self._ldir_ns
                    if owner_host.holds_line(line):  # ME cached (cases 5/6)
                        lat += self._llc_ns
                        if is_write:
                            owner_host.invalidate_line(line)
                        else:
                            owner_host.downgrade_line(line)
                    else:
                        lat += owner_host.local_mem.read_line(addr, now)
                    self.cxl_mem.write_line(addr, now)  # async migrate-back
                    self._dir_update(host_id, line, is_write, None, now)
                    self._fill(host, l1, line, page, is_write, exclusive=True,
                               now=now)
                    self.svc_counts[_SVC_INTER] += 1
                    return lat, _SVC_INTER
            # Line not migrated (or the migration aborted): fall through to
            # the plain CXL access.

        if current == NO_HOST:
            if self._governed and self.injector.promotion_blocked(host_id, now):
                # Graceful degradation: no vote progress and no new partial
                # migrations while this host's link runs degraded or the
                # migration governor holds promotions suspended (link flap
                # hysteresis / crash recovery in progress).
                pass
            else:
                # simcheck: escalates[pipm-promotion]
                dest = engine.record_cxl_access(page, host_id)
                if dest is not None:
                    self.migrations += 1
                    self._track_engine_peaks(dest)

        extra, svc, exclusive = self._cxl_access(host_id, line, addr,
                                                 is_write, now)
        self._fill(host, l1, line, page, is_write, exclusive=exclusive,
                   now=now)
        self.svc_counts[svc] += 1
        return lat + extra, svc

    def _revocation_transfer(
        self, owner: int, page: int, lines: List[int], now: float
    ) -> None:
        """Bulk write-back of a revoked page's migrated lines (step 6).

        The link transfer runs first so a failed/timed-out transfer (fault
        injection) raises before any bookkeeping mutates; the caller rolls
        the engine back and nothing here needs undoing.
        """
        size = len(lines) * units.CACHE_LINE
        if size:
            if self._faults_on:
                self._bulk_transfer(owner, TO_DEVICE, size, now)  # may raise
            else:
                self.paths[owner].transfer(TO_DEVICE, now, size)
            self.transfer_ns += units.transfer_ns(
                size, self.config.cxl_link.bandwidth_gbs
            )
            base = page << units.PAGE_SHIFT
            for line_in_page in lines:
                self.cxl_mem.write_line(
                    base + line_in_page * units.CACHE_LINE, now
                )
        self.demotions += 1
        # The revoked page's lines must leave the owner's caches too.
        base_line = page << _LINE_TO_PAGE
        owner_host = self.hosts[owner]
        for line_in_page in lines:
            owner_host.invalidate_line(base_line + line_in_page)

    def _bulk_transfer(
        self, host: int, direction: int, size: int, now: float
    ) -> float:
        """Chunked migration transfer that aborts on error or timeout.

        Splitting the payload into sub-page chunks lets a degraded link time
        out partway instead of committing the whole serialization up front.
        Raises :class:`LinkTransferError` when the retry budget or the
        migration timeout runs out.
        """
        link = self.paths[host]
        timeout_ns = self.injector.migration_timeout_ns
        chunk = 16 * units.CACHE_LINE
        elapsed = 0.0
        offset = 0
        while offset < size:
            step = min(chunk, size - offset)
            elapsed += link.try_transfer(direction, now + elapsed, step)
            offset += step
            if elapsed > timeout_ns:
                raise LinkTransferError(
                    host, direction, size, reason="migration timeout"
                )
        return elapsed

    def _abort_migration(self, txn, exc: LinkTransferError) -> None:
        """Count an aborted migration and restore the snapshot, if any."""
        counters = self.injector.counters
        counters.migration_aborts += 1
        if exc.reason == "migration timeout":
            counters.migration_timeouts += 1
        if txn is not None:
            if txn.local_entry is not None and (
                self.injector.consume_rollback_sabotage()
            ):
                # Deliberately botched recovery (chaos/soak testing): drop
                # the local-side snapshot so the rollback restores the
                # global remap entry but not the owner's local entry/frame,
                # leaving exactly the cross-table inconsistency the
                # invariant watchdog exists to catch.
                import dataclasses

                txn = dataclasses.replace(
                    txn, local_entry=None, cache_resident=False
                )
            self.engine.rollback(txn)
            counters.rollbacks += 1

    def _poison_line(self, line: int) -> None:
        """Device-side poison: scrub the line out of every cache + the dir."""
        for host in self.hosts:
            host.invalidate_line(line)
        self.device_dir.remove(line)

    def _track_engine_peaks(self, host: int) -> None:
        table = self.engine.local_tables[host]
        pages = len(table)
        if pages > self.peak_local_pages.get(host, 0):
            self.peak_local_pages[host] = pages

    # ------------------------------------------------------------------
    # Cache fills and evictions
    # ------------------------------------------------------------------
    def _fill_l1(self, host: Host, l1, line: int, is_write: bool,
                 exclusive: int = 1) -> None:
        victim = l1.fill(line, dirty=is_write, state=exclusive)
        if victim is not None and victim.dirty:
            llc_entry = host.llc.peek(victim.line)
            if llc_entry is not None:
                llc_entry.dirty = True

    def _fill(
        self, host: Host, l1, line: int, page: int, is_write: bool,
        exclusive: bool, now: float,
    ) -> None:
        self._fill_l1(host, l1, line, is_write, exclusive=1 if exclusive else 0)
        victim = host.llc.fill(line, dirty=is_write,
                               state=1 if exclusive else 0)
        if victim is not None:
            self._handle_llc_eviction(host, victim, now)

    def _handle_llc_eviction(self, host: Host, victim, now: float) -> None:
        line = victim.line
        # Keep L1s inclusive: pull any L1 residue down with the eviction.
        # (Inlined l1.invalidate: this loop runs per LLC eviction across
        # every L1 and the method dispatch dominated its cost.)
        for l1 in host.l1s:
            residue = l1._sets[line & l1._mask].pop(line, None)
            if residue is not None and residue.dirty:
                victim.dirty = True
        addr = line << _LINE_SHIFT
        if addr >= self._cxl_end:
            if victim.dirty:
                host.local_mem.write_line(addr, now)
            return
        page = line >> _LINE_TO_PAGE

        if self._is_pipm:
            engine = self.engine
            entry = engine.local_tables[host.host_id].lookup(page)
            if entry is not None and (victim.dirty or victim.state == 1):
                # Case 1 (dirty M) / exclusive-clean incremental migration:
                # the writeback lands in local DRAM and the bits flip.
                engine.incremental_migrate(
                    host.host_id, entry, line & _LINES_MASK
                )
                host.local_mem.write_line(addr, now)
                self.device_dir.remove(line)
                self._track_engine_lines(host.host_id)
                return

        if self._is_page_map:
            loc = self.page_map.get(page)
            if loc == host.host_id:
                if victim.dirty:
                    host.local_mem.write_line(addr, now)
                return

        if victim.dirty:
            self.paths[host.host_id].transfer(TO_DEVICE, now, _CACHE_LINE)
            self.cxl_mem.write_line(addr, now)
        # Update device directory bookkeeping.
        entry = self.device_dir.peek(line)
        if entry is not None:
            entry.sharers.discard(host.host_id)
            if entry.owner == host.host_id:
                entry.owner = -1
                entry.state = _S if entry.sharers else _I
            if not entry.sharers:
                self.device_dir.remove(line)

    def _track_engine_lines(self, host: int) -> None:
        lines = self.engine.local_tables[host].migrated_line_total()
        if lines > self.peak_local_lines.get(host, 0):
            self.peak_local_lines[host] = lines

    # ------------------------------------------------------------------
    # Kernel migration intervals
    # ------------------------------------------------------------------
    def maybe_tick(self, now: float) -> None:
        """Run the kernel migration interval if its boundary passed."""
        if self._next_interval is None or now < self._next_interval:
            return
        while self._next_interval <= now:
            self._next_interval += self._interval_ns
        frames_free = {
            h: self.frames[h].available for h in range(self.config.num_hosts)
        }
        plan = self.scheme.plan_interval(now, self.page_map, frames_free)
        if plan.empty:
            return
        self._apply_plan(plan, now)

    def _apply_plan(self, plan, now: float) -> None:
        cost_model = self._cost_model
        pages_by_initiator: Dict[int, int] = {}
        free_clean = getattr(self.scheme, "free_clean_demotions", False)
        moved_pages: List[int] = []

        for page, src in plan.demotions:
            if self.page_map.get(page) != src:
                continue
            dirty = page in self.dirty_pages
            # Transfer before commit: a failed transfer (fault injection)
            # aborts the demotion with the page still resident and mapped.
            if dirty or not free_clean:
                try:
                    self._page_transfer(src, page, to_local=False, now=now)
                except LinkTransferError as exc:
                    self._abort_migration(None, exc)
                    continue
            del self.page_map[page]
            pfn = self._page_frames.pop(page, None)
            if pfn is not None:
                self.frames[src].free(pfn)
            self.demotions += 1
            self.dirty_pages.discard(page)
            pages_by_initiator[src] = pages_by_initiator.get(src, 0) + 1
            self._flush_page(page)
            moved_pages.append(page)
            if self.ledger is not None:
                self.ledger.record_demotion(page)

        # Cap promotions at the kernel's migration throughput, round-robin
        # across initiating hosts so one host's burst cannot starve others.
        budget = cost_model.cap_pages(len(plan.promotions))
        by_host: Dict[int, List] = {}
        for page, dest in plan.promotions:
            by_host.setdefault(dest, []).append((page, dest))
        capped: List = []
        while len(capped) < budget and any(by_host.values()):
            for dest in list(by_host):
                if by_host[dest]:
                    capped.append(by_host[dest].pop(0))
                    if len(capped) >= budget:
                        break
        for page, dest in capped:
            if page in self.page_map:
                continue
            if self._check_crash and dest in self.injector.crashed:
                # Never promote pages onto a dead host.
                self.injector.counters.governor_skips += 1
                continue
            if self._governed and self.injector.promotion_blocked(dest, now):
                # Graceful degradation: do not start promotions onto a host
                # whose link is running degraded, nor during a governor
                # hold (link flap hysteresis / crash recovery).
                continue
            pfn = self.frames[dest].alloc()
            if pfn is None:
                continue
            try:
                self._page_transfer(dest, page, to_local=True, now=now)
            except LinkTransferError as exc:
                self.frames[dest].free(pfn)
                self._abort_migration(None, exc)
                continue
            self.page_map[page] = dest
            self._page_frames[page] = pfn
            self.migrations += 1
            pages_by_initiator[dest] = pages_by_initiator.get(dest, 0) + 1
            self._flush_page(page)
            moved_pages.append(page)
            if self.ledger is not None:
                self.ledger.record_migration(page, dest)
            in_use = self.frames[dest].in_use
            if in_use > self.peak_local_pages.get(dest, 0):
                self.peak_local_pages[dest] = in_use
                self.peak_local_lines[dest] = in_use * units.LINES_PER_PAGE

        charge = cost_model.charge(pages_by_initiator)
        for host_id, mgmt in charge.per_host_mgmt_ns.items():
            self.hosts[host_id].clock_ns += mgmt
        self.mgmt_ns += charge.total_mgmt_ns
        for page in moved_pages:
            for host in self.hosts:
                host.tlb.shootdown(page)
                host.page_table.remap(page)

    def _page_transfer(self, host: int, page: int, to_local: bool,
                       now: float) -> None:
        """Occupy link + DRAM bandwidth for a whole-page migration."""
        addr = page << units.PAGE_SHIFT
        direction = TO_HOST if to_local else TO_DEVICE
        if self._faults_on:
            self._bulk_transfer(host, direction, units.PAGE_SIZE, now)
        else:
            self.paths[host].transfer(direction, now, units.PAGE_SIZE)
        self.transfer_ns += units.transfer_ns(
            units.PAGE_SIZE, self.config.cxl_link.bandwidth_gbs
        )
        if to_local:
            self.cxl_mem.transfer_page(addr, now)
            self.hosts[host].local_mem.transfer_page(addr, now)
        else:
            self.hosts[host].local_mem.transfer_page(addr, now)
            self.cxl_mem.transfer_page(addr, now)

    def _flush_page(self, page: int) -> None:
        """Invalidate a migrating page's lines from every cache + the dir."""
        base_line = page << _LINE_TO_PAGE
        for line in range(base_line, base_line + units.LINES_PER_PAGE):
            for host in self.hosts:
                host.invalidate_line(line)
            self.device_dir.remove(line)

    # ------------------------------------------------------------------
    # Host-crash fault domain (recovery orchestrator)
    # ------------------------------------------------------------------
    def maybe_crash(self, now: float) -> None:
        """Process crash/rejoin epochs that came due by ``now``.

        Both engine backends call this at the same global-order points as
        :meth:`maybe_tick` (and the vector backend fences its batches at
        the next epoch), so the recovery timeline is identical under loop
        and vector execution.
        """
        injector = self.injector
        if now < injector.next_crash_ns:
            return
        # simcheck: escalates[crash-epoch]
        for host, is_rejoin in injector.due_crash_events(now):
            if is_rejoin:
                self._rejoin_host(host, now)
            else:
                self._recover_from_crash(host, now)

    def _recover_from_crash(self, dead: int, now: float) -> None:
        """Survivor-side recovery when host ``dead`` fail-stops at ``now``.

        Ordering (each step a deterministic function of the pre-crash
        state): directory reclaim -> dead-host cache/TLB scrub -> PIPM
        transaction teardown -> global candidate fencing -> kernel
        page-map teardown -> MTTR charge + governor suspension.
        """
        import dataclasses

        injector = self.injector
        counters = injector.counters
        injector.crashed.add(dead)
        counters.host_crashes += 1

        # (1) Directory reclaim: no surviving entry may name the dead
        # host.  M-state lines the dead host never wrote back are lost
        # updates — counted, never silently dropped.
        stale = [
            entry for entry in list(self.device_dir.entries())
            if entry.owner == dead or dead in entry.sharers
        ]
        for entry in sorted(stale, key=lambda e: e.line):
            if entry.state == _M and entry.owner == dead:
                counters.crash_lost_updates += 1
            entry.sharers.discard(dead)
            if entry.owner == dead:
                entry.owner = -1
                entry.state = _S if entry.sharers else _I
            if not entry.sharers:
                self.device_dir.remove(entry.line)
            counters.crash_lines_reclaimed += 1
        dir_touched = len(stale)

        # (2) The dead host's caches and TLB vanish with it (no writeback;
        # dirty shared state was already counted through the directory).
        self._purge_host_state(dead)

        # (3) PIPM teardown: every page partially migrated to the dead
        # host is an orphaned migration transaction.  Abort each through
        # the begin_txn/rollback machinery with an empty target state:
        # the rollback frees the frame, drops the local entry + remap
        # cache line, and returns the page to the all-zeros global state.
        pages_torn = 0
        if self._is_pipm:
            engine = self.engine
            table = engine.local_tables[dead]
            for page in sorted(table._entries):
                txn = engine.begin_txn(dead, page)
                if injector.consume_rollback_sabotage():
                    # Deliberately botched recovery (chaos/soak testing):
                    # leave the orphaned entry dangling so the watchdog's
                    # crash-domain audit has a real violation to catch.
                    continue
                entry = table.lookup(page)
                if entry is not None and entry.migrated_count:
                    # Lines whose only copy lived in the dead host's DRAM.
                    counters.crash_lost_updates += entry.migrated_count
                aborted = dataclasses.replace(
                    txn, global_entry=None, local_entry=None,
                    cache_resident=False,
                )
                engine.rollback(aborted)
                counters.crash_txns_aborted += 1
                counters.crash_pages_reclaimed += 1
                pages_torn += 1
            # (4) Fence global remap entries still voting for the dead
            # host so no future promotion targets its DRAM.
            for page, gentry in sorted(engine.global_table.items()):
                if gentry.candidate_host == dead:
                    gentry.candidate_host = NO_HOST
                    gentry.counter = 0

        # (5) Kernel page-map teardown: pages migrated to the dead host's
        # DRAM return to CXL memory; dirty ones are lost updates.
        if self._is_page_map:
            dead_pages = sorted(
                page for page, loc in self.page_map.items() if loc == dead
            )
            for page in dead_pages:
                if page in self.dirty_pages:
                    counters.crash_lost_updates += 1
                    self.dirty_pages.discard(page)
                del self.page_map[page]
                pfn = self._page_frames.pop(page, None)
                if pfn is not None:
                    self.frames[dead].free(pfn)
                self._flush_page(page)
                for host in self.hosts:
                    host.tlb.shootdown(page)
                    host.page_table.remap(page)
                counters.crash_pages_reclaimed += 1
                pages_torn += 1

        # (6) MTTR: detection (heartbeat timeout) + one directory
        # transaction per reclaimed entry + two link flights per page
        # torn down.  A pure function of config constants and the counts
        # above, so the recovery timeline is byte-deterministic per seed.
        mttr = (
            injector.crash_detect_ns
            + dir_touched * self._ddir_ns
            + pages_torn * 2.0 * self.config.cxl_link.latency_ns
        )
        counters.crash_recovery_ns += mttr
        injector.suspend_promotions(now + mttr + injector.governor_hold_ns)

    def _rejoin_host(self, host_id: int, now: float) -> None:
        """A crashed host comes back cold: empty caches, TLB, remap cache.

        Its local remap table and frames were reclaimed at crash time, so
        remap state re-warms through normal promotion traffic after the
        rejoin; nothing survives from before the crash.
        """
        injector = self.injector
        injector.crashed.discard(host_id)
        injector.counters.host_rejoins += 1
        self._purge_host_state(host_id)

    def _purge_host_state(self, host_id: int) -> None:
        """Drop a host's cached state in place (crash teardown / rejoin).

        Mutates the existing cache objects rather than replacing them: the
        vector backend's per-host closures bind these objects directly.
        """
        host = self.hosts[host_id]
        for l1 in host.l1s:
            l1.flush()
        host.llc.flush()
        host.tlb.flush()
        if self._is_pipm:
            self.engine.local_caches[host_id].flush()

    # ------------------------------------------------------------------
    # End-of-run accounting
    # ------------------------------------------------------------------
    def fault_stats(self) -> Dict[str, float]:
        """Nonzero fault/recovery counters (empty when nothing ever fired).

        Only counters that actually fired are reported, so a configured but
        idle fault plan leaves the result stats byte-identical to a run with
        faults disabled.
        """
        out: Dict[str, float] = {}
        if self.injector is not None:
            c = self.injector.counters
            for key, value in (
                ("fault_injected_errors", c.injected_errors),
                ("fault_link_retries", c.link_retries),
                ("fault_link_giveups", c.link_giveups),
                ("fault_migration_aborts", c.migration_aborts),
                ("fault_migration_timeouts", c.migration_timeouts),
                ("fault_rollbacks", c.rollbacks),
                ("fault_degraded_skips", c.degraded_skips),
                ("fault_sabotaged_rollbacks", c.sabotaged_rollbacks),
                ("fault_host_stall_ns", c.host_stall_ns),
                ("fault_poison_recoveries", c.poison_recoveries),
                ("fault_recovery_ns", c.recovery_ns),
                ("fault_host_crashes", c.host_crashes),
                ("fault_host_rejoins", c.host_rejoins),
                ("fault_crash_lost_updates", c.crash_lost_updates),
                ("fault_crash_lines_reclaimed", c.crash_lines_reclaimed),
                ("fault_crash_pages_reclaimed", c.crash_pages_reclaimed),
                ("fault_crash_txns_aborted", c.crash_txns_aborted),
                ("fault_crash_dropped_accesses", c.crash_dropped_accesses),
                ("fault_crash_recovery_ns", c.crash_recovery_ns),
                ("fault_crash_down_ns", c.crash_down_ns),
                ("fault_governor_skips", c.governor_skips),
            ):
                if value:
                    out[key] = float(value)
        if self.watchdog is not None and self.watchdog.violations:
            out["watchdog_violations"] = float(len(self.watchdog.violations))
        return out

    def finalize(self) -> None:
        if self._check_crash:
            end_ns = max((host.clock_ns for host in self.hosts), default=0.0)
            # A crash epoch the trace ended just short of observing is
            # still recovered (both backends finalize identically), so
            # the availability accounting below matches the timeline.
            self.maybe_crash(end_ns)
            counters = self.injector.counters
            down = 0.0
            for event in self.injector.plan.crash_events:
                if event.at_ns > end_ns:
                    continue
                rejoin = event.rejoin_ns
                up = end_ns if rejoin is None else min(rejoin, end_ns)
                if up > event.at_ns:
                    down += up - event.at_ns
            counters.crash_down_ns = down
        if self.ledger is not None:
            self.ledger.finalize()
        if self.engine is not None:
            for h in range(self.config.num_hosts):
                peak = self.engine.counters.peak_pages.get(h, 0)
                if peak > self.peak_local_pages.get(h, 0):
                    self.peak_local_pages[h] = peak
                peak_l = self.engine.counters.peak_lines.get(h, 0)
                if peak_l > self.peak_local_lines.get(h, 0):
                    self.peak_local_lines[h] = peak_l
            self.migrations = self.engine.counters.promotions
            self.demotions = self.engine.counters.revocations
