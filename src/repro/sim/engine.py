"""Simulation driver: time-ordered interleaving of per-host trace streams.

Each host replays its stream against the shared system model.  Hosts are
interleaved by simulated time (a min-heap over host clocks), so shared
state — device directory, remapping tables, votes, migration intervals —
observes accesses in a globally consistent order, the multi-host analogue
of the paper's trace-replay methodology (Section 5.1.2).
"""

from __future__ import annotations

import heapq
from typing import Optional

from ..config import SystemConfig
from ..policies.base import MigrationScheme
from ..workloads.trace import WorkloadTrace
from .results import ServicePoint, SimulationResult
from .system import MultiHostSystem

_SVC_L1 = int(ServicePoint.L1)


class SimulationEngine:
    """Runs one workload trace through one system configuration."""

    def __init__(self, system: MultiHostSystem, trace: WorkloadTrace) -> None:
        if trace.num_hosts != system.config.num_hosts:
            raise ValueError(
                f"trace has {trace.num_hosts} hosts, system has "
                f"{system.config.num_hosts}"
            )
        total = 0
        for host_id, stream in enumerate(trace.streams):
            total += len(stream)
            gaps = [record[0] for record in stream]
            if gaps and min(gaps) < 0:
                index = next(i for i, gap in enumerate(gaps) if gap < 0)
                raise ValueError(
                    f"trace {trace.name!r}: host {host_id} record "
                    f"{index} has a negative inter-access gap "
                    f"({gaps[index]} ns); simulated time cannot run "
                    f"backwards"
                )
        if total == 0:
            raise ValueError(
                f"trace {trace.name!r} contains no accesses on any host; "
                f"nothing to simulate"
            )
        self.system = system
        self.trace = trace
        # Flatten the per-host streams for the run loop (see
        # WorkloadTrace.baked_stream).  Instruction totals are summed up
        # front — every record is executed exactly once, so per-access
        # accumulation is redundant.
        self._run_streams = []
        self._instr_totals = []
        for host_id, stream in enumerate(trace.streams):
            ns_per_instr = system.hosts[host_id].core.ns_per_instruction
            self._run_streams.append(
                trace.baked_stream(host_id, ns_per_instr)
            )
            self._instr_totals.append(
                sum(record[0] for record in stream)
            )

    def run(self) -> SimulationResult:
        system = self.system
        hosts = system.hosts
        streams = self._run_streams
        interval_scheme = system._next_interval is not None
        injector = system.injector
        check_stalls = injector is not None and injector.has_stalls
        watchdog = system.watchdog
        check_watchdog = (
            watchdog is not None and watchdog.period_ns > 0
        )
        # When no interval scheme / fault plan / watchdog is armed, the
        # inner loop skips their checks entirely (the common profile case).
        eventful = interval_scheme or check_stalls or check_watchdog

        stall_by_service = [0.0] * 7
        svc_l1 = _SVC_L1
        access = system.access
        heappop = heapq.heappop
        heappushpop = heapq.heappushpop
        lens = [len(stream) for stream in streams]
        inv_mlp = [host.core.inv_mlp for host in hosts]
        access_counts = [0] * len(hosts)

        # Heap of (clock_ns, host_id, next_index).  The loop holds the
        # current minimum in ``item`` and continues a host via heappushpop,
        # which short-circuits in O(1) when that host is still the earliest
        # — the single-runnable-host case never touches the heap.
        heap = [
            (hosts[h].clock_ns, h, 0)
            for h in range(len(streams))
            if streams[h]
        ]
        heapq.heapify(heap)
        item = heappop(heap)
        while True:
            clock, host_id, index = item
            host = hosts[host_id]
            host_clock = host.clock_ns
            if host_clock > clock:
                # Management charges moved this host's clock forward; requeue
                # so interleaving stays time-ordered.
                item = heappushpop(heap, (host_clock, host_id, index))
                continue
            if check_stalls:
                resume = injector.stall_resume(host_id, clock)
                if resume is not None and resume > clock:
                    # The host is inside a pause/stall window: it executes
                    # nothing until the window ends.
                    injector.counters.host_stall_ns += resume - clock
                    host.clock_ns = resume
                    item = heappushpop(heap, (resume, host_id, index))
                    continue
            compute_ns, addr, is_write, core = streams[host_id][index]
            now = host_clock + compute_ns
            host.clock_ns = now
            if eventful:
                if interval_scheme:
                    system.maybe_tick(now)
                if check_watchdog:
                    watchdog.maybe_audit(now)
            latency, service = access(host_id, core, addr, is_write, now)
            access_counts[host_id] += 1
            if service != svc_l1:
                stall = latency * inv_mlp[host_id]
                host.clock_ns += stall
                stall_by_service[service] += stall
            index += 1
            if index < lens[host_id]:
                item = heappushpop(heap, (host.clock_ns, host_id, index))
            elif heap:
                item = heappop(heap)
            else:
                break

        access_total = 0
        for host_id, host in enumerate(hosts):
            host.instructions += self._instr_totals[host_id]
            host.accesses += access_counts[host_id]
            access_total += access_counts[host_id]

        system.finalize()
        if watchdog is not None:
            # One final end-of-run consistency sweep.
            watchdog.audit(max((h.clock_ns for h in hosts), default=0.0))
        return self._collect(stall_by_service, access_total)

    def _collect(self, stall_by_service, access_total) -> SimulationResult:
        system = self.system
        hosts = system.hosts
        host_times = [h.clock_ns for h in hosts]
        result = SimulationResult(
            workload=self.trace.name,
            scheme=system.scheme.name,
            num_hosts=system.config.num_hosts,
            exec_time_ns=max(host_times) if host_times else 0.0,
            host_time_ns=host_times,
            instructions=sum(h.instructions for h in hosts),
            accesses=access_total,
            service_counts={
                svc: count
                for svc, count in enumerate(system.svc_counts)
                if count
            },
            stall_ns_by_service={
                svc: ns
                for svc, ns in enumerate(stall_by_service)
                if ns
            },
            mgmt_ns=system.mgmt_ns,
            transfer_ns=system.transfer_ns,
            migrations=system.migrations,
            demotions=system.demotions,
            footprint_bytes=self.trace.footprint_bytes,
            peak_local_pages=dict(system.peak_local_pages),
            peak_local_lines=dict(system.peak_local_lines),
        )
        result.stats["freq_ghz"] = system.config.core.freq_ghz
        result.stats["back_invalidations"] = system.back_invalidations
        if system.ledger is not None:
            ledger = system.ledger
            result.stats["harmful_migrations"] = ledger.harmful_migrations
            result.stats["total_migrations"] = ledger.total_migrations
            result.stats["harmful_fraction"] = ledger.harmful_fraction
        if system.engine is not None:
            counters = system.engine.counters
            result.stats["pipm_promotions"] = counters.promotions
            result.stats["pipm_revocations"] = counters.revocations
            result.stats["pipm_incremental_migrations"] = (
                counters.incremental_migrations
            )
            result.stats["pipm_migrate_backs"] = counters.migrate_backs
            result.stats["global_remap_cache_hit_rate"] = (
                system.engine.global_cache.hit_rate
            )
            local_caches = system.engine.local_caches
            hits = sum(c.hits for c in local_caches)
            misses = sum(c.misses for c in local_caches)
            result.stats["local_remap_cache_hit_rate"] = (
                hits / (hits + misses) if hits + misses else 0.0
            )
        # Fault/recovery counters appear only when they fired, so an idle
        # fault plan leaves the result identical to a faults-disabled run.
        result.stats.update(system.fault_stats())
        return result


def simulate(
    trace: WorkloadTrace,
    scheme: MigrationScheme,
    config: Optional[SystemConfig] = None,
    **system_kwargs,
) -> SimulationResult:
    """Convenience: build a system for ``scheme`` and run ``trace``."""
    if config is None:
        config = SystemConfig.scaled()
    system_kwargs.setdefault(
        "footprint_pages", max(1, trace.footprint_bytes // 4096)
    )
    system = MultiHostSystem(
        config, scheme, workload_mlp=trace.mlp, **system_kwargs
    )
    return SimulationEngine(system, trace).run()
