"""Simulation driver: time-ordered interleaving of per-host trace streams.

Each host replays its stream against the shared system model.  Hosts are
interleaved by simulated time (a min-heap over host clocks), so shared
state — device directory, remapping tables, votes, migration intervals —
observes accesses in a globally consistent order, the multi-host analogue
of the paper's trace-replay methodology (Section 5.1.2).

Two run backends share that contract and produce byte-identical
:class:`SimulationResult` records (see DESIGN.md, "The two-phase engine"):

* ``loop`` — the reference: one access at a time through
  :meth:`MultiHostSystem.access`.
* ``vector`` — a two-phase fast path over the structure-of-arrays baked
  streams.  Runs of *guaranteed-private L1 hits* (resident line, no
  S->M upgrade risk, no tick/audit/fault boundary crossed, host still the
  earliest runnable) are resolved inline and, past a run-length threshold,
  as array operations against :class:`SetAssocCache` set state.  L1
  misses that cannot escalate into a cross-host transaction go through a
  per-host *flattened* miss path (:func:`_make_flat_path`) — the same
  classify-then-execute two-phase discipline, with constant-folded
  zero-queue latencies and deferred integer statistics.  Every
  coherence-visible event — an escalating miss, an upgrade-risky write,
  an interval tick, a watchdog audit, a fault window, a poisoned line —
  is funneled through the existing slow path unchanged, in the exact
  global order the loop backend would produce.
"""

from __future__ import annotations

import heapq
import math
from typing import List, Optional

import numpy as np

from .. import units
from ..cache.directory import DirectoryEntry
from ..cache.sa_cache import CacheEntry
from ..config import SystemConfig
from ..mem.cxl_link import CONTROL_BYTES
from ..pipm.remap_cache import RemapCache
from ..pipm.remap_global import NO_HOST, GlobalRemapEntry
from ..pipm.remap_local import LEAF_ENTRIES
from ..policies.base import MigrationScheme
from ..workloads.trace import BakedStream, WorkloadTrace
from .results import ServicePoint, SimulationResult
from .system import MultiHostSystem

_SVC_L1 = int(ServicePoint.L1)
_SVC_LLC = int(ServicePoint.LLC)
_SVC_LOCAL = int(ServicePoint.LOCAL_MEM)
_SVC_PIPM = int(ServicePoint.PIPM_LOCAL)
_SVC_CXL = int(ServicePoint.CXL_MEM)
_LINE_SHIFT = units.LINE_SHIFT
_PAGE_SHIFT = units.PAGE_SHIFT
_LINE_TO_PAGE = units.PAGE_SHIFT - units.LINE_SHIFT
_LINES_MASK = units.LINES_PER_PAGE - 1
_CACHE_LINE = units.CACHE_LINE

# MESI-style directory states (must match repro.sim.system).
_I = 0
_S = 1
_M = 3

#: Radix-root entries are 8-byte pointers to leaves (see system.py).
_ROOT_PTRS_PER_LINE = units.CACHE_LINE // 8

_CONTROL_BYTES = CONTROL_BYTES

#: Run backends accepted by :class:`SimulationEngine`.
BACKENDS = ("loop", "vector")

#: Consecutive inline fast-path hits before the vector backend switches a
#: burst to array mode.  Array setup (mirror snapshots + membership math)
#: costs tens of microseconds, so it only pays on long private runs; short
#: bursts stay on the inline scalar path, which costs nothing extra.
_ARRAY_THRESHOLD = 96

#: Accesses examined per array-mode probe window.
_ARRAY_WINDOW = 1 << 16


def _make_dram_path(pool):
    """Build ``(dram, flush)`` replicating ``pool.access(addr, now)``.

    ``dram(addr, now)`` flattens MemoryController.read_line ->
    DramPool.access -> DramChannel.access for one cache line: same channel
    selection, open-row update, bandwidth-server queueing, and float
    operation order.  Channels within a pool share one geometry, so the
    zero-queue latencies collapse to two precomputed constants (adding a
    0.0 queue delay is bitwise identity on the positive device latencies,
    and skipping a ``+= 0.0`` leaves the nonnegative queue-ns accumulator
    bit-identical).  Integer statistics accumulate in per-channel pending
    cells that ``flush()`` folds into the real counters; nothing reads
    those counters until the run's records are collected, and every other
    writer only increments, so the deferral commutes.
    """
    channels = pool.channels
    n_ch = pool._num_channels
    first = channels[0]
    row_bytes = first._row_bytes
    banks = first._banks
    hit_ns = first._row_hit_ns
    miss_ns = first._row_miss_ns
    line_ns = first._line_ns
    hit_tot = hit_ns + line_ns
    miss_tot = miss_ns + line_ns
    pend_n = [0] * n_ch
    pend_h = [0] * n_ch

    def dram(addr, now):
        idx = (addr >> _PAGE_SHIFT) % n_ch
        channel = channels[idx]
        row = addr // row_bytes
        bank = row % banks
        open_rows = channel._open_rows
        pend_n[idx] += 1
        if open_rows.get(bank) == row:
            pend_h[idx] += 1
            busy = channel._busy_until
            if busy > now:
                queue_delay = busy - now
                channel._busy_until = busy + line_ns
                channel._queue_ns.value += queue_delay
                return hit_ns + queue_delay + line_ns
            channel._busy_until = now + line_ns
            return hit_tot
        open_rows[bank] = row
        busy = channel._busy_until
        if busy > now:
            queue_delay = busy - now
            channel._busy_until = busy + line_ns
            channel._queue_ns.value += queue_delay
            return miss_ns + queue_delay + line_ns
        channel._busy_until = now + line_ns
        return miss_tot

    def flush():
        for idx in range(n_ch):
            n = pend_n[idx]
            if not n:
                continue
            hits = pend_h[idx]
            channel = channels[idx]
            channel._row_hits.value += hits
            channel._row_misses.value += n - hits
            channel._accesses.value += n
            channel._bytes.value += n * _CACHE_LINE
            pend_n[idx] = 0
            pend_h[idx] = 0

    return dram, flush


def _make_flat_path(system, host_id, stall_by_service):
    """Build one host's flat fast path for L1-missing accesses.

    Returns ``(flat, flush)`` where ``flat(l1, cache_set, addr, line,
    is_write, now)`` resolves one access end to end — classification,
    latency, cache/directory mutations, service/stall accounting — and
    returns the host's new clock, or ``None`` when the access must go
    through the serialized slow path.  The factory itself returns ``None``
    when the system configuration rules the flat path out (active fault
    disruption, a switched fabric topology whose shared segments contend
    across hosts, HW-static PIPM, infinite remap caches, or any non-LRU
    replacement policy: the inline paths replicate dict-order LRU).

    The closure replicates :meth:`MultiHostSystem.access` for every flow
    that cannot escalate into a cross-host transaction, in two phases:
    phase 1 *classifies* with pure reads only (so a bail leaves zero state
    mutated and the slow path re-executes the access from scratch), phase
    2 *executes* with the exact mutation and float-addition order of the
    slow path, so results stay byte-identical.  Escalating cases — a
    dirty-owner forward, an inter-host access to a migrated page, an
    S->M upgrade on a cached copy, a PIPM promotion crossing the vote
    threshold — bail to the slow path.

    Three mechanical liberties keep the hot path short without touching
    observable results:

    * zero-queue link/DRAM latencies fold to precomputed constants
      (IEEE-754: adding ``0.0`` to a positive float is identity, so the
      constant equals the runtime sum bit for bit);
    * integer statistics (hit/miss/eviction counters, link message/byte
      totals) accumulate in closure cells that ``flush()`` folds back in
      — every concurrent writer only increments, and nothing reads them
      until records are collected, so the deferral commutes.  Float
      accumulators (queue ns, stall ns, ledger benefit) stay live because
      float addition order is observable;
    * evicted ``CacheEntry``/``DirectoryEntry`` objects are recycled as
      the incoming fill (stamps are dead under dict-order LRU, and
      nothing compares entry identity), skipping the allocation.

    Caller contract (enforced by ``_run_vector``): the L1 missed,
    ``cache_set`` is the probed L1 set dict for ``line``, the line is not
    poisoned, ``now`` is below every armed event bound (interval tick,
    watchdog audit, poison arrival, stall window), and this host still
    holds the earliest heap turn.
    """
    if system._faults_on:
        return None  # simcheck: bails[faults-active]
    if system.paths[host_id] is not system.links[host_id]:
        # Switched fabric: the path crosses shared segments that other
        # hosts contend on at any moment (and that may run degraded under
        # a switchdown window), so per-host flattening is unsound — every
        # miss takes the serialized slow path.
        return None  # simcheck: bails[switched-path]
    is_pipm = system._is_pipm
    is_page_map = system._is_page_map
    all_local = system.all_local
    engine = system.engine
    if is_pipm and (
        engine.static_map
        or type(engine.global_cache) is not RemapCache
        or type(engine.local_caches[host_id]) is not RemapCache
    ):
        # HW-static lazily allocates local entries on lookup and the
        # infinite caches override probe/install; neither is worth
        # flattening — those runs take the slow path on every miss.
        return None

    host = system.hosts[host_id]
    hosts = system.hosts
    tlb_cache = host.tlb._cache
    llc = host.llc
    l1s = host.l1s
    lru_caches = [tlb_cache, llc, *l1s]
    if is_pipm:
        lru_caches.append(engine.local_caches[host_id]._cache)
        lru_caches.append(engine.global_cache._cache)
    if not all(cache._lru for cache in lru_caches):
        return None
    if len({l1.ways for l1 in l1s}) != 1:
        return None
    l1_ways = l1s[0].ways

    svc_counts = system.svc_counts
    inv_mlp = host.core.inv_mlp
    svc_llc = _SVC_LLC
    svc_local = _SVC_LOCAL
    svc_pipm = _SVC_PIPM
    svc_cxl = _SVC_CXL
    cxl_end = system._cxl_end
    llc_ns = system._llc_ns
    ldir_ns = system._ldir_ns
    ddir_ns = system._ddir_ns

    tlb = host.tlb
    # translate() computes hit_ns (+ walk_ns on a miss), access() adds
    # l1_ns, then llc_ns; presumming the constant operands in the same
    # association reproduces the same floats.
    lat0_hit = (tlb.hit_ns + system._l1_ns) + llc_ns
    lat0_miss = ((tlb.hit_ns + tlb.walk_ns) + system._l1_ns) + llc_ns
    tlb_sets = tlb_cache._sets
    tlb_mask = tlb_cache._mask
    tlb_ways = tlb_cache.ways

    llc_sets = llc._sets
    llc_mask = llc._mask
    llc_ways = llc.ways
    l1_residue = [(l1._sets, l1._mask) for l1 in l1s]

    dram_local, flush_local = _make_dram_path(host.local_mem.pool)
    dram_cxl, flush_cxl = _make_dram_path(system.cxl_mem.pool)

    link = system.links[host_id]
    link_busy = link._busy_until
    link_lat = link._latency_ns
    link_msgs = link._messages
    link_bytes = link._bytes
    link_qns = link._queue_ns
    # request_bytes * 1e9 / bw with constant operands, as transfer() does.
    ser_ctrl = _CONTROL_BYTES * 1e9 / link._bw_bytes_ns
    ser_line = _CACHE_LINE * 1e9 / link._bw_bytes_ns
    rt_bytes = _CONTROL_BYTES + _CACHE_LINE
    out0 = link_lat + ser_ctrl  # request leg, empty queue
    in0 = link_lat + ser_line  # response leg, empty queue
    rt0 = (out0 + in0) + ddir_ns  # whole round trip, both queues empty

    device_dir = system.device_dir
    dir_arrays = device_dir._arrays
    dir_sps = device_dir.sets_per_slice
    dir_slices = device_dir.slices
    dir_mask = device_dir._mask
    dir_ways = device_dir.ways
    back_invalidate = system._back_invalidate
    drop_exclusivity = system._drop_exclusivity

    pt_mapped = host.page_table._mapped
    page_map = system.page_map
    dirty_pages = system.dirty_pages
    observe = system.scheme.observe_shared_access if is_page_map else None
    ledger = system.ledger
    ledger_live = ledger._live if ledger is not None else None
    ledger_benefit = ledger.benefit_per_local if ledger is not None else 0.0
    peak_local_lines = system.peak_local_lines

    if is_pipm:
        local_table = engine.local_tables[host_id]
        local_entries = local_table._entries
        lrc = engine.local_caches[host_id]._cache
        lrc_sets = lrc._sets
        lrc_mask = lrc._mask
        lrc_ways = lrc.ways
        grc = engine.global_cache._cache
        grc_sets = grc._sets
        grc_mask = grc._mask
        grc_ways = grc.ways
        g_entries = engine.global_table._entries
        pinned = engine._pinned_cxl
        vote = engine.vote
        gmax = vote._global_max
        lmax = vote._local_max
        threshold = vote.threshold
        pipm_counters = engine.counters
        peak_pages = pipm_counters.peak_pages
        peak_lines = pipm_counters.peak_lines
        lrc_ns = system._lrc_ns
        grc_ns = system._grc_ns
        local_root_base = system._local_root_base
        local_leaf_base = system._local_leaf_base
        global_table_base = system._global_table_base
        leaf_epl = system._leaf_entries_per_line
        g_epl = system._global_entries_per_line

    # Deferred integer statistics (see the docstring).
    t_h = t_m = t_e = 0  # TLB hits / misses / evictions
    c_h = c_m = c_e = 0  # LLC hits / misses / evictions
    d_l = d_h = d_ce = 0  # device directory lookups / hits / evictions
    rt_n = wb_n = 0  # link round trips / writeback transfers
    p_h = p_m = p_e = 0  # local remap cache hits / misses / evictions
    g_h = g_m = g_e = 0  # global remap cache hits / misses / evictions

    def flush():
        nonlocal t_h, t_m, t_e, c_h, c_m, c_e, d_l, d_h, d_ce
        nonlocal rt_n, wb_n, p_h, p_m, p_e, g_h, g_m, g_e
        tlb_cache.hits += t_h
        tlb_cache.misses += t_m
        tlb_cache.evictions += t_e
        llc.hits += c_h
        llc.misses += c_m
        llc.evictions += c_e
        device_dir.lookups += d_l
        device_dir.hits += d_h
        device_dir.capacity_evictions += d_ce
        link_msgs.value += 2 * rt_n + wb_n
        link_bytes.value += rt_bytes * rt_n + _CACHE_LINE * wb_n
        if is_pipm:
            lrc.hits += p_h
            lrc.misses += p_m
            lrc.evictions += p_e
            grc.hits += g_h
            grc.misses += g_m
            grc.evictions += g_e
        t_h = t_m = t_e = c_h = c_m = c_e = d_l = d_h = d_ce = 0
        rt_n = wb_n = p_h = p_m = p_e = g_h = g_m = g_e = 0
        flush_local()
        flush_cxl()

    def flat(l1, cache_set, addr, line, is_write, now):
        nonlocal t_h, t_m, t_e, c_h, c_m, c_e, d_l, d_h, d_ce
        nonlocal rt_n, wb_n, p_h, p_m, p_e, g_h, g_m, g_e
        # ============ phase 1: classify (pure reads only) ============
        # simcheck: phase[classify]
        page = line >> _LINE_TO_PAGE
        shared = addr < cxl_end
        loc = None
        if shared and is_page_map:
            loc = page_map.get(page)
            if loc is not None and loc != host_id:
                return None  # simcheck: bails[inter-host-page] non-cacheable 4-hop
        llc_set = llc_sets[line & llc_mask]
        llc_entry = llc_set.get(line)
        pipm_entry = None
        gentry = None
        dset = None
        dentry = None
        current = NO_HOST
        if llc_entry is not None:
            if is_write and not llc_entry.dirty and llc_entry.state == 0:
                return None  # simcheck: bails[upgrade-llc-hit] S -> M on LLC hit
            flow = 0  # LLC hit
        elif not shared or all_local:
            flow = 1  # host-private (or all-local scheme): local DRAM
        elif is_pipm:
            gentry = g_entries.get(page)
            if gentry is not None:
                current = gentry.current_host
            if current != NO_HOST and current != host_id:
                return None  # simcheck: bails[pipm-inter-host] migrated elsewhere
            if (
                current == NO_HOST
                and gentry is not None
                and gentry.candidate_host == host_id
                and gentry.counter > 0
                and page not in pinned
            ):
                nxt = gentry.counter + (1 if gentry.counter < gmax else 0)
                if nxt >= threshold:
                    return None  # simcheck: bails[pipm-promotion] vote threshold
            pipm_entry = local_entries.get(page)
            if pipm_entry is not None and (
                pipm_entry.migrated_lines >> (line & _LINES_MASK) & 1
            ):
                flow = 2  # PIPM: line already migrated here
            else:
                flow = 3  # PIPM: served from CXL memory
        elif loc is not None:  # loc == host_id (foreign bailed above)
            flow = 4  # kernel-migrated page owned here: local DRAM
        else:
            flow = 5  # plain cacheable CXL access
        if flow == 3 or flow == 5:
            dset = dir_arrays[(line // dir_sps) % dir_slices][
                line & dir_mask
            ]
            dentry = dset.get(line)
            if (
                dentry is not None
                and dentry.state == _M
                and dentry.owner != host_id
                and dentry.owner >= 0
                and hosts[dentry.owner].holds_line(line)
            ):
                return None  # simcheck: bails[dirty-owner-forward] 4-hop forward

        # ============ phase 2: execute (no bail past here) ============
        # simcheck: phase[execute]
        # TLB translate (access() charges it before the L1 probe).
        tlb_set = tlb_sets[page & tlb_mask]
        tlb_entry = tlb_set.get(page)
        if tlb_entry is not None:
            t_h += 1
            del tlb_set[page]
            tlb_set[page] = tlb_entry
            lat = lat0_hit
        else:
            t_m += 1
            if len(tlb_set) >= tlb_ways:
                t_e += 1
                tlb_entry = tlb_set.pop(next(iter(tlb_set)))
                tlb_entry.line = page  # recycle: TLB entries stay default
                tlb_set[page] = tlb_entry
            else:
                tlb_set[page] = CacheEntry(page)
            lat = lat0_miss
        l1.misses += 1  # the l1.lookup() the caller's probe stood in for

        if flow == 0:
            c_h += 1
            del llc_set[line]
            llc_set[line] = llc_entry
            if is_write:
                llc_entry.dirty = True
            # _fill_l1 from the LLC copy.
            if len(cache_set) >= l1_ways:
                v = cache_set.pop(next(iter(cache_set)))
                l1.evictions += 1
                if v.dirty:
                    ve = llc_sets[v.line & llc_mask].get(v.line)
                    if ve is not None:
                        ve.dirty = True
                v.line = line
                v.dirty = is_write
                v.state = llc_entry.state or 0
                cache_set[line] = v
            else:
                cache_set[line] = CacheEntry(
                    line, is_write, llc_entry.state or 0
                )
            svc_counts[svc_llc] += 1
            stall = lat * inv_mlp
            stall_by_service[svc_llc] += stall
            return now + stall

        c_m += 1
        if flow == 1:
            lat += ldir_ns + dram_local(addr, now)
            exclusive = 1
            svc = svc_local
        elif flow == 4:
            pt_mapped.add(page)
            observe(host_id, page, now, is_write)
            if ledger_live is not None:
                rec = ledger_live.get(page)
                if rec is not None:
                    rec.benefit_ns += ledger_benefit
            if is_write:
                dirty_pages.add(page)
            lat += ldir_ns + dram_local(addr, now)
            exclusive = 1
            svc = svc_local
        else:
            if flow == 5:
                pt_mapped.add(page)
                if observe is not None:
                    observe(host_id, page, now, is_write)
            else:  # flows 2 and 3: the PIPM lookup ladder
                pt_mapped.add(page)
                # Local remapping cache probe (+ install on a miss).
                lrc_set = lrc_sets[page & lrc_mask]
                ce = lrc_set.get(page)
                if ce is not None:
                    p_h += 1
                    del lrc_set[page]
                    lrc_set[page] = ce
                    lat += lrc_ns
                else:
                    p_m += 1
                    if len(lrc_set) >= lrc_ways:
                        p_e += 1
                        ce = lrc_set.pop(next(iter(lrc_set)))
                        ce.line = page  # recycle: remap entries stay default
                        lrc_set[page] = ce
                    else:
                        lrc_set[page] = CacheEntry(page)
                    lat += lrc_ns
                    # Two-level radix walk in local DRAM.
                    root = page // LEAF_ENTRIES
                    lat += dram_local(
                        local_root_base
                        + (root // _ROOT_PTRS_PER_LINE << _LINE_SHIFT),
                        now,
                    )
                    lat += dram_local(
                        local_leaf_base + (page // leaf_epl << _LINE_SHIFT),
                        now,
                    )
                if flow == 2:
                    # Case 3 of Fig. 9: served from local memory.
                    if pipm_entry.counter < lmax:
                        pipm_entry.counter += 1
                    lat += ldir_ns + dram_local(addr, now)
                    if len(cache_set) >= l1_ways:
                        v = cache_set.pop(next(iter(cache_set)))
                        l1.evictions += 1
                        if v.dirty:
                            ve = llc_sets[v.line & llc_mask].get(v.line)
                            if ve is not None:
                                ve.dirty = True
                        v.line = line
                        v.dirty = is_write
                        v.state = 1
                        cache_set[line] = v
                    else:
                        cache_set[line] = CacheEntry(line, is_write, 1)
                    exclusive = 1
                    svc = svc_pipm
                    # fall through to the LLC fill below via shared tail
                else:
                    if pipm_entry is not None:
                        # Partially migrated here, but this line still
                        # lives in CXL: count the local interest.
                        if pipm_entry.counter < lmax:
                            pipm_entry.counter += 1
                    lat += grc_ns
                    gset = grc_sets[page & grc_mask]
                    ge = gset.get(page)
                    if ge is not None:
                        g_h += 1
                        del gset[page]
                        gset[page] = ge
                    else:
                        g_m += 1
                        if len(gset) >= grc_ways:
                            g_e += 1
                            ge = gset.pop(next(iter(gset)))
                            ge.line = page  # recycle, as above
                            gset[page] = ge
                        else:
                            gset[page] = CacheEntry(page)
                        lat += dram_cxl(
                            global_table_base
                            + (page // g_epl << _LINE_SHIFT),
                            now,
                        )
                    if current == NO_HOST and page not in pinned:
                        # Majority vote (promotion excluded in phase 1).
                        if gentry is None:
                            gentry = GlobalRemapEntry()
                            g_entries[page] = gentry
                        if (
                            gentry.candidate_host == NO_HOST
                            or gentry.counter == 0
                        ):
                            gentry.candidate_host = host_id
                            gentry.counter = 1
                        elif gentry.candidate_host == host_id:
                            if gentry.counter < gmax:
                                gentry.counter += 1
                        else:
                            gentry.counter -= 1

            if flow != 2:
                # ---- plain cacheable CXL access (_cxl_access) ----
                # Both bandwidth-server legs collapse to constants when
                # their queues are empty (the common case).
                b0 = link_busy[0]
                if b0 > now:
                    qd = b0 - now
                    link_busy[0] = b0 + ser_ctrl
                    link_qns.value += qd
                    out = link_lat + qd + ser_ctrl
                    then = now + out
                    b1 = link_busy[1]
                    if b1 > then:
                        qd = b1 - then
                        link_busy[1] = b1 + ser_line
                        link_qns.value += qd
                        extra = (out + (link_lat + qd + ser_line)) + ddir_ns
                    else:
                        link_busy[1] = then + ser_line
                        extra = (out + in0) + ddir_ns
                else:
                    link_busy[0] = now + ser_ctrl
                    then = now + out0
                    b1 = link_busy[1]
                    if b1 > then:
                        qd = b1 - then
                        link_busy[1] = b1 + ser_line
                        link_qns.value += qd
                        extra = (out0 + (link_lat + qd + ser_line)) + ddir_ns
                    else:
                        link_busy[1] = then + ser_line
                        extra = rt0
                rt_n += 1
                d_l += 1
                if dentry is not None:
                    d_h += 1
                    del dset[line]
                    dset[line] = dentry
                extra += dram_cxl(addr, now)
                # _dir_update (the lookup above already moved the entry
                # to the MRU end, so allocate's move-to-end is a no-op).
                # A capacity victim back-invalidates *before* the new
                # entry is linked in: the recall only touches host caches
                # and the link/DRAM servers, never this directory set, so
                # the reorder is unobservable — and frees the victim
                # entry for recycling.
                if is_write:
                    if dentry is not None:
                        srs = dentry.sharers
                        if len(srs) != 1 or host_id not in srs:
                            for sharer in sorted(srs):
                                if sharer != host_id:
                                    hosts[sharer].invalidate_line(line)
                        dentry.state = _M
                        dentry.owner = host_id
                        dentry.sharers = {host_id}
                    elif len(dset) >= dir_ways:
                        victim = dset.pop(next(iter(dset)))
                        d_ce += 1
                        back_invalidate(victim, now)
                        victim.line = line
                        victim.state = _M
                        victim.owner = host_id
                        victim.sharers = {host_id}
                        dset[line] = victim
                    else:
                        dentry = DirectoryEntry(line, _M, host_id)
                        dentry.sharers = {host_id}
                        dset[line] = dentry
                    exclusive = 1
                else:
                    if dentry is not None:
                        dentry.state = _S
                        srs = dentry.sharers
                        if srs and (len(srs) != 1 or host_id not in srs):
                            for sharer in sorted(srs):
                                if sharer != host_id:
                                    drop_exclusivity(sharer, line)
                        srs.add(host_id)
                        exclusive = 1 if len(srs) <= 1 else 0
                    else:
                        if len(dset) >= dir_ways:
                            victim = dset.pop(next(iter(dset)))
                            d_ce += 1
                            back_invalidate(victim, now)
                            victim.line = line
                            victim.state = _S
                            victim.owner = -1
                            srs = victim.sharers
                            srs.clear()
                            srs.add(host_id)
                            dset[line] = victim
                        else:
                            dentry = DirectoryEntry(line, _S, -1)
                            dentry.sharers.add(host_id)
                            dset[line] = dentry
                        exclusive = 1
                lat = lat + extra
                svc = svc_cxl
                # _fill_l1 with the directory-decided exclusivity.
                if len(cache_set) >= l1_ways:
                    v = cache_set.pop(next(iter(cache_set)))
                    l1.evictions += 1
                    if v.dirty:
                        ve = llc_sets[v.line & llc_mask].get(v.line)
                        if ve is not None:
                            ve.dirty = True
                    v.line = line
                    v.dirty = is_write
                    v.state = exclusive
                    cache_set[line] = v
                else:
                    cache_set[line] = CacheEntry(line, is_write, exclusive)

        if flow == 1 or flow == 4:
            # _fill_l1, exclusive (local-memory flows).
            if len(cache_set) >= l1_ways:
                v = cache_set.pop(next(iter(cache_set)))
                l1.evictions += 1
                if v.dirty:
                    ve = llc_sets[v.line & llc_mask].get(v.line)
                    if ve is not None:
                        ve.dirty = True
                v.line = line
                v.dirty = is_write
                v.state = 1
                cache_set[line] = v
            else:
                cache_set[line] = CacheEntry(line, is_write, 1)

        # ---- LLC fill + eviction handling (_fill tail) ----
        # The victim is handled first and its entry object recycled as
        # the incoming fill; the fill lands at the MRU end either way,
        # and the victim handling never reads this LLC set.
        if len(llc_set) >= llc_ways:
            victim = llc_set.pop(next(iter(llc_set)))
            c_e += 1
            vline = victim.line
            vdirty = victim.dirty
            for r_sets, r_mask in l1_residue:
                residue = r_sets[vline & r_mask].pop(vline, None)
                if residue is not None and residue.dirty:
                    vdirty = True
            vaddr = vline << _LINE_SHIFT
            if vaddr >= cxl_end:
                if vdirty:
                    dram_local(vaddr, now)
            else:
                handled = False
                vpage = vline >> _LINE_TO_PAGE
                if is_pipm:
                    ventry = local_entries.get(vpage)
                    if ventry is not None and (
                        vdirty or victim.state == 1
                    ):
                        # Incremental migration (cases 1/4 of Fig. 9).
                        bit = 1 << (vline & _LINES_MASK)
                        if not ventry.migrated_lines & bit:
                            ventry.migrated_lines |= bit
                            ventry.migrated_count += 1
                            local_table._migrated_total += 1
                            pipm_counters.incremental_migrations += 1
                            n_pages = len(local_entries)
                            if n_pages > peak_pages.get(host_id, 0):
                                peak_pages[host_id] = n_pages
                            n_lines = local_table._migrated_total
                            if n_lines > peak_lines.get(host_id, 0):
                                peak_lines[host_id] = n_lines
                        dram_local(vaddr, now)
                        dir_arrays[(vline // dir_sps) % dir_slices][
                            vline & dir_mask
                        ].pop(vline, None)
                        n_lines = local_table._migrated_total
                        if n_lines > peak_local_lines.get(host_id, 0):
                            peak_local_lines[host_id] = n_lines
                        handled = True
                elif is_page_map:
                    if page_map.get(vpage) == host_id:
                        if vdirty:
                            dram_local(vaddr, now)
                        handled = True
                if not handled:
                    if vdirty:
                        # link.transfer(TO_DEVICE) + CXL writeback.
                        b0 = link_busy[0]
                        if b0 > now:
                            qd = b0 - now
                            link_busy[0] = b0 + ser_line
                            link_qns.value += qd
                        else:
                            link_busy[0] = now + ser_line
                        wb_n += 1
                        dram_cxl(vaddr, now)
                    vset = dir_arrays[(vline // dir_sps) % dir_slices][
                        vline & dir_mask
                    ]
                    de = vset.get(vline)
                    if de is not None:
                        de.sharers.discard(host_id)
                        if de.owner == host_id:
                            de.owner = -1
                            de.state = _S if de.sharers else _I
                        if not de.sharers:
                            del vset[vline]
            victim.line = line
            victim.dirty = is_write
            victim.state = exclusive
            llc_set[line] = victim
        else:
            llc_set[line] = CacheEntry(line, is_write, exclusive)
        svc_counts[svc] += 1
        stall = lat * inv_mlp
        stall_by_service[svc] += stall
        return now + stall

    return flat, flush


class SimulationEngine:
    """Runs one workload trace through one system configuration."""

    def __init__(
        self,
        system: MultiHostSystem,
        trace: WorkloadTrace,
        backend: str = "loop",
    ) -> None:
        if backend not in BACKENDS:
            raise ValueError(
                f"unknown engine backend {backend!r}; choose from {BACKENDS}"
            )
        if trace.num_hosts != system.config.num_hosts:
            raise ValueError(
                f"trace has {trace.num_hosts} hosts, system has "
                f"{system.config.num_hosts}"
            )
        self.system = system
        self.trace = trace
        self.backend = backend
        # Bake the per-host streams once: the SoA arrays feed the vector
        # backend's batch math, their ``records()`` view feeds the loop
        # backend (and the vector backend's serialized slow path), and the
        # stream-wide sanity checks below run as array reductions instead
        # of per-record Python loops.
        total = 0
        self._baked: List[BakedStream] = []
        self._run_streams = []
        self._instr_totals = []
        for host_id, stream in enumerate(trace.streams):
            total += len(stream)
            ns_per_instr = system.hosts[host_id].core.ns_per_instruction
            baked = trace.baked_arrays(host_id, ns_per_instr)
            if len(baked) and baked.compute_ns.min() < 0:
                index = int(np.argmax(baked.compute_ns < 0))
                raise ValueError(
                    f"trace {trace.name!r}: host {host_id} record "
                    f"{index} has a negative inter-access gap "
                    f"({stream[index][0]} ns); simulated time cannot run "
                    f"backwards"
                )
            self._baked.append(baked)
            self._run_streams.append(baked.records())
            self._instr_totals.append(
                sum(record[0] for record in stream)
            )
        if total == 0:
            raise ValueError(
                f"trace {trace.name!r} contains no accesses on any host; "
                f"nothing to simulate"
            )
        address_map = system.address_map
        trace.validate(
            address_map.cxl_capacity,
            address_map.total_capacity,
            addr_arrays=[baked.addr for baked in self._baked],
        )

    def run(self) -> SimulationResult:
        if self.backend == "vector":
            return self._run_vector()
        return self._run_loop()

    # ------------------------------------------------------------------
    # Loop backend (the reference semantics)
    # ------------------------------------------------------------------
    def _run_loop(self) -> SimulationResult:
        system = self.system
        hosts = system.hosts
        streams = self._run_streams
        interval_scheme = system._next_interval is not None
        injector = system.injector
        check_stalls = injector is not None and injector.has_stalls
        check_crash = injector is not None and injector.has_crashes
        watchdog = system.watchdog
        check_watchdog = (
            watchdog is not None and watchdog.period_ns > 0
        )
        # When no interval scheme / fault plan / watchdog is armed, the
        # inner loop skips their checks entirely (the common profile case).
        eventful = (
            interval_scheme or check_stalls or check_watchdog or check_crash
        )

        stall_by_service = [0.0] * 7
        svc_l1 = _SVC_L1
        access = system.access
        heappop = heapq.heappop
        heappushpop = heapq.heappushpop
        lens = [len(stream) for stream in streams]
        inv_mlp = [host.core.inv_mlp for host in hosts]
        access_counts = [0] * len(hosts)
        inf = math.inf

        # Heap of (clock_ns, host_id, next_index).  The loop holds the
        # current minimum in ``item`` and continues a host via heappushpop,
        # which short-circuits in O(1) when that host is still the earliest
        # — the single-runnable-host case never touches the heap.
        heap = [
            (hosts[h].clock_ns, h, 0)
            for h in range(len(streams))
            if streams[h]
        ]
        heapq.heapify(heap)
        item = heappop(heap)
        while True:
            clock, host_id, index = item
            host = hosts[host_id]
            host_clock = host.clock_ns
            if host_clock > clock:
                # Management charges moved this host's clock forward; requeue
                # so interleaving stays time-ordered.
                item = heappushpop(heap, (host_clock, host_id, index))
                continue
            if check_stalls:
                resume = injector.stall_resume(host_id, clock)
                if resume is not None and resume > clock:
                    # The host is inside a pause/stall window: it executes
                    # nothing until the window ends.
                    injector.counters.host_stall_ns += resume - clock
                    host.clock_ns = resume
                    item = heappushpop(heap, (resume, host_id, index))
                    continue
            if check_crash:
                resume = injector.crash_resume(host_id, clock)
                if resume is not None:
                    if resume == inf:
                        # Fail-stop with no rejoin: drop the host's
                        # remaining stream deterministically (counted).
                        injector.counters.crash_dropped_accesses += (
                            lens[host_id] - index
                        )
                        if heap:
                            item = heappop(heap)
                            continue
                        break
                    # Dead until the rejoin epoch: pause the stream.
                    host.clock_ns = resume
                    item = heappushpop(heap, (resume, host_id, index))
                    continue
            compute_ns, addr, is_write, core = streams[host_id][index]
            now = host_clock + compute_ns
            host.clock_ns = now
            if eventful:
                if check_crash:
                    system.maybe_crash(now)
                    if host_id in injector.crashed:
                        # This access died with its host at the crash
                        # epoch: requeue so the next turn pauses or drops
                        # the stream instead of serving it.
                        item = heappushpop(heap, (now, host_id, index))
                        continue
                if interval_scheme:
                    system.maybe_tick(now)
                if check_watchdog:
                    watchdog.maybe_audit(now)
            latency, service = access(host_id, core, addr, is_write, now)
            access_counts[host_id] += 1
            if service != svc_l1:
                stall = latency * inv_mlp[host_id]
                host.clock_ns += stall
                stall_by_service[service] += stall
            index += 1
            if index < lens[host_id]:
                item = heappushpop(heap, (host.clock_ns, host_id, index))
            elif heap:
                item = heappop(heap)
            else:
                break

        return self._finish(stall_by_service, access_counts)

    # ------------------------------------------------------------------
    # Vector backend (flattened fast path + batched private L1 hits)
    # ------------------------------------------------------------------
    def _run_vector(self) -> SimulationResult:
        system = self.system
        hosts = system.hosts
        streams = self._run_streams
        interval_scheme = system._next_interval is not None
        injector = system.injector
        check_stalls = injector is not None and injector.has_stalls
        check_crash = injector is not None and injector.has_crashes
        watchdog = system.watchdog
        check_watchdog = (
            watchdog is not None and watchdog.period_ns > 0
        )
        check_poison = system._check_poison
        eventful = (
            interval_scheme or check_stalls or check_watchdog or check_crash
        )
        bounded = eventful or check_poison

        stall_by_service = [0.0] * 7
        svc_l1 = _SVC_L1
        access = system.access
        heappop = heapq.heappop
        heappushpop = heapq.heappushpop
        lens = [len(stream) for stream in streams]
        inv_mlp = [host.core.inv_mlp for host in hosts]
        access_counts = [0] * len(hosts)
        svc_counts = system.svc_counts
        cxl_end = system._cxl_end
        inf = math.inf
        poisoned = injector.poisoned if check_poison else None
        array_threshold = _ARRAY_THRESHOLD

        # Per-host fast-path bindings, resolved once: the record stream,
        # the per-core L1 set dicts, the TLB set dicts, and the host's
        # flat miss path (None when the configuration rules it out) — so
        # a heap turn costs one tuple unpack instead of a pile of
        # attribute lookups.
        flushes = []
        per_host = []
        for host_id, host in enumerate(hosts):
            made = _make_flat_path(system, host_id, stall_by_service)
            if made is not None:
                flat, flush = made
                flushes.append(flush)
            else:
                flat = None
            tlb_cache = host.tlb._cache
            per_host.append((
                streams[host_id],
                lens[host_id],
                [(l1, l1._sets, l1._mask) for l1 in host.l1s],
                len(host.l1s),
                tlb_cache,
                tlb_cache._sets,
                tlb_cache._mask,
                tlb_cache.ways,
                flat,
                host,
            ))

        heap = [
            (hosts[h].clock_ns, h, 0)
            for h in range(len(streams))
            if streams[h]
        ]
        heapq.heapify(heap)
        item = heappop(heap)
        while True:
            clock, host_id, index = item
            (rec, length, l1m, n_l1, tlb_cache, tlb_sets, tlb_mask,
             tlb_ways, flat, host) = per_host[host_id]
            host_clock = host.clock_ns
            if host_clock > clock:
                # Management charges moved this host's clock forward;
                # requeue so interleaving stays time-ordered.
                item = heappushpop(heap, (host_clock, host_id, index))
                continue
            if check_stalls:
                resume = injector.stall_resume(host_id, clock)
                if resume is not None and resume > clock:
                    injector.counters.host_stall_ns += resume - clock
                    host.clock_ns = resume
                    item = heappushpop(heap, (resume, host_id, index))
                    continue
            if check_crash:
                resume = injector.crash_resume(host_id, clock)
                if resume is not None:
                    if resume == inf:
                        # Fail-stop with no rejoin: drop the host's
                        # remaining stream deterministically (counted).
                        injector.counters.crash_dropped_accesses += (
                            length - index
                        )
                        if heap:
                            item = heappop(heap)
                            continue
                        break
                    # Dead until the rejoin epoch: pause the stream.
                    host.clock_ns = resume
                    item = heappushpop(heap, (resume, host_id, index))
                    continue

            # ---- burst attempt: the host's flattened fast path --------
            # ``event_bound`` fences every time-ordered side channel the
            # loop backend checks per access: crossing any of them must go
            # through the serialized slow path.  ``heap_bound`` fences the
            # host's heap turn — an access may run fast only while this
            # host would still win (strictly) the heappushpop.  Falling
            # out of the fast path is always safe: the slow path below
            # re-examines the access from scratch.
            heap_bound = heap[0][0] if heap else inf
            event_bound = inf
            if bounded:
                if interval_scheme:
                    event_bound = system._next_interval
                if check_watchdog and watchdog._next_audit < event_bound:
                    event_bound = watchdog._next_audit
                if check_poison and injector.next_poison_ns < event_bound:
                    event_bound = injector.next_poison_ns
                if check_stalls:
                    stall_bound = injector.next_stall_start(host_id, clock)
                    if stall_bound < event_bound:
                        event_bound = stall_bound
                if check_crash:
                    # No burst may cross a crash/rejoin epoch; while the
                    # governor holds promotions suspended the fence is 0.0
                    # so every access runs the serialized slow path.
                    # simcheck: bails[crash-epoch]
                    crash_bound = injector.crash_fence(clock)
                    if crash_bound < event_bound:
                        event_bound = crash_bound
            consumed = 0
            l1_count = 0
            streak = 0
            while index < length:
                compute_ns, addr, is_write, core = rec[index]
                now = host_clock + compute_ns
                if now >= event_bound:
                    break
                if consumed and host_clock >= heap_bound:
                    break
                line = addr >> _LINE_SHIFT
                if poisoned and line in poisoned:
                    break
                l1, l1_sets, l1_mask = l1m[core % n_l1]
                cache_set = l1_sets[line & l1_mask]
                entry = cache_set.get(line)
                if entry is None:
                    # L1 miss: resolve inline through the host's flat path
                    # (classify-then-execute, byte-identical to access());
                    # a None bail hands the access to the slow path intact.
                    if flat is None:
                        break
                    hc = flat(l1, cache_set, addr, line, is_write, now)
                    if hc is None:
                        break
                    host_clock = hc
                    index += 1
                    consumed += 1
                    streak = 0
                    continue
                if is_write:
                    if (
                        addr < cxl_end
                        and not entry.dirty
                        and entry.state == 0
                    ):
                        # Write hit on a Shared copy: the S -> M upgrade
                        # invalidates other hosts — coherence-visible.
                        break  # simcheck: bails[upgrade-l1-hit]
                    entry.dirty = True
                # Commit the hit: exactly lookup()'s move-to-end + counter,
                # plus the TLB translate the slow path would have charged
                # (the latency itself is discarded on an L1 hit).
                del cache_set[line]
                cache_set[line] = entry
                l1.hits += 1
                page = line >> _LINE_TO_PAGE
                tlb_set = tlb_sets[page & tlb_mask]
                tlb_entry = tlb_set.get(page)
                if tlb_entry is not None:
                    tlb_cache.hits += 1
                    del tlb_set[page]
                    tlb_set[page] = tlb_entry
                else:
                    tlb_cache.misses += 1
                    if len(tlb_set) >= tlb_ways:
                        tlb_set.pop(next(iter(tlb_set)))
                        tlb_cache.evictions += 1
                    tlb_set[page] = CacheEntry(page)
                host_clock = now
                index += 1
                consumed += 1
                l1_count += 1
                streak += 1
                if streak >= array_threshold:
                    index, host_clock, batched = self._array_burst(
                        host_id, index, host_clock,
                        heap_bound, event_bound,
                    )
                    consumed += batched
                    l1_count += batched
                    streak = 0
            if consumed:
                if l1_count:
                    svc_counts[svc_l1] += l1_count
                access_counts[host_id] += consumed
                host.clock_ns = host_clock
                if index < length:
                    item = heappushpop(heap, (host_clock, host_id, index))
                    continue
                if heap:
                    item = heappop(heap)
                    continue
                break

            # ---- serialized slow path (identical to the loop backend) --
            compute_ns, addr, is_write, core = rec[index]
            now = host_clock + compute_ns
            host.clock_ns = now
            if eventful:
                if check_crash:
                    system.maybe_crash(now)
                    if host_id in injector.crashed:
                        # This access died with its host at the crash
                        # epoch: requeue so the next turn pauses or drops
                        # the stream instead of serving it.
                        item = heappushpop(heap, (now, host_id, index))
                        continue
                if interval_scheme:
                    system.maybe_tick(now)
                if check_watchdog:
                    watchdog.maybe_audit(now)
            latency, service = access(host_id, core, addr, is_write, now)
            access_counts[host_id] += 1
            if service != svc_l1:
                stall = latency * inv_mlp[host_id]
                host.clock_ns += stall
                stall_by_service[service] += stall
            index += 1
            if index < length:
                item = heappushpop(heap, (host.clock_ns, host_id, index))
            elif heap:
                item = heappop(heap)
            else:
                break

        # Fold the flat paths' deferred integer statistics back into the
        # live counters before anything reads them.
        for flush in flushes:
            flush()
        return self._finish(stall_by_service, access_counts)

    def _array_burst(self, host_id, index, host_clock, heap_bound,
                     event_bound):
        """Resolve a window of guaranteed-private L1 hits as array math.

        Returns ``(new_index, new_host_clock, committed)``.  Probes up to
        :data:`_ARRAY_WINDOW` upcoming accesses: exact per-access clocks
        come from a sequential ``cumsum`` seeded with the host clock (the
        same float additions the scalar path performs), time bounds clip
        via ``searchsorted``, and per-core residency/upgrade-risk masks
        come from tag membership against the L1 set state.  The eligible
        prefix commits in bulk: clock jump, hit counters, bulk LRU
        reorders + dirty bits (:meth:`SetAssocCache.batch_touch`), and a
        run-compressed TLB replay.  Everything past the first ineligible
        access is left for the scalar paths.
        """
        system = self.system
        host = system.hosts[host_id]
        baked = self._baked[host_id]
        if host_clock >= heap_bound:
            # The previous access already reached another host's turn; the
            # scalar loop will requeue on its next iteration.
            return index, host_clock, 0
        stop = min(index + _ARRAY_WINDOW, len(baked))
        if stop <= index:
            return index, host_clock, 0
        compute = baked.compute_ns[index:stop]
        # Sequential cumulative sum seeded with the live clock reproduces
        # the scalar path's float additions bit for bit.
        clocks = np.cumsum(np.concatenate(((host_clock,), compute)))[1:]
        # now_j < event_bound for every batched access; the heap turn
        # requires the *previous* access's clock to stay strictly below
        # the heap top, i.e. clocks[j-1] < heap_bound.
        limit = int(np.searchsorted(clocks, event_bound, side="left"))
        if heap_bound < math.inf:
            limit = min(
                limit,
                int(np.searchsorted(clocks, heap_bound, side="left")) + 1,
            )
        if limit <= 0:
            return index, host_clock, 0
        lines = baked.line[index:index + limit]
        writes = baked.is_write[index:index + limit]
        cores = baked.core[index:index + limit]
        shared_write = writes & (baked.addr[index:index + limit]
                                 < system._cxl_end)
        l1s = host.l1s
        n_l1 = len(l1s)
        eligible = np.empty(limit, dtype=bool)
        core_lane = cores % n_l1
        for lane in range(n_l1):
            lane_mask = core_lane == lane
            if not lane_mask.any():
                continue
            l1 = l1s[lane]
            lane_lines = lines[lane_mask]
            ok = np.isin(lane_lines, l1.resident_line_array())
            risky = l1.resident_line_array(
                lambda e: e.state == 0 and not e.dirty
            )
            if len(risky):
                ok &= ~(
                    shared_write[lane_mask]
                    & np.isin(lane_lines, risky)
                )
            eligible[lane_mask] = ok
        injector = system.injector
        if system._check_poison and injector.poisoned:
            eligible &= ~np.isin(
                lines,
                np.fromiter(injector.poisoned, dtype=np.int64),
            )
        bad = np.flatnonzero(~eligible)
        commit = int(bad[0]) if len(bad) else limit
        if commit <= 0:
            return index, host_clock, 0
        lines = lines[:commit]
        writes = writes[:commit]
        core_lane = core_lane[:commit]
        for lane in range(n_l1):
            lane_mask = core_lane == lane
            if lane_mask.any():
                l1s[lane].batch_touch(lines[lane_mask], writes[lane_mask])
        # TLB replay with page-run compression: one real translate per run
        # of equal pages; the other run members are guaranteed hits on an
        # already-MRU entry (the move-to-end is a no-op), so they reduce
        # to hit-counter increments.
        pages = baked.page[index:index + commit]
        run_starts = np.concatenate(
            ((0,), np.flatnonzero(pages[1:] != pages[:-1]) + 1)
        )
        translate = host.tlb.translate
        for page in pages[run_starts].tolist():
            translate(page)
        host.tlb._cache.hits += commit - len(run_starts)
        return (
            index + commit,
            float(clocks[commit - 1]),
            commit,
        )

    # ------------------------------------------------------------------
    # Shared epilogue
    # ------------------------------------------------------------------
    def _finish(self, stall_by_service, access_counts) -> SimulationResult:
        system = self.system
        hosts = system.hosts
        access_total = 0
        for host_id, host in enumerate(hosts):
            host.instructions += self._instr_totals[host_id]
            host.accesses += access_counts[host_id]
            access_total += access_counts[host_id]

        system.finalize()
        watchdog = system.watchdog
        if watchdog is not None:
            # One final end-of-run consistency sweep.
            watchdog.audit(max((h.clock_ns for h in hosts), default=0.0))
        return self._collect(stall_by_service, access_total)

    def _collect(self, stall_by_service, access_total) -> SimulationResult:
        system = self.system
        hosts = system.hosts
        host_times = [h.clock_ns for h in hosts]
        result = SimulationResult(
            workload=self.trace.name,
            scheme=system.scheme.name,
            num_hosts=system.config.num_hosts,
            exec_time_ns=max(host_times) if host_times else 0.0,
            host_time_ns=host_times,
            instructions=sum(h.instructions for h in hosts),
            accesses=access_total,
            service_counts={
                svc: count
                for svc, count in enumerate(system.svc_counts)
                if count
            },
            stall_ns_by_service={
                svc: ns
                for svc, ns in enumerate(stall_by_service)
                if ns
            },
            mgmt_ns=system.mgmt_ns,
            transfer_ns=system.transfer_ns,
            migrations=system.migrations,
            demotions=system.demotions,
            footprint_bytes=self.trace.footprint_bytes,
            peak_local_pages=dict(system.peak_local_pages),
            peak_local_lines=dict(system.peak_local_lines),
        )
        result.stats["freq_ghz"] = system.config.core.freq_ghz
        result.stats["back_invalidations"] = system.back_invalidations
        if system.ledger is not None:
            ledger = system.ledger
            result.stats["harmful_migrations"] = ledger.harmful_migrations
            result.stats["total_migrations"] = ledger.total_migrations
            result.stats["harmful_fraction"] = ledger.harmful_fraction
        if system.engine is not None:
            counters = system.engine.counters
            result.stats["pipm_promotions"] = counters.promotions
            result.stats["pipm_revocations"] = counters.revocations
            result.stats["pipm_incremental_migrations"] = (
                counters.incremental_migrations
            )
            result.stats["pipm_migrate_backs"] = counters.migrate_backs
            result.stats["global_remap_cache_hit_rate"] = (
                system.engine.global_cache.hit_rate
            )
            local_caches = system.engine.local_caches
            hits = sum(c.hits for c in local_caches)
            misses = sum(c.misses for c in local_caches)
            result.stats["local_remap_cache_hit_rate"] = (
                hits / (hits + misses) if hits + misses else 0.0
            )
        # Fault/recovery counters appear only when they fired, so an idle
        # fault plan leaves the result identical to a faults-disabled run.
        result.stats.update(system.fault_stats())
        return result


def simulate(
    trace: WorkloadTrace,
    scheme: MigrationScheme,
    config: Optional[SystemConfig] = None,
    backend: str = "loop",
    **system_kwargs,
) -> SimulationResult:
    """Convenience: build a system for ``scheme`` and run ``trace``."""
    if config is None:
        config = SystemConfig.scaled()
    system_kwargs.setdefault(
        "footprint_pages", max(1, trace.footprint_bytes // 4096)
    )
    system = MultiHostSystem(
        config, scheme, workload_mlp=trace.mlp, **system_kwargs
    )
    return SimulationEngine(system, trace, backend=backend).run()
