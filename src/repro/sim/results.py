"""Simulation results: service-point taxonomy and the result record."""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import IntEnum
from typing import Dict, List

from ..stats import ratio


class ServicePoint(IntEnum):
    """Where a memory access was ultimately served."""

    L1 = 0
    LLC = 1
    LOCAL_MEM = 2  # host-local DRAM (private data or kernel-migrated pages)
    PIPM_LOCAL = 3  # a PIPM-migrated line served from local DRAM
    CXL_MEM = 4  # shared pool, 2-hop cacheable access
    CXL_FWD = 5  # dirty in another host's cache: 4-hop owner forward
    INTER_HOST = 6  # access to data in another host's local memory (4-hop)


#: Service points that count as "local memory" for Fig. 11 (DRAM-level
#: accesses served from the requester's local DRAM).
LOCAL_SERVICE = (ServicePoint.LOCAL_MEM, ServicePoint.PIPM_LOCAL)
#: Service points that reach DRAM at all (denominator of Fig. 11).
MEMORY_SERVICE = (
    ServicePoint.LOCAL_MEM,
    ServicePoint.PIPM_LOCAL,
    ServicePoint.CXL_MEM,
    ServicePoint.CXL_FWD,
    ServicePoint.INTER_HOST,
)


@dataclass
class SimulationResult:
    """Everything a run produces, ready for the figure harnesses."""

    workload: str
    scheme: str
    num_hosts: int
    exec_time_ns: float  # max over hosts (parallel completion)
    host_time_ns: List[float]
    instructions: int
    accesses: int
    service_counts: Dict[int, int]
    stall_ns_by_service: Dict[int, float]
    mgmt_ns: float  # kernel migration management time (all hosts)
    transfer_ns: float  # migration data-transfer serialization time
    migrations: int  # whole pages (kernel) or promoted pages (PIPM)
    demotions: int
    footprint_bytes: int
    peak_local_pages: Dict[int, int] = field(default_factory=dict)
    peak_local_lines: Dict[int, int] = field(default_factory=dict)
    stats: Dict[str, float] = field(default_factory=dict)

    # -- serialization ----------------------------------------------------
    #: Scalar fields serialized verbatim by :meth:`to_record`.
    _SCALAR_FIELDS = (
        "workload", "scheme", "num_hosts", "exec_time_ns", "host_time_ns",
        "instructions", "accesses", "mgmt_ns", "transfer_ns", "migrations",
        "demotions", "footprint_bytes",
    )
    #: ``Dict[int, number]`` fields whose keys JSON stringifies.
    _INT_KEY_FIELDS = (
        "service_counts", "stall_ns_by_service", "peak_local_pages",
        "peak_local_lines",
    )

    def to_record(self) -> Dict:
        """A JSON-safe dict that :meth:`from_record` restores bit-for-bit."""
        record = {name: getattr(self, name) for name in self._SCALAR_FIELDS}
        for name in self._INT_KEY_FIELDS:
            record[name] = {str(k): v for k, v in getattr(self, name).items()}
        record["stats"] = dict(self.stats)
        return record

    @classmethod
    def from_record(cls, record: Dict) -> "SimulationResult":
        kwargs = {name: record[name] for name in cls._SCALAR_FIELDS}
        for name in cls._INT_KEY_FIELDS:
            kwargs[name] = {int(k): v for k, v in record[name].items()}
        kwargs["stats"] = dict(record["stats"])
        return cls(**kwargs)

    # -- headline metrics ------------------------------------------------
    @property
    def ipc(self) -> float:
        if self.exec_time_ns <= 0:
            return 0.0
        # Aggregate IPC at 4 GHz over the parallel execution window.
        freq_ghz = self.stats.get("freq_ghz", 4.0)
        return self.instructions / (self.exec_time_ns * freq_ghz)

    def speedup_over(self, baseline: "SimulationResult") -> float:
        """Execution-time speedup vs another run of the same workload."""
        if self.workload != baseline.workload:
            raise ValueError(
                f"comparing different workloads: {self.workload} vs "
                f"{baseline.workload}"
            )
        return ratio(baseline.exec_time_ns, self.exec_time_ns)

    # -- Fig. 11: local memory hit rate -----------------------------------
    @property
    def local_hit_rate(self) -> float:
        local = sum(self.service_counts.get(int(s), 0) for s in LOCAL_SERVICE)
        total = sum(self.service_counts.get(int(s), 0) for s in MEMORY_SERVICE)
        return ratio(local, total)

    # -- Fig. 12: inter-host stall contribution ----------------------------
    def inter_host_stall_fraction(self, native_exec_ns: float) -> float:
        stall = self.stall_ns_by_service.get(int(ServicePoint.INTER_HOST), 0.0)
        # Per-host average stall against the baseline execution window.
        return ratio(stall / max(self.num_hosts, 1), native_exec_ns)

    # -- Fig. 13: local footprint ratios ----------------------------------
    @property
    def local_page_footprint_fraction(self) -> float:
        """Average per-host peak page-granular local allocation / footprint."""
        if self.footprint_bytes <= 0 or not self.num_hosts:
            return 0.0
        pages = self.footprint_bytes / 4096
        per_host = [
            self.peak_local_pages.get(h, 0) for h in range(self.num_hosts)
        ]
        return ratio(sum(per_host) / self.num_hosts, pages)

    @property
    def local_line_footprint_fraction(self) -> float:
        """Average per-host peak line-granular allocation / footprint."""
        if self.footprint_bytes <= 0 or not self.num_hosts:
            return 0.0
        lines = self.footprint_bytes / 64
        per_host = [
            self.peak_local_lines.get(h, 0) for h in range(self.num_hosts)
        ]
        return ratio(sum(per_host) / self.num_hosts, lines)

    # -- Fig. 4 breakdown ---------------------------------------------------
    def breakdown_vs(self, native_exec_ns: float) -> Dict[str, float]:
        """Execution-time components normalized to the native baseline."""
        per_host_mgmt = self.mgmt_ns / max(self.num_hosts, 1)
        per_host_transfer = self.transfer_ns / max(self.num_hosts, 1)
        other = max(self.exec_time_ns - per_host_mgmt - per_host_transfer, 0.0)
        return {
            "other": ratio(other, native_exec_ns),
            "management": ratio(per_host_mgmt, native_exec_ns),
            "transfer": ratio(per_host_transfer, native_exec_ns),
            "total": ratio(self.exec_time_ns, native_exec_ns),
        }

    # -- fault injection / resilience ---------------------------------------
    @property
    def fault_stats(self) -> Dict[str, float]:
        """The ``fault_*``/``watchdog_*`` counters this run reported.

        Empty when fault injection was disabled or configured but idle.
        """
        return {
            key: value
            for key, value in self.stats.items()
            if key.startswith("fault_") or key.startswith("watchdog_")
        }

    @property
    def mttr_ns(self) -> float:
        """Mean time to recover from a host crash (0 when none occurred)."""
        crashes = self.stats.get("fault_host_crashes", 0.0)
        if crashes <= 0:
            return 0.0
        return self.stats.get("fault_crash_recovery_ns", 0.0) / crashes

    @property
    def availability(self) -> float:
        """Fraction of host-seconds the cluster was up.

        ``1.0`` for a crash-free run; a permanent crash of one of N hosts
        at the midpoint yields roughly ``1 - 1/(2N)``.  Down-time is the
        scheduled crash→rejoin (or crash→end-of-run) span, so the metric
        is a pure function of the fault plan and the execution window.
        """
        if self.exec_time_ns <= 0 or not self.num_hosts:
            return 1.0
        down = self.stats.get("fault_crash_down_ns", 0.0)
        budget = self.exec_time_ns * self.num_hosts
        return max(0.0, 1.0 - down / budget)

    @property
    def lines_reclaimed(self) -> float:
        """Directory lines reclaimed during crash recovery."""
        return self.stats.get("fault_crash_lines_reclaimed", 0.0)

    def resilience_summary(self) -> str:
        """One line of fault/recovery counters, or a clean-run marker."""
        stats = self.fault_stats
        if not stats:
            return f"{self.workload}/{self.scheme}: no faults fired"
        parts = " ".join(
            f"{key.replace('fault_', '')}={value:g}"
            for key, value in sorted(stats.items())
        )
        return f"{self.workload}/{self.scheme}: {parts}"

    def summary(self) -> str:
        points = {ServicePoint(k).name: v for k, v in self.service_counts.items()}
        return (
            f"{self.workload}/{self.scheme}: exec={self.exec_time_ns / 1e6:.3f}ms "
            f"ipc={self.ipc:.2f} local_hit={self.local_hit_rate:.1%} "
            f"migrations={self.migrations} services={points}"
        )
