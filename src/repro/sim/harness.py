"""Experiment harness: the entry point examples and benches build on.

``run_experiment`` generates (or reuses) a workload trace and simulates it
under one scheme; ``compare_schemes`` runs a list of schemes over one
workload and reports results keyed by scheme name, with Native first so
speedups can be normalized the way every figure in the paper is.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Union

from ..config import SystemConfig
from ..policies import make_scheme
from ..policies.base import MigrationScheme
from ..workloads.registry import generate
from ..workloads.trace import WorkloadScale, WorkloadTrace
from .engine import simulate
from .results import SimulationResult

SchemeLike = Union[str, MigrationScheme]

#: The paper's Fig. 10 scheme order.
DEFAULT_SCHEMES = (
    "native",
    "nomad",
    "memtis",
    "hemem",
    "os-skew",
    "hw-static",
    "pipm",
    "local-only",
)


def _as_scheme(scheme: SchemeLike) -> MigrationScheme:
    if isinstance(scheme, MigrationScheme):
        return scheme
    return make_scheme(scheme)


def run_experiment(
    workload: Union[str, WorkloadTrace],
    scheme: SchemeLike,
    config: Optional[SystemConfig] = None,
    scale: Optional[WorkloadScale] = None,
    **system_kwargs,
) -> SimulationResult:
    """Simulate one (workload, scheme) pair."""
    if config is None:
        config = SystemConfig.scaled()
    if isinstance(workload, str):
        trace = generate(
            workload,
            num_hosts=config.num_hosts,
            scale=scale,
            cores_per_host=config.cores_per_host,
        )
    else:
        trace = workload
    return simulate(trace, _as_scheme(scheme), config, **system_kwargs)


def compare_schemes(
    workload: Union[str, WorkloadTrace],
    schemes: Iterable[SchemeLike] = DEFAULT_SCHEMES,
    config: Optional[SystemConfig] = None,
    scale: Optional[WorkloadScale] = None,
    **system_kwargs,
) -> Dict[str, SimulationResult]:
    """Run several schemes over the same trace; returns ``{name: result}``.

    The trace is generated once and replayed for every scheme so the
    comparison is apples-to-apples (the paper's methodology).
    """
    if config is None:
        config = SystemConfig.scaled()
    if isinstance(workload, str):
        trace = generate(
            workload,
            num_hosts=config.num_hosts,
            scale=scale,
            cores_per_host=config.cores_per_host,
        )
    else:
        trace = workload
    results: Dict[str, SimulationResult] = {}
    for scheme in schemes:
        instance = _as_scheme(scheme)
        results[instance.name] = simulate(trace, instance, config,
                                          **system_kwargs)
    return results


def speedups_over_native(
    results: Dict[str, SimulationResult]
) -> Dict[str, float]:
    """Per-scheme execution-time speedup vs the ``native`` run."""
    if "native" not in results:
        raise ValueError("speedups need a 'native' baseline run")
    native = results["native"]
    return {
        name: result.speedup_over(native)
        for name, result in results.items()
        if name != "native"
    }
