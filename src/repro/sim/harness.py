"""Experiment harness: the entry point examples and benches build on.

``run_experiment`` generates (or reuses) a workload trace and simulates it
under one scheme; ``compare_schemes`` runs a list of schemes over one
workload and reports results keyed by scheme name, with Native first so
speedups can be normalized the way every figure in the paper is.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Union

from ..config import SystemConfig
from ..policies import make_scheme
from ..policies.base import MigrationScheme
from ..workloads.registry import generate
from ..workloads.trace import WorkloadScale, WorkloadTrace
from .engine import simulate
from .results import SimulationResult

SchemeLike = Union[str, MigrationScheme]

#: The paper's Fig. 10 scheme order.
DEFAULT_SCHEMES = (
    "native",
    "nomad",
    "memtis",
    "hemem",
    "os-skew",
    "hw-static",
    "pipm",
    "local-only",
)


def _as_scheme(scheme: SchemeLike) -> MigrationScheme:
    if isinstance(scheme, MigrationScheme):
        return scheme
    return make_scheme(scheme)


def run_experiment(
    workload: Union[str, WorkloadTrace],
    scheme: SchemeLike,
    config: Optional[SystemConfig] = None,
    scale: Optional[WorkloadScale] = None,
    **system_kwargs,
) -> SimulationResult:
    """Simulate one (workload, scheme) pair."""
    if config is None:
        config = SystemConfig.scaled()
    if isinstance(workload, str):
        trace = generate(
            workload,
            num_hosts=config.num_hosts,
            scale=scale,
            cores_per_host=config.cores_per_host,
        )
    else:
        trace = workload
    return simulate(trace, _as_scheme(scheme), config, **system_kwargs)


def run_experiment_spec(spec) -> SimulationResult:
    """Execute one :class:`~repro.sweep.spec.ExperimentSpec`, uncached.

    The soak harness and replay path use this: a reproducer must actually
    *run* the simulation (a cache hit would mask whether the failure still
    reproduces), so no result store is consulted or written.
    """
    trace = generate(
        spec.workload,
        num_hosts=spec.config.num_hosts,
        scale=spec.scale,
        cores_per_host=spec.config.cores_per_host,
    )
    scheme = make_scheme(spec.scheme, **spec.scheme_kwargs)
    return simulate(trace, scheme, spec.config, **spec.system_kwargs)


def compare_schemes(
    workload: Union[str, WorkloadTrace],
    schemes: Iterable[SchemeLike] = DEFAULT_SCHEMES,
    config: Optional[SystemConfig] = None,
    scale: Optional[WorkloadScale] = None,
    cache_dir: Optional[str] = None,
    **system_kwargs,
) -> Dict[str, SimulationResult]:
    """Run several schemes over the same trace; returns ``{name: result}``.

    The trace is generated once and replayed for every scheme so the
    comparison is apples-to-apples (the paper's methodology).  Results are
    keyed by :attr:`MigrationScheme.name` — the same normalization every
    consumer (:func:`speedups_over_native`, the benches, the sweep runner)
    uses — and duplicate names are rejected instead of silently keeping
    only the last run.

    With ``cache_dir`` set and ``workload`` given by name, each
    (workload, scheme) run goes through the content-addressed result
    cache of :mod:`repro.sweep`, so results are shared with ``python -m
    repro sweep`` and the figure benches.
    """
    if config is None:
        config = SystemConfig.scaled()
    schemes = list(schemes)
    instances = [_as_scheme(scheme) for scheme in schemes]
    names = [instance.name for instance in instances]
    dupes = sorted({n for n in names if names.count(n) > 1})
    if dupes:
        raise ValueError(
            f"duplicate scheme names {dupes}; results are keyed by "
            f"MigrationScheme.name and would silently overwrite"
        )
    all_named = all(isinstance(s, str) for s in schemes)
    if cache_dir is not None and not (isinstance(workload, str) and all_named):
        raise ValueError(
            "cache_dir needs workload and schemes given by name; a "
            "pre-built trace or scheme instance has no cacheable spec"
        )
    if cache_dir is not None:
        # Route through the shared spec cache (lazy import: repro.sweep
        # imports this module's siblings).
        from ..sweep import ExperimentSpec, run_spec

        results = {}
        for instance in instances:
            spec = ExperimentSpec.build(
                workload=workload,
                scheme=instance.name,
                config=config,
                scale=scale,
                system_kwargs=system_kwargs,
            )
            results[instance.name] = run_spec(spec, cache_dir).result
        return results
    if isinstance(workload, str):
        trace = generate(
            workload,
            num_hosts=config.num_hosts,
            scale=scale,
            cores_per_host=config.cores_per_host,
        )
    else:
        trace = workload
    results = {}
    for instance in instances:
        results[instance.name] = simulate(trace, instance, config,
                                          **system_kwargs)
    return results


def speedups_over_native(
    results: Dict[str, SimulationResult],
    baseline: str = "native",
) -> Dict[str, float]:
    """Per-scheme execution-time speedup vs the ``baseline`` run.

    ``results`` must be keyed by :attr:`MigrationScheme.name` (what
    :func:`compare_schemes` produces).  A missing baseline raises a
    :class:`ValueError` naming the keys that *are* present instead of a
    bare KeyError deep in a figure script.
    """
    if baseline not in results:
        raise ValueError(
            f"speedups need a {baseline!r} baseline run; available "
            f"schemes: {sorted(results) or '(none)'}"
        )
    base = results[baseline]
    return {
        name: result.speedup_over(base)
        for name, result in results.items()
        if name != baseline
    }
