"""The multi-host CXL-DSM timing simulator."""

from .results import ServicePoint, SimulationResult
from .system import MultiHostSystem
from .engine import SimulationEngine, simulate
from .harness import run_experiment, compare_schemes

__all__ = [
    "ServicePoint",
    "SimulationResult",
    "MultiHostSystem",
    "SimulationEngine",
    "simulate",
    "run_experiment",
    "compare_schemes",
]
