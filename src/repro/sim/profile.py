"""Core-speed microbench and cProfile harness (``python -m repro profile``).

The simulator's throughput ceiling is the pure-Python per-access hot path
(:meth:`SimulationEngine.run` -> :meth:`MultiHostSystem.access`), so this
module times exactly that: trace generation and system construction are
excluded, the engine run is the measured region.  The workloads are the
figure matrix's representative (workload, scheme) pairs — a PIPM run, a
baseline CXL run, and a kernel-migration run — generated at a fixed scale
from the usual seeded generators, so the measured work is byte-for-byte
identical between two invocations and between two commits.

Two artifacts hang off this:

* ``benchmarks/bench_core_speed.py`` persists the measured accesses/sec
  as ``benchmarks/results/BENCH_core.json`` — the bench trajectory.  The
  file keeps a ``baseline`` section (recorded once, pre-optimization)
  next to ``current``, so the speedup claim is always relative to a
  number that lives in the repository, not in someone's terminal
  scrollback.
* ``tests/golden/core_records.json`` pins every case's full
  ``SimulationResult.to_record()`` at tiny scale.  Perf work must leave
  those records byte-identical; ``--check-golden`` makes CI enforce it.
"""

from __future__ import annotations

import cProfile
import io
import json
import pstats
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple

from ..config import SystemConfig
from ..policies import make_scheme
from ..workloads.registry import generate
from ..workloads.trace import WorkloadScale
from .engine import SimulationEngine
from .system import MultiHostSystem

#: Representative figure-matrix cases: one per mechanism on the hot path.
PROFILE_CASES: Tuple[Tuple[str, str], ...] = (
    ("pr", "pipm"),
    ("pr", "native"),
    ("ycsb", "memtis"),
)

_SCALES = {
    "tiny": WorkloadScale.tiny,
    "small": WorkloadScale.small,
    "default": WorkloadScale.default,
    "large": WorkloadScale.large,
}


def scale_by_name(name: str) -> WorkloadScale:
    if name not in _SCALES:
        raise ValueError(
            f"unknown scale {name!r}; choose from {sorted(_SCALES)}"
        )
    return _SCALES[name]()


@dataclass
class CaseResult:
    """One timed (workload, scheme) engine run."""

    workload: str
    scheme: str
    accesses: int
    wall_s: float
    record: Dict

    @property
    def key(self) -> str:
        return f"{self.workload}/{self.scheme}"

    @property
    def accesses_per_s(self) -> float:
        return self.accesses / self.wall_s if self.wall_s > 0 else 0.0


@dataclass
class MicrobenchResult:
    scale: str
    num_hosts: int
    cases: List[CaseResult] = field(default_factory=list)

    @property
    def total_accesses(self) -> int:
        return sum(case.accesses for case in self.cases)

    @property
    def total_wall_s(self) -> float:
        return sum(case.wall_s for case in self.cases)

    @property
    def aggregate_accesses_per_s(self) -> float:
        wall = self.total_wall_s
        return self.total_accesses / wall if wall > 0 else 0.0

    def summary(self) -> Dict:
        """The JSON shape BENCH_core.json stores (no wall-clock stamps)."""
        return {
            "scale": self.scale,
            "num_hosts": self.num_hosts,
            "aggregate_accesses_per_s": round(self.aggregate_accesses_per_s),
            "total_accesses": self.total_accesses,
            "total_wall_s": round(self.total_wall_s, 3),
            "cases": [
                {
                    "workload": case.workload,
                    "scheme": case.scheme,
                    "accesses": case.accesses,
                    "wall_s": round(case.wall_s, 3),
                    "accesses_per_s": round(case.accesses_per_s),
                }
                for case in self.cases
            ],
        }

    def records(self) -> Dict[str, Dict]:
        return {case.key: case.record for case in self.cases}


def run_case(
    workload: str,
    scheme: str,
    scale: WorkloadScale,
    config: Optional[SystemConfig] = None,
    repeats: int = 1,
    profiler: Optional[cProfile.Profile] = None,
    backend: str = "loop",
) -> CaseResult:
    """Time ``repeats`` fresh engine runs of one case; keep the fastest.

    The trace is generated once (outside the timed region) and replayed
    against a fresh system per repeat — the engine mutates cache/DRAM
    state, so re-running on a used system would measure different work.
    """
    if config is None:
        config = SystemConfig.scaled()
    trace = generate(
        workload,
        num_hosts=config.num_hosts,
        scale=scale,
        cores_per_host=config.cores_per_host,
    )
    accesses = sum(len(stream) for stream in trace.streams)
    footprint_pages = max(1, trace.footprint_bytes // 4096)
    best_wall = None
    record = None
    for _ in range(max(1, repeats)):
        system = MultiHostSystem(
            config,
            make_scheme(scheme),
            workload_mlp=trace.mlp,
            footprint_pages=footprint_pages,
        )
        engine = SimulationEngine(system, trace, backend=backend)
        if profiler is not None:
            profiler.enable()
        start = time.perf_counter()
        result = engine.run()
        wall = time.perf_counter() - start
        if profiler is not None:
            profiler.disable()
        if best_wall is None or wall < best_wall:
            best_wall = wall
        if record is None:
            record = result.to_record()
    return CaseResult(
        workload=workload,
        scheme=scheme,
        accesses=accesses,
        wall_s=best_wall,
        record=record,
    )


def run_microbench(
    scale: str = "small",
    cases: Sequence[Tuple[str, str]] = PROFILE_CASES,
    config: Optional[SystemConfig] = None,
    repeats: int = 1,
    profiler: Optional[cProfile.Profile] = None,
    backend: str = "loop",
) -> MicrobenchResult:
    if config is None:
        config = SystemConfig.scaled()
    scale_obj = scale_by_name(scale)
    out = MicrobenchResult(scale=scale, num_hosts=config.num_hosts)
    for workload, scheme in cases:
        out.cases.append(
            run_case(workload, scheme, scale_obj, config=config,
                     repeats=repeats, profiler=profiler, backend=backend)
        )
    return out


# ----------------------------------------------------------------------
# Golden-record drift detection
# ----------------------------------------------------------------------
def compare_records(
    current: Dict[str, Dict], golden: Dict[str, Dict]
) -> List[str]:
    """Human-readable diffs between two ``records()`` maps (empty = clean).

    Comparison is on the canonical JSON text, so a drift anywhere in the
    record — a counter, a latency sum, a per-host dict — is caught even
    if float repr would round it away in casual printing.
    """
    problems: List[str] = []
    for key in sorted(golden):
        if key not in current:
            problems.append(f"{key}: missing from this run")
            continue
        want = json.dumps(golden[key], sort_keys=True)
        got = json.dumps(current[key], sort_keys=True)
        if want == got:
            continue
        detail = _first_divergence(golden[key], current[key])
        problems.append(f"{key}: record drifted ({detail})")
    for key in sorted(set(current) - set(golden)):
        problems.append(f"{key}: not pinned in the golden file")
    return problems


def _first_divergence(want: Dict, got: Dict) -> str:
    keys = sorted(set(want) | set(got))
    for key in keys:
        want_text = json.dumps(want.get(key), sort_keys=True)
        got_text = json.dumps(got.get(key), sort_keys=True)
        if want_text != got_text:
            if len(want_text) > 60:
                want_text = want_text[:57] + "..."
            if len(got_text) > 60:
                got_text = got_text[:57] + "..."
            return f"field {key!r}: golden={want_text} got={got_text}"
    return "structural difference"


def load_golden(path) -> Dict[str, Dict]:
    data = json.loads(Path(path).read_text())
    return data["records"]


def write_golden(path, result: MicrobenchResult) -> None:
    payload = {
        "comment": (
            "SimulationResult.to_record() per microbench case; perf work "
            "must keep these byte-identical (python -m repro profile "
            "--write-golden regenerates after an intentional model change)"
        ),
        "scale": result.scale,
        "records": result.records(),
    }
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")


# ----------------------------------------------------------------------
# cProfile reporting
# ----------------------------------------------------------------------
def profile_report(profiler: cProfile.Profile, top: int = 25) -> str:
    buf = io.StringIO()
    stats = pstats.Stats(profiler, stream=buf)
    stats.strip_dirs().sort_stats("cumulative").print_stats(top)
    return buf.getvalue()
