"""TLB model.

A per-host, unified second-level TLB over 4 KB pages.  A miss pays a page
walk against local memory.  Kernel page migration shoots entries down
(``shootdown``), which is how remapped pages force re-walks; PIPM never
touches the TLB (its remapping happens below the physical address).
"""

from __future__ import annotations

from ..cache.sa_cache import SetAssocCache


class Tlb:
    """Set-associative TLB keyed by page index."""

    def __init__(
        self,
        entries: int = 2048,
        ways: int = 8,
        hit_ns: float = 0.0,
        walk_ns: float = 50.0,
        name: str = "tlb",
    ) -> None:
        sets = max(1, entries // ways)
        pow2_sets = 1 << (sets.bit_length() - 1)
        self._cache = SetAssocCache(pow2_sets, ways, name=name)
        self.hit_ns = hit_ns
        self.walk_ns = walk_ns
        self.shootdowns = 0

    def translate(self, page: int) -> float:
        """Latency contribution of translating ``page``."""
        if self._cache.lookup(page) is not None:
            return self.hit_ns
        self._cache.fill(page)
        return self.hit_ns + self.walk_ns

    def shootdown(self, page: int) -> bool:
        """Invalidate ``page``; returns True if it was resident."""
        self.shootdowns += 1
        return self._cache.invalidate(page) is not None

    def flush(self) -> int:
        """Drop every translation (host crash / cold rejoin); entry count."""
        return len(self._cache.flush())

    @property
    def hit_rate(self) -> float:
        return self._cache.hit_rate

    @property
    def misses(self) -> int:
        return self._cache.misses
