"""Per-host page table bookkeeping for kernel page migration.

Kernel migration changes a page's unified physical address, which requires
updating every host's process page tables that map it and invalidating
TLBs (Section 3.1, "Workflow of page migration").  The timing simulator
charges those costs from :mod:`repro.policies.costs`; this module tracks
*which* hosts map a page so the cost model knows how many page-table
updates and shootdowns a migration broadcast causes.
"""

from __future__ import annotations

from typing import Dict, Set


class PageTable:
    """Reverse-map bookkeeping: shared pages this host has mapped."""

    def __init__(self, host_id: int) -> None:
        self.host_id = host_id
        self._mapped: Set[int] = set()
        self.updates = 0

    def touch(self, page: int) -> None:
        """Record that this host faulted the shared page in."""
        self._mapped.add(page)

    def maps(self, page: int) -> bool:
        return page in self._mapped

    def remap(self, page: int) -> bool:
        """Apply a migration-induced PTE update; True if we mapped it."""
        if page in self._mapped:
            self.updates += 1
            return True
        return False

    @property
    def mapped_count(self) -> int:
        return len(self._mapped)


def hosts_mapping(page_tables: Dict[int, "PageTable"], page: int) -> Set[int]:
    """The set of hosts whose page tables map ``page``."""
    return {
        host for host, table in page_tables.items() if table.maps(page)
    }
