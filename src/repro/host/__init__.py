"""Host-side components: cores, TLBs, page tables, and the Host assembly."""

from .core import CoreModel
from .tlb import Tlb
from .page_table import PageTable
from .host import Host

__all__ = ["CoreModel", "Tlb", "PageTable", "Host"]
