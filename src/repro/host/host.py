"""A compute host: cores, private L1s, shared LLC, local directory, DRAM.

The host owns all node-local structures; the :class:`repro.sim.system`
model wires hosts to the CXL memory node and implements the coherence
workflows across them.
"""

from __future__ import annotations

from typing import List, Optional

from ..cache.directory import SlicedDirectory
from ..cache.sa_cache import CacheEntry, SetAssocCache, cache_from_geometry
from ..config import SystemConfig
from ..mem.controller import MemoryController
from ..stats import ScopedStats
from .core import CoreModel
from .page_table import PageTable
from .tlb import Tlb


class Host:
    """One compute node of the multi-host CXL-DSM system."""

    def __init__(
        self,
        host_id: int,
        config: SystemConfig,
        stats: ScopedStats,
        workload_mlp: float = 4.0,
    ) -> None:
        self.host_id = host_id
        self.config = config
        self.stats = stats
        self.clock_ns = 0.0
        self.core = CoreModel(config.core, workload_mlp)
        self.l1s: List[SetAssocCache] = [
            cache_from_geometry(
                config.l1.size_bytes, config.l1.ways, name=f"h{host_id}.l1.{c}"
            )
            for c in range(config.cores_per_host)
        ]
        self.llc = cache_from_geometry(
            config.llc.size_bytes, config.llc.ways, name=f"h{host_id}.llc"
        )
        # Per-processor local coherence directory (Fig. 2).  Sized to cover
        # the host's cache hierarchy.
        llc_lines = config.llc.size_bytes // config.llc.line_bytes
        dir_sets = max(64, 1 << ((llc_lines // 16).bit_length() - 1))
        self.local_dir = SlicedDirectory(
            dir_sets, 16, 1, name=f"h{host_id}.localdir"
        )
        self.local_mem = MemoryController(
            config.local_dram, stats.scoped("local_mem")
        )
        self.tlb = Tlb(name=f"h{host_id}.tlb")
        self.page_table = PageTable(host_id)
        # Instruction/access progress for IPC reporting.
        self.instructions = 0
        self.accesses = 0

    # -- cache helpers ----------------------------------------------------
    def l1_for(self, core: int) -> SetAssocCache:
        return self.l1s[core % len(self.l1s)]

    def invalidate_line(self, line: int) -> bool:
        """Remove ``line`` everywhere on this host; True if it was dirty."""
        dirty = False
        for l1 in self.l1s:
            entry = l1.invalidate(line)
            if entry is not None and entry.dirty:
                dirty = True
        entry = self.llc.invalidate(line)
        if entry is not None and entry.dirty:
            dirty = True
        return dirty

    def downgrade_line(self, line: int) -> bool:
        """Drop write permission for ``line``; True if a dirty copy existed.

        Used when another host reads a line this host holds in M: the copy
        stays readable (S) but the dirty data has been written back.
        """
        dirty = False
        for cache in [*self.l1s, self.llc]:
            entry = cache.peek(line)
            if entry is not None and entry.dirty:
                dirty = True
                entry.dirty = False
        return dirty

    def holds_line(self, line: int) -> bool:
        if self.llc.peek(line) is not None:
            return True
        return any(l1.peek(line) is not None for l1 in self.l1s)

    def fill_line(
        self, core: int, line: int, dirty: bool
    ) -> Optional[CacheEntry]:
        """Fill both cache levels; returns the LLC victim (for writeback)."""
        self.l1_for(core).fill(line, dirty=dirty)
        return self.llc.fill(line, dirty=dirty)

    # -- progress ----------------------------------------------------------
    def advance_compute(self, instructions: int) -> None:
        self.instructions += instructions
        self.clock_ns += self.core.compute_ns(instructions)

    def ipc(self) -> float:
        if self.clock_ns <= 0:
            return 0.0
        cycles = self.clock_ns * self.config.core.freq_ghz
        return self.instructions / cycles if cycles else 0.0
