"""Analytic out-of-order core timing model.

The simulator is trace-driven at memory-access granularity: each trace
record carries the number of instructions executed since the previous
memory access.  The core model converts that gap into compute time (base
CPI on a ``width``-wide machine) and converts a memory-access service
latency into *stall* time using a bounded memory-level-parallelism model:
an OoO window overlaps up to ``mlp`` outstanding misses (capped by the
load-queue size), so the average per-miss stall is ``latency / mlp``.

This is the standard analytic substitution for cycle-level OoO simulation;
it preserves the property the paper's results rest on — execution time is
compute + (miss count x where-served latency / overlap).
"""

from __future__ import annotations

from ..config import CoreConfig


class CoreModel:
    """Converts instruction gaps and miss latencies into nanoseconds."""

    def __init__(self, config: CoreConfig, workload_mlp: float = 4.0) -> None:
        if workload_mlp < 1.0:
            raise ValueError(f"mlp must be >= 1, got {workload_mlp}")
        self.config = config
        self.mlp = min(workload_mlp, float(config.load_queue))
        self._ns_per_instr = config.base_cpi / config.freq_ghz
        self._inv_mlp = 1.0 / self.mlp

    def compute_ns(self, instructions: int) -> float:
        """Pipeline time for ``instructions`` non-memory instructions."""
        return instructions * self._ns_per_instr

    def stall_ns(self, service_latency_ns: float) -> float:
        """Exposed stall for one off-core memory access."""
        return service_latency_ns * self._inv_mlp

    @property
    def ns_per_instruction(self) -> float:
        return self._ns_per_instr

    @property
    def inv_mlp(self) -> float:
        """Stall multiplier (``1 / mlp``) — hoisted by the run loop."""
        return self._inv_mlp
