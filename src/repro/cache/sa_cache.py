"""Set-associative cache keyed by cache-line index.

Used for L1s, LLCs, remapping caches, and (via :mod:`repro.cache.directory`)
coherence directories.  Lines are identified by their global line index
(``byte_addr >> 6``); the structure stores an optional per-entry ``state``
field so coherence layers can piggyback on it.

The hot path (lookup/fill) avoids allocation where possible: each set is a
dict ``{line: CacheEntry}`` and LRU uses integer stamps.
"""

from __future__ import annotations

from typing import Callable, Dict, Iterator, List, Optional

import numpy as np

from .replacement import LruPolicy, ReplacementPolicy


class CacheEntry:
    """One resident line."""

    __slots__ = ("line", "dirty", "state", "stamp", "rrpv")

    def __init__(self, line: int, dirty: bool = False, state: object = None):
        self.line = line
        self.dirty = dirty
        self.state = state
        self.stamp = 0
        self.rrpv = 0

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"CacheEntry(line={self.line:#x}, dirty={self.dirty}, "
            f"state={self.state})"
        )


class SetAssocCache:
    """A set-associative cache of line-granularity entries."""

    __slots__ = ("num_sets", "ways", "name", "_mask", "_sets", "_policy",
                 "_lru", "_tick", "hits", "misses", "evictions")

    def __init__(
        self,
        num_sets: int,
        ways: int,
        policy: Optional[ReplacementPolicy] = None,
        name: str = "cache",
    ) -> None:
        if num_sets < 1 or ways < 1:
            raise ValueError(f"{name}: sets and ways must be >= 1")
        if num_sets & (num_sets - 1):
            raise ValueError(f"{name}: num_sets must be a power of two")
        self.num_sets = num_sets
        self.ways = ways
        self.name = name
        self._mask = num_sets - 1
        self._sets: List[Dict[int, CacheEntry]] = [dict() for _ in range(num_sets)]
        self._policy = policy if policy is not None else LruPolicy()
        # LRU is the common case across L1/LLC/remap caches.  For it, the
        # set dict doubles as the recency order (move-to-end on touch, so
        # the first key is always the LRU victim): picking a victim is then
        # O(1) instead of an O(ways) stamp scan, and no policy dispatch or
        # stamp bookkeeping runs per access.  Move-to-end keeps exactly the
        # order min-by-stamp would recover, so victims are unchanged.
        self._lru = type(self._policy) is LruPolicy
        self._tick = 0
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    # -- core operations -----------------------------------------------
    def lookup(self, line: int, touch: bool = True) -> Optional[CacheEntry]:
        """The entry for ``line`` or ``None``; counts hit/miss statistics."""
        cache_set = self._sets[line & self._mask]
        entry = cache_set.get(line)
        if entry is None:
            self.misses += 1
            return None
        self.hits += 1
        if touch:
            if self._lru:
                del cache_set[line]
                cache_set[line] = entry
            else:
                self._tick += 1
                self._policy.on_hit(entry, self._tick)
        return entry

    def peek(self, line: int) -> Optional[CacheEntry]:
        """Lookup without statistics or recency update."""
        return self._sets[line & self._mask].get(line)

    def fill(
        self, line: int, dirty: bool = False, state: object = None
    ) -> Optional[CacheEntry]:
        """Insert ``line``; returns the evicted entry, if any.

        Filling a line already present updates it in place (returns None).
        """
        cache_set = self._sets[line & self._mask]
        lru = self._lru
        existing = cache_set.get(line)
        if existing is not None:
            existing.dirty = existing.dirty or dirty
            if state is not None:
                existing.state = state
            if lru:
                del cache_set[line]
                cache_set[line] = existing
            else:
                self._tick += 1
                self._policy.on_hit(existing, self._tick)
            return None
        victim = None
        if len(cache_set) >= self.ways:
            if lru:
                victim = cache_set.pop(next(iter(cache_set)))
            else:
                victim = self._policy.victim(cache_set.values())
                del cache_set[victim.line]
            self.evictions += 1
        entry = CacheEntry(line, dirty, state)
        if not lru:
            self._tick += 1
            self._policy.on_fill(entry, self._tick)
        cache_set[line] = entry
        return victim

    def invalidate(self, line: int) -> Optional[CacheEntry]:
        """Remove ``line``; returns the removed entry, if any."""
        return self._sets[line & self._mask].pop(line, None)

    def contains(self, line: int) -> bool:
        return line in self._sets[line & self._mask]

    # -- bulk operations -------------------------------------------------
    def resident_line_array(
        self, predicate: Optional[Callable[[CacheEntry], bool]] = None
    ) -> "np.ndarray":
        """Line indices of every resident entry (optionally filtered).

        A snapshot for array-side membership math (``batch_probe`` /
        ``numpy.isin``); the order is unspecified.
        """
        if predicate is None:
            it = (line for cache_set in self._sets for line in cache_set)
        else:
            it = (
                entry.line
                for cache_set in self._sets
                for entry in cache_set.values()
                if predicate(entry)
            )
        return np.fromiter(it, dtype=np.int64)

    def batch_probe(self, lines: "np.ndarray") -> "np.ndarray":
        """Residency mask for ``lines`` (no statistics, no recency update).

        Pure tag/index math against the current set state: element ``i`` is
        True iff ``lines[i]`` is resident right now.
        """
        return np.isin(lines, self.resident_line_array())

    def batch_touch(self, lines: "np.ndarray", writes: "np.ndarray") -> None:
        """Replay a run of guaranteed hits as one bulk update.

        Equivalent, entry for entry and counter for counter, to calling
        ``lookup(line)`` once per element in order (setting ``dirty`` on
        writes): the hit counter advances by the run length, every touched
        line ends at the MRU end of its set in last-touch order (untouched
        entries keep their relative order), and a line written anywhere in
        the run is dirty afterwards.  Every line must be resident (probe
        first).
        """
        n = len(lines)
        if n == 0:
            return
        if not self._lru:
            for i in range(n):
                entry = self.lookup(int(lines[i]))
                if writes[i]:
                    entry.dirty = True
            return
        self.hits += n
        sets = self._sets
        mask = self._mask
        # Last-touch order: unique over the reversed run gives each line's
        # final touch; undoing the reversal sorts oldest-last-touch first.
        uniq, first_rev = np.unique(lines[::-1], return_index=True)
        for line in uniq[np.argsort(-first_rev)].tolist():
            cache_set = sets[line & mask]
            cache_set[line] = cache_set.pop(line)
        if writes.any():
            for line in np.unique(lines[writes]).tolist():
                sets[line & mask][line].dirty = True

    def invalidate_where(
        self, predicate: Callable[[CacheEntry], bool]
    ) -> List[CacheEntry]:
        """Remove every entry matching ``predicate``; returns them."""
        removed: List[CacheEntry] = []
        for cache_set in self._sets:
            doomed = [line for line, e in cache_set.items() if predicate(e)]
            for line in doomed:
                removed.append(cache_set.pop(line))
        return removed

    def entries(self) -> Iterator[CacheEntry]:
        for cache_set in self._sets:
            yield from cache_set.values()

    def flush(self) -> List[CacheEntry]:
        """Remove and return every entry."""
        drained: List[CacheEntry] = []
        for cache_set in self._sets:
            drained.extend(cache_set.values())
            cache_set.clear()
        return drained

    # -- introspection ---------------------------------------------------
    @property
    def occupancy(self) -> int:
        return sum(len(s) for s in self._sets)

    @property
    def capacity(self) -> int:
        return self.num_sets * self.ways

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def reset_stats(self) -> None:
        self.hits = self.misses = self.evictions = 0

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"SetAssocCache({self.name}, {self.num_sets}x{self.ways}, "
            f"occupancy={self.occupancy})"
        )


def cache_from_geometry(
    size_bytes: int, ways: int, line_bytes: int = 64, name: str = "cache"
) -> SetAssocCache:
    """Build a cache from size/ways geometry (sets derived).

    The set count must be a power of two for index masking.  Sets lost to
    rounding down are folded back in as extra ways, so the configured
    capacity is preserved exactly whenever the line count divides the
    rounded set count — and to within one set's worth of lines otherwise —
    instead of silently shrinking the cache by up to ~2x.  The effective
    geometry is exposed as ``num_sets``/``ways``/``capacity`` on the
    returned cache.
    """
    lines = size_bytes // line_bytes
    sets = lines // ways
    if sets < 1:
        raise ValueError(f"{name}: geometry yields zero sets")
    pow2 = 1 << (sets.bit_length() - 1)
    return SetAssocCache(pow2, lines // pow2, name=name)
