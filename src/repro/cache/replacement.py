"""Replacement policies for set-associative structures.

Policies are stateless strategy objects: the cache hands them the set's
entries and asks which victim to evict.  Entries expose ``stamp`` (LRU
timestamp) and ``rrpv`` (re-reference prediction value for SRRIP).
"""

from __future__ import annotations

import random
from operator import attrgetter
from typing import Iterable, Protocol, TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .sa_cache import CacheEntry

#: C-level key function — noticeably faster than a lambda in victim scans,
#: which run once per eviction across every cache and directory set.
BY_STAMP = attrgetter("stamp")


class ReplacementPolicy(Protocol):
    """Strategy interface: pick a victim and maintain per-entry metadata."""

    def on_hit(self, entry: "CacheEntry", tick: int) -> None: ...

    def on_fill(self, entry: "CacheEntry", tick: int) -> None: ...

    def victim(self, entries: Iterable["CacheEntry"]) -> "CacheEntry": ...


class LruPolicy:
    """Least-recently-used via monotonically increasing stamps."""

    def on_hit(self, entry: "CacheEntry", tick: int) -> None:
        entry.stamp = tick

    def on_fill(self, entry: "CacheEntry", tick: int) -> None:
        entry.stamp = tick

    def victim(self, entries: Iterable["CacheEntry"]) -> "CacheEntry":
        return min(entries, key=BY_STAMP)


class RandomPolicy:
    """Uniform random victim (seeded for reproducibility)."""

    def __init__(self, seed: int = 0) -> None:
        self._rng = random.Random(seed)

    def on_hit(self, entry: "CacheEntry", tick: int) -> None:
        entry.stamp = tick

    def on_fill(self, entry: "CacheEntry", tick: int) -> None:
        entry.stamp = tick

    def victim(self, entries: Iterable["CacheEntry"]) -> "CacheEntry":
        pool = list(entries)
        return pool[self._rng.randrange(len(pool))]


class SrripPolicy:
    """Static re-reference interval prediction (2-bit RRPV)."""

    MAX_RRPV = 3

    def on_hit(self, entry: "CacheEntry", tick: int) -> None:
        entry.rrpv = 0
        entry.stamp = tick

    def on_fill(self, entry: "CacheEntry", tick: int) -> None:
        entry.rrpv = self.MAX_RRPV - 1
        entry.stamp = tick

    def victim(self, entries: Iterable["CacheEntry"]) -> "CacheEntry":
        pool = list(entries)
        while True:
            for entry in pool:
                if entry.rrpv >= self.MAX_RRPV:
                    return entry
            for entry in pool:
                entry.rrpv += 1


_POLICIES = {
    "lru": LruPolicy,
    "random": RandomPolicy,
    "srrip": SrripPolicy,
}


def make_policy(name: str, seed: int = 0) -> ReplacementPolicy:
    """Instantiate a replacement policy by name (``lru``/``random``/``srrip``).

    ``seed`` feeds stochastic policies (currently ``random``) so victim
    choices are a function of the experiment config, not process entropy;
    deterministic policies ignore it.
    """
    try:
        factory = _POLICIES[name]
    except KeyError:
        raise ValueError(
            f"unknown replacement policy {name!r}; "
            f"choose from {sorted(_POLICIES)}"
        ) from None
    if factory is RandomPolicy:
        return factory(seed)
    return factory()
