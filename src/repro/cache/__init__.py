"""Cache substrates: replacement policies, set-associative caches, directories."""

from .replacement import LruPolicy, RandomPolicy, SrripPolicy, make_policy
from .sa_cache import CacheEntry, SetAssocCache
from .directory import DirectoryEntry, SlicedDirectory

__all__ = [
    "CacheEntry",
    "SetAssocCache",
    "DirectoryEntry",
    "SlicedDirectory",
    "LruPolicy",
    "RandomPolicy",
    "SrripPolicy",
    "make_policy",
]
