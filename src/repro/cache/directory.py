"""Sliced set-associative coherence directory.

Models both the device coherence directory on the CXL memory node
(2048 sets x 16 ways x 16 slices in Table 2) and, with a single slice,
each host's local coherence directory.  Entries track the MESI-style state
plus the sharer set; capacity evictions surface the victim so the owner
can back-invalidate the corresponding cache lines (a real constraint the
paper leans on: PIPM-migrated lines stop consuming device directory
entries).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set


class DirectoryEntry:
    """Directory state for one tracked cache line."""

    __slots__ = ("line", "state", "sharers", "owner")

    def __init__(self, line: int, state: object, owner: int = -1):
        self.line = line
        self.state = state
        self.sharers: Set[int] = set()
        self.owner = owner

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"DirectoryEntry(line={self.line:#x}, state={self.state}, "
            f"owner={self.owner}, sharers={sorted(self.sharers)})"
        )


class SlicedDirectory:
    """A directory sharded into address-hashed slices of set-assoc arrays."""

    def __init__(self, sets_per_slice: int, ways: int, slices: int = 1,
                 name: str = "directory") -> None:
        if sets_per_slice < 1 or ways < 1 or slices < 1:
            raise ValueError(f"{name}: geometry must be positive")
        if sets_per_slice & (sets_per_slice - 1):
            raise ValueError(f"{name}: sets_per_slice must be a power of two")
        self.sets_per_slice = sets_per_slice
        self.ways = ways
        self.slices = slices
        self.name = name
        self._mask = sets_per_slice - 1
        # Each set dict doubles as the recency order (move-to-end on every
        # lookup hit and allocate), so the LRU victim is always the first
        # key — O(1) instead of a min-by-stamp scan over the ways.  The
        # move-to-end order is exactly the order increasing stamps would
        # recover, so victim selection is unchanged.
        self._arrays: List[List[Dict[int, DirectoryEntry]]] = [
            [dict() for _ in range(sets_per_slice)] for _ in range(slices)
        ]
        self.lookups = 0
        self.hits = 0
        self.capacity_evictions = 0

    def _set_for(self, line: int) -> Dict[int, DirectoryEntry]:
        slice_idx = (line // self.sets_per_slice) % self.slices
        return self._arrays[slice_idx][line & self._mask]

    # -- operations -----------------------------------------------------
    def lookup(self, line: int) -> Optional[DirectoryEntry]:
        self.lookups += 1
        dir_set = self._set_for(line)
        entry = dir_set.get(line)
        if entry is not None:
            self.hits += 1
            del dir_set[line]
            dir_set[line] = entry
        return entry

    def peek(self, line: int) -> Optional[DirectoryEntry]:
        return self._set_for(line).get(line)

    def allocate(self, line: int, state: object, owner: int = -1
                 ) -> "tuple[DirectoryEntry, Optional[DirectoryEntry]]":
        """Allocate (or update) an entry; returns ``(entry, victim)``.

        ``victim`` is a capacity-evicted entry the caller must
        back-invalidate from the owning caches, or ``None``.
        """
        dir_set = self._set_for(line)
        entry = dir_set.get(line)
        if entry is not None:
            entry.state = state
            if owner >= 0:
                entry.owner = owner
            del dir_set[line]
            dir_set[line] = entry
            return entry, None
        victim = None
        if len(dir_set) >= self.ways:
            victim = dir_set.pop(next(iter(dir_set)))
            self.capacity_evictions += 1
        entry = DirectoryEntry(line, state, owner)
        dir_set[line] = entry
        return entry, victim

    def remove(self, line: int) -> Optional[DirectoryEntry]:
        return self._set_for(line).pop(line, None)

    # -- introspection ----------------------------------------------------
    @property
    def occupancy(self) -> int:
        return sum(
            len(dir_set) for array in self._arrays for dir_set in array
        )

    @property
    def capacity(self) -> int:
        return self.sets_per_slice * self.ways * self.slices

    def entries(self):
        for array in self._arrays:
            for dir_set in array:
                yield from dir_set.values()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"SlicedDirectory({self.name}, {self.slices}x{self.sets_per_slice}"
            f"x{self.ways}, occupancy={self.occupancy})"
        )
