"""Lightweight statistics registry used by every simulator component.

Components register named counters and accumulators on a shared
:class:`StatRegistry`; the harness snapshots the registry into a plain
dictionary at the end of a run.  Counters are plain attributes on purpose —
the simulator hot loop bumps them millions of times, so there is no
indirection beyond a dict lookup.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, Iterable, Mapping, Set, Union


class Counter:
    """A preresolved accumulator cell for one registry key.

    The simulator hot loop (DRAM channels, CXL links) bumps the same few
    statistics millions of times per run; routing every bump through
    ``ScopedStats.add`` costs a string concatenation plus two method
    calls and a dict update per event.  A Counter is handed out once by
    :meth:`StatRegistry.counter` and then bumped as ``cell.value += x``
    — the registry reads the live cell at snapshot time, so there is no
    flush step and mid-run reads stay exact.
    """

    __slots__ = ("value",)

    def __init__(self, value: float = 0.0) -> None:
        self.value = value

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Counter({self.value})"


class StatRegistry:
    """A hierarchical bag of numeric statistics.

    Keys are dotted paths (``"host0.llc.misses"``).  Values are ints or
    floats.  ``add`` accumulates (counter semantics); ``put`` overwrites
    (gauge semantics).  The registry remembers which keys were last
    written as gauges so :meth:`merge` can aggregate per-worker snapshots
    without summing values that are not additive (hit rates, occupancies,
    configuration echoes like ``freq_ghz``).
    """

    def __init__(self) -> None:
        self._values: Dict[str, Counter] = {}
        self._gauges: Set[str] = set()

    def _cell(self, key: str) -> Counter:
        cell = self._values.get(key)
        if cell is None:
            cell = self._values[key] = Counter()
        return cell

    def add(self, key: str, amount: float = 1.0) -> None:
        self._cell(key).value += amount
        self._gauges.discard(key)

    def put(self, key: str, value: float) -> None:
        self._cell(key).value = value
        self._gauges.add(key)

    def counter(self, key: str) -> Counter:
        """The live accumulator cell for ``key`` (created at 0 if new).

        Bumping the cell directly skips the gauge-demotion bookkeeping
        ``add`` performs, so only use it for keys that are never ``put``.
        """
        return self._cell(key)

    def get(self, key: str, default: float = 0.0) -> float:
        cell = self._values.get(key)
        return cell.value if cell is not None else default

    def scoped(self, prefix: str) -> "ScopedStats":
        return ScopedStats(self, prefix)

    def snapshot(self) -> Dict[str, float]:
        """A plain-dict copy of every recorded statistic."""
        return {key: cell.value for key, cell in self._values.items()}

    def gauge_keys(self) -> Set[str]:
        """The keys last written with ``put`` (non-additive on merge)."""
        return set(self._gauges)

    def is_gauge(self, key: str) -> bool:
        return key in self._gauges

    def merge(
        self,
        other: Union["StatRegistry", Mapping[str, float]],
        gauges: Iterable[str] = (),
    ) -> None:
        """Fold another registry (or snapshot) into this one.

        Counter keys accumulate; gauge keys overwrite — merging N worker
        snapshots must not multiply a hit rate or a ``put`` configuration
        echo by N.  When ``other`` is a :class:`StatRegistry` its own
        gauge set is honoured automatically; for a plain mapping, pass the
        gauge keys explicitly (e.g. the ``gauge_keys()`` of the registry
        that produced the snapshot).
        """
        if isinstance(other, StatRegistry):
            gauge_set = other.gauge_keys() | set(gauges)
            items = other.snapshot().items()
        else:
            gauge_set = set(gauges)
            items = other.items()
        for key, value in items:
            if key in gauge_set:
                self._cell(key).value = value
                self._gauges.add(key)
            else:
                self._cell(key).value += value

    def keys(self) -> Iterable[str]:
        return self._values.keys()

    def clear(self) -> None:
        self._values.clear()
        self._gauges.clear()

    def clear_prefix(self, prefix: str) -> int:
        """Drop every statistic under ``prefix``; returns how many."""
        doomed = [key for key in self._values if key.startswith(prefix)]
        for key in doomed:
            del self._values[key]
            self._gauges.discard(key)
        return len(doomed)

    def __contains__(self, key: str) -> bool:
        return key in self._values

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"StatRegistry({len(self._values)} keys)"


class ScopedStats:
    """A view of a :class:`StatRegistry` under a fixed dotted prefix."""

    def __init__(self, registry: StatRegistry, prefix: str) -> None:
        self._registry = registry
        self._prefix = prefix.rstrip(".") + "."

    def add(self, key: str, amount: float = 1.0) -> None:
        self._registry.add(self._prefix + key, amount)

    def put(self, key: str, value: float) -> None:
        self._registry.put(self._prefix + key, value)

    def counter(self, key: str) -> Counter:
        """Preresolved accumulator cell for ``prefix + key`` (hot paths)."""
        return self._registry.counter(self._prefix + key)

    def get(self, key: str, default: float = 0.0) -> float:
        return self._registry.get(self._prefix + key, default)

    def scoped(self, prefix: str) -> "ScopedStats":
        return ScopedStats(self._registry, self._prefix + prefix)

    def clear(self) -> int:
        """Drop every statistic recorded under this scope's prefix."""
        return self._registry.clear_prefix(self._prefix)


@dataclass
class Histogram:
    """Fixed-bucket histogram for latency/occupancy distributions."""

    bucket_width: float
    buckets: Dict[int, int] = field(default_factory=dict)
    count: int = 0
    total: float = 0.0
    maximum: float = 0.0
    minimum: float = math.inf

    def record(self, value: float) -> None:
        if value < 0:
            raise ValueError(f"histogram values must be non-negative, got {value}")
        bucket = int(value // self.bucket_width)
        self.buckets[bucket] = self.buckets.get(bucket, 0) + 1
        self.count += 1
        self.total += value
        if value > self.maximum:
            self.maximum = value
        if value < self.minimum:
            self.minimum = value

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def percentile(self, fraction: float) -> float:
        """Approximate percentile (bucket upper edge).

        ``percentile(0.0)`` is the recorded minimum (not the first
        bucket's upper edge) and ``percentile(1.0)`` never exceeds the
        recorded maximum, so the approximation brackets the true
        distribution at both ends.
        """
        if not 0.0 <= fraction <= 1.0:
            raise ValueError(f"fraction must be in [0, 1], got {fraction}")
        if not self.count:
            return 0.0
        if fraction == 0.0:
            return self.minimum
        target = fraction * self.count
        seen = 0
        for bucket in sorted(self.buckets):
            seen += self.buckets[bucket]
            if seen >= target:
                return min((bucket + 1) * self.bucket_width, self.maximum)
        return self.maximum


def ratio(numerator: float, denominator: float) -> float:
    """``numerator / denominator`` with a 0 denominator mapping to 0."""
    return numerator / denominator if denominator else 0.0
