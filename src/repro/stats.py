"""Lightweight statistics registry used by every simulator component.

Components register named counters and accumulators on a shared
:class:`StatRegistry`; the harness snapshots the registry into a plain
dictionary at the end of a run.  Counters are plain attributes on purpose —
the simulator hot loop bumps them millions of times, so there is no
indirection beyond a dict lookup.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field
from typing import Dict, Iterable, Mapping


class StatRegistry:
    """A hierarchical bag of numeric statistics.

    Keys are dotted paths (``"host0.llc.misses"``).  Values are ints or
    floats.  ``add`` accumulates; ``put`` overwrites.
    """

    def __init__(self) -> None:
        self._values: Dict[str, float] = defaultdict(float)

    def add(self, key: str, amount: float = 1.0) -> None:
        self._values[key] += amount

    def put(self, key: str, value: float) -> None:
        self._values[key] = value

    def get(self, key: str, default: float = 0.0) -> float:
        return self._values.get(key, default)

    def scoped(self, prefix: str) -> "ScopedStats":
        return ScopedStats(self, prefix)

    def snapshot(self) -> Dict[str, float]:
        """A plain-dict copy of every recorded statistic."""
        return dict(self._values)

    def merge(self, other: Mapping[str, float]) -> None:
        for key, value in other.items():
            self._values[key] += value

    def keys(self) -> Iterable[str]:
        return self._values.keys()

    def clear(self) -> None:
        self._values.clear()

    def clear_prefix(self, prefix: str) -> int:
        """Drop every statistic under ``prefix``; returns how many."""
        doomed = [key for key in self._values if key.startswith(prefix)]
        for key in doomed:
            del self._values[key]
        return len(doomed)

    def __contains__(self, key: str) -> bool:
        return key in self._values

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"StatRegistry({len(self._values)} keys)"


class ScopedStats:
    """A view of a :class:`StatRegistry` under a fixed dotted prefix."""

    def __init__(self, registry: StatRegistry, prefix: str) -> None:
        self._registry = registry
        self._prefix = prefix.rstrip(".") + "."

    def add(self, key: str, amount: float = 1.0) -> None:
        self._registry.add(self._prefix + key, amount)

    def put(self, key: str, value: float) -> None:
        self._registry.put(self._prefix + key, value)

    def get(self, key: str, default: float = 0.0) -> float:
        return self._registry.get(self._prefix + key, default)

    def scoped(self, prefix: str) -> "ScopedStats":
        return ScopedStats(self._registry, self._prefix + prefix)

    def clear(self) -> int:
        """Drop every statistic recorded under this scope's prefix."""
        return self._registry.clear_prefix(self._prefix)


@dataclass
class Histogram:
    """Fixed-bucket histogram for latency/occupancy distributions."""

    bucket_width: float
    buckets: Dict[int, int] = field(default_factory=dict)
    count: int = 0
    total: float = 0.0
    maximum: float = 0.0

    def record(self, value: float) -> None:
        if value < 0:
            raise ValueError(f"histogram values must be non-negative, got {value}")
        bucket = int(value // self.bucket_width)
        self.buckets[bucket] = self.buckets.get(bucket, 0) + 1
        self.count += 1
        self.total += value
        if value > self.maximum:
            self.maximum = value

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def percentile(self, fraction: float) -> float:
        """Approximate percentile (bucket upper edge)."""
        if not 0.0 <= fraction <= 1.0:
            raise ValueError(f"fraction must be in [0, 1], got {fraction}")
        if not self.count:
            return 0.0
        target = fraction * self.count
        seen = 0
        for bucket in sorted(self.buckets):
            seen += self.buckets[bucket]
            if seen >= target:
                return (bucket + 1) * self.bucket_width
        return self.maximum


def ratio(numerator: float, denominator: float) -> float:
    """``numerator / denominator`` with a 0 denominator mapping to 0."""
    return numerator / denominator if denominator else 0.0
