"""System configuration (Table 2 of the paper).

Two factory presets are provided:

* :meth:`SystemConfig.paper` — the paper's scaled-down system verbatim:
  4 hosts x 4 OoO cores @ 4 GHz, 32 KB L1, 8 MB LLC per host, DDR5-4800,
  50 ns / 5 GB/s CXL link, 10 ms kernel migration interval, 20 us / 5 us
  per-page kernel costs, PIPM threshold 8.

* :meth:`SystemConfig.scaled` — the same relative configuration with
  migration intervals and kernel costs shrunk by ``time_scale`` so that a
  few-hundred-thousand-access synthetic trace spans many migration
  intervals.  Cache and footprint sizes shrink by ``size_scale`` so the
  cache hierarchy's *reach relative to the footprint* is preserved.

Every latency/bandwidth knob the evaluation sweeps (Figs. 14-17) is a plain
field that benches override on a copy (see :meth:`SystemConfig.replace`).
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field
from typing import Any, Dict, Optional, Tuple

from . import units
from .units import GB, KB, MB, MS, NS, US


@dataclass(frozen=True)
class CacheConfig:
    """One level of set-associative cache."""

    size_bytes: int
    ways: int
    latency_ns: float  # round-trip hit latency
    line_bytes: int = units.CACHE_LINE

    @property
    def sets(self) -> int:
        return self.size_bytes // (self.ways * self.line_bytes)

    def validate(self) -> None:
        if self.size_bytes % (self.ways * self.line_bytes):
            raise ValueError(
                f"cache size {self.size_bytes} not divisible by "
                f"{self.ways} ways x {self.line_bytes}B lines"
            )
        if self.sets < 1:
            raise ValueError("cache must have at least one set")


@dataclass(frozen=True)
class DramConfig:
    """One DRAM pool (a host's local DRAM or the CXL node's DRAM)."""

    capacity_bytes: int
    channels: int
    bandwidth_gbs_per_channel: float  # DDR5-4800 ~= 38.4 GB/s
    trcd_ns: float = 15.0
    tcl_ns: float = 20.0
    trp_ns: float = 15.0
    trc_ns: float = 48.0
    controller_ns: float = 30.0  # queueing/controller fixed overhead
    banks_per_channel: int = 32
    row_bytes: int = 8 * KB

    @property
    def row_hit_ns(self) -> float:
        return self.tcl_ns + self.controller_ns

    @property
    def row_miss_ns(self) -> float:
        return self.trp_ns + self.trcd_ns + self.tcl_ns + self.controller_ns


@dataclass(frozen=True)
class CxlLinkConfig:
    """The CXL link between one host and the memory node."""

    latency_ns: float = 50.0  # per direction
    bandwidth_gbs: float = 5.0  # per direction (effective, x16 scaled)


@dataclass(frozen=True)
class FabricConfig:
    """The CXL fabric between the hosts and the memory node.

    ``flat`` is the paper's implicit topology — every host owns a
    point-to-point :class:`CxlLinkConfig` link to the memory node and no
    switch sits in between; it is byte-identical to the pre-fabric model.
    ``single-switch`` routes every host's edge link through one switch
    whose memory-node port is a shared per-direction bandwidth queue, so
    hosts contend for the device the way a real pooled rack does.
    ``two-tier`` groups hosts under leaf switches whose shared uplinks
    feed a spine switch in front of the memory node (the CXL-ClusterSim /
    DRackSim rack shape): two switch hops, two shared queues.
    """

    topology: str = "flat"  # flat | single-switch | two-tier
    #: One-way traversal latency of a switch (per hop, per direction).
    switch_latency_ns: float = 25.0
    #: Bandwidth of the switch port facing the memory node — shared by
    #: every host behind that switch (per direction).
    switch_port_bandwidth_gbs: float = 20.0
    #: Wire latency of a leaf->spine uplink (two-tier only).
    uplink_latency_ns: float = 10.0
    #: Bandwidth of one leaf's shared uplink (per direction).
    uplink_bandwidth_gbs: float = 15.0
    #: Hosts grouped under each leaf switch (two-tier only).
    hosts_per_leaf: int = 8

    TOPOLOGIES = ("flat", "single-switch", "two-tier")

    #: Named starting points for :meth:`parse` (one per topology).
    PRESETS = {
        "flat": {},
        "single-switch": {"topology": "single-switch"},
        "two-tier": {"topology": "two-tier"},
    }

    @property
    def is_flat(self) -> bool:
        return self.topology == "flat"

    def num_leaves(self, num_hosts: int) -> int:
        """Leaf-switch count for ``num_hosts`` (two-tier only, else 0)."""
        if self.topology != "two-tier":
            return 0
        return (num_hosts + self.hosts_per_leaf - 1) // self.hosts_per_leaf

    def num_switches(self, num_hosts: int) -> int:
        """Switches a system of ``num_hosts`` instantiates.

        ``single-switch`` has switch 0; ``two-tier`` numbers the leaves
        ``0..L-1`` and the spine ``L``.
        """
        if self.topology == "flat":
            return 0
        if self.topology == "single-switch":
            return 1
        return self.num_leaves(num_hosts) + 1

    def validate(self) -> None:
        if self.topology not in self.TOPOLOGIES:
            raise ValueError(
                f"unknown fabric topology {self.topology!r}; choose from "
                f"{list(self.TOPOLOGIES)}"
            )
        if self.switch_latency_ns < 0 or self.uplink_latency_ns < 0:
            raise ValueError("switch/uplink latencies must be non-negative")
        if self.switch_port_bandwidth_gbs <= 0:
            raise ValueError("switch_port_bandwidth_gbs must be positive")
        if self.uplink_bandwidth_gbs <= 0:
            raise ValueError("uplink_bandwidth_gbs must be positive")
        if self.hosts_per_leaf < 1:
            raise ValueError("hosts_per_leaf must be >= 1")

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "FabricConfig":
        known = {f.name for f in dataclasses.fields(cls)}
        config = cls(**{k: v for k, v in data.items() if k in known})
        config.validate()
        return config

    @classmethod
    def parse(cls, spec: str) -> "FabricConfig":
        """Build a config from a CLI spec: ``preset[:key=val,...]``.

        ``spec`` is a topology name (``flat``, ``single-switch``,
        ``two-tier``) optionally followed by overrides; dashes in key
        names are accepted (``hosts-per-leaf`` == ``hosts_per_leaf``).
        """
        spec = spec.strip()
        preset, _, rest = spec.partition(":")
        if preset not in cls.PRESETS:
            raise ValueError(
                f"unknown fabric topology {preset!r}; choose from "
                f"{sorted(cls.PRESETS)}"
            )
        values: Dict[str, Any] = dict(cls.PRESETS[preset])
        fields = {f.name: f for f in dataclasses.fields(cls)}
        for token in filter(None, (t.strip() for t in rest.split(","))):
            key, sep, raw = token.partition("=")
            key = key.strip().replace("-", "_")
            if not sep or key not in fields or key == "topology":
                raise ValueError(f"bad fabric override {token!r}")
            if isinstance(fields[key].default, int):
                values[key] = int(float(raw))
            else:
                values[key] = float(raw)
        config = cls(**values)
        config.validate()
        return config

    def describe(self) -> str:
        if self.topology == "flat":
            return "flat (point-to-point host<->device links)"
        if self.topology == "single-switch":
            return (
                f"single-switch, {self.switch_latency_ns:g}ns/hop, "
                f"{self.switch_port_bandwidth_gbs:g}GB/s shared device port"
            )
        return (
            f"two-tier, {self.hosts_per_leaf} hosts/leaf, "
            f"{self.switch_latency_ns:g}ns/hop, uplinks "
            f"{self.uplink_bandwidth_gbs:g}GB/s, device port "
            f"{self.switch_port_bandwidth_gbs:g}GB/s"
        )


@dataclass(frozen=True)
class DirectoryConfig:
    """The device coherence directory on the CXL memory node."""

    sets: int = 2048
    ways: int = 16
    slices: int = 16
    latency_ns: float = 16.0  # 32-cycle RT at 2 GHz

    @property
    def entries(self) -> int:
        return self.sets * self.ways * self.slices


@dataclass(frozen=True)
class PipmConfig:
    """PIPM architectural parameters (Section 4, Table 2)."""

    migration_threshold: int = 8
    global_counter_bits: int = 6
    local_counter_bits: int = 4
    host_id_bits: int = 5
    local_pfn_bits: int = 28
    global_remap_cache_bytes: int = 16 * KB
    global_remap_cache_ways: int = 8
    global_remap_cache_latency_ns: float = 2.0  # 4-cycle RT at 2 GHz
    local_remap_cache_bytes: int = 1 * MB
    local_remap_cache_ways: int = 8
    local_remap_cache_latency_ns: float = 2.0  # 8-cycle RT at 4 GHz
    global_entry_bytes: int = 2
    local_entry_bytes: int = 4
    radix_root_bytes: int = 32 * MB

    @property
    def global_counter_max(self) -> int:
        return (1 << self.global_counter_bits) - 1

    @property
    def local_counter_max(self) -> int:
        return (1 << self.local_counter_bits) - 1


@dataclass(frozen=True)
class KernelMigrationConfig:
    """OS page-migration cost model (Section 5.1.4)."""

    interval_ns: float = 10 * MS
    initiator_cost_ns: float = 20 * US  # per 4KB page on the initiating core
    other_core_cost_ns: float = 5 * US  # per page on every other core
    tlb_shootdown_batch: int = 32  # batched shootdowns (Huang patches)
    tlb_shootdown_ns: float = 4 * US  # per batch, per host
    max_pages_per_interval: int = 512
    #: Cap on each host's kernel-migrated resident set as a fraction of the
    #: workload footprint.  At paper scale the kernel's migration *rate*
    #: bounds the resident set to a few percent (Fig. 13); scaled runs are
    #: long relative to their tiny footprints, so the outcome is imposed as
    #: a capacity bound instead (capacity pressure demotes the coldest).
    resident_fraction_cap: float = 1.0


@dataclass(frozen=True)
class FaultConfig:
    """Fault-injection model (resilience extension; not in the paper).

    All fault sources are deterministic functions of ``seed`` and simulated
    time, so a faulted run is reproducible bit-for-bit.  A configured but
    all-zero instance (the ``none`` preset) is provably free: every
    fast-path check degenerates to a no-op and simulation output is
    byte-identical to a run with ``faults=None``.
    """

    seed: int = 42
    # -- transient CRC-style transfer errors -------------------------------
    transfer_error_rate: float = 0.0  # per link message, per attempt
    max_attempts: int = 4  # bounded retry before giving up
    retry_backoff_ns: float = 50.0  # base backoff; doubles per retry
    giveup_penalty_ns: float = 2000.0  # recovery charge on demand accesses
    # -- transactional migrations ------------------------------------------
    migration_timeout_ns: float = 1 * MS  # bulk transfer abort threshold
    # -- degraded-link window ----------------------------------------------
    degrade_start_ns: float = 0.0
    degrade_end_ns: float = 0.0  # end <= start disables the window
    degrade_latency_x: float = 1.0  # multiplies one-way latency
    degrade_bandwidth_x: float = 1.0  # divides per-direction bandwidth
    degrade_hosts: Tuple[int, ...] = ()  # empty = every host's link
    # -- degraded switch window (needs a non-flat fabric topology) ---------
    #: Switch index whose shared segments run degraded; -1 disables.  Every
    #: path traversing the switch (all hosts behind it) is slowed for the
    #: window — unlike ``degrade_hosts`` this composes with the fabric
    #: graph instead of naming edge links one by one.
    switch_down: int = -1
    switch_down_start_ns: float = 0.0
    switch_down_end_ns: float = 0.0  # end <= start disables the window
    switch_down_latency_x: float = 4.0  # multiplies per-hop latency
    switch_down_bandwidth_x: float = 4.0  # divides shared-segment bandwidth
    # -- host pause/stall windows ------------------------------------------
    stall_period_ns: float = 0.0  # 0 disables stalls
    stall_duration_ns: float = 0.0
    stall_hosts: Tuple[int, ...] = ()  # empty = every host
    # -- poisoned cache lines ----------------------------------------------
    poison_count: int = 0
    poison_period_ns: float = 0.0  # event k fires at (k+1) * period
    poison_penalty_ns: float = 500.0  # scrub/re-fetch charge on access
    # -- host crash / recovery ---------------------------------------------
    crash_host: int = -1  # -1 disables the crash clause
    crash_at_ns: float = 0.0  # 0 disables; crash epoch in simulated time
    crash_rejoin_ns: float = 0.0  # 0 = never rejoins; else rejoin epoch
    crash_detect_ns: float = 5000.0  # heartbeat-timeout charge in MTTR
    # -- migration governor (graceful degradation) -------------------------
    #: Hysteresis hold applied after instability (a degraded-link promotion
    #: skip or a crash recovery): PIPM promotions stay suspended until the
    #: hold expires, so migration storms cannot thrash a flapping fabric.
    #: 0 preserves the pre-governor behaviour exactly.
    governor_hold_ns: float = 0.0
    # -- deliberate corruption (chaos/soak testing only) -------------------
    #: Number of migration rollbacks to deliberately botch: the global
    #: remap entry is restored but the owner's local entry is not, leaving
    #: cluster state inconsistent on purpose so the invariant watchdog's
    #: detection path can be exercised end-to-end.  Never set by presets.
    rollback_sabotage_count: int = 0
    # -- invariant watchdog ------------------------------------------------
    watchdog_period_ns: float = 0.0  # 0 = post-run audit only
    watchdog_mode: str = "log"  # "log" or "fail-fast"

    #: Named starting points for ``FaultConfig.parse``.
    PRESETS = {
        "none": {},
        "flaky": {"transfer_error_rate": 1e-3},
        "degraded": {
            "transfer_error_rate": 5e-4,
            "degrade_start_ns": 0.0,
            "degrade_end_ns": 1e12,
            "degrade_latency_x": 4.0,
            "degrade_bandwidth_x": 4.0,
        },
        "storm": {
            "transfer_error_rate": 5e-3,
            "degrade_start_ns": 0.0,
            "degrade_end_ns": 1e12,
            "degrade_latency_x": 4.0,
            "degrade_bandwidth_x": 4.0,
            "stall_period_ns": 2e6,
            "stall_duration_ns": 2e5,
            "poison_count": 16,
            "poison_period_ns": 1e6,
        },
        "hostdown": {
            "crash_host": 1,
            "crash_at_ns": 2e5,
            "crash_detect_ns": 5e3,
            "governor_hold_ns": 5e4,
        },
        "switchdown": {
            "switch_down": 0,
            "switch_down_start_ns": 0.0,
            "switch_down_end_ns": 1e12,
            "switch_down_latency_x": 4.0,
            "switch_down_bandwidth_x": 4.0,
        },
        "hostdown-rejoin": {
            "crash_host": 1,
            "crash_at_ns": 2e5,
            "crash_rejoin_ns": 6e5,
            "crash_detect_ns": 5e3,
            "governor_hold_ns": 5e4,
        },
    }

    @property
    def has_degrade_window(self) -> bool:
        return self.degrade_end_ns > self.degrade_start_ns and (
            self.degrade_latency_x > 1.0 or self.degrade_bandwidth_x > 1.0
        )

    @property
    def has_stalls(self) -> bool:
        return self.stall_period_ns > 0 and self.stall_duration_ns > 0

    @property
    def has_poison(self) -> bool:
        return self.poison_count > 0 and self.poison_period_ns > 0

    @property
    def has_crash(self) -> bool:
        return self.crash_host >= 0 and self.crash_at_ns > 0

    @property
    def has_switch_down(self) -> bool:
        return (
            self.switch_down >= 0
            and self.switch_down_end_ns > self.switch_down_start_ns
            and (
                self.switch_down_latency_x > 1.0
                or self.switch_down_bandwidth_x > 1.0
            )
        )

    @property
    def idle(self) -> bool:
        """True when no fault source can ever fire (the zero plan)."""
        return (
            self.transfer_error_rate <= 0.0
            and not self.has_degrade_window
            and not self.has_stalls
            and not self.has_poison
            and not self.has_crash
            and not self.has_switch_down
        )

    def validate(self) -> None:
        if not 0.0 <= self.transfer_error_rate < 1.0:
            raise ValueError("transfer_error_rate must be in [0, 1)")
        if self.max_attempts < 1:
            raise ValueError("max_attempts must be >= 1")
        if self.degrade_latency_x < 1.0 or self.degrade_bandwidth_x < 1.0:
            raise ValueError("degrade multipliers must be >= 1")
        if self.migration_timeout_ns <= 0:
            raise ValueError("migration_timeout_ns must be positive")
        if self.watchdog_mode not in ("log", "fail-fast"):
            raise ValueError(
                f"watchdog_mode must be 'log' or 'fail-fast', "
                f"got {self.watchdog_mode!r}"
            )
        if self.rollback_sabotage_count < 0:
            raise ValueError("rollback_sabotage_count must be non-negative")
        if self.switch_down < -1:
            raise ValueError("switch_down must be -1 (off) or a switch index")
        if self.switch_down_latency_x < 1.0 or (
            self.switch_down_bandwidth_x < 1.0
        ):
            raise ValueError("switch_down multipliers must be >= 1")
        if self.switch_down_start_ns < 0 or self.switch_down_end_ns < 0:
            raise ValueError("switch_down window bounds must be non-negative")
        if self.crash_host < -1:
            raise ValueError("crash_host must be -1 (off) or a host index")
        if self.crash_at_ns < 0:
            raise ValueError("crash_at_ns must be non-negative")
        if self.crash_rejoin_ns < 0:
            raise ValueError("crash_rejoin_ns must be non-negative")
        if self.has_crash and self.crash_rejoin_ns > 0 and (
            self.crash_rejoin_ns <= self.crash_at_ns
        ):
            raise ValueError("crash_rejoin_ns must be after crash_at_ns")
        for knob in ("retry_backoff_ns", "giveup_penalty_ns", "stall_period_ns",
                     "stall_duration_ns", "poison_period_ns",
                     "poison_penalty_ns", "watchdog_period_ns",
                     "crash_detect_ns", "governor_hold_ns"):
            if getattr(self, knob) < 0:
                raise ValueError(f"{knob} must be non-negative")

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "FaultConfig":
        """Rebuild a config from ``dataclasses.asdict`` output.

        JSON round-trips turn the host tuples into lists; normalise them
        back so rebuilt configs hash/compare identically to the original.
        """
        known = {f.name for f in dataclasses.fields(cls)}
        values = {k: v for k, v in data.items() if k in known}
        for key in ("degrade_hosts", "stall_hosts"):
            if key in values:
                values[key] = tuple(int(h) for h in values[key])
        config = cls(**values)
        config.validate()
        return config

    @classmethod
    def parse(cls, spec: str) -> "FaultConfig":
        """Build a config from a CLI spec: ``preset[:key=val,key=val,...]``.

        ``spec`` may also be a bare override list (applied to the ``none``
        preset).  Host lists use ``+``: ``degrade_hosts=0+2``.  Dashes in
        key names are accepted (``error-rate`` == ``error_rate``).
        """
        spec = spec.strip()
        preset, _, rest = spec.partition(":")
        if "=" in preset:  # bare overrides, no preset name
            preset, rest = "none", spec
        if preset not in cls.PRESETS:
            raise ValueError(
                f"unknown fault preset {preset!r}; choose from "
                f"{sorted(cls.PRESETS)}"
            )
        values: Dict[str, Any] = dict(cls.PRESETS[preset])
        fields = {f.name: f for f in dataclasses.fields(cls)}
        for token in filter(None, (t.strip() for t in rest.split(","))):
            key, sep, raw = token.partition("=")
            key = key.strip().replace("-", "_")
            if not sep or key not in fields:
                raise ValueError(f"bad fault override {token!r}")
            if key in ("degrade_hosts", "stall_hosts"):
                values[key] = tuple(
                    int(h) for h in raw.split("+") if h.strip()
                )
            elif key == "watchdog_mode":
                values[key] = raw.strip()
            elif fields[key].type == "int" or isinstance(
                fields[key].default, int
            ):
                values[key] = int(float(raw))
            else:
                values[key] = float(raw)
        config = cls(**values)
        config.validate()
        return config


@dataclass(frozen=True)
class ServeConfig:
    """Operational policy for the always-on experiment service.

    Unlike :class:`SystemConfig` this never feeds simulated state — it
    bounds the *service's* behaviour: how much submitted work may sit in
    memory, how poison specs are quarantined, and how large the state
    journal may grow before compaction folds it.
    """

    queue_limit: int = 64  # bounded admission queue (reject beyond)
    slots: int = 2  # supervised worker processes per batch
    tick_s: float = 0.2  # idle spool-poll / status-refresh period
    timeout_s: Optional[float] = None  # per-attempt timeout (None = off)
    retries: int = 1  # supervisor re-attempts per dispatch
    backoff_s: float = 0.25  # supervisor retry backoff base
    max_backoff_s: float = 30.0  # supervisor retry backoff cap
    breaker_threshold: int = 3  # exhausted dispatches that trip a breaker
    breaker_cooldown_s: float = 5.0  # first open->half-open delay
    breaker_cooldown_max_s: float = 300.0  # escalation cap on re-opens
    compact_every: int = 512  # journal lines that trigger compaction

    def validate(self) -> None:
        if self.queue_limit < 1:
            raise ValueError("queue_limit must be >= 1")
        if self.slots < 1:
            raise ValueError("slots must be >= 1")
        if self.tick_s <= 0:
            raise ValueError("tick_s must be positive")
        if self.timeout_s is not None and self.timeout_s <= 0:
            raise ValueError("timeout_s must be positive (or None)")
        if self.retries < 0:
            raise ValueError("retries must be >= 0")
        if self.backoff_s < 0:
            raise ValueError("backoff_s must be >= 0")
        if self.max_backoff_s <= 0:
            raise ValueError("max_backoff_s must be positive")
        if self.breaker_threshold < 1:
            raise ValueError("breaker_threshold must be >= 1")
        if self.breaker_cooldown_s <= 0:
            raise ValueError("breaker_cooldown_s must be positive")
        if self.breaker_cooldown_max_s < self.breaker_cooldown_s:
            raise ValueError(
                "breaker_cooldown_max_s must be >= breaker_cooldown_s"
            )
        if self.compact_every < 8:
            raise ValueError("compact_every must be >= 8")

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "ServeConfig":
        known = {f.name for f in dataclasses.fields(cls)}
        config = cls(**{k: v for k, v in data.items() if k in known})
        config.validate()
        return config

    def to_dict(self) -> Dict[str, Any]:
        return dataclasses.asdict(self)


@dataclass(frozen=True)
class CoreConfig:
    """Analytic OoO core model parameters."""

    freq_ghz: float = 4.0
    width: int = 6
    rob_entries: int = 224
    load_queue: int = 72
    store_queue: int = 56
    base_cpi: float = 0.4  # non-memory CPI on a 6-wide machine


@dataclass(frozen=True)
class SystemConfig:
    """Complete multi-host CXL-DSM system configuration."""

    num_hosts: int = 4
    cores_per_host: int = 4
    core: CoreConfig = field(default_factory=CoreConfig)
    l1: CacheConfig = field(
        default_factory=lambda: CacheConfig(32 * KB, 8, latency_ns=1.0)
    )
    llc: CacheConfig = field(
        default_factory=lambda: CacheConfig(8 * MB, 16, latency_ns=6.0)
    )
    local_dram: DramConfig = field(
        default_factory=lambda: DramConfig(32 * GB, 1, 38.4)
    )
    cxl_dram: DramConfig = field(
        default_factory=lambda: DramConfig(128 * GB, 2, 38.4)
    )
    cxl_link: CxlLinkConfig = field(default_factory=CxlLinkConfig)
    #: Fabric between the hosts' edge links and the memory node; the
    #: default ``flat`` preset reproduces the point-to-point model exactly.
    fabric: FabricConfig = field(default_factory=FabricConfig)
    directory: DirectoryConfig = field(default_factory=DirectoryConfig)
    pipm: PipmConfig = field(default_factory=PipmConfig)
    kernel: KernelMigrationConfig = field(default_factory=KernelMigrationConfig)
    local_dir_latency_ns: float = 2.5  # per-processor coherence directory
    # Fraction of each host's local DRAM usable for migrated pages.
    migration_capacity_fraction: float = 0.5
    #: Optional fault-injection model; ``None`` = perfect fabric.
    faults: Optional[FaultConfig] = None

    # ------------------------------------------------------------------
    def validate(self) -> None:
        if self.num_hosts < 1:
            raise ValueError("need at least one host")
        if self.num_hosts > (1 << self.pipm.host_id_bits):
            raise ValueError(
                f"{self.num_hosts} hosts do not fit in "
                f"{self.pipm.host_id_bits}-bit host IDs"
            )
        self.l1.validate()
        self.llc.validate()
        self.fabric.validate()
        if self.pipm.migration_threshold > self.pipm.global_counter_max:
            raise ValueError("migration threshold exceeds global counter range")
        if self.pipm.migration_threshold > self.pipm.local_counter_max:
            raise ValueError("migration threshold exceeds local counter range")
        if not 0.0 < self.migration_capacity_fraction <= 1.0:
            raise ValueError("migration_capacity_fraction must be in (0, 1]")
        if self.faults is not None:
            self.faults.validate()
            for host in (*self.faults.degrade_hosts, *self.faults.stall_hosts):
                if not 0 <= host < self.num_hosts:
                    raise ValueError(
                        f"fault plan names host {host}, system has "
                        f"{self.num_hosts}"
                    )
            if self.faults.crash_host >= 0:
                if not 0 <= self.faults.crash_host < self.num_hosts:
                    raise ValueError(
                        f"crash plan names host {self.faults.crash_host}, "
                        f"system has {self.num_hosts}"
                    )
                if self.num_hosts < 2:
                    raise ValueError(
                        "a host crash needs at least one surviving host"
                    )
            if self.faults.switch_down >= 0:
                switches = self.fabric.num_switches(self.num_hosts)
                if switches == 0:
                    raise ValueError(
                        "switch_down needs a non-flat fabric topology "
                        "(the flat preset has no switches)"
                    )
                if self.faults.switch_down >= switches:
                    raise ValueError(
                        f"switch_down names switch {self.faults.switch_down},"
                        f" the {self.fabric.topology} fabric has {switches}"
                    )

    def replace(self, **overrides: Any) -> "SystemConfig":
        """A copy with top-level fields replaced (``dataclasses.replace``)."""
        return dataclasses.replace(self, **overrides)

    def replace_nested(self, path: str, **overrides: Any) -> "SystemConfig":
        """A copy with fields of a nested config replaced.

        ``cfg.replace_nested("cxl_link", latency_ns=100.0)``
        """
        current = getattr(self, path)
        return dataclasses.replace(
            self, **{path: dataclasses.replace(current, **overrides)}
        )

    # ------------------------------------------------------------------
    #: Nested dataclass type for each structured field, used by
    #: :meth:`from_dict` to rebuild a config from JSON.
    _NESTED_TYPES = {
        "core": CoreConfig,
        "l1": CacheConfig,
        "llc": CacheConfig,
        "local_dram": DramConfig,
        "cxl_dram": DramConfig,
        "cxl_link": CxlLinkConfig,
        "fabric": FabricConfig,
        "directory": DirectoryConfig,
        "pipm": PipmConfig,
        "kernel": KernelMigrationConfig,
    }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "SystemConfig":
        """Rebuild a config from ``dataclasses.asdict`` output.

        The inverse of the serialisation used by experiment specs and soak
        reproducer artifacts: ``SystemConfig.from_dict(asdict(cfg)) == cfg``.
        """
        known = {f.name for f in dataclasses.fields(cls)}
        values: Dict[str, Any] = {}
        for key, raw in data.items():
            if key not in known:
                continue
            if key in cls._NESTED_TYPES and isinstance(raw, dict):
                values[key] = cls._NESTED_TYPES[key](**raw)
            elif key == "faults":
                values[key] = (
                    None if raw is None else FaultConfig.from_dict(raw)
                )
            else:
                values[key] = raw
        config = cls(**values)
        config.validate()
        return config

    @classmethod
    def paper(cls) -> "SystemConfig":
        """The paper's Table 2 configuration, verbatim."""
        cfg = cls()
        cfg.validate()
        return cfg

    @classmethod
    def scaled(
        cls,
        size_scale: int = 1024,
        time_scale: int = 500,
        num_hosts: int = 4,
    ) -> "SystemConfig":
        """A tractable configuration preserving the paper's ratios.

        ``size_scale`` divides memory capacities and cache sizes so that a
        tens-of-MB synthetic footprint stresses the hierarchy the way a
        tens-of-GB footprint stresses the paper's.  ``time_scale`` divides
        kernel migration intervals and per-page costs together, so the
        overhead-to-interval ratios of Fig. 4 are preserved while a short
        trace spans many intervals.
        """
        if size_scale < 1 or time_scale < 1:
            raise ValueError("scales must be >= 1")
        base = cls()
        l1 = CacheConfig(
            max(8 * KB, base.l1.size_bytes // min(size_scale, 4)),
            base.l1.ways,
            base.l1.latency_ns,
        )
        llc = CacheConfig(
            max(64 * KB, base.llc.size_bytes // min(size_scale, 128)),
            base.llc.ways,
            base.llc.latency_ns,
        )
        # Keep the paper's sizing rule: the device directory covers the sum
        # of all hosts' LLC capacities (512K entries vs 4 x 8MB LLCs there).
        llc_lines_total = num_hosts * llc.size_bytes // units.CACHE_LINE
        slices = max(1, base.directory.slices // 4)
        dir_sets = max(64, llc_lines_total // (base.directory.ways * slices))
        directory = dataclasses.replace(
            base.directory,
            sets=1 << (dir_sets - 1).bit_length(),
            slices=slices,
        )
        # Kernel migration: interval shrinks with time_scale; per-page costs
        # shrink less (10x less) so the cost-to-interval ratio of Fig. 4 is
        # preserved; the per-interval page budget shrinks with the interval
        # (it models kernel migration *throughput*, which is what bounds the
        # migrated footprint to the few percent of Fig. 13).
        interval_scale = max(1, time_scale // 2)
        kernel = dataclasses.replace(
            base.kernel,
            interval_ns=base.kernel.interval_ns / interval_scale,
            initiator_cost_ns=base.kernel.initiator_cost_ns / time_scale * 25,
            other_core_cost_ns=base.kernel.other_core_cost_ns / time_scale * 25,
            tlb_shootdown_ns=base.kernel.tlb_shootdown_ns / time_scale * 25,
            max_pages_per_interval=max(
                8, base.kernel.max_pages_per_interval * 8 // time_scale
            ),
            resident_fraction_cap=0.06,
        )
        pipm = dataclasses.replace(
            base.pipm,
            global_remap_cache_bytes=max(
                1 * KB, base.pipm.global_remap_cache_bytes // min(size_scale, 16)
            ),
            local_remap_cache_bytes=max(
                8 * KB, base.pipm.local_remap_cache_bytes // min(size_scale, 64)
            ),
        )
        local_dram = dataclasses.replace(
            base.local_dram, capacity_bytes=base.local_dram.capacity_bytes // size_scale
        )
        cxl_dram = dataclasses.replace(
            base.cxl_dram, capacity_bytes=base.cxl_dram.capacity_bytes // size_scale
        )
        cfg = cls(
            num_hosts=num_hosts,
            l1=l1,
            llc=llc,
            directory=directory,
            kernel=kernel,
            pipm=pipm,
            local_dram=local_dram,
            cxl_dram=cxl_dram,
        )
        cfg.validate()
        return cfg

    @classmethod
    def rack(
        cls,
        num_hosts: int = 8,
        topology: str = "single-switch",
        size_scale: int = 1024,
        time_scale: int = 500,
    ) -> "SystemConfig":
        """A rack-scale configuration: ``scaled()`` plus a switched fabric.

        ``topology`` accepts anything :meth:`FabricConfig.parse` does, so
        ``rack(16, "two-tier:hosts-per-leaf=4")`` works.
        """
        cfg = cls.scaled(
            size_scale=size_scale, time_scale=time_scale, num_hosts=num_hosts
        ).replace(fabric=FabricConfig.parse(topology))
        cfg.validate()
        return cfg

    # ------------------------------------------------------------------
    def describe(self) -> Dict[str, str]:
        """Human-readable description of the configuration (Table 2 rows)."""
        rows = {
            "Architecture": (
                f"{self.num_hosts} hosts, {self.cores_per_host} cores each"
            ),
            "CPU": (
                f"{self.cores_per_host} OoO cores, {self.core.freq_ghz:g}GHz, "
                f"{self.core.width}-wide, {self.core.rob_entries}-entry ROB, "
                f"{self.core.load_queue}-entry LQ, {self.core.store_queue}-entry SQ"
            ),
            "Private L1": (
                f"{units.pretty_size(self.l1.size_bytes)}, {self.l1.ways}-way, "
                f"{self.l1.latency_ns:g}ns RT"
            ),
            "Shared LLC": (
                f"{units.pretty_size(self.llc.size_bytes)}, {self.llc.ways}-way, "
                f"{self.llc.latency_ns:g}ns RT"
            ),
            "DRAM": (
                f"{self.cxl_dram.channels}x DDR5 "
                f"{units.pretty_size(self.cxl_dram.capacity_bytes)} CXL-DSM; "
                f"{self.local_dram.channels}x DDR5 "
                f"{units.pretty_size(self.local_dram.capacity_bytes)} per host"
            ),
            "CXL link": (
                f"latency {self.cxl_link.latency_ns:g}ns, "
                f"bandwidth {self.cxl_link.bandwidth_gbs:g}GB/s per direction"
            ),
            "Fabric": self.fabric.describe(),
            "CXL Directory": (
                f"{self.directory.sets}-set, {self.directory.ways}-way per slice, "
                f"{self.directory.slices} slices, {self.directory.latency_ns:g}ns RT"
            ),
            "PIPM": (
                f"{units.pretty_size(self.pipm.global_remap_cache_bytes)} global "
                f"remap cache; "
                f"{units.pretty_size(self.pipm.local_remap_cache_bytes)} local "
                f"remap cache; threshold {self.pipm.migration_threshold}"
            ),
            "Kernel migration": (
                f"interval {units.pretty_time(self.kernel.interval_ns)}, "
                f"{units.pretty_time(self.kernel.initiator_cost_ns)}/page initiator"
            ),
        }
        if self.faults is not None:
            rows["Faults"] = (
                f"seed {self.faults.seed}, "
                f"xfer error rate {self.faults.transfer_error_rate:g}, "
                f"max attempts {self.faults.max_attempts}, "
                f"watchdog {self.faults.watchdog_mode}"
            )
        return rows


DEFAULT_CONFIG = SystemConfig.scaled()
