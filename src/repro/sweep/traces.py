"""Shared on-disk trace cache.

Trace synthesis is pure and seeded, but not free — a sweep that fans one
workload's (scheme x config) column across a process pool would otherwise
regenerate the identical trace once per worker.  The store keys traces by
a content hash of everything generation depends on (workload name, host
and core counts, the full :class:`~repro.workloads.trace.WorkloadScale`)
and publishes pickles atomically, so any number of workers can share one
generation.  The sweep runner additionally pre-warms every unique trace
before fanning out simulations, making "generated once" a guarantee
rather than a race whose loser does redundant work.
"""

from __future__ import annotations

import dataclasses
import os
import pickle
import tempfile
from pathlib import Path
from typing import Dict, Optional, Tuple, Union

from ..workloads.registry import generate
from ..workloads.trace import WorkloadScale, WorkloadTrace
from .spec import SPEC_VERSION, content_key


class TraceStore:
    """Disk-backed (plus per-process memo) cache of workload traces."""

    def __init__(self, root: Union[str, Path]) -> None:
        self.root = Path(root)
        self.traces_dir = self.root / "traces"
        self._memo: Dict[str, WorkloadTrace] = {}

    @staticmethod
    def key_for(
        workload: str,
        num_hosts: int,
        cores_per_host: int,
        scale: WorkloadScale,
    ) -> str:
        return content_key({
            "v": SPEC_VERSION,
            "workload": workload,
            "num_hosts": num_hosts,
            "cores_per_host": cores_per_host,
            "scale": dataclasses.asdict(scale),
        })

    def path_for(self, key: str) -> Path:
        return self.traces_dir / f"{key}.pkl"

    # ------------------------------------------------------------------
    def _load(self, key: str) -> Optional[WorkloadTrace]:
        try:
            with open(self.path_for(key), "rb") as handle:
                return pickle.load(handle)
        except (OSError, pickle.UnpicklingError, EOFError, AttributeError):
            return None

    def _save(self, key: str, trace: WorkloadTrace) -> None:
        path = self.path_for(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        fd, tmp_name = tempfile.mkstemp(
            dir=str(path.parent), prefix=f".{path.name}.", suffix=".tmp"
        )
        try:
            with os.fdopen(fd, "wb") as handle:
                pickle.dump(trace, handle, protocol=pickle.HIGHEST_PROTOCOL)
                handle.flush()
                os.fsync(handle.fileno())
            os.replace(tmp_name, path)
        except BaseException:
            try:
                os.unlink(tmp_name)
            except OSError:
                pass
            raise

    # ------------------------------------------------------------------
    def get_or_generate(
        self,
        workload: str,
        num_hosts: int,
        cores_per_host: int,
        scale: WorkloadScale,
    ) -> WorkloadTrace:
        trace, _hit = self.warm(workload, num_hosts, cores_per_host, scale)
        return trace

    def warm(
        self,
        workload: str,
        num_hosts: int,
        cores_per_host: int,
        scale: WorkloadScale,
    ) -> Tuple[WorkloadTrace, bool]:
        """Fetch-or-generate; the bool reports whether it was a cache hit."""
        key = self.key_for(workload, num_hosts, cores_per_host, scale)
        if key in self._memo:
            return self._memo[key], True
        trace = self._load(key)
        if trace is not None:
            self._memo[key] = trace
            return trace, True
        trace = generate(
            workload,
            num_hosts=num_hosts,
            scale=scale,
            cores_per_host=cores_per_host,
        )
        self._save(key, trace)
        self._memo[key] = trace
        return trace, False

    def clear(self) -> int:
        """Delete every cached trace; returns how many were removed."""
        self._memo.clear()
        removed = 0
        if self.traces_dir.is_dir():
            for path in self.traces_dir.glob("*.pkl"):
                try:
                    path.unlink()
                    removed += 1
                except OSError:
                    pass
        return removed

    def purge_temp(self) -> int:
        """Remove orphaned temp files left by killed/interrupted writers.

        Call with no writers in flight (see ResultStore.purge_temp).
        """
        removed = 0
        if self.traces_dir.is_dir():
            for path in self.traces_dir.glob(".*.tmp"):
                try:
                    path.unlink()
                    removed += 1
                except OSError:
                    pass
        return removed
