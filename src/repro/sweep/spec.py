"""Content-addressed experiment specs.

An :class:`ExperimentSpec` is the *complete* identity of one simulation
run: workload name, scheme name plus its constructor kwargs, workload
scale, the full (nested) :class:`~repro.config.SystemConfig` — including
any fault-injection plan — and the extra keyword arguments forwarded to
:class:`~repro.sim.system.MultiHostSystem`.  Its :meth:`key` is a SHA-256
over a canonical JSON rendering of all of that, so two runs share a cache
entry **iff** nothing that can influence the simulation differs.

This replaces the old ``workload|scheme|scale|tag`` string key, which
ignored the config entirely: an ablation that forgot a unique ``tag``
silently read results computed under a different configuration.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
from dataclasses import dataclass, field
from typing import Any, Dict, Optional

from ..config import SystemConfig
from ..policies import SCHEME_CLASSES
from ..workloads.trace import WorkloadScale

#: Bump when the spec serialization (and therefore every key) changes.
SPEC_VERSION = 1


def _jsonify(obj: Any) -> Any:
    """JSON fallback for the handful of non-JSON types specs may carry."""
    if dataclasses.is_dataclass(obj) and not isinstance(obj, type):
        return dataclasses.asdict(obj)
    if isinstance(obj, (set, frozenset)):
        return sorted(obj)
    raise TypeError(
        f"{type(obj).__name__} is not spec-serializable; experiment "
        f"parameters must be plain data (numbers, strings, tuples, dicts)"
    )


def canonical_json(payload: Any) -> str:
    """Deterministic JSON: sorted keys, no whitespace, stable floats."""
    return json.dumps(
        payload, sort_keys=True, separators=(",", ":"), default=_jsonify
    )


def content_key(payload: Any) -> str:
    """SHA-256 hex digest of ``payload``'s canonical JSON."""
    return hashlib.sha256(canonical_json(payload).encode("utf-8")).hexdigest()


@dataclass(frozen=True)
class ExperimentSpec:
    """One fully-specified simulation run."""

    workload: str
    scheme: str
    config: SystemConfig
    scale: WorkloadScale
    scheme_kwargs: Dict[str, Any] = field(default_factory=dict)
    system_kwargs: Dict[str, Any] = field(default_factory=dict)

    @classmethod
    def build(
        cls,
        workload: str,
        scheme: str,
        config: Optional[SystemConfig] = None,
        scale: Optional[WorkloadScale] = None,
        scheme_kwargs: Optional[Dict[str, Any]] = None,
        system_kwargs: Optional[Dict[str, Any]] = None,
    ) -> "ExperimentSpec":
        """Normalize defaults and validate eagerly.

        ``config=None`` and ``scale=None`` resolve to the same defaults
        :func:`repro.sim.harness.run_experiment` uses, so a spec built
        from default arguments hashes identically to one built from the
        explicit defaults.
        """
        if scheme not in SCHEME_CLASSES:
            raise ValueError(
                f"unknown scheme {scheme!r}; choose from "
                f"{sorted(SCHEME_CLASSES)}"
            )
        spec = cls(
            workload=workload,
            scheme=scheme,
            config=config if config is not None else SystemConfig.scaled(),
            scale=scale if scale is not None else WorkloadScale.default(),
            scheme_kwargs=dict(scheme_kwargs or {}),
            system_kwargs=dict(system_kwargs or {}),
        )
        # Fail on unserializable kwargs at build time, not at cache time.
        canonical_json(spec.to_dict())
        return spec

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "ExperimentSpec":
        """Rebuild a spec from :meth:`to_dict` output.

        The inverse serialisation used by soak reproducer artifacts:
        ``ExperimentSpec.from_dict(s.to_dict()).key() == s.key()`` —
        canonical JSON renders tuples and lists identically, so a spec
        that went through JSON hashes to the same cache entry.
        """
        version = data.get("v", SPEC_VERSION)
        if version != SPEC_VERSION:
            raise ValueError(
                f"spec format v{version} is not supported "
                f"(this build speaks v{SPEC_VERSION})"
            )
        return cls.build(
            workload=data["workload"],
            scheme=data["scheme"],
            config=SystemConfig.from_dict(data["config"]),
            scale=WorkloadScale(**data["scale"]),
            scheme_kwargs=data.get("scheme_kwargs") or {},
            system_kwargs=data.get("system_kwargs") or {},
        )

    # ------------------------------------------------------------------
    def to_dict(self) -> Dict[str, Any]:
        """The canonical (JSON-safe) rendering every key is derived from."""
        return {
            "v": SPEC_VERSION,
            "workload": self.workload,
            "scheme": self.scheme,
            "scheme_kwargs": self.scheme_kwargs,
            "scale": dataclasses.asdict(self.scale),
            "config": dataclasses.asdict(self.config),
            "system_kwargs": self.system_kwargs,
        }

    def key(self) -> str:
        """Content hash naming this spec's result cache entry."""
        return content_key(self.to_dict())

    def trace_dict(self) -> Dict[str, Any]:
        """The subset of the spec that determines the generated trace."""
        return {
            "v": SPEC_VERSION,
            "workload": self.workload,
            "num_hosts": self.config.num_hosts,
            "cores_per_host": self.config.cores_per_host,
            "scale": dataclasses.asdict(self.scale),
        }

    def trace_key(self) -> str:
        """Content hash naming the shared trace cache entry."""
        return content_key(self.trace_dict())

    def label(self) -> str:
        """Short human-readable name for progress lines."""
        extras = []
        if self.scheme_kwargs:
            extras.append(
                ",".join(f"{k}={v}" for k, v in sorted(self.scheme_kwargs.items()))
            )
        if self.system_kwargs:
            extras.append(
                ",".join(f"{k}={v}" for k, v in sorted(self.system_kwargs.items()))
            )
        if self.config.faults is not None:
            extras.append("faults")
        suffix = f" [{' '.join(extras)}]" if extras else ""
        return f"{self.workload}/{self.scheme}{suffix}"
