"""Crash-isolating job supervisor: process-per-job with timeout and retry.

``concurrent.futures.ProcessPoolExecutor`` is the wrong substrate for a
sweep that must survive misbehaving workers: it offers no per-job
timeout, a hung worker occupies its slot forever, and a worker killed by
the OS (OOM, SIGKILL) poisons the *entire* pool — every outstanding
future raises ``BrokenProcessPool`` and all in-flight work is lost.

The :class:`JobSupervisor` instead spawns **one process per attempt** and
supervises it directly:

* a worker that **raises** reports the traceback over a pipe and becomes
  a :class:`FailedRun` (status ``failed``) — other jobs are unaffected;
* a worker that **hangs** past the per-job timeout is terminated
  (SIGTERM, then SIGKILL after a grace period) and becomes a
  :class:`FailedRun` (status ``timeout``);
* a worker that **dies silently** (OOM-killed, segfault) is detected by
  pipe EOF + exit code and attributed to the delivering signal;
* every failure mode is retried up to ``policy.retries`` times with
  exponential backoff before the failure is final.

Outcomes are yielded as they complete, so callers can journal each one
immediately — a supervisor killed mid-sweep loses at most the jobs still
in flight, never the ones already yielded.

Concurrency is bounded by ``slots``; process startup uses the ``fork``
context where available so workers inherit the parent's (possibly
monkeypatched) module state — which is also what lets tests inject
hangs/crashes without pickling anything.
"""

from __future__ import annotations

import hashlib
import multiprocessing as mp
import signal
import traceback
from collections import deque
from dataclasses import dataclass
from multiprocessing.connection import wait as connection_wait
from time import monotonic, sleep
from typing import Any, Callable, Dict, Iterator, List, Optional, Sequence

#: How long a terminated worker gets to exit before escalating to SIGKILL.
_TERM_GRACE_S = 2.0

#: Idle poll bound: also the responsiveness of deadline enforcement when
#: no pipe traffic arrives.
_MAX_WAIT_S = 0.2


@dataclass(frozen=True)
class SupervisorPolicy:
    """Per-job failure policy: timeout, bounded retry, capped backoff.

    Exponential backoff is capped at ``max_backoff_s`` so a deep retry
    budget cannot grow the delay without bound, and ``jitter`` spreads
    concurrent retries deterministically (each delay is scaled by a
    factor in ``[1 - jitter, 1 + jitter)`` derived from
    ``(jitter_seed, token, attempt)``) so many slots failing together do
    not re-launch in lockstep.
    """

    timeout_s: Optional[float] = None  # None = never time a job out
    retries: int = 0  # re-attempts after the first failure
    backoff_s: float = 0.25  # base delay; doubles per re-attempt
    max_backoff_s: Optional[float] = 60.0  # cap on the doubled delay
    jitter: float = 0.0  # +/- fraction of the delay, deterministic
    jitter_seed: int = 0

    def validate(self) -> None:
        if self.timeout_s is not None and self.timeout_s <= 0:
            raise ValueError("timeout_s must be positive (or None)")
        if self.retries < 0:
            raise ValueError("retries must be >= 0")
        if self.backoff_s < 0:
            raise ValueError("backoff_s must be >= 0")
        if self.max_backoff_s is not None and self.max_backoff_s <= 0:
            raise ValueError("max_backoff_s must be positive (or None)")
        if not 0.0 <= self.jitter < 1.0:
            raise ValueError("jitter must be in [0, 1)")

    def backoff_for(self, attempt: int, token: str = "") -> float:
        """Delay before re-attempt number ``attempt`` (2, 3, ...).

        ``token`` (typically the job key) decorrelates the jitter of
        different jobs retrying at the same attempt number.
        """
        delay = self.backoff_s * (2 ** max(0, attempt - 2))
        if self.max_backoff_s is not None:
            delay = min(delay, self.max_backoff_s)
        if self.jitter and delay > 0.0:
            seed = f"{self.jitter_seed}|{token}|{attempt}".encode("utf-8")
            draw = int.from_bytes(
                hashlib.sha256(seed).digest()[:8], "big"
            ) / float(2 ** 64)  # [0, 1)
            delay *= 1.0 + self.jitter * (2.0 * draw - 1.0)
        return delay


@dataclass(frozen=True)
class Job:
    """One unit of work: an opaque payload plus identity for reporting."""

    key: str
    label: str
    payload: Any


@dataclass(frozen=True)
class FailedRun:
    """Structured record of a job that exhausted its attempts."""

    key: str
    label: str
    status: str  # "failed" (raised / died) or "timeout" (hung)
    attempts: int
    error: str  # traceback tail or exit-signal attribution
    elapsed_s: float  # wall clock from first launch to final failure


@dataclass
class JobOutcome:
    """What the supervisor has to say about one job."""

    key: str
    label: str
    attempts: int
    result: Any = None  # the worker's return value, when it succeeded
    failure: Optional[FailedRun] = None

    @property
    def ok(self) -> bool:
        return self.failure is None


class _Attempt:
    """Book-keeping for one in-flight child process."""

    __slots__ = ("job", "attempt", "process", "conn", "deadline",
                 "first_started")

    def __init__(self, job: Job, attempt: int, process, conn,
                 deadline: Optional[float], first_started: float) -> None:
        self.job = job
        self.attempt = attempt
        self.process = process
        self.conn = conn
        self.deadline = deadline
        self.first_started = first_started


def _child_entry(worker: Callable[[Any], Any], payload: Any, conn) -> None:
    """Run ``worker`` and report ``("ok", result)`` or ``("error", tb)``."""
    try:
        result = worker(payload)
    except BaseException:
        try:
            conn.send(("error", traceback.format_exc()))
        finally:
            conn.close()
        return
    try:
        conn.send(("ok", result))
    finally:
        conn.close()


class JobSupervisor:
    """Run jobs through ``worker`` in supervised child processes."""

    def __init__(
        self,
        worker: Callable[[Any], Any],
        slots: int = 1,
        policy: Optional[SupervisorPolicy] = None,
        mp_context=None,
    ) -> None:
        if slots < 1:
            raise ValueError("slots must be >= 1")
        self.worker = worker
        self.slots = slots
        self.policy = policy or SupervisorPolicy()
        self.policy.validate()
        if mp_context is None:
            try:
                mp_context = mp.get_context("fork")
            except ValueError:  # platforms without fork
                mp_context = mp.get_context()
        self._ctx = mp_context

    # ------------------------------------------------------------------
    def run(self, jobs: Sequence[Job]) -> Iterator[JobOutcome]:
        """Yield one :class:`JobOutcome` per job, in completion order.

        The generator owns the child processes: closing it early (or an
        exception in the consumer, e.g. KeyboardInterrupt) tears every
        in-flight child down before propagating.
        """
        pending: deque = deque((job, 1, monotonic()) for job in jobs)
        delayed: List[tuple] = []  # (ready_at, job, attempt, first_started)
        active: Dict[Any, _Attempt] = {}  # recv-conn -> attempt state
        try:
            while pending or delayed or active:
                now = monotonic()
                if delayed:
                    still: List[tuple] = []
                    for ready_at, job, attempt, first in delayed:
                        if ready_at <= now:
                            pending.append((job, attempt, first))
                        else:
                            still.append((ready_at, job, attempt, first))
                    delayed = still
                while pending and len(active) < self.slots:
                    job, attempt, first = pending.popleft()
                    self._launch(job, attempt, first, active)
                if not active:
                    # Everything runnable is waiting out a backoff.
                    sleep(max(0.0, min(d[0] for d in delayed) - monotonic()))
                    continue
                for outcome in self._reap(active, delayed):
                    yield outcome
        finally:
            self._teardown(active)

    # ------------------------------------------------------------------
    def _launch(self, job: Job, attempt: int, first_started: float,
                active: Dict[Any, _Attempt]) -> None:
        recv_conn, send_conn = self._ctx.Pipe(duplex=False)
        process = self._ctx.Process(
            target=_child_entry,
            args=(self.worker, job.payload, send_conn),
            daemon=True,
        )
        process.start()
        # Parent must drop the send end or EOF never arrives on a crash.
        send_conn.close()
        deadline = None
        if self.policy.timeout_s is not None:
            deadline = monotonic() + self.policy.timeout_s
        active[recv_conn] = _Attempt(
            job, attempt, process, recv_conn, deadline, first_started
        )

    def _reap(
        self, active: Dict[Any, _Attempt], delayed: List[tuple]
    ) -> Iterator[JobOutcome]:
        """Wait for pipe traffic or a deadline; settle finished attempts."""
        now = monotonic()
        timeout = _MAX_WAIT_S
        for state in active.values():
            if state.deadline is not None:
                timeout = min(timeout, max(0.0, state.deadline - now))
        for ready_at, _job, _attempt, _first in delayed:
            timeout = min(timeout, max(0.0, ready_at - now))
        ready = connection_wait(list(active), timeout=timeout)
        for conn in ready:
            state = active.pop(conn)
            outcome = self._settle(state)
            if outcome is not None:
                yield outcome
            else:
                self._schedule_retry(state, delayed)
        now = monotonic()
        for conn, state in list(active.items()):
            if state.deadline is not None and now >= state.deadline:
                del active[conn]
                outcome = self._expire(state)
                if outcome is not None:
                    yield outcome
                else:
                    self._schedule_retry(state, delayed)

    # ------------------------------------------------------------------
    def _settle(self, state: _Attempt) -> Optional[JobOutcome]:
        """Handle a readable pipe: a result, a traceback, or EOF (death).

        Returns the final outcome, or ``None`` when the attempt failed
        but the retry budget allows another go (recorded on ``state``).
        """
        job = state.job
        message = None
        try:
            message = state.conn.recv()
        except (EOFError, OSError):
            pass  # child died without reporting; attribute below
        finally:
            state.conn.close()
        if message is not None and message[0] == "ok":
            # The result is already in hand; a child that lingers past
            # the grace period (atexit hang, stuck destructor) must not
            # block the supervisor — escalate instead of waiting forever.
            state.process.join(_TERM_GRACE_S)
            if state.process.is_alive():
                state.process.terminate()
                state.process.join(_TERM_GRACE_S)
                if state.process.is_alive():
                    state.process.kill()
                    state.process.join()
            return JobOutcome(
                key=job.key, label=job.label, attempts=state.attempt,
                result=message[1],
            )
        state.process.join(_TERM_GRACE_S)
        if message is not None:  # ("error", traceback)
            error = str(message[1])
        else:
            code = state.process.exitcode
            if code is not None and code < 0:
                try:
                    name = signal.Signals(-code).name
                except ValueError:
                    name = f"signal {-code}"
                error = f"worker killed by {name}"
            else:
                error = (
                    f"worker exited with code {code} without reporting "
                    f"a result"
                )
        return self._fail(state, "failed", error)

    def _expire(self, state: _Attempt) -> Optional[JobOutcome]:
        """Kill a worker that ran past its deadline."""
        process = state.process
        process.terminate()
        process.join(_TERM_GRACE_S)
        if process.is_alive():
            process.kill()
            process.join()
        state.conn.close()
        error = (
            f"worker timed out after {self.policy.timeout_s:.1f}s "
            f"(attempt {state.attempt})"
        )
        return self._fail(state, "timeout", error)

    def _fail(self, state: _Attempt, status: str,
              error: str) -> Optional[JobOutcome]:
        """Final failure -> outcome; retryable failure -> None."""
        if state.attempt <= self.policy.retries:
            return None
        job = state.job
        return JobOutcome(
            key=job.key, label=job.label, attempts=state.attempt,
            failure=FailedRun(
                key=job.key, label=job.label, status=status,
                attempts=state.attempt, error=error,
                elapsed_s=monotonic() - state.first_started,
            ),
        )

    def _schedule_retry(self, state: _Attempt,
                        delayed: List[tuple]) -> None:
        next_attempt = state.attempt + 1
        ready_at = monotonic() + self.policy.backoff_for(
            next_attempt, token=state.job.key
        )
        delayed.append(
            (ready_at, state.job, next_attempt, state.first_started)
        )

    def _teardown(self, active: Dict[Any, _Attempt]) -> None:
        """Kill every in-flight child (interrupt / generator close)."""
        for state in active.values():
            if state.process.is_alive():
                state.process.terminate()
        for state in active.values():
            state.process.join(_TERM_GRACE_S)
            if state.process.is_alive():
                state.process.kill()
                state.process.join()
            try:
                state.conn.close()
            except OSError:
                pass
        active.clear()
