"""Crash- and concurrency-safe on-disk result store.

One file per result under ``<root>/results/``, named by the spec's
content hash.  Writes go to a temporary file in the same directory and
are published with :func:`os.replace`, which is atomic on POSIX and
Windows: a reader never observes a torn file, and two workers racing on
the same key simply last-write-wins with identical bytes.  Contrast the
old design — one JSON blob read at import time and rewritten wholesale on
every ``put`` — where two concurrent bench processes each clobbered the
other's entries.

Entries are serialized with sorted keys so that the same
:class:`~repro.sim.results.SimulationResult` always produces the same
bytes regardless of which process wrote it; the parallel sweep's output
is byte-identical to the serial path's.
"""

from __future__ import annotations

import json
import os
import tempfile
from pathlib import Path
from typing import Dict, Iterator, Optional, Union

from ..sim.results import SimulationResult
from .spec import ExperimentSpec

#: Entry format version; bump on layout changes.
STORE_VERSION = 1


def atomic_write_bytes(path: Path, data: bytes) -> None:
    """Write ``data`` to ``path`` atomically (temp file + ``os.replace``)."""
    path.parent.mkdir(parents=True, exist_ok=True)
    fd, tmp_name = tempfile.mkstemp(
        dir=str(path.parent), prefix=f".{path.name}.", suffix=".tmp"
    )
    try:
        with os.fdopen(fd, "wb") as handle:
            handle.write(data)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp_name, path)
    except BaseException:
        try:
            os.unlink(tmp_name)
        except OSError:
            pass
        raise


def atomic_write_json(path: Path, payload: Dict) -> None:
    """Atomically publish ``payload`` as deterministic (sorted-key) JSON."""
    data = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    atomic_write_bytes(path, data.encode("utf-8"))


class ResultStore:
    """Content-addressed store of simulation results.

    ``get``/``put`` speak :class:`ExperimentSpec`; the lower-level
    ``get_record``/``put_record`` accept raw string keys so legacy
    callers (the benches' :class:`ResultCache`) can share the same
    atomic-file machinery.
    """

    def __init__(self, root: Union[str, Path]) -> None:
        self.root = Path(root)
        self.results_dir = self.root / "results"

    # -- raw key layer ---------------------------------------------------
    def path_for(self, key: str) -> Path:
        return self.results_dir / f"{key}.json"

    def get_record(self, key: str) -> Optional[Dict]:
        """The full stored entry, or None if absent/corrupt."""
        path = self.path_for(key)
        try:
            return json.loads(path.read_text())
        except (OSError, json.JSONDecodeError):
            # Missing is normal; a torn file cannot happen with atomic
            # publication, but treat any unreadable entry as a miss.
            return None

    def put_record(self, key: str, entry: Dict) -> Path:
        path = self.path_for(key)
        atomic_write_json(path, entry)
        return path

    # -- spec layer ------------------------------------------------------
    def get(self, spec: ExperimentSpec) -> Optional[SimulationResult]:
        entry = self.get_record(spec.key())
        if entry is None or "result" not in entry:
            return None
        return SimulationResult.from_record(entry["result"])

    def put(self, spec: ExperimentSpec, result: SimulationResult) -> Path:
        # Deliberately no timestamps/pids/durations in the entry: a cache
        # file is a pure function of its spec, so the parallel sweep's
        # files are byte-identical to the serial path's (verifiable with
        # a plain diff).
        entry = {
            "v": STORE_VERSION,
            "spec": spec.to_dict(),
            "result": result.to_record(),
        }
        return self.put_record(spec.key(), entry)

    # -- maintenance -----------------------------------------------------
    def keys(self) -> Iterator[str]:
        if not self.results_dir.is_dir():
            return iter(())
        return (p.stem for p in sorted(self.results_dir.glob("*.json")))

    def __len__(self) -> int:
        return sum(1 for _ in self.keys())

    def __contains__(self, key: str) -> bool:
        return self.path_for(key).exists()

    def clear(self) -> int:
        """Delete every stored result; returns how many were removed."""
        removed = 0
        for key in list(self.keys()):
            try:
                self.path_for(key).unlink()
                removed += 1
            except OSError:
                pass
        return removed

    def purge_temp(self) -> int:
        """Remove orphaned temp files left by killed/interrupted writers.

        Atomic publication means a temp file only survives when its
        writer died between ``mkstemp`` and ``os.replace`` (e.g. SIGKILL,
        Ctrl-C in a worker).  Call with no writers in flight — the sweep
        runner does so after tearing its workers down on interrupt.
        """
        removed = 0
        if self.results_dir.is_dir():
            for path in self.results_dir.glob(".*.tmp"):
                try:
                    path.unlink()
                    removed += 1
                except OSError:
                    pass
        return removed
