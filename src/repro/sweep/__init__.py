"""Parallel figure-sweep runner and the content-addressed result cache.

The evaluation is a (workload x scheme x config-variant) matrix; this
package fans it across a process pool (``python -m repro sweep``) on top
of two shared on-disk caches:

* :class:`ResultStore` — one atomic file per result, keyed by a content
  hash of the complete :class:`ExperimentSpec` (workload, scheme +
  kwargs, scale, full serialized SystemConfig including faults, system
  kwargs).  Safe under any number of concurrent writers.
* :class:`TraceStore` — seeded workload traces, generated once and
  shared by every worker.

See EXPERIMENTS.md ("Sweep runner") for the cache layout and CLI usage.
"""

from .matrix import (
    ALL_SCHEMES,
    SENSITIVITY_WORKLOADS,
    VARIANTS,
    build_matrix,
)
from .journal import JournalEntry, SweepJournal
from .runner import (
    RunOutcome,
    RunReport,
    SweepRunner,
    SweepSummary,
    executor_pool,
    run_spec,
    stat_gauges,
)
from .spec import SPEC_VERSION, ExperimentSpec, canonical_json, content_key
from .store import ResultStore, atomic_write_bytes, atomic_write_json
from .supervisor import (
    FailedRun,
    Job,
    JobOutcome,
    JobSupervisor,
    SupervisorPolicy,
)
from .traces import TraceStore

__all__ = [
    "ALL_SCHEMES",
    "SENSITIVITY_WORKLOADS",
    "VARIANTS",
    "build_matrix",
    "RunOutcome",
    "RunReport",
    "SweepRunner",
    "SweepSummary",
    "executor_pool",
    "run_spec",
    "stat_gauges",
    "JournalEntry",
    "SweepJournal",
    "FailedRun",
    "Job",
    "JobOutcome",
    "JobSupervisor",
    "SupervisorPolicy",
    "SPEC_VERSION",
    "ExperimentSpec",
    "canonical_json",
    "content_key",
    "ResultStore",
    "atomic_write_bytes",
    "atomic_write_json",
    "TraceStore",
]
