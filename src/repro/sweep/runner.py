"""Hardened sweep runner: crash-isolated, resumable spec execution.

Executes a list of :class:`ExperimentSpec` in two phases:

1. **Trace warm-up** — every *unique* trace key in the matrix is
   generated (or loaded) exactly once into the shared on-disk
   :class:`~repro.sweep.traces.TraceStore`.  Workers in phase 2 then
   load traces from disk instead of re-synthesizing them.
2. **Simulation fan-out** — specs run under a
   :class:`~repro.sweep.supervisor.JobSupervisor`: one supervised
   process per attempt, with a configurable per-job timeout, bounded
   retry with exponential backoff, and crash isolation.  A worker that
   raises, hangs, or is killed by the OS becomes a structured
   :class:`~repro.sweep.supervisor.FailedRun` on the summary instead of
   aborting the sweep.  Each worker checks the content-addressed
   :class:`~repro.sweep.store.ResultStore` first and publishes its
   result atomically, so concurrent workers (and concurrent sweep
   invocations) never corrupt or clobber the cache.

Every per-spec outcome — including failures — is journalled to an
append-only sidecar (:class:`~repro.sweep.journal.SweepJournal`) next to
the result store, so a killed or Ctrl-C'd sweep can be resumed
(``resume=True``): specs the journal shows as completed (and whose
results are present) are skipped; failed or never-attempted specs are
re-attempted.  On KeyboardInterrupt the runner tears its workers down,
removes orphaned cache temp files, and re-raises.

``workers=1`` with no timeout runs everything in-process with no child
processes — the serial reference path (failures are still isolated per
spec).  Because specs are content-hashed and entries are serialized
deterministically, the parallel path produces byte-identical cache files
to the serial one.

Worker-side statistics snapshots are folded into one registry with the
counter/gauge-aware :meth:`~repro.stats.StatRegistry.merge` (summing a
hit *rate* or a ``freq_ghz`` echo across workers would be nonsense).
"""

from __future__ import annotations

import dataclasses
import os
import traceback
from concurrent.futures import ProcessPoolExecutor, as_completed
from contextlib import contextmanager
from dataclasses import dataclass, field
from pathlib import Path
from time import perf_counter, sleep
from typing import Callable, Dict, List, Optional, Sequence, Tuple, Union

from ..policies import make_scheme
from ..sim.engine import simulate
from ..sim.results import SimulationResult
from ..stats import StatRegistry
from .journal import SweepJournal
from .spec import ExperimentSpec
from .store import ResultStore
from .supervisor import FailedRun, Job, JobSupervisor, SupervisorPolicy
from .traces import TraceStore

#: ``SimulationResult.stats`` keys with gauge (non-additive) semantics.
_GAUGE_SUFFIXES = ("_rate", "_fraction")
_GAUGE_KEYS = ("freq_ghz",)


def stat_gauges(stats: Dict[str, float]) -> List[str]:
    """The keys of ``stats`` that must not be summed when aggregating."""
    return [
        key for key in stats
        if key.endswith(_GAUGE_SUFFIXES) or key in _GAUGE_KEYS
    ]


@dataclass(frozen=True)
class RunReport:
    """What one spec execution looked like (for the CLI's per-run lines).

    ``status`` is ``ok`` (ran or cache hit) or ``retried`` (succeeded
    after at least one failed attempt); failed specs never produce a
    report — they produce a :class:`FailedRun` on the summary instead.
    ``attempts == 0`` marks a spec skipped by resume (journalled as
    complete by an earlier invocation).
    """

    key: str
    label: str
    workload: str
    scheme: str
    cache_hit: bool
    elapsed_s: float
    exec_time_ns: float
    status: str = "ok"
    attempts: int = 1


@dataclass
class RunOutcome:
    """A result plus its provenance."""

    result: SimulationResult
    report: RunReport


@dataclass
class SweepSummary:
    """Aggregate of one sweep invocation."""

    reports: List[RunReport] = field(default_factory=list)
    failures: List[FailedRun] = field(default_factory=list)
    trace_reports: List[Tuple[str, bool, float]] = field(default_factory=list)
    wall_s: float = 0.0
    stats: Dict[str, float] = field(default_factory=dict)

    @property
    def runs(self) -> int:
        return len(self.reports)

    @property
    def hits(self) -> int:
        return sum(1 for r in self.reports if r.cache_hit)

    @property
    def misses(self) -> int:
        return self.runs - self.hits

    @property
    def hit_rate(self) -> float:
        return self.hits / self.runs if self.runs else 0.0

    @property
    def failed(self) -> int:
        return len(self.failures)

    @property
    def retried(self) -> int:
        """Specs that succeeded only after at least one failed attempt."""
        return sum(1 for r in self.reports if r.status == "retried")

    @property
    def skipped(self) -> int:
        """Specs skipped by resume (journalled complete earlier)."""
        return sum(1 for r in self.reports if r.attempts == 0)

    @property
    def ok(self) -> bool:
        return not self.failures

    @property
    def work_s(self) -> float:
        """Summed per-run wall clock (the serial-equivalent time)."""
        return sum(r.elapsed_s for r in self.reports) + sum(
            t[2] for t in self.trace_reports
        )


def run_spec(
    spec: ExperimentSpec,
    cache_dir: Union[str, Path],
    trace_store: Optional[TraceStore] = None,
) -> RunOutcome:
    """Execute (or fetch) one spec against the shared caches."""
    store = ResultStore(cache_dir)
    started = perf_counter()
    cached = store.get(spec)
    if cached is not None:
        return RunOutcome(
            result=cached,
            report=RunReport(
                key=spec.key(), label=spec.label(),
                workload=spec.workload, scheme=spec.scheme,
                cache_hit=True, elapsed_s=perf_counter() - started,
                exec_time_ns=cached.exec_time_ns,
            ),
        )
    traces = trace_store if trace_store is not None else TraceStore(cache_dir)
    trace = traces.get_or_generate(
        spec.workload,
        num_hosts=spec.config.num_hosts,
        cores_per_host=spec.config.cores_per_host,
        scale=spec.scale,
    )
    scheme = make_scheme(spec.scheme, **spec.scheme_kwargs)
    result = simulate(trace, scheme, spec.config, **spec.system_kwargs)
    elapsed = perf_counter() - started
    store.put(spec, result)
    return RunOutcome(
        result=result,
        report=RunReport(
            key=spec.key(), label=spec.label(),
            workload=spec.workload, scheme=spec.scheme,
            cache_hit=False, elapsed_s=elapsed,
            exec_time_ns=result.exec_time_ns,
        ),
    )


@contextmanager
def executor_pool(max_workers: int):
    """A ProcessPoolExecutor that never leaks workers.

    Unlike the executor's own context manager (which only waits), the
    exit path cancels queued futures before waiting, so an interrupt or
    exception mid-phase stops dispatching new work and still reaps every
    worker process.
    """
    pool = ProcessPoolExecutor(max_workers=max_workers)
    try:
        yield pool
    finally:
        pool.shutdown(wait=True, cancel_futures=True)


# ----------------------------------------------------------------------
# Pool workers (top-level so they pickle under any start method).
# ----------------------------------------------------------------------
def _warm_trace_worker(
    args: Tuple[str, int, int, object, str]
) -> Tuple[str, bool, float]:
    workload, num_hosts, cores_per_host, scale, cache_dir = args
    started = perf_counter()
    _trace, hit = TraceStore(cache_dir).warm(
        workload, num_hosts, cores_per_host, scale
    )
    return workload, hit, perf_counter() - started


def _run_spec_worker(
    args: Tuple[ExperimentSpec, str]
) -> Tuple[RunReport, Dict[str, float], List[str]]:
    spec, cache_dir = args
    outcome = run_spec(spec, cache_dir)
    # Per-worker snapshot: counters accumulate across workers, gauges
    # (rates, config echoes) must overwrite on merge.
    registry = StatRegistry()
    registry.add("sweep.runs")
    registry.add("sweep.cache_hits", 1.0 if outcome.report.cache_hit else 0.0)
    registry.add("sweep.sim_seconds", outcome.report.elapsed_s)
    gauges = stat_gauges(outcome.result.stats)
    registry.merge(outcome.result.stats, gauges=gauges)
    return outcome.report, registry.snapshot(), sorted(registry.gauge_keys())


class SweepRunner:
    """Fan a spec matrix across supervised workers (or run it serially)."""

    def __init__(
        self,
        specs: Sequence[ExperimentSpec],
        cache_dir: Union[str, Path],
        workers: int = 1,
        *,
        timeout_s: Optional[float] = None,
        retries: int = 0,
        backoff_s: float = 0.25,
        max_backoff_s: Optional[float] = 60.0,
        resume: bool = False,
        use_journal: bool = True,
    ) -> None:
        if workers < 0:
            raise ValueError("workers must be >= 0 (0 = one per CPU)")
        self.specs = list(specs)
        self.cache_dir = str(cache_dir)
        self.workers = workers or (os.cpu_count() or 1)
        self.policy = SupervisorPolicy(
            timeout_s=timeout_s, retries=retries, backoff_s=backoff_s,
            max_backoff_s=max_backoff_s,
        )
        self.policy.validate()
        self.resume = resume
        self.use_journal = use_journal

    # ------------------------------------------------------------------
    def _unique_traces(
        self, specs: Sequence[ExperimentSpec]
    ) -> List[Tuple[str, int, int, object, str]]:
        """Trace tasks for specs that will actually simulate.

        Specs whose result is already cached never touch their trace, so
        an all-hits sweep (e.g. the CI smoke's second invocation) warms
        nothing.
        """
        store = ResultStore(self.cache_dir)
        seen = {}
        for spec in specs:
            if spec.key() in store:
                continue
            seen.setdefault(
                spec.trace_key(),
                (
                    spec.workload,
                    spec.config.num_hosts,
                    spec.config.cores_per_host,
                    spec.scale,
                    self.cache_dir,
                ),
            )
        return list(seen.values())

    def run(
        self,
        progress: Optional[Callable[[str], None]] = None,
    ) -> SweepSummary:
        say = progress or (lambda _line: None)
        summary = SweepSummary()
        registry = StatRegistry()
        started = perf_counter()
        journal = SweepJournal(self.cache_dir) if self.use_journal else None
        try:
            todo = self._resume_filter(summary, journal, say)
            if journal is not None:
                journal.begin(len(todo))
            if self.workers <= 1 and self.policy.timeout_s is None:
                self._run_serial(todo, summary, registry, journal, say)
            else:
                self._run_supervised(todo, summary, registry, journal, say)
        except KeyboardInterrupt:
            # Workers are already down (supervisor teardown / pool
            # shutdown); whatever they were mid-publish is an orphan.
            self._purge_temps(say)
            raise
        summary.wall_s = perf_counter() - started
        summary.stats = registry.snapshot()
        return summary

    # ------------------------------------------------------------------
    def _resume_filter(
        self,
        summary: SweepSummary,
        journal: Optional[SweepJournal],
        say,
    ) -> List[ExperimentSpec]:
        """Drop specs an earlier invocation completed (``resume=True``).

        A spec is skipped only when the journal's last word on it is a
        success *and* its result file is actually present — a journal
        that outlived a cleared cache falls back to re-running.
        """
        if not self.resume or journal is None:
            return list(self.specs)
        outcomes = journal.outcomes()
        store = ResultStore(self.cache_dir)
        todo: List[ExperimentSpec] = []
        for spec in self.specs:
            key = spec.key()
            entry = outcomes.get(key)
            if entry is None or not entry.succeeded or key not in store:
                todo.append(spec)
                continue
            record = store.get_record(key) or {}
            exec_ns = float(
                (record.get("result") or {}).get("exec_time_ns", 0.0)
            )
            report = RunReport(
                key=key, label=spec.label(),
                workload=spec.workload, scheme=spec.scheme,
                cache_hit=True, elapsed_s=0.0, exec_time_ns=exec_ns,
                status="ok", attempts=0,
            )
            self._note(summary, report, say)
        return todo

    def _purge_temps(self, say) -> None:
        removed = ResultStore(self.cache_dir).purge_temp()
        removed += TraceStore(self.cache_dir).purge_temp()
        if removed:
            say(f"  [clean] removed {removed} orphaned temp file(s)")

    # ------------------------------------------------------------------
    def _note(self, summary: SweepSummary, report: RunReport, say) -> None:
        summary.reports.append(report)
        if report.attempts == 0:
            state = "skip"
        elif report.status == "retried":
            state = "rtry"
        elif report.cache_hit:
            state = "hit "
        else:
            state = "run "
        say(f"  [{state}] {report.label:<48} {report.elapsed_s:7.2f}s")

    def _note_failure(
        self,
        summary: SweepSummary,
        failure: FailedRun,
        journal: Optional[SweepJournal],
        say,
    ) -> None:
        summary.failures.append(failure)
        if journal is not None:
            journal.record(
                failure.key, failure.label, failure.status,
                attempts=failure.attempts, error=failure.error,
            )
        reason = failure.error.strip().splitlines()
        tail = reason[-1] if reason else failure.status
        say(f"  [FAIL] {failure.label:<48} {failure.elapsed_s:7.2f}s  "
            f"{failure.status}: {tail}")

    def _note_success(
        self,
        summary: SweepSummary,
        report: RunReport,
        journal: Optional[SweepJournal],
        say,
    ) -> None:
        if journal is not None:
            journal.record(
                report.key, report.label, report.status,
                attempts=report.attempts, cache_hit=report.cache_hit,
            )
        self._note(summary, report, say)

    # ------------------------------------------------------------------
    def _run_serial(self, todo, summary, registry, journal, say) -> None:
        traces = TraceStore(self.cache_dir)
        for workload, hosts, cores, scale, _dir in self._unique_traces(todo):
            t0 = perf_counter()
            try:
                _trace, hit = traces.warm(workload, hosts, cores, scale)
            except Exception:
                # The spec(s) needing this trace will fail with the full
                # traceback below; don't abort the other workloads.
                say(f"  [FAIL] trace {workload}")
                continue
            summary.trace_reports.append(
                (workload, hit, perf_counter() - t0)
            )
        for spec in todo:
            attempt = 0
            first_started = perf_counter()
            while True:
                attempt += 1
                try:
                    outcome = run_spec(spec, self.cache_dir,
                                       trace_store=traces)
                except KeyboardInterrupt:
                    raise
                except Exception:
                    if attempt <= self.policy.retries:
                        sleep(self.policy.backoff_for(
                            attempt + 1, token=spec.key()
                        ))
                        continue
                    self._note_failure(
                        summary,
                        FailedRun(
                            key=spec.key(), label=spec.label(),
                            status="failed", attempts=attempt,
                            error=traceback.format_exc(),
                            elapsed_s=perf_counter() - first_started,
                        ),
                        journal, say,
                    )
                    break
                report = outcome.report
                if attempt > 1:
                    report = dataclasses.replace(
                        report, status="retried", attempts=attempt,
                        elapsed_s=perf_counter() - first_started,
                    )
                registry.add("sweep.runs")
                registry.add("sweep.cache_hits",
                             1.0 if report.cache_hit else 0.0)
                registry.add("sweep.sim_seconds", report.elapsed_s)
                registry.merge(
                    outcome.result.stats,
                    gauges=stat_gauges(outcome.result.stats),
                )
                self._note_success(summary, report, journal, say)
                break

    def _run_supervised(self, todo, summary, registry, journal, say) -> None:
        # Phase 1: each unique trace generated exactly once, in a pool
        # (short, CPU-bound, no timeout semantics needed).
        warm_tasks = self._unique_traces(todo)
        if warm_tasks and self.workers > 1:
            with executor_pool(self.workers) as pool:
                warm = [
                    pool.submit(_warm_trace_worker, task)
                    for task in warm_tasks
                ]
                for future in as_completed(warm):
                    try:
                        workload, hit, elapsed = future.result()
                    except Exception:
                        continue  # surfaces as a spec failure in phase 2
                    summary.trace_reports.append((workload, hit, elapsed))
                    state = "trace hit" if hit else "trace gen"
                    say(f"  [{state}] {workload:<43} {elapsed:7.2f}s")
        elif warm_tasks:
            traces = TraceStore(self.cache_dir)
            for workload, hosts, cores, scale, _dir in warm_tasks:
                t0 = perf_counter()
                try:
                    _trace, hit = traces.warm(workload, hosts, cores, scale)
                except Exception:
                    say(f"  [FAIL] trace {workload}")
                    continue
                summary.trace_reports.append(
                    (workload, hit, perf_counter() - t0)
                )
        # Phase 2: supervised fan-out — crash isolation, timeout, retry.
        supervisor = JobSupervisor(
            _run_spec_worker, slots=self.workers, policy=self.policy
        )
        jobs = [
            Job(key=spec.key(), label=spec.label(),
                payload=(spec, self.cache_dir))
            for spec in todo
        ]
        outcomes = supervisor.run(jobs)
        try:
            for outcome in outcomes:
                if not outcome.ok:
                    self._note_failure(summary, outcome.failure, journal, say)
                    continue
                report, snapshot, gauges = outcome.result
                if outcome.attempts > 1:
                    report = dataclasses.replace(
                        report, status="retried", attempts=outcome.attempts,
                    )
                registry.merge(snapshot, gauges=gauges)
                self._note_success(summary, report, journal, say)
        finally:
            # Deterministic teardown even when the consumer loop dies
            # (KeyboardInterrupt, a raising progress callback, ...).
            outcomes.close()
