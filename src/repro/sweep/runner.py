"""Process-pool sweep runner.

Executes a list of :class:`ExperimentSpec` in two phases:

1. **Trace warm-up** — every *unique* trace key in the matrix is
   generated (or loaded) exactly once, in parallel, into the shared
   on-disk :class:`~repro.sweep.traces.TraceStore`.  Workers in phase 2
   then load traces from disk instead of re-synthesizing them.
2. **Simulation fan-out** — specs run across a
   :class:`~concurrent.futures.ProcessPoolExecutor`; each worker checks
   the content-addressed :class:`~repro.sweep.store.ResultStore` first
   and publishes its result atomically, so concurrent workers (and
   concurrent sweep invocations) never corrupt or clobber the cache.

``workers=1`` runs everything in-process with no pool — the serial
reference path.  Because specs are content-hashed and entries are
serialized deterministically, the parallel path produces byte-identical
cache files to the serial one.

Per-run wall clock and cache-hit status are reported per spec, and
worker-side statistics snapshots are folded into one registry with the
counter/gauge-aware :meth:`~repro.stats.StatRegistry.merge` (summing a
hit *rate* or a ``freq_ghz`` echo across workers would be nonsense).
"""

from __future__ import annotations

import os
from concurrent.futures import ProcessPoolExecutor, as_completed
from dataclasses import dataclass, field
from pathlib import Path
from time import perf_counter
from typing import Callable, Dict, List, Optional, Sequence, Tuple, Union

from ..policies import make_scheme
from ..sim.engine import simulate
from ..sim.results import SimulationResult
from ..stats import StatRegistry
from .spec import ExperimentSpec
from .store import ResultStore
from .traces import TraceStore

#: ``SimulationResult.stats`` keys with gauge (non-additive) semantics.
_GAUGE_SUFFIXES = ("_rate", "_fraction")
_GAUGE_KEYS = ("freq_ghz",)


def stat_gauges(stats: Dict[str, float]) -> List[str]:
    """The keys of ``stats`` that must not be summed when aggregating."""
    return [
        key for key in stats
        if key.endswith(_GAUGE_SUFFIXES) or key in _GAUGE_KEYS
    ]


@dataclass(frozen=True)
class RunReport:
    """What one spec execution looked like (for the CLI's per-run lines)."""

    key: str
    label: str
    workload: str
    scheme: str
    cache_hit: bool
    elapsed_s: float
    exec_time_ns: float


@dataclass
class RunOutcome:
    """A result plus its provenance."""

    result: SimulationResult
    report: RunReport


@dataclass
class SweepSummary:
    """Aggregate of one sweep invocation."""

    reports: List[RunReport] = field(default_factory=list)
    trace_reports: List[Tuple[str, bool, float]] = field(default_factory=list)
    wall_s: float = 0.0
    stats: Dict[str, float] = field(default_factory=dict)

    @property
    def runs(self) -> int:
        return len(self.reports)

    @property
    def hits(self) -> int:
        return sum(1 for r in self.reports if r.cache_hit)

    @property
    def misses(self) -> int:
        return self.runs - self.hits

    @property
    def hit_rate(self) -> float:
        return self.hits / self.runs if self.runs else 0.0

    @property
    def work_s(self) -> float:
        """Summed per-run wall clock (the serial-equivalent time)."""
        return sum(r.elapsed_s for r in self.reports) + sum(
            t[2] for t in self.trace_reports
        )


def run_spec(
    spec: ExperimentSpec,
    cache_dir: Union[str, Path],
    trace_store: Optional[TraceStore] = None,
) -> RunOutcome:
    """Execute (or fetch) one spec against the shared caches."""
    store = ResultStore(cache_dir)
    started = perf_counter()
    cached = store.get(spec)
    if cached is not None:
        return RunOutcome(
            result=cached,
            report=RunReport(
                key=spec.key(), label=spec.label(),
                workload=spec.workload, scheme=spec.scheme,
                cache_hit=True, elapsed_s=perf_counter() - started,
                exec_time_ns=cached.exec_time_ns,
            ),
        )
    traces = trace_store if trace_store is not None else TraceStore(cache_dir)
    trace = traces.get_or_generate(
        spec.workload,
        num_hosts=spec.config.num_hosts,
        cores_per_host=spec.config.cores_per_host,
        scale=spec.scale,
    )
    scheme = make_scheme(spec.scheme, **spec.scheme_kwargs)
    result = simulate(trace, scheme, spec.config, **spec.system_kwargs)
    elapsed = perf_counter() - started
    store.put(spec, result)
    return RunOutcome(
        result=result,
        report=RunReport(
            key=spec.key(), label=spec.label(),
            workload=spec.workload, scheme=spec.scheme,
            cache_hit=False, elapsed_s=elapsed,
            exec_time_ns=result.exec_time_ns,
        ),
    )


# ----------------------------------------------------------------------
# Pool workers (top-level so they pickle under any start method).
# ----------------------------------------------------------------------
def _warm_trace_worker(
    args: Tuple[str, int, int, object, str]
) -> Tuple[str, bool, float]:
    workload, num_hosts, cores_per_host, scale, cache_dir = args
    started = perf_counter()
    _trace, hit = TraceStore(cache_dir).warm(
        workload, num_hosts, cores_per_host, scale
    )
    return workload, hit, perf_counter() - started


def _run_spec_worker(
    args: Tuple[ExperimentSpec, str]
) -> Tuple[RunReport, Dict[str, float], List[str]]:
    spec, cache_dir = args
    outcome = run_spec(spec, cache_dir)
    # Per-worker snapshot: counters accumulate across workers, gauges
    # (rates, config echoes) must overwrite on merge.
    registry = StatRegistry()
    registry.add("sweep.runs")
    registry.add("sweep.cache_hits", 1.0 if outcome.report.cache_hit else 0.0)
    registry.add("sweep.sim_seconds", outcome.report.elapsed_s)
    gauges = stat_gauges(outcome.result.stats)
    registry.merge(outcome.result.stats, gauges=gauges)
    return outcome.report, registry.snapshot(), sorted(registry.gauge_keys())


class SweepRunner:
    """Fan a spec matrix across a process pool (or run it serially)."""

    def __init__(
        self,
        specs: Sequence[ExperimentSpec],
        cache_dir: Union[str, Path],
        workers: int = 1,
    ) -> None:
        if workers < 0:
            raise ValueError("workers must be >= 0 (0 = one per CPU)")
        self.specs = list(specs)
        self.cache_dir = str(cache_dir)
        self.workers = workers or (os.cpu_count() or 1)

    # ------------------------------------------------------------------
    def _unique_traces(self) -> List[Tuple[str, int, int, object, str]]:
        """Trace tasks for specs that will actually simulate.

        Specs whose result is already cached never touch their trace, so
        an all-hits sweep (e.g. the CI smoke's second invocation) warms
        nothing.
        """
        store = ResultStore(self.cache_dir)
        seen = {}
        for spec in self.specs:
            if spec.key() in store:
                continue
            seen.setdefault(
                spec.trace_key(),
                (
                    spec.workload,
                    spec.config.num_hosts,
                    spec.config.cores_per_host,
                    spec.scale,
                    self.cache_dir,
                ),
            )
        return list(seen.values())

    def run(
        self,
        progress: Optional[Callable[[str], None]] = None,
    ) -> SweepSummary:
        say = progress or (lambda _line: None)
        summary = SweepSummary()
        registry = StatRegistry()
        started = perf_counter()
        if self.workers <= 1:
            self._run_serial(summary, registry, say)
        else:
            self._run_parallel(summary, registry, say)
        summary.wall_s = perf_counter() - started
        summary.stats = registry.snapshot()
        return summary

    # ------------------------------------------------------------------
    def _note(self, summary: SweepSummary, report: RunReport, say) -> None:
        summary.reports.append(report)
        state = "hit " if report.cache_hit else "run "
        say(f"  [{state}] {report.label:<48} {report.elapsed_s:7.2f}s")

    def _run_serial(self, summary, registry, say) -> None:
        traces = TraceStore(self.cache_dir)
        for workload, hosts, cores, scale, _dir in self._unique_traces():
            t0 = perf_counter()
            _trace, hit = traces.warm(workload, hosts, cores, scale)
            summary.trace_reports.append(
                (workload, hit, perf_counter() - t0)
            )
        for spec in self.specs:
            outcome = run_spec(spec, self.cache_dir, trace_store=traces)
            report = outcome.report
            registry.add("sweep.runs")
            registry.add("sweep.cache_hits", 1.0 if report.cache_hit else 0.0)
            registry.add("sweep.sim_seconds", report.elapsed_s)
            registry.merge(
                outcome.result.stats, gauges=stat_gauges(outcome.result.stats)
            )
            self._note(summary, report, say)

    def _run_parallel(self, summary, registry, say) -> None:
        with ProcessPoolExecutor(max_workers=self.workers) as pool:
            # Phase 1: each unique trace generated exactly once.
            warm = [
                pool.submit(_warm_trace_worker, task)
                for task in self._unique_traces()
            ]
            for future in as_completed(warm):
                workload, hit, elapsed = future.result()
                summary.trace_reports.append((workload, hit, elapsed))
                state = "trace hit" if hit else "trace gen"
                say(f"  [{state}] {workload:<43} {elapsed:7.2f}s")
            # Phase 2: fan the simulations out.
            futures = [
                pool.submit(_run_spec_worker, (spec, self.cache_dir))
                for spec in self.specs
            ]
            for future in as_completed(futures):
                report, snapshot, gauges = future.result()
                registry.merge(snapshot, gauges=gauges)
                self._note(summary, report, say)
