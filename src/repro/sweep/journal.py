"""Append-only sweep journal: per-spec outcomes for checkpoint/resume.

The :class:`~repro.sweep.store.ResultStore` records *successful* results
(one atomic file per spec); it cannot record failures, and a killed sweep
leaves no trace of which specs it had already attempted.  The journal
fills that gap: every spec outcome — ok, cache hit, failure, timeout — is
appended as one JSON line to a sidecar next to the store, so a
``--resume`` invocation can tell "never attempted" from "attempted and
failed" from "done".

Design points:

* **Append-only JSONL.**  One ``os.write`` per entry on an ``O_APPEND``
  descriptor; on POSIX a sub-``PIPE_BUF`` append is a single atomic write,
  so concurrent sweep invocations sharing a cache directory interleave
  whole lines, never bytes.  A torn final line (the writer died mid-write)
  is detected by JSON decode failure and skipped on replay.
* **Last entry wins.**  Replays fold the log into one outcome per spec
  key; a re-attempted spec simply appends a newer entry.  ``begin()``
  marks each sweep invocation so tooling can distinguish attempts made by
  the current invocation from history.
* **No wall-clock timestamps** — the journal stays a pure function of
  what happened, per the determinism contract (simcheck DET001).
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, Iterator, Optional, Union

#: Journal format version; bump on layout changes.
JOURNAL_VERSION = 1

#: Sidecar filename, next to the ``results/`` directory.
JOURNAL_NAME = "sweep-journal.jsonl"

#: Spec outcome states a journal entry may carry.
STATUSES = ("ok", "retried", "failed", "timeout")


@dataclass(frozen=True)
class JournalEntry:
    """One folded per-spec outcome (the last word the journal has)."""

    key: str
    label: str
    status: str  # one of STATUSES
    attempts: int
    cache_hit: bool
    error: Optional[str]  # traceback tail / exit-signal attribution
    run: int  # which begin() epoch recorded it (0 = before any marker)

    @property
    def succeeded(self) -> bool:
        return self.status in ("ok", "retried")


class SweepJournal:
    """Append-only per-spec outcome log next to a result cache."""

    def __init__(self, root: Union[str, Path]) -> None:
        self.root = Path(root)
        self.path = self.root / JOURNAL_NAME

    # -- writing ---------------------------------------------------------
    def _append(self, payload: Dict) -> None:
        line = json.dumps(payload, sort_keys=True, separators=(",", ":"))
        self.root.mkdir(parents=True, exist_ok=True)
        fd = os.open(
            self.path, os.O_WRONLY | os.O_APPEND | os.O_CREAT, 0o644
        )
        try:
            os.write(fd, line.encode("utf-8") + b"\n")
        finally:
            os.close(fd)

    def begin(self, total_specs: int) -> None:
        """Mark the start of one sweep invocation (an epoch boundary)."""
        self._append({
            "v": JOURNAL_VERSION,
            "event": "begin",
            "total_specs": total_specs,
        })

    def record(
        self,
        key: str,
        label: str,
        status: str,
        attempts: int = 1,
        cache_hit: bool = False,
        error: Optional[str] = None,
    ) -> None:
        """Append one spec outcome."""
        if status not in STATUSES:
            raise ValueError(
                f"status must be one of {STATUSES}, got {status!r}"
            )
        payload: Dict = {
            "v": JOURNAL_VERSION,
            "event": "spec",
            "key": key,
            "label": label,
            "status": status,
            "attempts": attempts,
            "cache_hit": cache_hit,
        }
        if error is not None:
            # Bounded: keep the tail, which carries the innermost frame
            # and the exception line — the attribution that matters.
            # ``is not None`` (not truthiness): a failure whose message
            # is an empty string still journals its attribution field.
            payload["error"] = error[-2000:]
        self._append(payload)

    # -- reading ---------------------------------------------------------
    def _lines(self) -> Iterator[Dict]:
        try:
            raw = self.path.read_bytes()
        except OSError:
            return
        for line in raw.splitlines():
            if not line.strip():
                continue
            try:
                yield json.loads(line)
            except json.JSONDecodeError:
                # Torn tail from a writer killed mid-append; the entry is
                # lost but the sweep it described will simply be re-run.
                continue

    def outcomes(self) -> Dict[str, JournalEntry]:
        """Fold the log into the latest outcome per spec key."""
        folded: Dict[str, JournalEntry] = {}
        run = 0
        for payload in self._lines():
            event = payload.get("event")
            if event == "begin":
                run += 1
                continue
            if event != "spec":
                continue
            key = payload.get("key")
            status = payload.get("status")
            if not key or status not in STATUSES:
                continue
            folded[key] = JournalEntry(
                key=key,
                label=str(payload.get("label", "")),
                status=status,
                attempts=int(payload.get("attempts", 1)),
                cache_hit=bool(payload.get("cache_hit", False)),
                error=payload.get("error"),
                run=run,
            )
        return folded

    def epochs(self) -> int:
        """How many ``begin`` markers the log holds."""
        return sum(1 for p in self._lines() if p.get("event") == "begin")

    def clear(self) -> None:
        try:
            self.path.unlink()
        except OSError:
            pass
