"""The evaluation matrix: every (workload x scheme x config-variant) run
the figure benches consume, expressed as :class:`ExperimentSpec` lists.

Each variant mirrors one figure family's parameterization exactly — same
config construction, same ``scheme_kwargs``, same ``system_kwargs`` — so
specs built here hash to the same cache keys the benches'
``run_cached`` produces.  ``python -m repro sweep --figures`` therefore
pre-computes, in parallel, precisely the runs that ``pytest benchmarks/``
will then read back as cache hits.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, Iterable, List, Optional, Sequence

from ..config import FabricConfig, FaultConfig, SystemConfig
from ..workloads.trace import WorkloadScale
from .spec import ExperimentSpec

#: The paper's Fig. 10 scheme order (Native first: the normalization base).
ALL_SCHEMES = [
    "native", "nomad", "memtis", "hemem", "os-skew", "hw-static", "pipm",
    "local-only",
]

#: Subset used by the sensitivity figures (Figs. 14-17) to bound runtime.
SENSITIVITY_WORKLOADS = [
    "pr", "bfs", "xsbench", "streamcluster", "ycsb", "tpcc",
]

#: Fig. 14 / Fig. 15 sweep points.
LINK_LATENCIES_NS = [25.0, 50.0, 100.0]
LINK_BANDWIDTHS_GBS = [2.5, 5.0, 10.0]
#: Threshold ablation sweep points.
THRESHOLDS = [2, 4, 8, 15]
#: Resilience presets (bench_resilience.py) with its deterministic seed.
FAULT_PRESETS = ["none", "flaky", "degraded"]
FAULT_OVERRIDES = "seed=7,watchdog-period-ns=200000"
#: Fabric presets and rack sizes (bench_topology.py).
TOPOLOGY_PRESETS = ["flat", "single-switch", "two-tier"]
TOPOLOGY_HOSTS = [4, 8, 16, 32]

#: Variant name -> builder; ``base`` must stay first (baseline runs).
VARIANTS = (
    "base",
    "link-latency",
    "link-bandwidth",
    "threshold",
    "local-remap",
    "global-remap",
    "intervals",
    "faults",
    "topology",
)


def _base(workloads, schemes, scale) -> List[ExperimentSpec]:
    config = SystemConfig.scaled()
    return [
        ExperimentSpec.build(w, s, config=config, scale=scale)
        for w in workloads
        for s in schemes
    ]


def _link_latency(workloads, _schemes, scale) -> List[ExperimentSpec]:
    specs = []
    for latency in LINK_LATENCIES_NS:
        config = SystemConfig.scaled().replace_nested(
            "cxl_link", latency_ns=latency
        )
        for w in workloads:
            for s in ("native", "pipm"):
                specs.append(ExperimentSpec.build(w, s, config=config,
                                                  scale=scale))
    return specs


def _link_bandwidth(workloads, _schemes, scale) -> List[ExperimentSpec]:
    specs = []
    for gbs in LINK_BANDWIDTHS_GBS:
        config = SystemConfig.scaled().replace_nested(
            "cxl_link", bandwidth_gbs=gbs
        )
        for w in workloads:
            for s in ("native", "pipm"):
                specs.append(ExperimentSpec.build(w, s, config=config,
                                                  scale=scale))
    return specs


def _threshold(workloads, _schemes, scale) -> List[ExperimentSpec]:
    specs = [
        ExperimentSpec.build(w, "native", config=SystemConfig.scaled(),
                             scale=scale)
        for w in workloads
    ]
    for threshold in THRESHOLDS:
        base = SystemConfig.scaled()
        config = base.replace(pipm=dataclasses.replace(
            base.pipm, migration_threshold=threshold
        ))
        specs += [
            ExperimentSpec.build(w, "pipm", config=config, scale=scale)
            for w in workloads
        ]
    return specs


def _remap(which: str, workloads, scale) -> List[ExperimentSpec]:
    base = SystemConfig.scaled()
    size_field = f"{which}_remap_cache_bytes"
    base_bytes = getattr(base.pipm, size_field)
    floor = 1024 if which == "local" else 128
    sizes = sorted({
        max(floor, base_bytes // 16),
        max(floor if which == "global" else 2048, base_bytes // 4),
        base_bytes,
        base_bytes * 4,
    })
    specs = [
        ExperimentSpec.build(
            w, "pipm", config=base, scale=scale,
            system_kwargs={f"infinite_{which}_remap_cache": True},
        )
        for w in workloads
    ]
    for size in sizes:
        config = base.replace_nested("pipm", **{size_field: size})
        specs += [
            ExperimentSpec.build(w, "pipm", config=config, scale=scale)
            for w in workloads
        ]
    return specs


def _local_remap(workloads, _schemes, scale) -> List[ExperimentSpec]:
    return _remap("local", workloads, scale)


def _global_remap(workloads, _schemes, scale) -> List[ExperimentSpec]:
    return _remap("global", workloads, scale)


def _intervals(workloads, _schemes, scale) -> List[ExperimentSpec]:
    base_interval = SystemConfig.scaled().kernel.interval_ns
    specs = []
    for interval in (base_interval * 10, base_interval, base_interval / 10):
        config = SystemConfig.scaled().replace_nested(
            "kernel", interval_ns=interval
        )
        for w in workloads:
            for s in ("nomad", "memtis"):
                specs.append(ExperimentSpec.build(
                    w, s, config=config, scale=scale,
                    scheme_kwargs={"interval_ns": interval},
                ))
    return specs


def _faults(workloads, _schemes, scale) -> List[ExperimentSpec]:
    specs = []
    for preset in FAULT_PRESETS:
        spec_str = preset if preset == "none" else f"{preset}:{FAULT_OVERRIDES}"
        config = dataclasses.replace(
            SystemConfig.scaled(), faults=FaultConfig.parse(spec_str)
        )
        for w in workloads:
            for s in ("native", "pipm"):
                specs.append(ExperimentSpec.build(w, s, config=config,
                                                  scale=scale))
    return specs


def _topology(workloads, _schemes, scale) -> List[ExperimentSpec]:
    specs = []
    for preset in TOPOLOGY_PRESETS:
        fabric = FabricConfig.parse(preset)
        for hosts in TOPOLOGY_HOSTS:
            config = dataclasses.replace(
                SystemConfig.scaled(num_hosts=hosts), fabric=fabric
            )
            for w in workloads:
                for s in ("native", "memtis", "pipm"):
                    specs.append(ExperimentSpec.build(w, s, config=config,
                                                      scale=scale))
    return specs


_BUILDERS = {
    "base": _base,
    "link-latency": _link_latency,
    "link-bandwidth": _link_bandwidth,
    "threshold": _threshold,
    "local-remap": _local_remap,
    "global-remap": _global_remap,
    "intervals": _intervals,
    "faults": _faults,
    "topology": _topology,
}

#: Variants that sweep a sensitivity knob (restricted workload subset).
_SENSITIVITY_VARIANTS = frozenset(
    v for v in VARIANTS if v not in ("base", "intervals")
)


def build_matrix(
    workloads: Sequence[str],
    schemes: Sequence[str] = tuple(ALL_SCHEMES),
    scale: Optional[WorkloadScale] = None,
    variants: Iterable[str] = ("base",),
    sensitivity_workloads: Optional[Sequence[str]] = None,
) -> List[ExperimentSpec]:
    """Expand (workloads x schemes x variants) into deduplicated specs.

    Sensitivity variants (link/threshold/remap/fault sweeps) run over
    ``sensitivity_workloads`` — by default the intersection of
    ``workloads`` with the figures' :data:`SENSITIVITY_WORKLOADS` subset,
    falling back to ``workloads`` when the intersection is empty.
    """
    if scale is None:
        scale = WorkloadScale.default()
    if sensitivity_workloads is None:
        sensitivity_workloads = [
            w for w in workloads if w in SENSITIVITY_WORKLOADS
        ] or list(workloads)
    specs: Dict[str, ExperimentSpec] = {}
    for variant in variants:
        try:
            builder = _BUILDERS[variant]
        except KeyError:
            raise ValueError(
                f"unknown sweep variant {variant!r}; choose from "
                f"{sorted(_BUILDERS)}"
            ) from None
        subset = (
            sensitivity_workloads
            if variant in _SENSITIVITY_VARIANTS
            else workloads
        )
        for spec in builder(subset, schemes, scale):
            specs.setdefault(spec.key(), spec)
    return list(specs.values())
