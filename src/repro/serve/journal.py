"""Service journal: every spec state transition, compactable and durable.

The sweep journal (:mod:`repro.sweep.journal`) records one outcome per
spec per invocation; a *service* needs more: every transition a spec
makes through the daemon — ``submitted`` → ``admitted`` → ``running`` →
``done``/``failed``/``quarantined`` — must hit disk before the service
acts on it, so a ``kill -9`` at any instant leaves a log from which the
next start rebuilds the exact pending set.

Same durability design as the sweep journal:

* **Append-only JSONL**, one ``os.write`` on an ``O_APPEND`` descriptor
  per event — sub-``PIPE_BUF`` appends are atomic, so a torn final line
  can only be the result of a writer killed mid-write, and the reader
  skips it.
* **Fold, don't scan**: readers fold the log into one
  :class:`SpecState` per key plus running totals.

What a service adds is **compaction**: across weeks of uptime the
transition log would grow without bound, so once it passes a line
threshold the folded state is rewritten as a single ``snapshot`` record
via temp-file + ``os.replace`` (atomic — a kill mid-compaction leaves
either the old journal or the new one, never a torn hybrid).  Folded
per-key execution counters (``runs``, ``cache_hits``) survive
compaction, so duplicate-execution accounting works across any number
of restarts and compactions.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, Iterator, List, Optional, Union

from ..sweep.store import atomic_write_bytes

#: Journal format version; bump on layout changes.
SERVICE_JOURNAL_VERSION = 1

#: Sidecar filename under the service root.
SERVICE_JOURNAL_NAME = "service-journal.jsonl"

#: Spec lifecycle states.  ``done`` and ``lost`` are terminal;
#: everything else is re-enqueued (through the breaker gate) on restart.
STATES = (
    "submitted",     # picked up from the spool, payload persisted
    "admitted",      # entered the bounded queue
    "running",       # handed to a supervised worker batch
    "done",          # result published (cache_hit says whether it ran)
    "failed",        # one dispatch exhausted its supervisor retries
    "quarantined",   # circuit breaker opened; parked until a probe
    "probing",       # half-open probe dispatched
    "lost",          # spec payload unrecoverable; terminal with error
)

TERMINAL_STATES = frozenset(("done", "lost"))


@dataclass
class SpecState:
    """Folded view of one spec: last state plus cumulative counters."""

    key: str
    label: str = ""
    state: str = "submitted"
    attempts: int = 0       # attempts of the most recent dispatch
    failures: int = 0       # consecutive exhausted dispatches (breaker)
    opens: int = 0          # times this spec's breaker has tripped
    runs: int = 0           # cumulative real executions (not cache hits)
    cache_hits: int = 0     # cumulative cache-hit completions
    error: Optional[str] = None

    @property
    def terminal(self) -> bool:
        return self.state in TERMINAL_STATES

    def to_dict(self) -> Dict[str, Any]:
        payload: Dict[str, Any] = {
            "key": self.key, "label": self.label, "state": self.state,
            "attempts": self.attempts, "failures": self.failures,
            "opens": self.opens, "runs": self.runs,
            "cache_hits": self.cache_hits,
        }
        if self.error is not None:
            payload["error"] = self.error
        return payload

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "SpecState":
        return cls(
            key=str(data["key"]),
            label=str(data.get("label", "")),
            state=str(data.get("state", "submitted")),
            attempts=int(data.get("attempts", 0)),
            failures=int(data.get("failures", 0)),
            opens=int(data.get("opens", 0)),
            runs=int(data.get("runs", 0)),
            cache_hits=int(data.get("cache_hits", 0)),
            error=data.get("error"),
        )


@dataclass
class ServiceView:
    """Everything a fold of the journal yields."""

    entries: Dict[str, SpecState] = field(default_factory=dict)
    totals: Dict[str, int] = field(default_factory=dict)
    epoch: int = 0          # service starts recorded (survives compaction)
    compactions: int = 0
    lines: int = 0          # physical lines folded (compaction trigger)

    def bump(self, counter: str, by: int = 1) -> None:
        self.totals[counter] = self.totals.get(counter, 0) + by


class ServiceJournal:
    """Append-only per-spec transition log with atomic compaction."""

    def __init__(self, root: Union[str, Path]) -> None:
        self.root = Path(root)
        self.path = self.root / SERVICE_JOURNAL_NAME

    # -- writing ---------------------------------------------------------
    def _append(self, payload: Dict[str, Any]) -> None:
        line = json.dumps(payload, sort_keys=True, separators=(",", ":"))
        self.root.mkdir(parents=True, exist_ok=True)
        fd = os.open(
            self.path, os.O_WRONLY | os.O_APPEND | os.O_CREAT, 0o644
        )
        try:
            os.write(fd, line.encode("utf-8") + b"\n")
        finally:
            os.close(fd)

    def epoch(self, pid: int) -> None:
        """Mark one service start."""
        self._append({
            "v": SERVICE_JOURNAL_VERSION, "event": "epoch", "pid": pid,
        })

    def transition(
        self,
        key: str,
        state: str,
        label: str = "",
        attempts: int = 0,
        failures: int = 0,
        opens: int = 0,
        cache_hit: bool = False,
        error: Optional[str] = None,
    ) -> None:
        """Append one spec state transition."""
        if state not in STATES:
            raise ValueError(f"state must be one of {STATES}, got {state!r}")
        payload: Dict[str, Any] = {
            "v": SERVICE_JOURNAL_VERSION,
            "event": "state",
            "key": key,
            "state": state,
        }
        if label:
            payload["label"] = label
        if attempts:
            payload["attempts"] = attempts
        if failures:
            payload["failures"] = failures
        if opens:
            payload["opens"] = opens
        if cache_hit:
            payload["cache_hit"] = True
        if error is not None:
            payload["error"] = error[-2000:]
        self._append(payload)

    def reject(self, reason: str, key: str = "", detail: str = "") -> None:
        """Record a refused submission (never enters per-key state)."""
        payload: Dict[str, Any] = {
            "v": SERVICE_JOURNAL_VERSION,
            "event": "reject",
            "reason": reason,
        }
        if key:
            payload["key"] = key
        if detail:
            payload["detail"] = detail[-500:]
        self._append(payload)

    # -- reading ---------------------------------------------------------
    def _lines(self) -> Iterator[Dict[str, Any]]:
        try:
            raw = self.path.read_bytes()
        except OSError:
            return
        for line in raw.splitlines():
            if not line.strip():
                continue
            try:
                yield json.loads(line)
            except json.JSONDecodeError:
                # Torn tail: the writer died mid-append.  The transition
                # is lost, which is safe — the spec it described either
                # re-enqueues (non-terminal fold) or dedups via the
                # result store on the next start.
                continue

    def fold(self) -> ServiceView:
        """Fold the log (snapshot + subsequent appends) into one view."""
        view = ServiceView()
        for payload in self._lines():
            view.lines += 1
            event = payload.get("event")
            if event == "snapshot":
                view.entries = {
                    e["key"]: SpecState.from_dict(e)
                    for e in payload.get("entries", [])
                    if e.get("key")
                }
                view.totals = {
                    str(k): int(v)
                    for k, v in (payload.get("totals") or {}).items()
                }
                view.epoch = int(payload.get("epoch", view.epoch))
                view.compactions = int(
                    payload.get("compactions", view.compactions)
                )
                continue
            if event == "epoch":
                view.epoch += 1
                continue
            if event == "reject":
                view.bump("rejected")
                continue
            if event != "state":
                continue
            key = payload.get("key")
            state = payload.get("state")
            if not key or state not in STATES:
                continue
            entry = view.entries.get(key)
            if entry is None:
                entry = SpecState(key=key)
                view.entries[key] = entry
            entry.state = state
            if payload.get("label"):
                entry.label = str(payload["label"])
            entry.attempts = int(payload.get("attempts", 0))
            if "failures" in payload:
                entry.failures = int(payload["failures"])
            if "opens" in payload:
                entry.opens = int(payload["opens"])
            entry.error = payload.get("error", entry.error)
            view.bump(state)
            if state == "done":
                entry.failures = 0
                if payload.get("cache_hit"):
                    entry.cache_hits += 1
                    view.bump("cache_hit_completions")
                else:
                    entry.runs += 1
                    view.bump("executions")
        return view

    def line_count(self) -> int:
        try:
            raw = self.path.read_bytes()
        except OSError:
            return 0
        return raw.count(b"\n") + (
            1 if raw and not raw.endswith(b"\n") else 0
        )

    # -- compaction ------------------------------------------------------
    def compact(self) -> int:
        """Atomically rewrite the log as one folded ``snapshot`` record.

        Returns the number of physical lines folded away.  The rewrite
        goes through a temp file + ``os.replace``: a crash at any point
        leaves either the old journal or the compacted one intact.
        Terminal ``done`` entries stay in the snapshot (they carry the
        ``runs``/``cache_hits`` accounting), so the compacted size is
        bounded by the number of *distinct* specs ever tracked, not by
        the number of transitions.
        """
        view = self.fold()
        snapshot = {
            "v": SERVICE_JOURNAL_VERSION,
            "event": "snapshot",
            "epoch": view.epoch,
            "compactions": view.compactions + 1,
            "totals": view.totals,
            "entries": [
                view.entries[key].to_dict()
                for key in sorted(view.entries)
            ],
        }
        line = json.dumps(snapshot, sort_keys=True, separators=(",", ":"))
        atomic_write_bytes(self.path, line.encode("utf-8") + b"\n")
        return max(0, view.lines - 1)

    def cleanup_temp(self) -> int:
        """Remove temp files left by a writer killed mid-compaction."""
        removed = 0
        if self.root.is_dir():
            for path in self.root.glob(f".{SERVICE_JOURNAL_NAME}.*.tmp"):
                try:
                    path.unlink()
                    removed += 1
                except OSError:
                    pass
        return removed

    def clear(self) -> None:
        try:
            self.path.unlink()
        except OSError:
            pass
