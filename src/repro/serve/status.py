"""Liveness and health reporting for the experiment service.

The daemon publishes a ``status.json`` under its root on every tick
(atomic temp-file + ``os.replace``, so readers never see a torn file);
``python -m repro serve status`` folds in a PID liveness probe so an
operator can tell "healthy", "draining", "exited cleanly", and "died
without drain" apart at a glance.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, Optional, Union

from ..sweep.store import atomic_write_json

STATUS_NAME = "status.json"

#: Service lifecycle states published in status.json.
SERVICE_STATES = ("starting", "running", "draining", "drained")


@dataclass
class ServiceStatus:
    """One published health snapshot."""

    pid: int
    state: str  # one of SERVICE_STATES
    epoch: int  # service starts recorded in the journal
    tick: int   # loop iterations this start (liveness counter)
    queue_depth: int = 0
    spool_backlog: int = 0
    in_flight: int = 0
    quarantined: int = 0
    journal_lines: int = 0
    compactions: int = 0
    totals: Dict[str, int] = field(default_factory=dict)
    breakers: Dict[str, Dict[str, Any]] = field(default_factory=dict)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "pid": self.pid, "state": self.state, "epoch": self.epoch,
            "tick": self.tick, "queue_depth": self.queue_depth,
            "spool_backlog": self.spool_backlog,
            "in_flight": self.in_flight,
            "quarantined": self.quarantined,
            "journal_lines": self.journal_lines,
            "compactions": self.compactions,
            "totals": self.totals, "breakers": self.breakers,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "ServiceStatus":
        return cls(
            pid=int(data.get("pid", 0)),
            state=str(data.get("state", "starting")),
            epoch=int(data.get("epoch", 0)),
            tick=int(data.get("tick", 0)),
            queue_depth=int(data.get("queue_depth", 0)),
            spool_backlog=int(data.get("spool_backlog", 0)),
            in_flight=int(data.get("in_flight", 0)),
            quarantined=int(data.get("quarantined", 0)),
            journal_lines=int(data.get("journal_lines", 0)),
            compactions=int(data.get("compactions", 0)),
            totals={
                str(k): int(v)
                for k, v in (data.get("totals") or {}).items()
            },
            breakers=dict(data.get("breakers") or {}),
        )


def status_path(root: Union[str, Path]) -> Path:
    return Path(root) / STATUS_NAME


def write_status(root: Union[str, Path], status: ServiceStatus) -> None:
    atomic_write_json(status_path(root), status.to_dict())


def read_status(root: Union[str, Path]) -> Optional[ServiceStatus]:
    try:
        data = json.loads(status_path(root).read_text())
    except (OSError, json.JSONDecodeError):
        return None
    return ServiceStatus.from_dict(data)


def pid_alive(pid: int) -> bool:
    """Best-effort liveness probe for the publishing process."""
    if pid <= 0:
        return False
    try:
        os.kill(pid, 0)
    except ProcessLookupError:
        return False
    except PermissionError:
        return True  # exists, owned by someone else
    except OSError:
        return False
    return True


def format_status(status: ServiceStatus, alive: Optional[bool]) -> str:
    """Human-readable status block for the CLI."""
    if alive is None:
        liveness = "unknown"
    elif alive:
        liveness = "alive"
    elif status.state == "drained":
        liveness = "exited after drain"
    else:
        liveness = "DEAD (no drain recorded; restart to resume)"
    lines = [
        f"service      : {status.state} (pid {status.pid}: {liveness})",
        f"epoch        : {status.epoch} start(s), tick {status.tick}",
        f"queue        : {status.queue_depth} queued, "
        f"{status.spool_backlog} spooled, {status.in_flight} in flight, "
        f"{status.quarantined} quarantined",
        f"journal      : {status.journal_lines} line(s), "
        f"{status.compactions} compaction(s)",
    ]
    if status.totals:
        totals = ", ".join(
            f"{k}={v}" for k, v in sorted(status.totals.items())
        )
        lines.append(f"totals       : {totals}")
    for key, info in sorted(status.breakers.items()):
        lines.append(
            f"breaker      : {key[:16]} {info.get('state', '?')} "
            f"(failures {info.get('failures', 0)}, "
            f"opens {info.get('opens', 0)}, "
            f"retry in {info.get('remaining_s', 0.0):.1f}s)"
        )
    return "\n".join(lines)
