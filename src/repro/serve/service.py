"""The always-on experiment service: spool in, journal everything.

``python -m repro serve run`` turns the PR 2/4 substrate — the
crash-isolated :class:`~repro.sweep.supervisor.JobSupervisor`, the
content-addressed :class:`~repro.sweep.store.ResultStore`, and the
append-only journal discipline — into a persistent daemon.

Service root layout::

    <root>/
      spool/                 incoming submissions (clients write
                             atomically; the service retires files it
                             has durably accepted)
      specs/                 accepted spec payloads, one <key>.json each
                             (what restart recovery re-enqueues from)
      rejected/              unparseable submissions, moved aside
      cache/                 ResultStore + TraceStore (unless an
                             external --cache-dir is shared)
      service-journal.jsonl  every state transition (compactable)
      status.json            health snapshot, refreshed every tick

Robustness invariants, in order of the crash windows they close:

* A submission is *accepted* only after its payload is atomically
  persisted under ``specs/`` **and** its ``submitted`` transition is on
  disk; only then is the spool file retired.  A kill between any two of
  those steps re-converges on restart (re-ingest is idempotent by
  content key).
* Every transition is journalled **before** the service acts on it, so
  ``kill -9`` at any instant leaves a journal from which the next start
  rebuilds the exact pending set.  Completed specs are never re-run:
  recovery dedups against the result store first.
* Admission is a bounded queue — when it is full the service simply
  stops draining the spool (backpressure on disk, not in memory).
* A spec that repeatedly exhausts its supervisor retries trips a
  per-spec circuit breaker and is parked, costing zero slots, until a
  half-open probe readmits it (see :mod:`repro.serve.breaker`).
* SIGTERM/SIGINT request a graceful drain: stop admitting, finish the
  in-flight batch, journal, publish a final ``drained`` status, exit 0.
* The journal is compacted (atomic rewrite of the folded state) once it
  passes ``compact_every`` lines, so weeks of uptime cannot grow it
  without bound.
"""

from __future__ import annotations

import json
import os
import signal as signal_module
from collections import deque
from pathlib import Path
from time import monotonic, sleep
from typing import Callable, Deque, Dict, List, Optional, Set, Tuple, Union

from ..config import ServeConfig
from ..sweep import ExperimentSpec, Job, JobSupervisor, ResultStore, SupervisorPolicy, TraceStore, run_spec
from ..sweep.store import atomic_write_json
from .admission import AdmissionQueue
from .breaker import CLOSED, OPEN, BreakerBoard
from .journal import ServiceJournal
from .status import ServiceStatus, write_status

SPOOL_DIR = "spool"
SPECS_DIR = "specs"
REJECTED_DIR = "rejected"
CACHE_DIR = "cache"

#: Non-terminal states that mean "already tracked; drop duplicates".
_PENDING_STATES = frozenset(
    ("submitted", "admitted", "running", "failed", "probing")
)


def _execute_spec(payload: Tuple[Dict, str]) -> Dict:
    """Worker body: one supervised attempt at one spec."""
    spec_dict, cache_dir = payload
    spec = ExperimentSpec.from_dict(spec_dict)
    outcome = run_spec(spec, cache_dir)
    return {
        "cache_hit": outcome.report.cache_hit,
        "elapsed_s": outcome.report.elapsed_s,
        "exec_time_ns": outcome.report.exec_time_ns,
    }


def submit_spec(root: Union[str, Path], spec: ExperimentSpec) -> Path:
    """Client side: atomically drop ``spec`` into a service's spool.

    The file is named by content key, so resubmitting an identical spec
    overwrites its own pending submission instead of duplicating it.
    """
    path = Path(root) / SPOOL_DIR / f"{spec.key()}.json"
    atomic_write_json(path, spec.to_dict())
    return path


class ExperimentService:
    """Long-running spec scheduler over the crash-isolated substrate."""

    def __init__(
        self,
        root: Union[str, Path],
        config: Optional[ServeConfig] = None,
        cache_dir: Optional[Union[str, Path]] = None,
        clock: Callable[[], float] = monotonic,
    ) -> None:
        self.root = Path(root)
        self.config = config or ServeConfig()
        self.config.validate()
        self.spool = self.root / SPOOL_DIR
        self.specs_dir = self.root / SPECS_DIR
        self.rejected_dir = self.root / REJECTED_DIR
        self.cache_dir = str(cache_dir or self.root / CACHE_DIR)
        self.journal = ServiceJournal(self.root)
        self.store = ResultStore(self.cache_dir)
        self.queue = AdmissionQueue(self.config.queue_limit)
        self.breakers = BreakerBoard(
            self.config.breaker_threshold,
            self.config.breaker_cooldown_s,
            self.config.breaker_cooldown_max_s,
            clock=clock,
        )
        self.policy = SupervisorPolicy(
            timeout_s=self.config.timeout_s,
            retries=self.config.retries,
            backoff_s=self.config.backoff_s,
            max_backoff_s=self.config.max_backoff_s,
            jitter=0.2,
        )
        self.policy.validate()
        # In-memory mirrors of journalled state (rebuilt by _recover).
        self._known: Dict[str, str] = {}  # key -> last journalled state
        self._labels: Dict[str, str] = {}
        self._backlog: Deque[str] = deque()  # keys awaiting queue room
        self._quarantined: Set[str] = set()
        self._drain = False
        self._tick = 0
        self._epoch = 0
        self._in_flight = 0

    # -- lifecycle -------------------------------------------------------
    def request_drain(self) -> None:
        """Stop admitting; finish in-flight work; then exit cleanly."""
        self._drain = True

    def run(
        self,
        *,
        max_ticks: Optional[int] = None,
        exit_when_idle: bool = False,
        install_signals: bool = False,
        progress: Optional[Callable[[str], None]] = None,
    ) -> int:
        """The service loop.  Returns 0 on a clean drain/idle exit."""
        say = progress or (lambda _line: None)
        self._ensure_dirs()
        self.journal.cleanup_temp()
        self.store.purge_temp()
        TraceStore(self.cache_dir).purge_temp()
        self.journal.epoch(os.getpid())
        self._write_status("starting")
        self._recover(say)
        previous_handlers = (
            self._install_signals() if install_signals else None
        )
        try:
            while True:
                self._tick += 1
                if not self._drain:
                    self._admit_backlog()
                    self._ingest_spool(say)
                    self._probe_quarantined(say)
                batch = self.queue.take(self.config.slots)
                if batch:
                    self._run_batch(batch, say)
                self._maybe_compact(say)
                idle = (
                    not batch
                    and not len(self.queue)
                    and not self._backlog
                    and not self._spool_backlog()
                )
                self._write_status(
                    "draining" if self._drain else "running"
                )
                if self._drain and not len(self.queue):
                    break
                if exit_when_idle and idle:
                    break
                if max_ticks is not None and self._tick >= max_ticks:
                    break
                if idle:
                    sleep(self.config.tick_s)
        finally:
            if previous_handlers is not None:
                self._restore_signals(previous_handlers)
        self._write_status("drained")
        say(f"drained after tick {self._tick}; journal "
            f"{self.journal.line_count()} line(s)")
        return 0

    def _ensure_dirs(self) -> None:
        for directory in (
            self.root, self.spool, self.specs_dir, self.rejected_dir
        ):
            directory.mkdir(parents=True, exist_ok=True)

    def _install_signals(self):
        previous = {}

        def _on_signal(_signum, _frame):
            self._drain = True

        for sig in (signal_module.SIGTERM, signal_module.SIGINT):
            previous[sig] = signal_module.signal(sig, _on_signal)
        return previous

    def _restore_signals(self, previous) -> None:
        for sig, handler in previous.items():
            signal_module.signal(sig, handler)

    # -- recovery --------------------------------------------------------
    def _recover(self, say) -> None:
        """Rebuild the pending set from the journal after any death."""
        view = self.journal.fold()
        self._epoch = view.epoch
        resumed = completed = parked = 0
        for key in sorted(view.entries):
            entry = view.entries[key]
            self._labels[key] = entry.label
            self._known[key] = entry.state
            if entry.failures or entry.opens:
                self.breakers.get(key).restore(
                    OPEN if entry.state in ("quarantined", "probing")
                    else CLOSED,
                    entry.failures, entry.opens,
                )
            if entry.terminal:
                continue
            if key in self.store:
                # The worker published its result but the kill landed
                # before the ``done`` transition: complete it now as a
                # cache hit — never a second execution.
                self._transition(key, "done", cache_hit=True)
                completed += 1
                continue
            if entry.state in ("quarantined", "probing"):
                if entry.state == "probing":
                    # The probe died with the service; park again.
                    self._transition(
                        key, "quarantined",
                        failures=entry.failures, opens=entry.opens,
                    )
                self._quarantined.add(key)
                parked += 1
                continue
            if not self._payload_path(key).exists():
                self._transition(
                    key, "lost", error="spec payload missing from specs/"
                )
                continue
            self._backlog.append(key)
            resumed += 1
        if resumed or completed or parked:
            say(f"recovered: {resumed} pending, {completed} completed "
                f"while down, {parked} quarantined")

    # -- admission -------------------------------------------------------
    def _payload_path(self, key: str) -> Path:
        return self.specs_dir / f"{key}.json"

    def _load_payload(self, key: str) -> Optional[Dict]:
        try:
            return json.loads(self._payload_path(key).read_text())
        except (OSError, json.JSONDecodeError):
            return None

    def _spool_backlog(self) -> int:
        try:
            return sum(1 for _ in self.spool.glob("*.json"))
        except OSError:
            return 0

    def _admit_backlog(self) -> None:
        """Re-admit recovered/retryable keys while the queue has room."""
        while self._backlog and not self.queue.full:
            key = self._backlog.popleft()
            payload = self._load_payload(key)
            if payload is None:
                self._transition(
                    key, "lost", error="spec payload missing from specs/"
                )
                continue
            if self.queue.offer(key, payload).admitted:
                self._transition(key, "admitted")

    def _ingest_spool(self, say) -> None:
        """Drain the spool into the queue, stopping at capacity."""
        try:
            pending = sorted(self.spool.glob("*.json"))
        except OSError:
            return
        for path in pending:
            if self.queue.full:
                break  # backpressure: later submissions stay on disk
            self._ingest_one(path, say)

    def _ingest_one(self, path: Path, say) -> None:
        try:
            data = json.loads(path.read_text())
            spec = ExperimentSpec.from_dict(
                data.get("spec", data) if isinstance(data, dict) else data
            )
        except Exception as exc:
            self._reject_file(path, "invalid", repr(exc), say)
            return
        key = spec.key()
        label = spec.label()
        self._labels[key] = label
        known = self._known.get(key)
        if known == "quarantined":
            self.journal.reject("quarantined", key=key)
            self._retire(path)
            return
        if known in _PENDING_STATES:
            self.journal.reject("duplicate", key=key)
            self._retire(path)
            return
        if key in self.store:
            # Dedup against the content-addressed cache: completes
            # instantly, whether or not this service ran it.
            self._transition(key, "submitted", label=label)
            self._transition(key, "done", cache_hit=True)
            self._retire(path)
            say(f"  [hit ] {label}")
            return
        # Accept durably: payload, then journal, then retire the spool
        # file.  A kill between any two steps re-converges on restart.
        atomic_write_json(self._payload_path(key), spec.to_dict())
        self._transition(key, "submitted", label=label)
        self._retire(path)
        if self.queue.offer(key, spec.to_dict()).admitted:
            self._transition(key, "admitted")
            say(f"  [adm ] {label}")
        else:  # duplicate in queue; the journal already tracks it
            self.journal.reject("duplicate", key=key)

    def _reject_file(self, path: Path, reason: str, detail: str,
                     say) -> None:
        target = self.rejected_dir / path.name
        try:
            os.replace(path, target)
        except OSError:
            self._retire(path)
        self.journal.reject(reason, detail=detail)
        say(f"  [rej ] {path.name}: {reason} ({detail})")

    @staticmethod
    def _retire(path: Path) -> None:
        try:
            path.unlink()
        except OSError:
            pass

    # -- breaker probes --------------------------------------------------
    def _probe_quarantined(self, say) -> None:
        for key in sorted(self._quarantined):
            if self.queue.full:
                break
            breaker = self.breakers.get(key)
            if breaker.admit() != "probe":
                continue
            payload = self._load_payload(key)
            if payload is None:
                self._quarantined.discard(key)
                self._transition(
                    key, "lost", error="spec payload missing from specs/"
                )
                continue
            self._quarantined.discard(key)
            if self.queue.offer(key, payload).admitted:
                self._transition(
                    key, "probing",
                    failures=breaker.failures, opens=breaker.opens,
                )
                say(f"  [prb ] {self._labels.get(key, key)}")

    # -- execution -------------------------------------------------------
    def _run_batch(self, batch: List[Tuple[str, Dict]], say) -> None:
        jobs = []
        for key, payload in batch:
            self._transition(key, "running")
            jobs.append(Job(
                key=key, label=self._labels.get(key, key),
                payload=(payload, self.cache_dir),
            ))
        self._in_flight = len(jobs)
        supervisor = JobSupervisor(
            _execute_spec, slots=self.config.slots, policy=self.policy
        )
        outcomes = supervisor.run(jobs)
        try:
            for outcome in outcomes:
                self._settle(outcome, say)
                self._in_flight -= 1
                self._write_status(
                    "draining" if self._drain else "running"
                )
        finally:
            self._in_flight = 0
            outcomes.close()

    def _settle(self, outcome, say) -> None:
        key = outcome.key
        label = self._labels.get(key, key)
        breaker = self.breakers.get(key)
        if outcome.ok:
            breaker.record_success()
            info = outcome.result or {}
            cache_hit = bool(info.get("cache_hit", False))
            self._transition(
                key, "done", attempts=outcome.attempts,
                cache_hit=cache_hit,
            )
            state = "hit " if cache_hit else "done"
            say(f"  [{state}] {label} (attempts {outcome.attempts})")
            return
        failure = outcome.failure
        breaker.record_failure()
        tail = failure.error.strip().splitlines()
        error = tail[-1] if tail else failure.status
        if breaker.state == OPEN:
            self._transition(
                key, "quarantined", attempts=failure.attempts,
                failures=breaker.failures, opens=breaker.opens,
                error=error,
            )
            self._quarantined.add(key)
            say(f"  [QUAR] {label}: breaker open after "
                f"{breaker.failures} exhausted dispatch(es); retry in "
                f"{breaker.remaining_s():.1f}s")
        else:
            self._transition(
                key, "failed", attempts=failure.attempts,
                failures=breaker.failures, error=error,
            )
            self._backlog.append(key)
            say(f"  [FAIL] {label}: {failure.status} "
                f"(dispatch failures {breaker.failures}/"
                f"{breaker.threshold})")

    # -- journal/status plumbing ----------------------------------------
    def _transition(self, key: str, state: str, label: str = "",
                    **kwargs) -> None:
        self.journal.transition(
            key, state, label=label or self._labels.get(key, ""),
            **kwargs,
        )
        self._known[key] = state

    def _maybe_compact(self, say) -> None:
        if self.journal.line_count() < self.config.compact_every:
            return
        folded = self.journal.compact()
        say(f"  [compact] folded {folded} journal line(s)")

    def _write_status(self, state: str) -> None:
        view = self.journal.fold()
        breakers = {
            key: {
                "state": b.state,
                "failures": b.failures,
                "opens": b.opens,
                "remaining_s": round(b.remaining_s(), 3),
            }
            for key, b in self.breakers.non_closed().items()
        }
        write_status(self.root, ServiceStatus(
            pid=os.getpid(),
            state=state,
            epoch=self._epoch or view.epoch,
            tick=self._tick,
            queue_depth=len(self.queue),
            spool_backlog=self._spool_backlog(),
            in_flight=self._in_flight,
            quarantined=len(self._quarantined),
            journal_lines=view.lines,
            compactions=view.compactions,
            totals=view.totals,
            breakers=breakers,
        ))
