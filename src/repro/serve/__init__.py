"""Always-on experiment service over the crash-isolated sweep substrate.

``python -m repro serve run`` keeps a daemon alive that accepts
experiment specs spooled into a watched submit directory, dedups them
against the content-addressed result cache, schedules them through the
:class:`~repro.sweep.supervisor.JobSupervisor`, and journals every state
transition so a ``kill -9`` + restart resumes exactly where it left
off.  See DESIGN.md ("Experiment service") for the lifecycle and
README.md for the ops runbook.
"""

from .admission import REASONS, AdmissionDecision, AdmissionQueue
from .breaker import CLOSED, HALF_OPEN, OPEN, BreakerBoard, CircuitBreaker
from .journal import (
    SERVICE_JOURNAL_NAME,
    STATES,
    TERMINAL_STATES,
    ServiceJournal,
    ServiceView,
    SpecState,
)
from .service import ExperimentService, submit_spec
from .status import (
    STATUS_NAME,
    ServiceStatus,
    format_status,
    pid_alive,
    read_status,
    write_status,
)

__all__ = [
    "REASONS",
    "AdmissionDecision",
    "AdmissionQueue",
    "CLOSED",
    "HALF_OPEN",
    "OPEN",
    "BreakerBoard",
    "CircuitBreaker",
    "SERVICE_JOURNAL_NAME",
    "STATES",
    "TERMINAL_STATES",
    "ServiceJournal",
    "ServiceView",
    "SpecState",
    "ExperimentService",
    "submit_spec",
    "STATUS_NAME",
    "ServiceStatus",
    "format_status",
    "pid_alive",
    "read_status",
    "write_status",
]
