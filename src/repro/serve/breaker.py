"""Per-spec circuit breakers: quarantine poison work, probe it back.

A spec that exhausts its supervisor retries once may just be unlucky; a
spec that does so *repeatedly* is poison — re-dispatching it forever
burns worker slots and starves healthy work.  The breaker is the
standard three-state machine, applied per spec key:

* **closed** — dispatches flow; consecutive exhausted dispatches are
  counted.  ``threshold`` of them trips the breaker **open**.
* **open** — the spec is quarantined: admission refuses it and the
  scheduler parks it, so it consumes zero slots.  After a cooldown the
  breaker moves to **half-open**.
* **half-open** — exactly one probe dispatch is allowed.  Success
  closes the breaker (counters reset); failure re-opens it with a
  doubled cooldown, capped at ``cooldown_max_s`` — repeated probing of
  persistent poison backs off instead of hot-looping.

Cooldowns are measured on an injectable monotonic clock (tests drive a
fake one), and never feed simulated state — this is service plumbing,
outside the determinism contract's blast radius.
"""

from __future__ import annotations

from time import monotonic
from typing import Callable, Dict, Optional

CLOSED = "closed"
OPEN = "open"
HALF_OPEN = "half-open"


class CircuitBreaker:
    """Three-state breaker for one spec key."""

    def __init__(
        self,
        threshold: int,
        cooldown_s: float,
        cooldown_max_s: float,
        clock: Callable[[], float] = monotonic,
    ) -> None:
        if threshold < 1:
            raise ValueError("threshold must be >= 1")
        if cooldown_s <= 0 or cooldown_max_s < cooldown_s:
            raise ValueError("need 0 < cooldown_s <= cooldown_max_s")
        self.threshold = threshold
        self.cooldown_s = cooldown_s
        self.cooldown_max_s = cooldown_max_s
        self._clock = clock
        self.state = CLOSED
        self.failures = 0   # consecutive exhausted dispatches
        self.opens = 0      # times tripped (drives cooldown escalation)
        self._open_until: Optional[float] = None
        self._probe_in_flight = False

    # ------------------------------------------------------------------
    def current_cooldown_s(self) -> float:
        """The cooldown a trip right now would impose (escalates)."""
        scale = 2 ** max(0, self.opens - 1)
        return min(self.cooldown_s * scale, self.cooldown_max_s)

    def remaining_s(self) -> float:
        """Seconds until an open breaker will accept a probe (0 if not open)."""
        if self.state != OPEN or self._open_until is None:
            return 0.0
        return max(0.0, self._open_until - self._clock())

    def admit(self) -> str:
        """Gate one dispatch: ``"ok"``, ``"probe"``, or ``"quarantined"``.

        Returning ``"probe"`` *commits* the half-open slot — the caller
        must dispatch and report back via :meth:`record_success` /
        :meth:`record_failure`.
        """
        if self.state == CLOSED:
            return "ok"
        if self.state == OPEN:
            if self._open_until is not None and (
                self._clock() >= self._open_until
            ):
                self.state = HALF_OPEN
                self._probe_in_flight = True
                return "probe"
            return "quarantined"
        # HALF_OPEN: one probe at a time.
        if self._probe_in_flight:
            return "quarantined"
        self._probe_in_flight = True
        return "probe"

    def record_success(self) -> None:
        self.state = CLOSED
        self.failures = 0
        self.opens = 0
        self._open_until = None
        self._probe_in_flight = False

    def record_failure(self) -> bool:
        """Count one exhausted dispatch; True when this trip opened it."""
        self.failures += 1
        if self.state == HALF_OPEN:
            self.opens += 1
            self._trip()
            return True
        if self.state == CLOSED and self.failures >= self.threshold:
            self.opens += 1
            self._trip()
            return True
        return False

    def _trip(self) -> None:
        self.state = OPEN
        self._open_until = self._clock() + self.current_cooldown_s()
        self._probe_in_flight = False

    def restore(self, state: str, failures: int, opens: int) -> None:
        """Re-arm from journalled state after a restart.

        An open breaker restarts its *current* cooldown from now — the
        old deadline was on a dead process's clock and is meaningless.
        """
        self.failures = max(0, failures)
        self.opens = max(0, opens)
        self._probe_in_flight = False
        if state == OPEN or state == HALF_OPEN:
            self.state = OPEN
            self._open_until = self._clock() + self.current_cooldown_s()
        else:
            self.state = CLOSED
            self._open_until = None


class BreakerBoard:
    """All per-spec breakers, created on first reference."""

    def __init__(
        self,
        threshold: int,
        cooldown_s: float,
        cooldown_max_s: float,
        clock: Callable[[], float] = monotonic,
    ) -> None:
        self.threshold = threshold
        self.cooldown_s = cooldown_s
        self.cooldown_max_s = cooldown_max_s
        self._clock = clock
        self._breakers: Dict[str, CircuitBreaker] = {}

    def get(self, key: str) -> CircuitBreaker:
        breaker = self._breakers.get(key)
        if breaker is None:
            breaker = CircuitBreaker(
                self.threshold, self.cooldown_s, self.cooldown_max_s,
                clock=self._clock,
            )
            self._breakers[key] = breaker
        return breaker

    def non_closed(self) -> Dict[str, CircuitBreaker]:
        """Breakers currently open or half-open (status reporting)."""
        return {
            key: b for key, b in sorted(self._breakers.items())
            if b.state != CLOSED
        }
