"""CLI surface for the experiment service: ``repro serve run|submit|status``.

Split from :mod:`repro.cli` so the top-level parser stays readable; the
main CLI wires :func:`add_serve_arguments` under its ``serve``
subcommand and dispatches to :func:`run_serve`.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import Any, Dict

from ..config import ServeConfig, SystemConfig
from ..sweep import ExperimentSpec
from ..workloads import WorkloadScale, workload_names
from .service import ExperimentService, submit_spec
from .status import format_status, pid_alive, read_status

_SCALES = ("tiny", "small", "default", "large")


def add_serve_arguments(serve: argparse.ArgumentParser) -> None:
    sub = serve.add_subparsers(dest="serve_command", required=True)

    run = sub.add_parser(
        "run",
        help="run the service loop (drains gracefully on SIGTERM/SIGINT)",
        description=(
            "Watch <dir>/spool for submitted specs, schedule them through "
            "the crash-isolated supervisor, and journal every state "
            "transition so a kill -9 + restart resumes exactly where it "
            "left off.  SIGTERM requests a graceful drain: stop "
            "admitting, finish in-flight work, flush, exit 0."
        ),
    )
    run.add_argument("--dir", required=True, dest="root",
                     help="service root (spool/, specs/, journal, status)")
    run.add_argument("--cache-dir", default=None,
                     help="shared result/trace cache "
                          "(default: <dir>/cache)")
    defaults = ServeConfig()
    run.add_argument("--slots", type=int, default=defaults.slots,
                     help=f"worker processes (default: {defaults.slots})")
    run.add_argument("--queue-limit", type=int,
                     default=defaults.queue_limit,
                     help="bounded admission queue capacity "
                          f"(default: {defaults.queue_limit})")
    run.add_argument("--tick-s", type=float, default=defaults.tick_s,
                     help="idle spool-poll period "
                          f"(default: {defaults.tick_s})")
    run.add_argument("--timeout-s", type=float, default=defaults.timeout_s,
                     help="per-attempt timeout (default: none)")
    run.add_argument("--retries", type=int, default=defaults.retries,
                     help="supervisor re-attempts per dispatch "
                          f"(default: {defaults.retries})")
    run.add_argument("--backoff-s", type=float, default=defaults.backoff_s,
                     help="supervisor retry backoff base "
                          f"(default: {defaults.backoff_s})")
    run.add_argument("--max-backoff-s", type=float,
                     default=defaults.max_backoff_s,
                     help="supervisor retry backoff cap "
                          f"(default: {defaults.max_backoff_s})")
    run.add_argument("--breaker-threshold", type=int,
                     default=defaults.breaker_threshold,
                     help="exhausted dispatches that trip a spec's "
                          f"breaker (default: {defaults.breaker_threshold})")
    run.add_argument("--breaker-cooldown-s", type=float,
                     default=defaults.breaker_cooldown_s,
                     help="first open->half-open cooldown "
                          f"(default: {defaults.breaker_cooldown_s})")
    run.add_argument("--breaker-cooldown-max-s", type=float,
                     default=defaults.breaker_cooldown_max_s,
                     help="cooldown escalation cap "
                          f"(default: {defaults.breaker_cooldown_max_s})")
    run.add_argument("--compact-every", type=int,
                     default=defaults.compact_every,
                     help="journal lines that trigger compaction "
                          f"(default: {defaults.compact_every})")
    run.add_argument("--max-ticks", type=int, default=None,
                     help="stop after N loop iterations (testing)")
    run.add_argument("--exit-when-idle", action="store_true",
                     help="exit 0 once the spool, queue, and backlog "
                          "are all empty (batch mode; quarantined specs "
                          "stay parked in the journal)")

    submit = sub.add_parser(
        "submit",
        help="build a spec and drop it into a service's spool",
    )
    submit.add_argument("--dir", required=True, dest="root")
    submit.add_argument("--spec-file", action="append", default=[],
                        metavar="FILE",
                        help="submit spec JSON file(s) verbatim "
                             "(repeatable)")
    submit.add_argument("--workload", default=None,
                        choices=workload_names())
    submit.add_argument("--scheme", default="pipm")
    submit.add_argument("--scale", default="tiny", choices=_SCALES)
    submit.add_argument("--hosts", type=int, default=4)
    submit.add_argument(
        "--scheme-kwargs", default=None, metavar="K=V[,K=V...]",
        help="extra scheme constructor kwargs (ints/floats/strings)",
    )

    status = sub.add_parser(
        "status",
        help="print the service's latest health snapshot",
    )
    status.add_argument("--dir", required=True, dest="root")
    status.add_argument("--json", action="store_true", dest="as_json")


def _parse_kwargs(raw: str) -> Dict[str, Any]:
    kwargs: Dict[str, Any] = {}
    for token in filter(None, (t.strip() for t in raw.split(","))):
        key, sep, value = token.partition("=")
        if not sep:
            raise ValueError(f"bad scheme kwarg {token!r} (want K=V)")
        value = value.strip()
        try:
            kwargs[key.strip()] = int(value)
        except ValueError:
            try:
                kwargs[key.strip()] = float(value)
            except ValueError:
                kwargs[key.strip()] = value
    return kwargs


def _cmd_run(args) -> int:
    config = ServeConfig(
        queue_limit=args.queue_limit,
        slots=args.slots,
        tick_s=args.tick_s,
        timeout_s=args.timeout_s,
        retries=args.retries,
        backoff_s=args.backoff_s,
        max_backoff_s=args.max_backoff_s,
        breaker_threshold=args.breaker_threshold,
        breaker_cooldown_s=args.breaker_cooldown_s,
        breaker_cooldown_max_s=args.breaker_cooldown_max_s,
        compact_every=args.compact_every,
    )
    config.validate()
    service = ExperimentService(
        args.root, config=config, cache_dir=args.cache_dir
    )
    print(f"serve: root {args.root}, cache {service.cache_dir}, "
          f"{config.slots} slot(s), queue limit {config.queue_limit}")
    return service.run(
        max_ticks=args.max_ticks,
        exit_when_idle=args.exit_when_idle,
        install_signals=True,
        progress=print,
    )


def _cmd_submit(args) -> int:
    specs = []
    for name in args.spec_file:
        try:
            data = json.loads(Path(name).read_text())
            specs.append(ExperimentSpec.from_dict(
                data.get("spec", data) if isinstance(data, dict) else data
            ))
        except (OSError, ValueError, KeyError, TypeError) as exc:
            print(f"error: {name}: {exc}", file=sys.stderr)
            return 2
    if args.workload is not None:
        scheme_kwargs = (
            _parse_kwargs(args.scheme_kwargs) if args.scheme_kwargs else {}
        )
        specs.append(ExperimentSpec.build(
            args.workload, args.scheme,
            config=SystemConfig.scaled(num_hosts=args.hosts),
            scale=getattr(WorkloadScale, args.scale)(),
            scheme_kwargs=scheme_kwargs,
        ))
    if not specs:
        print("error: nothing to submit (give --workload or --spec-file)",
              file=sys.stderr)
        return 2
    for spec in specs:
        path = submit_spec(args.root, spec)
        print(f"submitted {spec.key()[:16]}  {spec.label()} -> {path}")
    return 0


def _cmd_status(args) -> int:
    status = read_status(args.root)
    if status is None:
        print(f"error: no status snapshot under {args.root} "
              f"(service never started?)", file=sys.stderr)
        return 1
    alive = pid_alive(status.pid)
    if args.as_json:
        payload = status.to_dict()
        payload["alive"] = alive
        print(json.dumps(payload, sort_keys=True, indent=2))
    else:
        print(format_status(status, alive))
    # Exit 0 for a healthy or cleanly drained service; 1 for a corpse.
    return 0 if alive or status.state == "drained" else 1


def run_serve(args) -> int:
    handler = {
        "run": _cmd_run,
        "submit": _cmd_submit,
        "status": _cmd_status,
    }[args.serve_command]
    return handler(args)
