"""Bounded admission queue: backpressure instead of unbounded memory.

The service's in-memory footprint must stay bounded no matter how hard
the spool is hammered, so admission is a fixed-capacity FIFO keyed by
spec content hash.  Every offer returns an :class:`AdmissionDecision`
with a machine-readable reason; a refused offer leaves the submission
where it was (on disk, in the spool) — backpressure, not data loss.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import Any, List, Tuple

#: Machine-readable admission reasons (status/journal vocabulary).
REASONS = (
    "admitted",      # entered the queue
    "queue-full",    # bounded queue at capacity; retry later
    "duplicate",     # same key already queued (idempotent no-op)
    "cached",        # result already published; completes instantly
    "quarantined",   # circuit breaker open for this key
    "draining",      # service is shutting down; not admitting
    "invalid",       # submission did not parse into a spec
)


@dataclass(frozen=True)
class AdmissionDecision:
    """Outcome of one admission attempt."""

    admitted: bool
    reason: str  # one of REASONS
    detail: str = ""

    def __post_init__(self) -> None:
        if self.reason not in REASONS:
            raise ValueError(
                f"reason must be one of {REASONS}, got {self.reason!r}"
            )


def admitted() -> AdmissionDecision:
    return AdmissionDecision(True, "admitted")


def rejected(reason: str, detail: str = "") -> AdmissionDecision:
    return AdmissionDecision(False, reason, detail)


class AdmissionQueue:
    """Fixed-capacity FIFO of (key, payload), deduplicated by key."""

    def __init__(self, limit: int) -> None:
        if limit < 1:
            raise ValueError("limit must be >= 1")
        self.limit = limit
        self._items: "OrderedDict[str, Any]" = OrderedDict()

    def __len__(self) -> int:
        return len(self._items)

    def __contains__(self, key: str) -> bool:
        return key in self._items

    @property
    def full(self) -> bool:
        return len(self._items) >= self.limit

    @property
    def room(self) -> int:
        return max(0, self.limit - len(self._items))

    def offer(self, key: str, payload: Any) -> AdmissionDecision:
        """Try to enqueue; never blocks, never grows past ``limit``."""
        if key in self._items:
            return rejected("duplicate", "already queued")
        if self.full:
            return rejected(
                "queue-full", f"queue at capacity ({self.limit})"
            )
        self._items[key] = payload
        return admitted()

    def take(self, count: int) -> List[Tuple[str, Any]]:
        """Dequeue up to ``count`` items in FIFO order."""
        batch: List[Tuple[str, Any]] = []
        while self._items and len(batch) < count:
            batch.append(self._items.popitem(last=False))
        return batch

    def keys(self) -> List[str]:
        return list(self._items)
