"""OS-skew ablation: PIPM's majority-vote policy + kernel migration mechanism.

Separates the *policy* contribution from the *mechanism* contribution
(Section 5.2.2): pages are selected with exactly PIPM's Boyer-Moore
majority vote (so migrations are inter-host-aware and rarely harmful), but
data still moves with conventional whole-page kernel migration at interval
granularity — page-table updates, TLB shootdowns, full 4 KB transfers, and
non-cacheable inter-host access to migrated pages.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from ..config import PipmConfig
from ..pipm.majority_vote import MajorityVote, VoteDecision
from ..pipm.remap_global import NO_HOST, GlobalRemapEntry
from .base import IntervalSchemeBase, MigrationPlan


class OsSkewScheme(IntervalSchemeBase):
    """Majority-vote page selection, kernel page movement."""

    name = "os-skew"
    initiator_cost_scale = 1.0
    free_clean_demotions = False

    def __init__(
        self,
        interval_ns: Optional[float] = None,
        max_pages_per_interval: int = 512,
        pipm_config: Optional[PipmConfig] = None,
    ) -> None:
        super().__init__(interval_ns, max_pages_per_interval)
        self.pipm_config = pipm_config if pipm_config is not None else PipmConfig()
        self.vote = MajorityVote(self.pipm_config)
        self._entries: Dict[int, GlobalRemapEntry] = {}
        self._local_counters: Dict[int, int] = {}
        self._pending_promotions: List[Tuple[int, int]] = []
        self._pending_demotions: List[Tuple[int, int]] = []
        self._queued: set = set()
        self._migrated: Dict[int, int] = {}
        #: revoked pages sit out this many intervals before re-promotion —
        #: hysteresis against promote/revoke churn on contested pages.
        self.revoke_cooldown_intervals = 5
        self._cooldown: Dict[int, int] = {}
        self._interval_index = 0

    def _entry(self, page: int) -> GlobalRemapEntry:
        entry = self._entries.get(page)
        if entry is None:
            entry = GlobalRemapEntry()
            self._entries[page] = entry
        return entry

    def observe_shared_access(
        self, host: int, page: int, now: float, is_write: bool
    ) -> None:
        super().observe_shared_access(host, page, now, is_write)
        owner = self._migrated.get(page)
        if owner is None:
            if page in self._queued or page in self._cooldown:
                return
            entry = self._entry(page)
            if self.vote.on_cxl_access(entry, host) is VoteDecision.PROMOTE:
                self._pending_promotions.append((page, entry.candidate_host))
                self._queued.add(page)
            return
        # Migrated page: maintain the page-level local counter.
        counter = self._local_counters.get(
            page, self.pipm_config.migration_threshold
        )
        if host == owner:
            counter = min(counter + 1, self.pipm_config.local_counter_max)
        else:
            counter -= 1
            if counter <= 0 and page not in self._queued:
                self._pending_demotions.append((page, owner))
                self._queued.add(page)
                counter = 0
        self._local_counters[page] = counter

    def plan_interval(
        self,
        now: float,
        page_locations: Dict[int, int],
        frames_free: Dict[int, int],
    ) -> MigrationPlan:
        plan = MigrationPlan()
        self._interval_index += 1
        expired = [
            page for page, until in self._cooldown.items()
            if until <= self._interval_index
        ]
        for page in expired:
            del self._cooldown[page]
        free = dict(frames_free)
        budget = self.max_pages_per_interval
        for page, host in self._pending_demotions:
            if self._migrated.get(page) == host:
                plan.demotions.append((page, host))
                free[host] = free.get(host, 0) + 1
        for page, host in self._pending_promotions[:budget]:
            if free.get(host, 0) <= 0:
                continue
            free[host] -= 1
            plan.promotions.append((page, host))
        # Commit local bookkeeping of what will move.
        for page, host in plan.promotions:
            self._migrated[page] = host
            self._entry(page).current_host = host
            self._local_counters[page] = self.pipm_config.migration_threshold
        for page, host in plan.demotions:
            self._migrated.pop(page, None)
            self._local_counters.pop(page, None)
            self.vote.revoke(self._entry(page))
            self._cooldown[page] = (
                self._interval_index + self.revoke_cooldown_intervals
            )
        self._pending_promotions.clear()
        self._pending_demotions.clear()
        self._queued.clear()
        return plan
