"""Nomad (OSDI'24): recency-based tiering with transactional migration.

Policy: pages touched repeatedly during the last interval are promotion
candidates, most-recently-accessed first — the classic active/inactive-list
recency signal (TPP lineage).  Resident pages demote when they have not
been touched for ``demote_after_intervals`` intervals (inactive-list
aging), a *time*-based window deliberately long enough that streaming
passes with long reuse periods survive.

Mechanism: Nomad's *transactional, non-exclusive* page migration keeps a
shadow copy in CXL memory, so (a) the initiating core is not stalled for
the full kernel path — modelled as a reduced initiator cost — and (b)
demoting a page that was never written while local is transfer-free.
"""

from __future__ import annotations

from typing import Dict, Optional

from .base import IntervalSchemeBase, MigrationPlan


class NomadScheme(IntervalSchemeBase):
    """Recency-based promotion, async transactional migration."""

    name = "nomad"
    #: Transactional migration overlaps kernel work with execution.
    initiator_cost_scale = 0.5
    #: Non-exclusive copies make clean demotions transfer-free.
    free_clean_demotions = True

    def __init__(
        self,
        interval_ns: Optional[float] = None,
        max_pages_per_interval: int = 512,
        promotion_min_touches: int = 3,
        demote_after_intervals: int = 40,
    ) -> None:
        super().__init__(interval_ns, max_pages_per_interval)
        self.promotion_min_touches = promotion_min_touches
        self.demote_after_intervals = demote_after_intervals
        self._intervals_seen = 0

    def plan_interval(
        self,
        now: float,
        page_locations: Dict[int, int],
        frames_free: Dict[int, int],
    ) -> MigrationPlan:
        plan = MigrationPlan()
        self._intervals_seen += 1
        interval = self._interval_ns if self._interval_ns else 1.0
        age_limit = self.demote_after_intervals * interval
        budget = self.max_pages_per_interval
        for host in range(self.num_hosts):
            book = self.books[host]
            # Recency ranking: pages touched this interval, newest first.
            candidates = [
                page
                for page, count in book.counts.items()
                if count >= self.promotion_min_touches
                and page_locations.get(page) is None
            ]
            candidates.sort(
                key=lambda p: book.last_access.get(p, 0.0), reverse=True
            )
            candidates = candidates[:budget]
            keep = set(candidates)
            # Inactive-list aging: local pages idle for many intervals.
            for page, owner in page_locations.items():
                if owner != host or page in keep:
                    continue
                if now - book.last_access.get(page, 0.0) > age_limit:
                    plan.demotions.append((page, host))
            free = frames_free.get(host, 0) + sum(
                1 for _, h in plan.demotions if h == host
            )
            # Promote only into free frames; residents leave via aging.
            plan.promotions.extend((page, host) for page in candidates[:free])
            book.fold()
            if book.observed_since_cool >= 25_000:
                book.cool(0.5)
        return plan
