"""Local-only / Ideal upper bound (Section 5.1.3, scheme 7).

Models a single-socket machine with enough local DRAM to hold all data:
every shared access is served at local-DRAM latency with no CXL traffic.
The paper reports PIPM reaching 0.73x of this bound on average.
"""

from __future__ import annotations

from .base import Mechanism, MigrationScheme


class LocalOnlyScheme(MigrationScheme):
    """Ideal: all data is local, the CXL link is never traversed."""

    name = "local-only"
    mechanism = Mechanism.NONE
    all_local = True
