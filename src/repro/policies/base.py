"""Common migration-scheme interface and shared bookkeeping.

A scheme declares its *mechanism* — how data placement physically changes:

* ``NONE`` — placement is fixed (Native, Local-only),
* ``PAGE_MAP`` — kernel whole-page migration driven by interval decisions
  (Nomad, Memtis, HeMem, OS-skew); migrated pages become non-cacheable for
  other hosts (Section 3.1),
* ``PIPM`` — the hardware remapping-table mechanism with incremental
  line-granular migration (PIPM itself and HW-static).

and supplies the *policy*: which pages move where, and when.  The system
model (:mod:`repro.sim.system`) owns the mechanics — it calls
``observe_shared_access`` for every shared-data LLC miss and, for interval
schemes, ``plan_interval`` at each interval boundary.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum, auto
from typing import Dict, List, Optional, Tuple


class Mechanism(Enum):
    """How a scheme physically moves data."""

    NONE = auto()
    PAGE_MAP = auto()
    PIPM = auto()


@dataclass
class MigrationPlan:
    """One interval's worth of kernel migration decisions."""

    #: pages to promote into a host's local memory: (page, dest_host)
    promotions: List[Tuple[int, int]] = field(default_factory=list)
    #: pages to demote back to CXL memory: (page, src_host)
    demotions: List[Tuple[int, int]] = field(default_factory=list)

    @property
    def empty(self) -> bool:
        return not self.promotions and not self.demotions


class PageAccessBook:
    """Per-host page access accounting shared by the kernel policies.

    Tracks, per page: access count since the epoch started, an accumulated
    frequency estimate, and the last access time.  Cooling is triggered by
    *observed sample count* (``observed_since_cool``), the way Memtis and
    HeMem cool their histograms — cooling per wall-clock interval would
    evict any page whose reuse period exceeds the interval (e.g. streaming
    passes over a graph partition), which real systems avoid.
    """

    __slots__ = ("counts", "freq", "last_access", "observed_since_cool")

    def __init__(self) -> None:
        self.counts: Dict[int, int] = {}
        self.freq: Dict[int, float] = {}
        self.last_access: Dict[int, float] = {}
        self.observed_since_cool = 0

    def record(self, page: int, now: float, weight: int = 1) -> None:
        self.counts[page] = self.counts.get(page, 0) + weight
        self.last_access[page] = now
        self.observed_since_cool += weight

    def fold(self) -> None:
        """Accumulate this epoch's counts into the frequency estimate."""
        for page, count in self.counts.items():
            self.freq[page] = self.freq.get(page, 0.0) + count
        self.counts.clear()

    def cool(self, factor: float = 0.5) -> None:
        """A cooling event: scale every frequency down."""
        doomed = []
        for page in self.freq:
            self.freq[page] *= factor
            if self.freq[page] < 0.25:
                doomed.append(page)
        for page in doomed:
            del self.freq[page]
        self.observed_since_cool = 0

    def decay(self, factor: float = 0.5) -> None:
        """Fold then cool — the simple per-epoch histogram update."""
        self.fold()
        self.cool(factor)

    def hottest(self, limit: int) -> List[int]:
        """Pages by accumulated frequency, hottest first."""
        ranked = sorted(self.freq.items(), key=lambda kv: kv[1], reverse=True)
        return [page for page, _ in ranked[:limit]]


class MigrationScheme:
    """Base class: a no-op scheme with the full hook surface."""

    name = "abstract"
    mechanism = Mechanism.NONE
    #: PIPM-mechanism schemes: use the static uniform map instead of voting.
    static_map = False
    #: Serve every shared access from local DRAM (the Ideal bound).
    all_local = False

    def __init__(self) -> None:
        self.num_hosts = 0
        self.frames_per_host = 0

    # -- lifecycle ---------------------------------------------------------
    def bind(self, num_hosts: int, frames_per_host: int) -> None:
        """Called once by the system before simulation starts."""
        self.num_hosts = num_hosts
        self.frames_per_host = frames_per_host

    # -- observation hooks ----------------------------------------------
    def observe_shared_access(
        self, host: int, page: int, now: float, is_write: bool
    ) -> None:
        """Called for every shared-data access that misses the host caches."""

    # -- interval machinery (PAGE_MAP schemes only) -------------------------
    def interval_ns(self) -> Optional[float]:
        """Interval between kernel migration rounds, or None."""
        return None

    def plan_interval(
        self,
        now: float,
        page_locations: Dict[int, int],
        frames_free: Dict[int, int],
    ) -> MigrationPlan:
        """Decide this interval's promotions/demotions.

        ``page_locations`` maps migrated pages to their current host;
        ``frames_free`` maps host -> free local frames.
        """
        return MigrationPlan()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<{type(self).__name__} {self.name!r}>"


class IntervalSchemeBase(MigrationScheme):
    """Shared scaffolding for the kernel (PAGE_MAP) schemes."""

    mechanism = Mechanism.PAGE_MAP

    def __init__(self, interval_ns: Optional[float] = None,
                 max_pages_per_interval: int = 512) -> None:
        super().__init__()
        self._interval_ns = interval_ns
        self.max_pages_per_interval = max_pages_per_interval
        self.books: List[PageAccessBook] = []

    def bind(self, num_hosts: int, frames_per_host: int) -> None:
        super().bind(num_hosts, frames_per_host)
        self.books = [PageAccessBook() for _ in range(num_hosts)]

    def observe_shared_access(
        self, host: int, page: int, now: float, is_write: bool
    ) -> None:
        self.books[host].record(page, now)

    def interval_ns(self) -> Optional[float]:
        return self._interval_ns

    # -- demotion helpers shared by subclasses --------------------------
    def cold_demotions(
        self,
        host: int,
        page_locations: Dict[int, int],
        min_freq: float,
        keep: set,
    ) -> List[Tuple[int, int]]:
        """Demote this host's local pages that have gone locally cold.

        This is the continuous demotion path every kernel tiering system
        has (Memtis cooling, Nomad's inactive list, HeMem's ring buffers):
        a page stays in local DRAM only while *its owner* keeps it hot.  It
        is also what bounds multi-host damage — a page another host stole
        but only we access falls locally cold there and returns to CXL.
        """
        book = self.books[host]
        victims = []
        for page, owner in page_locations.items():
            if owner != host or page in keep:
                continue
            if book.freq.get(page, 0.0) < min_freq:
                victims.append((page, host))
        return victims

    def pick_demotions(
        self,
        host: int,
        page_locations: Dict[int, int],
        needed: int,
        keep: set,
    ) -> List[Tuple[int, int]]:
        """Demote this host's coldest local pages to free ``needed`` frames."""
        if needed <= 0:
            return []
        book = self.books[host]
        local_pages = [
            page for page, owner in page_locations.items() if owner == host
        ]
        local_pages.sort(key=lambda p: book.last_access.get(p, 0.0))
        victims = []
        for page in local_pages:
            if page in keep:
                continue
            victims.append((page, host))
            if len(victims) >= needed:
                break
        return victims
