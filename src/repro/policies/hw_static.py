"""HW-static ablation: PIPM's mechanism with a static 1:1 map.

Models Intel-Flat-Mode-like hardware tiering (Section 3.3) adapted to
multi-host CXL-DSM: the CXL-DSM page range is uniformly partitioned and
statically mapped to the hosts' local memories; lines migrate incrementally
via the PIPM coherence protocol, but *which host* a page can migrate to is
fixed at boot — there is no adaptive policy, so a page hot on host A but
statically homed on host B never benefits.
"""

from __future__ import annotations

from .base import Mechanism, MigrationScheme


class HwStaticScheme(MigrationScheme):
    """PIPM coherence + incremental migration, static uniform partition."""

    name = "hw-static"
    mechanism = Mechanism.PIPM
    static_map = True
