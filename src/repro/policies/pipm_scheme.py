"""PIPM: the paper's contribution, as a scheme descriptor.

The actual machinery lives in :mod:`repro.pipm.engine` and the PIPM
coherence paths of :mod:`repro.sim.system`; this descriptor selects the
PIPM mechanism with the adaptive majority-vote policy (``static_map``
False).  Migration decisions apply immediately upon crossing the promotion
threshold — no kernel involvement, no interval (Section 5.1.4).
"""

from __future__ import annotations

from .base import Mechanism, MigrationScheme


class PipmScheme(MigrationScheme):
    """Partial and Incremental Page Migration."""

    name = "pipm"
    mechanism = Mechanism.PIPM
    static_map = False
