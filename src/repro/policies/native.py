"""Native CXL-DSM: the no-migration baseline.

All shared data stays in CXL memory for the entire run; every LLC miss to
shared data pays the cacheable 2-hop CXL access (or the dirty-owner 4-hop
forward).  This is the normalization baseline for every figure.
"""

from __future__ import annotations

from .base import Mechanism, MigrationScheme


class NativeScheme(MigrationScheme):
    """Baseline: shared data is pinned in CXL-DSM."""

    name = "native"
    mechanism = Mechanism.NONE
