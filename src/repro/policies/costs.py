"""Kernel page-migration cost model (Section 5.1.4).

The paper charges a 20 us per-4KB-page overhead on the initiating core and
5 us on every other core, applies batched TLB shootdowns, and streams page
data with multi-threaded batched transfers.  This module turns a
:class:`~repro.policies.base.MigrationPlan` into per-host management-time
charges; the system model separately occupies link/DRAM bandwidth for the
data transfers so migration traffic contends with demand traffic.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict

from ..config import KernelMigrationConfig


@dataclass
class MigrationCharge:
    """Management-time charges for one migration batch."""

    per_host_mgmt_ns: Dict[int, float] = field(default_factory=dict)
    pages_moved: int = 0
    shootdown_batches: int = 0

    @property
    def total_mgmt_ns(self) -> float:
        return sum(self.per_host_mgmt_ns.values())


class KernelCostModel:
    """Computes management overhead for kernel page-migration batches."""

    def __init__(self, config: KernelMigrationConfig, num_hosts: int) -> None:
        self.config = config
        self.num_hosts = num_hosts

    def charge(self, pages_by_initiator: Dict[int, int]) -> MigrationCharge:
        """Charges for a batch: ``{initiating_host: page_count}``.

        Every page migration costs the initiating host the full kernel path
        (unmap, copy orchestration, remap) and costs every other host the
        remote PTE update; TLB shootdowns are batched per
        ``tlb_shootdown_batch`` pages and broadcast to all hosts (multi-host
        CXL-DSM requires the CXL-RPC broadcast of Section 3.1).
        """
        charge = MigrationCharge()
        cfg = self.config
        total_pages = sum(pages_by_initiator.values())
        if total_pages == 0:
            return charge
        charge.pages_moved = total_pages
        charge.shootdown_batches = math.ceil(total_pages / cfg.tlb_shootdown_batch)
        shootdown_ns = charge.shootdown_batches * cfg.tlb_shootdown_ns
        for host in range(self.num_hosts):
            own = pages_by_initiator.get(host, 0)
            others = total_pages - own
            mgmt = (
                own * cfg.initiator_cost_ns
                + others * cfg.other_core_cost_ns
                + shootdown_ns
            )
            if mgmt > 0:
                charge.per_host_mgmt_ns[host] = mgmt
        return charge

    def cap_pages(self, requested: int) -> int:
        """Apply the per-interval migration budget."""
        return min(requested, self.config.max_pages_per_interval)
