"""Migration schemes evaluated in the paper (Section 5.1.3).

======================  ============================================
Scheme                  Summary
======================  ============================================
``native``              Baseline CXL-DSM, no migration
``nomad``               Recency-based, transactional/async kernel migration
``memtis``              Frequency-histogram kernel migration
``hemem``               Sampled-frequency kernel migration
``os-skew``             PIPM majority-vote policy + kernel mechanism
``hw-static``           PIPM mechanism + static 1:1 map (Intel Flat Mode-like)
``pipm``                The paper's contribution
``local-only``          Ideal upper bound: all data local
======================  ============================================
"""

from .base import (
    Mechanism,
    MigrationPlan,
    MigrationScheme,
    PageAccessBook,
)
from .costs import KernelCostModel, MigrationCharge
from .native import NativeScheme
from .local_only import LocalOnlyScheme
from .nomad import NomadScheme
from .memtis import MemtisScheme
from .hemem import HeMemScheme
from .os_skew import OsSkewScheme
from .hw_static import HwStaticScheme
from .pipm_scheme import PipmScheme

SCHEME_CLASSES = {
    cls.name: cls
    for cls in (
        NativeScheme,
        NomadScheme,
        MemtisScheme,
        HeMemScheme,
        OsSkewScheme,
        HwStaticScheme,
        PipmScheme,
        LocalOnlyScheme,
    )
}


def make_scheme(name: str, **kwargs) -> MigrationScheme:
    """Instantiate a migration scheme by its paper name."""
    try:
        cls = SCHEME_CLASSES[name]
    except KeyError:
        raise ValueError(
            f"unknown scheme {name!r}; choose from {sorted(SCHEME_CLASSES)}"
        ) from None
    return cls(**kwargs)


__all__ = [
    "Mechanism",
    "MigrationPlan",
    "MigrationScheme",
    "PageAccessBook",
    "KernelCostModel",
    "MigrationCharge",
    "NativeScheme",
    "NomadScheme",
    "MemtisScheme",
    "HeMemScheme",
    "OsSkewScheme",
    "HwStaticScheme",
    "PipmScheme",
    "LocalOnlyScheme",
    "SCHEME_CLASSES",
    "make_scheme",
]
