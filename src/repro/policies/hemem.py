"""HeMem (SOSP'21): sampled-frequency tiering.

HeMem observes memory traffic through PEBS sampling rather than exact
counting, then promotes pages whose sampled count crosses a hot threshold.
We model the sampling by recording only every ``sample_period``-th observed
access (weighted back up) — the policy sees a sparser, noisier histogram
than Memtis, which is exactly the fidelity difference the paper's results
show.  Cooling is sample-count-driven like Memtis's.
"""

from __future__ import annotations

from typing import Dict, Optional

from .base import IntervalSchemeBase, MigrationPlan


class HeMemScheme(IntervalSchemeBase):
    """PEBS-style sampled frequency promotion."""

    name = "hemem"
    initiator_cost_scale = 1.0
    free_clean_demotions = False

    def __init__(
        self,
        interval_ns: Optional[float] = None,
        max_pages_per_interval: int = 512,
        sample_period: int = 16,
        cooling_samples: int = 25_000,
        hot_threshold: float = 32.0,
        demote_min_freq: float = 2.0,
    ) -> None:
        super().__init__(interval_ns, max_pages_per_interval)
        if sample_period < 1:
            raise ValueError("sample_period must be >= 1")
        self.sample_period = sample_period
        self.cooling_samples = cooling_samples
        self.hot_threshold = hot_threshold
        self.demote_min_freq = demote_min_freq
        self._tick = 0

    def observe_shared_access(
        self, host: int, page: int, now: float, is_write: bool
    ) -> None:
        self._tick += 1
        if self._tick % self.sample_period == 0:
            self.books[host].record(page, now, weight=self.sample_period)

    def plan_interval(
        self,
        now: float,
        page_locations: Dict[int, int],
        frames_free: Dict[int, int],
    ) -> MigrationPlan:
        plan = MigrationPlan()
        for host in range(self.num_hosts):
            book = self.books[host]
            book.fold()
            cooled = False
            if book.observed_since_cool >= self.cooling_samples:
                book.cool(0.5)
                cooled = True
            hot = [
                page
                for page in book.hottest(self.max_pages_per_interval)
                if book.freq.get(page, 0.0) >= self.hot_threshold
                and page_locations.get(page) is None
            ]
            keep = set(hot)
            if cooled:
                plan.demotions.extend(
                    self.cold_demotions(host, page_locations,
                                        self.demote_min_freq, keep)
                )
            free = frames_free.get(host, 0) + sum(
                1 for _, h in plan.demotions if h == host
            )
            # Promote only into free frames: displacing still-warm resident
            # pages would thrash (real Memtis/HeMem demote via cooling, not
            # on promotion pressure).
            plan.promotions.extend((page, host) for page in hot[:free])
        return plan
