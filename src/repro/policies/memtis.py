"""Memtis (SOSP'23): frequency-based tiering with decayed histograms.

Policy: per-page access counts accumulate into a frequency histogram that
is *cooled* (halved) every ``cooling_samples`` observed accesses — Memtis's
sample-count-driven cooling, which keeps pages with long reuse periods
(streaming passes) resident while still forgetting dead pages.  The hottest
pages above a hot threshold are promoted; resident pages that fall below a
demotion threshold at a cooling event return to CXL memory.  This is the
paper's representative *frequency-based* single-host policy.
"""

from __future__ import annotations

from typing import Dict, Optional

from .base import IntervalSchemeBase, MigrationPlan


class MemtisScheme(IntervalSchemeBase):
    """Sample-cooled frequency histogram promotion."""

    name = "memtis"
    initiator_cost_scale = 1.0
    free_clean_demotions = False

    def __init__(
        self,
        interval_ns: Optional[float] = None,
        max_pages_per_interval: int = 512,
        cooling_samples: int = 25_000,
        hot_threshold: float = 16.0,
        demote_min_freq: float = 2.0,
    ) -> None:
        super().__init__(interval_ns, max_pages_per_interval)
        self.cooling_samples = cooling_samples
        self.hot_threshold = hot_threshold
        self.demote_min_freq = demote_min_freq

    def plan_interval(
        self,
        now: float,
        page_locations: Dict[int, int],
        frames_free: Dict[int, int],
    ) -> MigrationPlan:
        plan = MigrationPlan()
        for host in range(self.num_hosts):
            book = self.books[host]
            book.fold()
            cooled = False
            if book.observed_since_cool >= self.cooling_samples:
                book.cool(0.5)
                cooled = True
            hot = [
                page
                for page in book.hottest(self.max_pages_per_interval)
                if book.freq.get(page, 0.0) >= self.hot_threshold
                and page_locations.get(page) is None
            ]
            keep = set(hot)
            if cooled:
                # Cooling events are also when Memtis demotes cold pages.
                plan.demotions.extend(
                    self.cold_demotions(host, page_locations,
                                        self.demote_min_freq, keep)
                )
            free = frames_free.get(host, 0) + sum(
                1 for _, h in plan.demotions if h == host
            )
            # Promote only into free frames: displacing still-warm resident
            # pages would thrash (real Memtis/HeMem demote via cooling, not
            # on promotion pressure).
            plan.promotions.extend((page, host) for page in hot[:free])
        return plan
