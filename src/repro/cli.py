"""Command-line interface: ``python -m repro <command>``.

Commands
--------
``run``       simulate one (workload, scheme) pair and print the summary
``compare``   run several schemes on one workload, normalized to Native
``sweep``     fan a (workload x scheme x variant) matrix across supervised
              workers into the shared result cache (crash-isolated,
              resumable)
``serve``     always-on experiment service: watch a spool directory for
              submitted specs, schedule them through the supervised
              pool with admission control and per-spec circuit
              breakers, journal every transition (kill -9 safe),
              drain gracefully on SIGTERM
``soak``      randomized chaos testing under the fail-fast invariant
              watchdog, with failing-schedule minimization
``profile``   time the per-access hot path (deterministic accesses/sec
              microbench over the figure-matrix cases, optional cProfile,
              golden-record drift check)
``check``     model-check the coherence protocols (the Murphi step)
``lint``      static determinism/unit lints + protocol-table analysis
``workloads`` print the Table 1 inventory
``config``    print the Table 2 system configuration
"""

from __future__ import annotations

import argparse
import dataclasses
import os
import sys
from typing import List, Optional

from . import __version__
from .analysis.report import format_fault_report, format_table
from .coherence import BaseCxlDsmModel, ModelChecker, PipmModel
from .config import FabricConfig, FaultConfig, SystemConfig
from .sim.engine import BACKENDS
from .sim.harness import DEFAULT_SCHEMES, compare_schemes, run_experiment
from .units import pretty_size, pretty_time
from .workloads import WorkloadScale, workload_names
from .workloads.registry import WORKLOADS

_SCALES = ("tiny", "small", "default", "large")


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="PIPM multi-host CXL-DSM simulator (ASPLOS'26 repro)",
    )
    parser.add_argument("--version", action="version", version=__version__)
    sub = parser.add_subparsers(dest="command", required=True)

    run = sub.add_parser("run", help="simulate one workload under one scheme")
    run.add_argument("--workload", required=True, choices=workload_names())
    run.add_argument("--scheme", default="pipm")
    run.add_argument("--scale", default="small", choices=_SCALES)
    run.add_argument("--hosts", type=int, default=4)
    run.add_argument("--link-latency-ns", type=float, default=None)
    run.add_argument("--link-bandwidth-gbs", type=float, default=None)
    run.add_argument(
        "--faults", default=None, metavar="SPEC",
        help="fault-injection spec: a preset (none, flaky, degraded, storm, "
             "switchdown) optionally followed by :key=value overrides, e.g. "
             "'degraded:seed=3,transfer-error-rate=1e-3'",
    )
    run.add_argument(
        "--topology", default=None, metavar="SPEC",
        help="fabric topology spec: a preset (flat, single-switch, "
             "two-tier) optionally followed by :key=value overrides, e.g. "
             "'two-tier:hosts-per-leaf=4,uplink-bandwidth-gbs=10'",
    )

    compare = sub.add_parser("compare", help="compare schemes on a workload")
    compare.add_argument("--workload", required=True,
                         choices=workload_names())
    compare.add_argument("--schemes", default=",".join(DEFAULT_SCHEMES))
    compare.add_argument("--scale", default="small", choices=_SCALES)
    compare.add_argument("--hosts", type=int, default=4)
    compare.add_argument("--faults", default=None, metavar="SPEC",
                         help="fault-injection spec (see 'run --faults')")
    compare.add_argument("--topology", default=None, metavar="SPEC",
                         help="fabric topology spec (see 'run --topology')")

    sweep = sub.add_parser(
        "sweep",
        help="run a (workload x scheme x variant) matrix in parallel",
        description=(
            "Fan the evaluation matrix across a process pool into the "
            "content-addressed result cache; a second invocation over the "
            "same matrix is pure cache hits, and the figure benches "
            "(pytest benchmarks/) read the same cache."
        ),
    )
    sweep.add_argument("--workers", type=int, default=1,
                       help="pool size; 0 = one per CPU; 1 = serial")
    sweep.add_argument("--workloads", default=None,
                       help="comma-separated workload subset "
                            "(default: every Table 1 workload, or "
                            "$REPRO_BENCH_WORKLOADS)")
    sweep.add_argument("--schemes", default=",".join(DEFAULT_SCHEMES))
    sweep.add_argument(
        "--scale", default=None, choices=_SCALES,
        help="trace scale (default: $REPRO_BENCH_SCALE or 'small')",
    )
    sweep.add_argument(
        "--variants", default="base",
        help="comma-separated config variants (see --list-variants)",
    )
    sweep.add_argument(
        "--figures", action="store_true",
        help="the full figure matrix: every variant the fig/table "
             "benches consume",
    )
    sweep.add_argument(
        "--cache-dir", default=None,
        help="cache root (default: $REPRO_CACHE_DIR or benchmarks/.cache)",
    )
    sweep.add_argument("--list", action="store_true", dest="list_specs",
                       help="print the expanded specs and exit")
    sweep.add_argument("--list-variants", action="store_true",
                       help="print the known variants and exit")
    sweep.add_argument(
        "--invalidate", action="store_true",
        help="delete every cached result and trace, then exit",
    )
    sweep.add_argument(
        "--require-all-hits", action="store_true",
        help="exit non-zero unless every spec was a cache hit "
             "(CI regression guard)",
    )
    sweep.add_argument(
        "--timeout-s", type=float, default=None, metavar="SECONDS",
        help="per-job timeout; a worker running past it is killed and "
             "recorded as a timeout (default: none)",
    )
    sweep.add_argument(
        "--retries", type=int, default=0,
        help="re-attempts per spec after a failure/timeout (default: 0)",
    )
    sweep.add_argument(
        "--backoff-s", type=float, default=0.25,
        help="base retry backoff; doubles per re-attempt (default: 0.25)",
    )
    sweep.add_argument(
        "--max-backoff-s", type=float, default=60.0,
        help="cap on the doubled retry backoff (default: 60)",
    )
    sweep.add_argument(
        "--resume", action="store_true",
        help="skip specs the sweep journal records as completed; "
             "re-attempt only failed/missing specs",
    )
    sweep.add_argument(
        "--strict", action="store_true",
        help="exit non-zero if any spec failed after its retries "
             "(the default reports failures but exits 0)",
    )

    serve = sub.add_parser(
        "serve",
        help="always-on experiment service (submit/run/status)",
        description=(
            "A persistent daemon over the crash-isolated sweep "
            "substrate: specs spooled into <dir>/spool are admitted "
            "through a bounded queue, executed under the supervised "
            "worker pool, deduped against the content-addressed cache, "
            "and journalled transition-by-transition so kill -9 + "
            "restart resumes without re-running completed work."
        ),
    )
    from .serve.cli import add_serve_arguments

    add_serve_arguments(serve)

    soak = sub.add_parser(
        "soak",
        help="randomized chaos testing with failing-schedule minimization",
        description=(
            "Draw randomized fault schedules and workload/scheme pairs "
            "from one seed, run each under the invariant watchdog in "
            "fail-fast mode, and on any violation or crash delta-debug "
            "the schedule down to a minimal reproducer JSON.  "
            "'soak --replay <file>' re-executes a reproducer "
            "deterministically."
        ),
    )
    soak.add_argument("--seed", type=int, default=0,
                      help="soak seed; every draw derives from it")
    soak.add_argument("--trials", type=int, default=20,
                      help="maximum trials to run (default: 20)")
    soak.add_argument(
        "--budget-s", type=float, default=120.0,
        help="wall-clock budget; no new trial starts past it "
             "(0 = unlimited; default: 120)",
    )
    soak.add_argument("--scale", default="tiny",
                      choices=("tiny", "small", "default"),
                      help="workload scale per trial (default: tiny)")
    soak.add_argument("--hosts", type=int, default=4)
    soak.add_argument("--workloads", default="pr,ycsb",
                      help="comma-separated workload pool to draw from")
    soak.add_argument("--schemes", default="pipm,memtis",
                      help="comma-separated scheme pool to draw from")
    soak.add_argument(
        "--sabotage-rate", type=float, default=0.0, metavar="P",
        help="probability a trial includes a deliberately botched "
             "rollback (self-test of the detection pipeline; default: 0)",
    )
    soak.add_argument(
        "--crash-rate", type=float, default=0.0, metavar="P",
        help="probability a trial includes a host-crash clause "
             "(seeded crash time, optional rejoin; default: 0)",
    )
    soak.add_argument(
        "--minimize-budget", type=int, default=32,
        help="max re-simulations delta debugging may spend (default: 32)",
    )
    soak.add_argument(
        "--artifact-dir", default="soak-artifacts",
        help="where reproducer JSONs are written (default: soak-artifacts)",
    )
    soak.add_argument(
        "--replay", default=None, metavar="FILE",
        help="re-execute a reproducer artifact instead of soaking; "
             "exits 0 iff the recorded failure reproduces",
    )
    soak.add_argument(
        "--expect-failure", action="store_true",
        help="invert the exit code: succeed only if a failure was found "
             "and its reproducer replay-verified (pipeline self-test)",
    )

    profile = sub.add_parser(
        "profile",
        help="time the per-access hot path (microbench + cProfile)",
        description=(
            "Run the deterministic core-speed microbench: generate the "
            "figure-matrix cases once (untimed), time SimulationEngine.run "
            "for each, and report accesses/sec against the committed "
            "baseline in benchmarks/results/BENCH_core.json.  "
            "--check-golden compares every SimulationResult record against "
            "the committed golden file and exits non-zero on any drift "
            "(the CI perf-safety net)."
        ),
    )
    profile.add_argument("--scale", default="small", choices=_SCALES)
    profile.add_argument("--hosts", type=int, default=4)
    profile.add_argument(
        "--backend", default="loop", choices=BACKENDS,
        help="engine backend to time: the reference per-access loop or "
             "the flattened/batched vector fast path (default: loop)",
    )
    profile.add_argument(
        "--repeats", type=int, default=1,
        help="fresh engine runs per case; the fastest is reported",
    )
    profile.add_argument(
        "--cases", default=None, metavar="W:S,...",
        help="workload:scheme pairs to time (default: pr:pipm, "
             "pr:native, ycsb:memtis)",
    )
    profile.add_argument(
        "--cprofile", action="store_true",
        help="run the timed region under cProfile and print the top "
             "functions by cumulative time",
    )
    profile.add_argument("--top", type=int, default=25,
                         help="rows of cProfile output (default: 25)")
    profile.add_argument(
        "--baseline", default="benchmarks/results/BENCH_core.json",
        help="bench-trajectory file to compare against",
    )
    profile.add_argument(
        "--check-golden", default=None, metavar="FILE",
        help="fail unless every case's SimulationResult record matches "
             "this golden file byte-for-byte",
    )
    profile.add_argument(
        "--write-golden", default=None, metavar="FILE",
        help="(re)write the golden record file from this run",
    )

    check = sub.add_parser("check", help="model-check the protocols")
    check.add_argument("--hosts", type=int, default=3)

    lint = sub.add_parser(
        "lint",
        help="static determinism/unit lints + protocol-table analysis",
        description=(
            "simcheck: AST lints for the determinism contract the result "
            "cache depends on (wall clocks, unseeded RNG, set-order "
            "iteration, unit and stats discipline) plus a static analyzer "
            "for the coherence TRANSITION_TABLEs (exhaustiveness, "
            "ambiguity, message closure, wait-for cycles)."
        ),
    )
    from .simcheck.cli import add_lint_arguments

    add_lint_arguments(lint)

    sub.add_parser("workloads", help="list the Table 1 workloads")
    sub.add_parser("config", help="show the Table 2 configuration")
    return parser


def _config_for(args) -> SystemConfig:
    cfg = SystemConfig.scaled(num_hosts=args.hosts)
    if getattr(args, "link_latency_ns", None) is not None:
        cfg = cfg.replace_nested("cxl_link", latency_ns=args.link_latency_ns)
    if getattr(args, "link_bandwidth_gbs", None) is not None:
        cfg = cfg.replace_nested(
            "cxl_link", bandwidth_gbs=args.link_bandwidth_gbs
        )
    if getattr(args, "topology", None) is not None:
        cfg = dataclasses.replace(
            cfg, fabric=FabricConfig.parse(args.topology)
        )
    if getattr(args, "faults", None) is not None:
        cfg = dataclasses.replace(cfg, faults=FaultConfig.parse(args.faults))
    if (
        getattr(args, "topology", None) is not None
        or getattr(args, "faults", None) is not None
    ):
        cfg.validate()
    return cfg


def _cmd_run(args) -> int:
    cfg = _config_for(args)
    scale = getattr(WorkloadScale, args.scale)()
    result = run_experiment(args.workload, args.scheme, cfg, scale=scale)
    print(result.summary())
    print(f"  exec time        : {pretty_time(result.exec_time_ns)}")
    print(f"  aggregate IPC    : {result.ipc:.2f}")
    print(f"  local hit rate   : {result.local_hit_rate:.1%}")
    print(f"  migrations       : {result.migrations} "
          f"(demotions {result.demotions})")
    if result.mgmt_ns:
        print(f"  kernel mgmt time : {pretty_time(result.mgmt_ns)}")
    if getattr(args, "faults", None) is not None:
        report = format_fault_report(result.stats)
        if report:
            print(report)
    return 0


def _cmd_compare(args) -> int:
    cfg = _config_for(args)
    scale = getattr(WorkloadScale, args.scale)()
    schemes = [s.strip() for s in args.schemes.split(",") if s.strip()]
    if "native" not in schemes:
        schemes.insert(0, "native")
    results = compare_schemes(args.workload, schemes, cfg, scale=scale)
    native = results["native"]
    rows = []
    for name, result in results.items():
        rows.append((
            name,
            f"{result.speedup_over(native):.2f}x",
            f"{result.local_hit_rate:.1%}",
            f"{result.inter_host_stall_fraction(native.exec_time_ns):.1%}",
            result.migrations,
        ))
    print(format_table(
        f"{args.workload}: speedup over Native CXL-DSM "
        f"({args.hosts} hosts, {args.scale} scale)",
        ["scheme", "speedup", "local hits", "interhost stalls", "migrations"],
        rows,
    ))
    if getattr(args, "faults", None) is not None:
        for result in results.values():
            print(f"  {result.resilience_summary()}")
    return 0


def _cmd_sweep(args) -> int:
    from .sweep import (
        ResultStore,
        SweepRunner,
        TraceStore,
        VARIANTS,
        build_matrix,
    )

    if args.list_variants:
        for name in VARIANTS:
            print(name)
        return 0
    cache_dir = args.cache_dir or os.environ.get("REPRO_CACHE_DIR") or (
        "benchmarks/.cache"
    )
    if args.invalidate:
        results = ResultStore(cache_dir).clear()
        traces = TraceStore(cache_dir).clear()
        print(f"invalidated {results} results, {traces} traces "
              f"under {cache_dir}")
        return 0
    scale_name = args.scale or os.environ.get("REPRO_BENCH_SCALE", "small")
    if scale_name not in _SCALES:
        print(f"error: unknown scale {scale_name!r}", file=sys.stderr)
        return 2
    scale = getattr(WorkloadScale, scale_name)()
    if args.workloads:
        workloads = [w.strip() for w in args.workloads.split(",") if w.strip()]
    elif os.environ.get("REPRO_BENCH_WORKLOADS"):
        workloads = [
            w.strip()
            for w in os.environ["REPRO_BENCH_WORKLOADS"].split(",")
            if w.strip()
        ]
    else:
        workloads = list(workload_names())
    unknown = sorted(set(workloads) - set(workload_names()))
    if unknown:
        print(f"error: unknown workloads {unknown}", file=sys.stderr)
        return 2
    schemes = [s.strip() for s in args.schemes.split(",") if s.strip()]
    variants = (
        list(VARIANTS)
        if args.figures
        else [v.strip() for v in args.variants.split(",") if v.strip()]
    )
    specs = build_matrix(workloads, schemes, scale=scale, variants=variants)
    if args.list_specs:
        for spec in specs:
            print(f"{spec.key()[:16]}  {spec.label()}")
        print(f"{len(specs)} specs")
        return 0
    workers = args.workers if args.workers != 0 else (os.cpu_count() or 1)
    print(
        f"sweep: {len(specs)} specs "
        f"({len(workloads)} workloads x {len(schemes)} schemes, "
        f"variants: {', '.join(variants)}; scale {scale_name}) "
        f"across {workers} worker{'s' if workers != 1 else ''} "
        f"-> {cache_dir}"
    )
    runner = SweepRunner(
        specs, cache_dir, workers=workers,
        timeout_s=args.timeout_s, retries=args.retries,
        backoff_s=args.backoff_s, max_backoff_s=args.max_backoff_s,
        resume=args.resume,
    )
    try:
        summary = runner.run(progress=print)
    except KeyboardInterrupt:
        print("\ninterrupted: workers stopped, orphan temp files removed; "
              "re-run with --resume to continue", file=sys.stderr)
        return 130
    hit_pct = f"{summary.hit_rate:.0%}"
    line = (
        f"done: {summary.runs} runs, {summary.hits} cache hits ({hit_pct}), "
        f"{summary.misses} simulated"
    )
    if summary.failed:
        line += f", {summary.failed} FAILED"
    if summary.retried:
        line += f", {summary.retried} retried"
    if summary.skipped:
        line += f", {summary.skipped} resumed"
    line += (
        f"; wall {summary.wall_s:.2f}s, work {summary.work_s:.2f}s"
        + (
            f" ({summary.work_s / summary.wall_s:.2f}x parallel efficiency)"
            if summary.wall_s > 0
            else ""
        )
    )
    print(line)
    for failure in summary.failures:
        tail = failure.error.strip().splitlines()
        print(
            f"  failed: {failure.label} [{failure.status}] after "
            f"{failure.attempts} attempt(s): {tail[-1] if tail else '?'}",
            file=sys.stderr,
        )
    if args.require_all_hits and summary.misses:
        print(
            f"error: --require-all-hits, but {summary.misses} specs "
            f"missed the cache",
            file=sys.stderr,
        )
        return 1
    if args.strict and summary.failed:
        print(
            f"error: --strict, and {summary.failed} spec(s) failed",
            file=sys.stderr,
        )
        return 1
    return 0


def _cmd_serve(args) -> int:
    from .serve.cli import run_serve

    return run_serve(args)


def _cmd_soak(args) -> int:
    from .soak import SoakHarness, replay_artifact

    if args.replay is not None:
        reproduced, actual = replay_artifact(args.replay)
        if reproduced:
            print(f"reproduced: {actual.exc_type} "
                  f"[{', '.join(actual.kinds) or 'crash'}] — "
                  f"{actual.message[:120]}")
            return 0
        if actual is None:
            print("did NOT reproduce: the replayed run completed cleanly",
                  file=sys.stderr)
        else:
            print(f"did NOT reproduce the recorded failure; got "
                  f"{actual.exc_type}: {actual.message[:120]}",
                  file=sys.stderr)
        return 1

    workloads = [w.strip() for w in args.workloads.split(",") if w.strip()]
    schemes = [s.strip() for s in args.schemes.split(",") if s.strip()]
    unknown = sorted(set(workloads) - set(workload_names()))
    if unknown:
        print(f"error: unknown workloads {unknown}", file=sys.stderr)
        return 2
    harness = SoakHarness(
        seed=args.seed,
        trials=args.trials,
        budget_s=args.budget_s,
        scale=args.scale,
        num_hosts=args.hosts,
        workloads=workloads,
        schemes=schemes,
        sabotage_rate=args.sabotage_rate,
        crash_rate=args.crash_rate,
        minimize_budget=args.minimize_budget,
        artifact_dir=args.artifact_dir,
    )
    print(
        f"soak: seed {args.seed}, up to {args.trials} trial(s) in "
        f"{args.budget_s:g}s, scale {args.scale}, "
        f"workloads {','.join(workloads)}, schemes {','.join(schemes)}"
        + (f", sabotage rate {args.sabotage_rate:g}"
           if args.sabotage_rate else "")
        + (f", crash rate {args.crash_rate:g}" if args.crash_rate else "")
    )
    report = harness.run(progress=print)
    if report.clean:
        print(f"clean: {report.trials_run} trial(s) survived "
              f"({report.wall_s:.1f}s)")
        return 1 if args.expect_failure else 0
    sig = report.signature
    print(
        f"failure at trial {report.trial_index}: {sig.exc_type} "
        f"[{', '.join(sig.kinds) or 'crash'}]; schedule minimized "
        f"{report.original_clause_count} -> {len(report.minimal_clauses)} "
        f"clause(s) in {report.minimize_evaluations} evaluation(s); "
        f"reproducer: {report.artifact_path} "
        f"(replay {'verified' if report.replay_verified else 'FAILED'})"
    )
    if args.expect_failure:
        return 0 if report.replay_verified else 1
    return 2


def _cmd_profile(args) -> int:
    import cProfile
    import json

    from .sim.profile import (
        PROFILE_CASES,
        compare_records,
        load_golden,
        profile_report,
        run_microbench,
        write_golden,
    )

    if args.cases:
        try:
            cases = [
                tuple(pair.split(":", 1))
                for pair in args.cases.split(",")
                if pair.strip()
            ]
        except ValueError:
            print("error: --cases wants workload:scheme pairs",
                  file=sys.stderr)
            return 2
    else:
        cases = list(PROFILE_CASES)
    cfg = SystemConfig.scaled(num_hosts=args.hosts)
    profiler = cProfile.Profile() if args.cprofile else None
    print(f"profile: {len(cases)} case(s), scale {args.scale}, "
          f"{args.hosts} hosts, {args.repeats} repeat(s), "
          f"{args.backend} backend")
    result = run_microbench(
        scale=args.scale, cases=cases, config=cfg,
        repeats=args.repeats, profiler=profiler, backend=args.backend,
    )
    for case in result.cases:
        print(f"  {case.key:<16} {case.accesses:>9} accesses  "
              f"{case.wall_s:>7.2f}s  {case.accesses_per_s:>10,.0f} acc/s")
    print(f"  {'aggregate':<16} {result.total_accesses:>9} accesses  "
          f"{result.total_wall_s:>7.2f}s  "
          f"{result.aggregate_accesses_per_s:>10,.0f} acc/s")

    if args.baseline and os.path.exists(args.baseline):
        with open(args.baseline) as fh:
            bench = json.load(fh)
        base = bench.get("baseline", {})
        base_rate = base.get("aggregate_accesses_per_s")
        if base_rate and base.get("scale") == args.scale:
            speedup = result.aggregate_accesses_per_s / base_rate
            print(f"  vs. recorded baseline ({args.baseline}): "
                  f"{speedup:.2f}x ({base_rate:,.0f} acc/s baseline)")
        elif base_rate:
            print(f"  (baseline in {args.baseline} was recorded at scale "
                  f"{base.get('scale')!r}; rerun with --scale "
                  f"{base.get('scale')} to compare)")

    if profiler is not None:
        print(profile_report(profiler, top=args.top))

    if args.write_golden:
        write_golden(args.write_golden, result)
        print(f"golden records written to {args.write_golden}")
    if args.check_golden:
        problems = compare_records(
            result.records(), load_golden(args.check_golden)
        )
        if problems:
            for problem in problems:
                print(f"GOLDEN DRIFT: {problem}", file=sys.stderr)
            return 1
        print(f"golden check: {len(result.cases)} record(s) match "
              f"{args.check_golden}")
    return 0


def _cmd_check(args) -> int:
    failures = 0
    models = [BaseCxlDsmModel(args.hosts)]
    models += [
        PipmModel(args.hosts, remap_host=h) for h in range(args.hosts)
    ]
    for model in models:
        result = ModelChecker(model).run()
        print(result.summary())
        for violation in result.violations:
            print(f"  !! {violation}")
        failures += len(result.violations)
    return 1 if failures else 0


def _cmd_workloads(_args) -> int:
    rows = [
        (info.name, info.suite, f"{info.paper_footprint_gb}GB",
         info.description)
        for info in WORKLOADS.values()
    ]
    print(format_table("Table 1: evaluated workloads",
                       ["name", "suite", "paper footprint", "description"],
                       rows))
    return 0


def _cmd_config(_args) -> int:
    rows = list(SystemConfig.paper().describe().items())
    print(format_table("Table 2: system configuration (paper values)",
                       ["component", "setting"], rows))
    return 0


def _cmd_lint(args) -> int:
    from .simcheck.cli import run_lint

    return run_lint(args)


_COMMANDS = {
    "run": _cmd_run,
    "compare": _cmd_compare,
    "sweep": _cmd_sweep,
    "serve": _cmd_serve,
    "soak": _cmd_soak,
    "profile": _cmd_profile,
    "check": _cmd_check,
    "lint": _cmd_lint,
    "workloads": _cmd_workloads,
    "config": _cmd_config,
}


def main(argv: Optional[List[str]] = None) -> int:
    args = _build_parser().parse_args(argv)
    return _COMMANDS[args.command](args)


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
