"""Command-line interface: ``python -m repro <command>``.

Commands
--------
``run``       simulate one (workload, scheme) pair and print the summary
``compare``   run several schemes on one workload, normalized to Native
``check``     model-check the coherence protocols (the Murphi step)
``workloads`` print the Table 1 inventory
``config``    print the Table 2 system configuration
"""

from __future__ import annotations

import argparse
import dataclasses
import sys
from typing import List, Optional

from . import __version__
from .analysis.report import format_fault_report, format_table
from .coherence import BaseCxlDsmModel, ModelChecker, PipmModel
from .config import FaultConfig, SystemConfig
from .sim.harness import DEFAULT_SCHEMES, compare_schemes, run_experiment
from .units import pretty_size, pretty_time
from .workloads import WorkloadScale, workload_names
from .workloads.registry import WORKLOADS

_SCALES = ("tiny", "small", "default", "large")


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="PIPM multi-host CXL-DSM simulator (ASPLOS'26 repro)",
    )
    parser.add_argument("--version", action="version", version=__version__)
    sub = parser.add_subparsers(dest="command", required=True)

    run = sub.add_parser("run", help="simulate one workload under one scheme")
    run.add_argument("--workload", required=True, choices=workload_names())
    run.add_argument("--scheme", default="pipm")
    run.add_argument("--scale", default="small", choices=_SCALES)
    run.add_argument("--hosts", type=int, default=4)
    run.add_argument("--link-latency-ns", type=float, default=None)
    run.add_argument("--link-bandwidth-gbs", type=float, default=None)
    run.add_argument(
        "--faults", default=None, metavar="SPEC",
        help="fault-injection spec: a preset (none, flaky, degraded, storm) "
             "optionally followed by :key=value overrides, e.g. "
             "'degraded:seed=3,transfer-error-rate=1e-3'",
    )

    compare = sub.add_parser("compare", help="compare schemes on a workload")
    compare.add_argument("--workload", required=True,
                         choices=workload_names())
    compare.add_argument("--schemes", default=",".join(DEFAULT_SCHEMES))
    compare.add_argument("--scale", default="small", choices=_SCALES)
    compare.add_argument("--hosts", type=int, default=4)
    compare.add_argument("--faults", default=None, metavar="SPEC",
                         help="fault-injection spec (see 'run --faults')")

    check = sub.add_parser("check", help="model-check the protocols")
    check.add_argument("--hosts", type=int, default=3)

    sub.add_parser("workloads", help="list the Table 1 workloads")
    sub.add_parser("config", help="show the Table 2 configuration")
    return parser


def _config_for(args) -> SystemConfig:
    cfg = SystemConfig.scaled(num_hosts=args.hosts)
    if getattr(args, "link_latency_ns", None) is not None:
        cfg = cfg.replace_nested("cxl_link", latency_ns=args.link_latency_ns)
    if getattr(args, "link_bandwidth_gbs", None) is not None:
        cfg = cfg.replace_nested(
            "cxl_link", bandwidth_gbs=args.link_bandwidth_gbs
        )
    if getattr(args, "faults", None) is not None:
        cfg = dataclasses.replace(cfg, faults=FaultConfig.parse(args.faults))
        cfg.validate()
    return cfg


def _cmd_run(args) -> int:
    cfg = _config_for(args)
    scale = getattr(WorkloadScale, args.scale)()
    result = run_experiment(args.workload, args.scheme, cfg, scale=scale)
    print(result.summary())
    print(f"  exec time        : {pretty_time(result.exec_time_ns)}")
    print(f"  aggregate IPC    : {result.ipc:.2f}")
    print(f"  local hit rate   : {result.local_hit_rate:.1%}")
    print(f"  migrations       : {result.migrations} "
          f"(demotions {result.demotions})")
    if result.mgmt_ns:
        print(f"  kernel mgmt time : {pretty_time(result.mgmt_ns)}")
    if getattr(args, "faults", None) is not None:
        report = format_fault_report(result.stats)
        if report:
            print(report)
    return 0


def _cmd_compare(args) -> int:
    cfg = _config_for(args)
    scale = getattr(WorkloadScale, args.scale)()
    schemes = [s.strip() for s in args.schemes.split(",") if s.strip()]
    if "native" not in schemes:
        schemes.insert(0, "native")
    results = compare_schemes(args.workload, schemes, cfg, scale=scale)
    native = results["native"]
    rows = []
    for name, result in results.items():
        rows.append((
            name,
            f"{result.speedup_over(native):.2f}x",
            f"{result.local_hit_rate:.1%}",
            f"{result.inter_host_stall_fraction(native.exec_time_ns):.1%}",
            result.migrations,
        ))
    print(format_table(
        f"{args.workload}: speedup over Native CXL-DSM "
        f"({args.hosts} hosts, {args.scale} scale)",
        ["scheme", "speedup", "local hits", "interhost stalls", "migrations"],
        rows,
    ))
    if getattr(args, "faults", None) is not None:
        for result in results.values():
            print(f"  {result.resilience_summary()}")
    return 0


def _cmd_check(args) -> int:
    failures = 0
    models = [BaseCxlDsmModel(args.hosts)]
    models += [
        PipmModel(args.hosts, remap_host=h) for h in range(args.hosts)
    ]
    for model in models:
        result = ModelChecker(model).run()
        print(result.summary())
        for violation in result.violations:
            print(f"  !! {violation}")
        failures += len(result.violations)
    return 1 if failures else 0


def _cmd_workloads(_args) -> int:
    rows = [
        (info.name, info.suite, f"{info.paper_footprint_gb}GB",
         info.description)
        for info in WORKLOADS.values()
    ]
    print(format_table("Table 1: evaluated workloads",
                       ["name", "suite", "paper footprint", "description"],
                       rows))
    return 0


def _cmd_config(_args) -> int:
    rows = list(SystemConfig.paper().describe().items())
    print(format_table("Table 2: system configuration (paper values)",
                       ["component", "setting"], rows))
    return 0


_COMMANDS = {
    "run": _cmd_run,
    "compare": _cmd_compare,
    "check": _cmd_check,
    "workloads": _cmd_workloads,
    "config": _cmd_config,
}


def main(argv: Optional[List[str]] = None) -> int:
    args = _build_parser().parse_args(argv)
    return _COMMANDS[args.command](args)


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
