"""Explicit-state model checker for the coherence protocol models.

Reproduces the paper's Murphi verification (Section 5.1.4): exhaustively
explore every interleaving of loads/stores/evictions from every host over a
small configuration, and verify

* **SWMR** — single writer *or* multiple readers, never both,
* **data-value integrity** — every load observes the latest store
  (the per-access check that, together with atomic transactions, gives the
  Sequential Consistency result the paper cites),
* **no stuck states** — every reachable state has enabled actions and every
  enabled action applies without error (the atomic-transaction analogue of
  deadlock freedom).

States are canonicalized (version rank-compression) so the reachable space
is finite; the checker does plain BFS with a visited set and reports the
action trace leading to any violation.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Any, List, Optional, Tuple


@dataclass
class Violation:
    """One invariant failure plus the trace that exposes it."""

    kind: str
    detail: str
    trace: Tuple[Any, ...]

    def __str__(self) -> str:  # pragma: no cover - debugging aid
        steps = " -> ".join(str(a) for a in self.trace) or "<initial>"
        return f"[{self.kind}] {self.detail} via {steps}"


@dataclass
class CheckResult:
    """Outcome of a model-checking run."""

    model_name: str
    states_explored: int
    transitions_explored: int
    violations: List[Violation] = field(default_factory=list)
    exhausted: bool = True  # False if the state cap stopped exploration

    @property
    def ok(self) -> bool:
        return not self.violations

    def summary(self) -> str:
        status = "PASS" if self.ok else f"FAIL ({len(self.violations)} violations)"
        suffix = "" if self.exhausted else " (state cap reached)"
        return (
            f"{self.model_name}: {status} — {self.states_explored} states, "
            f"{self.transitions_explored} transitions{suffix}"
        )


class ModelChecker:
    """BFS explorer over a protocol model's canonical state graph."""

    def __init__(self, model, max_states: int = 200_000) -> None:
        self.model = model
        self.max_states = max_states

    def run(self, max_violations: int = 10) -> CheckResult:
        model = self.model
        initial = model.canonicalize(model.initial_state())
        result = CheckResult(model_name=model.name, states_explored=0,
                             transitions_explored=0)

        visited = {initial}
        # Queue holds (canonical_state, trace) — traces are kept short by
        # storing tuples of actions (shared structure via tuple concat).
        queue = deque([(initial, ())])

        while queue:
            state, trace = queue.popleft()
            result.states_explored += 1

            for detail in model.invariant_violations(state):
                result.violations.append(Violation("invariant", detail, trace))
                if len(result.violations) >= max_violations:
                    return result

            actions = model.enabled_actions(state)
            if not actions:
                result.violations.append(
                    Violation("deadlock", "state has no enabled actions", trace)
                )
                if len(result.violations) >= max_violations:
                    return result

            for action in actions:
                result.transitions_explored += 1
                try:
                    next_state, obs = model.apply(state, action)
                except Exception as exc:  # stuck transition == protocol bug
                    result.violations.append(
                        Violation("stuck", f"{action}: {exc}", trace + (action,))
                    )
                    if len(result.violations) >= max_violations:
                        return result
                    continue

                read = obs.get("read_version")
                if read is not None and read != obs["latest"]:
                    result.violations.append(
                        Violation(
                            "data-value",
                            f"{action} read version {read}, latest is "
                            f"{obs['latest']}",
                            trace + (action,),
                        )
                    )
                    if len(result.violations) >= max_violations:
                        return result

                canonical = model.canonicalize(next_state)
                if canonical not in visited:
                    if len(visited) >= self.max_states:
                        result.exhausted = False
                        continue
                    visited.add(canonical)
                    queue.append((canonical, trace + (action,)))

        return result


def check_protocol(model, max_states: int = 200_000) -> CheckResult:
    """Convenience wrapper: build a checker and run it."""
    return ModelChecker(model, max_states=max_states).run()
