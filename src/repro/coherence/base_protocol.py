"""Functional model of the baseline CXL-DSM hierarchical MSI protocol.

This is the transition system the model checker explores (Section 5.1.4's
Murphi verification).  It models one CXL-DSM cache line shared by ``n``
hosts.  Transactions are atomic — matching the paper's "locked-based scheme
similar to ZSim" — so the checker verifies protocol-level safety (SWMR,
data-value integrity, directory consistency) over every interleaving of
loads, stores, and evictions.

Data values are modelled as monotonically increasing *versions*: every store
creates ``latest + 1``; a load must observe ``latest``.  States are
canonicalized by rank-compressing versions so the reachable state space is
finite.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, List, NamedTuple, Tuple

from .messages import MessageType as _Msg
from .states import CacheState
from .table import ProtocolTable, RoleSpec, emit, illegal, t, wait

# Per-host cached copy: (state, version). version is meaningful only when
# state has a valid copy.
HostCopy = Tuple[int, int]


class LineState(NamedTuple):
    """Complete protocol state of one CXL-DSM line."""

    caches: Tuple[HostCopy, ...]
    dir_state: int  # device directory: M/S/I
    dir_owner: int  # valid when dir_state == M
    dir_sharers: FrozenSet[int]
    mem_version: int


class Action(NamedTuple):
    """One protocol stimulus: a host loads, stores, or evicts the line."""

    name: str  # "load" | "store" | "evict"
    host: int

    def __str__(self) -> str:  # pragma: no cover - debugging aid
        return f"{self.name}(h{self.host})"


_I = int(CacheState.I)
_S = int(CacheState.S)
_M = int(CacheState.M)


class BaseCxlDsmModel:
    """Baseline multi-host CXL-DSM directory MSI over one line."""

    name = "cxl-dsm-msi"

    def __init__(self, num_hosts: int = 2) -> None:
        if num_hosts < 1:
            raise ValueError("need at least one host")
        self.num_hosts = num_hosts

    # -- construction -----------------------------------------------------
    def initial_state(self) -> LineState:
        return LineState(
            caches=tuple((_I, 0) for _ in range(self.num_hosts)),
            dir_state=_I,
            dir_owner=-1,
            dir_sharers=frozenset(),
            mem_version=0,
        )

    # -- exploration interface ---------------------------------------------
    def enabled_actions(self, state: LineState) -> List[Action]:
        actions = []
        for host in range(self.num_hosts):
            actions.append(Action("load", host))
            actions.append(Action("store", host))
            if state.caches[host][0] != _I:
                actions.append(Action("evict", host))
        return actions

    def latest_version(self, state: LineState) -> int:
        latest = state.mem_version
        for cache_state, version in state.caches:
            if cache_state != _I and version > latest:
                latest = version
        return latest

    def apply(self, state: LineState, action: Action) -> Tuple[LineState, Dict]:
        """Apply ``action``; returns ``(new_state, observation)``.

        The observation dict reports ``read_version`` (for loads) and
        ``latest`` so the checker can verify the data-value invariant.
        """
        if action.name == "load":
            return self._load(state, action.host)
        if action.name == "store":
            return self._store(state, action.host)
        if action.name == "evict":
            return self._evict(state, action.host)
        raise ValueError(f"unknown action {action.name!r}")

    # -- transitions --------------------------------------------------------
    def _load(self, state: LineState, host: int) -> Tuple[LineState, Dict]:
        caches = list(state.caches)
        cache_state, version = caches[host]
        latest = self.latest_version(state)
        if cache_state in (_M, _S):
            return state, {"read_version": version, "latest": latest}

        mem_version = state.mem_version
        sharers = set(state.dir_sharers)
        if state.dir_state == _M:
            # Fetch from the owner (workflow steps 3-6 of Fig. 2): the owner
            # downgrades to S and the dirty data is written back.
            # simcheck: handles device(M, rd_req) host(M, fwd_fetch)
            owner = state.dir_owner
            owner_version = caches[owner][1]
            caches[owner] = (_S, owner_version)
            mem_version = owner_version
            data_version = owner_version
            sharers = {owner, host}
        else:
            # simcheck: handles device(I, rd_req) device(S, rd_req)
            data_version = mem_version
            sharers.add(host)
        caches[host] = (_S, data_version)
        new_state = LineState(
            caches=tuple(caches),
            dir_state=_S,
            dir_owner=-1,
            dir_sharers=frozenset(sharers),
            mem_version=mem_version,
        )
        return new_state, {"read_version": data_version, "latest": latest}

    def _store(self, state: LineState, host: int) -> Tuple[LineState, Dict]:
        # A store folds the whole RFO exchange into one atomic step: the
        # writer acquires M and every other valid copy (and the S/M
        # directory side) observes its invalidation here.
        # simcheck: handles device(I, rfo_req) device(S, rfo_req)
        # simcheck: handles device(M, rfo_req) host(S, inv) host(M, fwd_inv)
        latest = self.latest_version(state)
        new_version = latest + 1
        caches = []
        for idx, (cache_state, version) in enumerate(state.caches):
            if idx == host:
                caches.append((_M, new_version))
            else:
                # Invalidations to every other valid copy.
                caches.append((_I, 0))
        new_state = LineState(
            caches=tuple(caches),
            dir_state=_M,
            dir_owner=host,
            dir_sharers=frozenset(),
            mem_version=state.mem_version,
        )
        return new_state, {"written_version": new_version, "latest": latest}

    def _evict(self, state: LineState, host: int) -> Tuple[LineState, Dict]:
        cache_state, version = state.caches[host]
        if cache_state == _I:
            raise ValueError("evict of an invalid line is not enabled")
        caches = list(state.caches)
        caches[host] = (_I, 0)
        mem_version = state.mem_version
        sharers = set(state.dir_sharers)
        if cache_state == _M:
            # simcheck: handles device(M, wb)
            mem_version = version  # dirty writeback
            dir_state, dir_owner = _I, -1
            sharers = set()
        else:
            # simcheck: handles device(S, sharer_drop)
            sharers.discard(host)
            if sharers:
                dir_state, dir_owner = _S, -1
            else:
                dir_state, dir_owner = _I, -1
        new_state = LineState(
            caches=tuple(caches),
            dir_state=dir_state,
            dir_owner=dir_owner,
            dir_sharers=frozenset(sharers),
            mem_version=mem_version,
        )
        return new_state, {}

    # -- invariants ----------------------------------------------------------
    def invariant_violations(self, state: LineState) -> List[str]:
        violations: List[str] = []
        writers = [
            idx for idx, (s, _) in enumerate(state.caches) if s == _M
        ]
        readers = [
            idx for idx, (s, _) in enumerate(state.caches) if s == _S
        ]
        if len(writers) > 1:
            violations.append(f"SWMR: multiple writers {writers}")
        if writers and readers:
            violations.append(
                f"SWMR: writer {writers} coexists with readers {readers}"
            )
        # Directory consistency.
        if state.dir_state == _M:
            if len(writers) != 1 or state.dir_owner != writers[0]:
                violations.append(
                    f"directory M but cache writers={writers}, "
                    f"owner={state.dir_owner}"
                )
        elif state.dir_state == _S:
            if writers:
                violations.append("directory S but a cache holds M")
            if set(readers) != set(state.dir_sharers):
                violations.append(
                    f"directory sharers {sorted(state.dir_sharers)} != "
                    f"cached readers {readers}"
                )
        else:  # I
            if writers or readers:
                violations.append("directory I but cached copies exist")
        # Memory currency: with no dirty copy, memory must hold the latest.
        if not writers and state.mem_version != self.latest_version(state):
            violations.append(
                f"memory stale: mem={state.mem_version}, "
                f"latest={self.latest_version(state)}"
            )
        return violations

    # -- canonicalization -----------------------------------------------------
    def canonicalize(self, state: LineState) -> LineState:
        """Rank-compress versions so the reachable state space is finite."""
        versions = {state.mem_version}
        for cache_state, version in state.caches:
            if cache_state != _I:
                versions.add(version)
        rank = {v: i for i, v in enumerate(sorted(versions))}
        caches = tuple(
            (s, rank[v] if s != _I else 0) for s, v in state.caches
        )
        return state._replace(caches=caches, mem_version=rank[state.mem_version])


# ---------------------------------------------------------------------------
# Declarative transition table (statically analyzed by repro.simcheck).
#
# The "host" role is the per-host cache/local-directory FSM; the "device"
# role is the device directory on the CXL memory node.  Events:
#
#   host:   local_load/local_store  - demand accesses from this host's cores
#           evict                   - capacity/conflict eviction
#           fwd_fetch/fwd_inv       - device-forwarded remote read / write
#           inv                     - directory invalidation of a sharer
#   device: rd_req/rfo_req          - RD_REQ / RFO_REQ arriving on the link
#           wb                      - dirty writeback arriving
#           sharer_drop             - a sharer's eviction notice (ACK flit)
#
# Every (state, event) pair is covered; stimuli the protocol can never
# receive in a state are declared illegal so the exhaustiveness check in
# `python -m repro lint` stays honest.  The executable model above is the
# behavioural truth; tests/test_simcheck_protocol.py keeps this table
# consistent with it.
# ---------------------------------------------------------------------------

TRANSITION_TABLE = ProtocolTable(
    name="cxl-dsm-msi",
    doc="Baseline multi-host CXL-DSM directory MSI (one line, N hosts).",
    roles=(
        RoleSpec(
            "host",
            states=("I", "S", "M"),
            events=("local_load", "local_store", "evict",
                    "fwd_fetch", "fwd_inv", "inv"),
        ),
        RoleSpec(
            "device",
            states=("I", "S", "M"),
            events=("rd_req", "rfo_req", "wb", "sharer_drop"),
        ),
    ),
    transitions=(
        # -- host: I ----------------------------------------------------
        t("host", "I", "local_load", "S",
          emits=(emit(_Msg.RD_REQ, "device"),),
          waits=(wait(_Msg.DATA, "device", "host"),)),
        t("host", "I", "local_store", "M",
          emits=(emit(_Msg.RFO_REQ, "device"),),
          waits=(wait(_Msg.DATA, "device", "host"),)),
        illegal("host", "I", "evict",
                note="evicting an invalid line is never enabled"),
        illegal("host", "I", "fwd_fetch",
                note="the directory only forwards to the owner"),
        illegal("host", "I", "fwd_inv",
                note="the directory only forwards to the owner"),
        illegal("host", "I", "inv",
                note="the directory never invalidates a non-sharer"),
        # -- host: S ----------------------------------------------------
        t("host", "S", "local_load", "S", note="cache hit"),
        t("host", "S", "local_store", "M",
          emits=(emit(_Msg.RFO_REQ, "device"),),
          waits=(wait(_Msg.DATA, "device"),),
          note="upgrade; the directory invalidates the other sharers"),
        t("host", "S", "evict", "I",
          emits=(emit(_Msg.ACK, "device"),),
          note="clean drop; header-flit notice keeps the sharer list exact"),
        illegal("host", "S", "fwd_fetch",
                note="reads of an S line are served from memory"),
        illegal("host", "S", "fwd_inv",
                note="sharers receive INV, never FWD"),
        t("host", "S", "inv", "I",
          consumes=(_Msg.INV,),
          emits=(emit(_Msg.ACK, "device"),)),
        # -- host: M ----------------------------------------------------
        t("host", "M", "local_load", "M", note="cache hit"),
        t("host", "M", "local_store", "M", note="cache hit"),
        t("host", "M", "evict", "I",
          emits=(emit(_Msg.WB, "device"),)),
        t("host", "M", "fwd_fetch", "S",
          consumes=(_Msg.FWD,),
          emits=(emit(_Msg.DATA, "host"), emit(_Msg.WB, "device")),
          note="remote read: downgrade, cache-to-cache data, dirty WB"),
        t("host", "M", "fwd_inv", "I",
          consumes=(_Msg.FWD,),
          emits=(emit(_Msg.DATA, "host"),),
          note="remote write: ownership transfers with the data"),
        illegal("host", "M", "inv",
                note="the owner receives FWD, never INV"),
        # -- device: I --------------------------------------------------
        t("device", "I", "rd_req", "S",
          consumes=(_Msg.RD_REQ,),
          emits=(emit(_Msg.DATA, "host"),)),
        t("device", "I", "rfo_req", "M",
          consumes=(_Msg.RFO_REQ,),
          emits=(emit(_Msg.DATA, "host"),)),
        illegal("device", "I", "wb",
                note="no valid copy exists to write back"),
        illegal("device", "I", "sharer_drop",
                note="no sharer exists to drop"),
        # -- device: S --------------------------------------------------
        t("device", "S", "rd_req", "S",
          consumes=(_Msg.RD_REQ,),
          emits=(emit(_Msg.DATA, "host"),)),
        t("device", "S", "rfo_req", "M",
          consumes=(_Msg.RFO_REQ,),
          emits=(emit(_Msg.INV, "host"), emit(_Msg.DATA, "host")),
          waits=(wait(_Msg.ACK, "host"),),
          note="invalidate every sharer, collect acks, then grant"),
        illegal("device", "S", "wb",
                note="sharers hold clean data; transactions are atomic"),
        t("device", "S", "sharer_drop", ("S", "I"),
          consumes=(_Msg.ACK,),
          note="last sharer leaving returns the directory to I"),
        # -- device: M --------------------------------------------------
        t("device", "M", "rd_req", "S",
          consumes=(_Msg.RD_REQ,),
          emits=(emit(_Msg.FWD, "host"),),
          waits=(wait(_Msg.WB, "host"),),
          note="owner downgrades and writes back (Fig. 2 steps 3-6)"),
        t("device", "M", "rfo_req", "M",
          consumes=(_Msg.RFO_REQ,),
          emits=(emit(_Msg.FWD, "host"),),
          note="ownership moves host-to-host; data travels with FWD reply"),
        t("device", "M", "wb", "I",
          consumes=(_Msg.WB,),
          note="owner eviction; memory becomes current"),
        illegal("device", "M", "sharer_drop",
                note="an owned line has no sharers"),
    ),
)
