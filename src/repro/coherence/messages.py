"""Coherence message vocabulary for the CXL-DSM fabric.

The timing simulator charges link traversals per message; the vocabulary
here names them so traffic accounting and the protocol models agree on what
travels where.  Sizes follow CXL.mem flit framing: control-only messages are
header flits, data messages carry a 64 B line.
"""

from __future__ import annotations

from enum import Enum, auto


class MessageType(Enum):
    """Messages exchanged between local directories and the device directory."""

    RD_REQ = auto()  # read (cacheable) request
    RFO_REQ = auto()  # read-for-ownership (write) request
    WB = auto()  # dirty writeback to CXL memory
    INV = auto()  # invalidate a sharer
    FWD = auto()  # forward request to the owning host (M / I' states)
    DATA = auto()  # data response (64B line)
    ACK = auto()  # completion acknowledgement
    NC_RD = auto()  # non-cacheable inter-host read (GIM path, Section 3.1)
    NC_WR = auto()  # non-cacheable inter-host write
    MIG_BACK = auto()  # PIPM migrate-back writeback (cases 2/5/6 of Fig. 9)

    @property
    def carries_data(self) -> bool:
        return self in (
            MessageType.WB,
            MessageType.DATA,
            MessageType.NC_WR,
            MessageType.MIG_BACK,
        )

    @property
    def size_bytes(self) -> int:
        from ..mem.cxl_link import CONTROL_BYTES
        from .. import units

        return units.CACHE_LINE if self.carries_data else CONTROL_BYTES
