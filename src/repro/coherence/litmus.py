"""Litmus tests over the coherence protocol models.

The paper's Murphi verification argues PIPM coherence preserves Sequential
Consistency.  The per-line model checker establishes the per-location
invariants (SWMR, reads-see-latest); this module adds the cross-location
argument: classic SC litmus patterns — message passing (MP), store
buffering (SB), load buffering (LB) — executed over *two independent line
models* under every interleaving of the two hosts' program orders.

Because protocol transactions are atomic (the paper's locked ZSim-style
implementation), each interleaving is a sequential execution; the litmus
runner verifies that no interleaving produces an outcome SC forbids, for
both the baseline protocol and PIPM with any remap-host assignment.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from itertools import combinations
from typing import Callable, Dict, List, Sequence, Tuple

from .base_protocol import Action, BaseCxlDsmModel
from .pipm_protocol import PipmModel

#: One litmus instruction: (host, op, line_index); op is "load"/"store".
Instr = Tuple[int, str, int]


@dataclass
class LitmusOutcome:
    """Values observed by each load, keyed by (host, program position)."""

    loads: Dict[Tuple[int, int], int] = field(default_factory=dict)


@dataclass
class LitmusTest:
    """A named litmus pattern plus its SC-forbidden outcome predicate."""

    name: str
    threads: Sequence[Sequence[Tuple[str, int]]]  # per host: (op, line)
    forbidden: Callable[[LitmusOutcome], bool]
    description: str = ""


def _interleavings(lengths: Sequence[int]):
    """All interleavings of per-thread program orders (as host sequences)."""
    total = sum(lengths)
    if len(lengths) != 2:
        raise ValueError("litmus runner supports two threads")
    # Choose the positions of thread 0's instructions among `total` slots.
    for slots in combinations(range(total), lengths[0]):
        order = [1] * total
        for slot in slots:
            order[slot] = 0
        yield order


class LitmusRunner:
    """Executes litmus tests over a family of per-line protocol models."""

    def __init__(self, model_factory: Callable[[], object],
                 num_lines: int = 2) -> None:
        self.model_factory = model_factory
        self.num_lines = num_lines

    def run(self, test: LitmusTest) -> List[LitmusOutcome]:
        """Every outcome over every interleaving; raises on SC violations."""
        if len(test.threads) != 2:
            raise ValueError("litmus tests are two-threaded")
        lengths = [len(t) for t in test.threads]
        outcomes: List[LitmusOutcome] = []
        for order in _interleavings(lengths):
            outcome = self._execute(test, order)
            if test.forbidden(outcome):
                raise AssertionError(
                    f"{test.name}: SC-forbidden outcome {outcome.loads} "
                    f"reachable via interleaving {order}"
                )
            outcomes.append(outcome)
        return outcomes

    def _execute(self, test: LitmusTest, order: Sequence[int]
                 ) -> LitmusOutcome:
        models = [self.model_factory() for _ in range(self.num_lines)]
        states = [m.initial_state() for m in models]
        cursors = [0, 0]
        outcome = LitmusOutcome()
        for host in order:
            op, line = test.threads[host][cursors[host]]
            model = models[line]
            states[line], obs = model.apply(states[line], Action(op, host))
            if op == "load":
                outcome.loads[(host, cursors[host])] = obs["read_version"]
            cursors[host] += 1
        return outcome


# ----------------------------------------------------------------------
# The classic patterns.  Lines: 0 = data (x), 1 = flag (y).
# Stores write increasing versions; version 0 is the initial value.
# ----------------------------------------------------------------------
def message_passing() -> LitmusTest:
    """MP: if the reader sees the flag set, it must see the data."""

    def forbidden(outcome: LitmusOutcome) -> bool:
        flag = outcome.loads.get((1, 0))
        data = outcome.loads.get((1, 1))
        return flag is not None and flag > 0 and data == 0

    return LitmusTest(
        name="MP",
        threads=[
            [("store", 0), ("store", 1)],  # W x; W flag
            [("load", 1), ("load", 0)],  # R flag; R x
        ],
        forbidden=forbidden,
        description="flag observed set but data stale",
    )


def store_buffering() -> LitmusTest:
    """SB: both hosts store then read the other's location.

    SC forbids both loads returning the initial value.
    """

    def forbidden(outcome: LitmusOutcome) -> bool:
        r0 = outcome.loads.get((0, 1))
        r1 = outcome.loads.get((1, 1))
        return r0 == 0 and r1 == 0

    return LitmusTest(
        name="SB",
        threads=[
            [("store", 0), ("load", 1)],  # W x; R y
            [("store", 1), ("load", 0)],  # W y; R x
        ],
        forbidden=forbidden,
        description="both hosts read stale values after their stores",
    )


def coherence_order() -> LitmusTest:
    """CoRR: two reads of one location by the same host never go backwards."""

    def forbidden(outcome: LitmusOutcome) -> bool:
        first = outcome.loads.get((1, 0))
        second = outcome.loads.get((1, 1))
        return (first is not None and second is not None
                and second < first)

    return LitmusTest(
        name="CoRR",
        threads=[
            [("store", 0), ("store", 0)],  # two writes to x
            [("load", 0), ("load", 0)],  # two reads of x
        ],
        forbidden=forbidden,
        description="a host observed a location's history out of order",
    )


ALL_LITMUS = (message_passing, store_buffering, coherence_order)


def run_all(model_factory: Callable[[], object]) -> Dict[str, int]:
    """Run every litmus pattern; returns interleaving counts per test."""
    runner = LitmusRunner(model_factory)
    return {
        make().name: len(runner.run(make())) for make in ALL_LITMUS
    }


def verify_sequential_consistency(num_hosts: int = 2) -> Dict[str, Dict[str, int]]:
    """Litmus-verify the baseline protocol and PIPM (all remap hosts)."""
    results = {
        "cxl-dsm-msi": run_all(lambda: BaseCxlDsmModel(num_hosts)),
    }
    for remap in range(num_hosts):
        results[f"pipm-remap{remap}"] = run_all(
            lambda: PipmModel(num_hosts, remap_host=remap)
        )
    return results
