"""Coherence protocols: baseline CXL-DSM MESI and PIPM coherence.

Two layers live here:

* Pure, functional *protocol models* (:mod:`base_protocol`,
  :mod:`pipm_protocol`) — small transition systems over one cache line
  shared by N hosts, used by the explicit-state model checker
  (:mod:`checker`) to verify SWMR, data-value integrity, and the absence
  of stuck states (the paper's Murphi verification, Section 5.1.4).

* State/encoding vocabulary (:mod:`states`, :mod:`messages`) shared with the
  timing simulator in :mod:`repro.sim`.
"""

from .states import CacheState, MemBit, encode_local_state, encode_device_state
from .messages import MessageType
from .table import Emit, ProtocolTable, RoleSpec, Transition, Wait
from .base_protocol import BaseCxlDsmModel
from .pipm_protocol import PipmModel
from .checker import CheckResult, ModelChecker
from .litmus import LitmusRunner, verify_sequential_consistency

__all__ = [
    "LitmusRunner",
    "verify_sequential_consistency",
    "CacheState",
    "MemBit",
    "MessageType",
    "encode_local_state",
    "encode_device_state",
    "BaseCxlDsmModel",
    "PipmModel",
    "ModelChecker",
    "CheckResult",
    "Emit",
    "ProtocolTable",
    "RoleSpec",
    "Transition",
    "Wait",
]
