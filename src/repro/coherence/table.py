"""Declarative protocol transition tables (the Murphi-rule view).

The executable models in :mod:`base_protocol` and :mod:`pipm_protocol`
encode transitions as Python methods, which the explicit-state checker
explores at runtime.  That catches *behavioural* bugs, but it cannot catch
a table that statically drops a ``(state, event)`` pair, declares two
ambiguous rules for the same stimulus, or emits a message no receiver
handles — the class of defect Murphi's rule tables surface at compile
time.  This module is the vocabulary for writing those tables down
explicitly; ``repro.simcheck.protocol`` analyzes them without simulating.

A table names one or more *roles* (the host-side cache/directory FSM, the
device directory FSM).  Each :class:`Transition` belongs to a role and
covers one ``(state, event)`` stimulus: the stable next state(s), the
fabric messages it emits/consumes, and the message it blocks on, if any.
Guards distinguish intentionally-split rules for the same stimulus (e.g.
PIPM's "line is migrated here" vs. "line lives in CXL memory"); the
analyzer treats a pair as ambiguous unless every entry carries a distinct
non-empty guard.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, Optional, Tuple

from .messages import MessageType


@dataclass(frozen=True)
class Emit:
    """One message sent on the fabric: ``msg`` delivered to ``to_role``."""

    msg: MessageType
    to_role: str


@dataclass(frozen=True)
class Wait:
    """A blocking dependency: the transition stalls until ``msg`` arrives
    from one of ``from_roles``."""

    msg: MessageType
    from_roles: Tuple[str, ...]


def emit(msg: MessageType, to_role: str) -> Emit:
    return Emit(msg, to_role)


def wait(msg: MessageType, *from_roles: str) -> Wait:
    if not from_roles:
        raise ValueError("a Wait needs at least one producing role")
    return Wait(msg, tuple(from_roles))


@dataclass(frozen=True)
class Transition:
    """One table row: ``(role, state, event) -> next_states``.

    ``illegal`` rows document stimuli the protocol can never receive in
    that state (the directory never invalidates a non-sharer, a host never
    evicts an invalid line); declaring them keeps the exhaustiveness check
    honest instead of silent.
    """

    role: str
    state: str
    event: str
    next_states: Tuple[str, ...] = ()
    emits: Tuple[Emit, ...] = ()
    consumes: Tuple[MessageType, ...] = ()
    waits: Tuple[Wait, ...] = ()
    guard: str = ""
    illegal: bool = False
    note: str = ""

    @property
    def stimulus(self) -> Tuple[str, str, str]:
        return (self.role, self.state, self.event)

    @property
    def blocking(self) -> bool:
        return bool(self.waits)

    def label(self) -> str:
        guard = f" [{self.guard}]" if self.guard else ""
        return f"{self.role}({self.state}, {self.event}){guard}"


def t(
    role: str,
    state: str,
    event: str,
    next_state,
    *,
    emits: Iterable[Emit] = (),
    consumes: Iterable[MessageType] = (),
    waits: Iterable[Wait] = (),
    guard: str = "",
    note: str = "",
) -> Transition:
    """Terse legal-transition constructor; ``next_state`` may be a string
    (one stable successor) or a tuple (guarded-by-runtime alternatives)."""
    next_states = (
        (next_state,) if isinstance(next_state, str) else tuple(next_state)
    )
    return Transition(
        role=role,
        state=state,
        event=event,
        next_states=next_states,
        emits=tuple(emits),
        consumes=tuple(consumes),
        waits=tuple(waits),
        guard=guard,
        note=note,
    )


def illegal(
    role: str, state: str, event: str, guard: str = "", note: str = ""
) -> Transition:
    """A stimulus declared unreachable in this state."""
    return Transition(
        role=role, state=state, event=event, guard=guard, illegal=True,
        note=note,
    )


@dataclass(frozen=True)
class RoleSpec:
    """One FSM in the protocol: its stable states and its stimuli."""

    name: str
    states: Tuple[str, ...]
    events: Tuple[str, ...]


@dataclass(frozen=True)
class ProtocolTable:
    """A complete protocol: roles plus every transition row."""

    name: str
    roles: Tuple[RoleSpec, ...]
    transitions: Tuple[Transition, ...]
    doc: str = ""

    def role(self, name: str) -> Optional[RoleSpec]:
        for role in self.roles:
            if role.name == name:
                return role
        return None

    def role_names(self) -> Tuple[str, ...]:
        return tuple(role.name for role in self.roles)

    def by_stimulus(self) -> Dict[Tuple[str, str, str], Tuple[Transition, ...]]:
        grouped: Dict[Tuple[str, str, str], list] = {}
        for transition in self.transitions:
            grouped.setdefault(transition.stimulus, []).append(transition)
        return {key: tuple(rows) for key, rows in grouped.items()}

    def messages_used(self) -> Tuple[MessageType, ...]:
        """Every message type the table emits, consumes, or waits on."""
        used = []
        for transition in self.transitions:
            for e in transition.emits:
                used.append(e.msg)
            used.extend(transition.consumes)
            for w in transition.waits:
                used.append(w.msg)
        seen: Dict[MessageType, None] = {}
        for msg in used:
            seen.setdefault(msg, None)
        return tuple(seen)
