"""Functional model of the PIPM coherence protocol (Fig. 9).

Extends the baseline CXL-DSM MSI model with:

* the per-line in-memory bit kept in both CXL memory and the migration
  host's local memory,
* the ``ME`` (Migrated-Modified/Exclusive) local state and the ``I'``
  (Migrated-Invalid) encoding,
* the six new transitions of Fig. 9:

  - case 1: incremental migration on local writeback of an ``M`` line,
  - cases 3/4: local fast-path accesses to migrated lines (``I'`` <-> ``ME``),
  - cases 2/5/6: migrate-back to CXL memory on inter-host accesses.

The model fixes the *remap host* — the host whose local remapping table has
an entry for this line's page — as a constructor parameter: the migration
policy (Section 4.2) decides that host; the protocol is only responsible for
coherent data movement given the decision.

One modelling note: for inter-host reads of migrated lines (case 2) the
paper installs the retrieved line in state ``M`` at the requester; we give
read requesters ``S`` and write requesters ``M`` so the SWMR invariant stays
directly checkable in MSI terms.  This is a strictly more conservative
sharing state and does not affect any migration behaviour.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, List, NamedTuple, Tuple

from .messages import MessageType as _Msg
from .states import CacheState
from .base_protocol import Action
from .table import ProtocolTable, RoleSpec, emit, illegal, t, wait

_I = int(CacheState.I)
_S = int(CacheState.S)
_M = int(CacheState.M)
_ME = int(CacheState.ME)

HostCopy = Tuple[int, int]


class PipmLineState(NamedTuple):
    """Complete PIPM protocol state of one partially-migrated-page line."""

    caches: Tuple[HostCopy, ...]
    dir_state: int  # device directory: M/S/I (I + mem_bit=1 decodes to I')
    dir_owner: int
    dir_sharers: FrozenSet[int]
    mem_version: int  # CXL memory copy
    mem_bit: int  # in-memory bit (CXL side; local side mirrors it)
    local_version: int  # remap host's local DRAM copy (valid when mem_bit=1)


class PipmModel:
    """PIPM coherence over one line of a page partially migrated to ``remap_host``."""

    name = "pipm"

    def __init__(self, num_hosts: int = 2, remap_host: int = 0) -> None:
        if num_hosts < 1:
            raise ValueError("need at least one host")
        if not 0 <= remap_host < num_hosts:
            raise ValueError("remap_host out of range")
        self.num_hosts = num_hosts
        self.remap_host = remap_host

    # -- construction ------------------------------------------------------
    def initial_state(self) -> PipmLineState:
        return PipmLineState(
            caches=tuple((_I, 0) for _ in range(self.num_hosts)),
            dir_state=_I,
            dir_owner=-1,
            dir_sharers=frozenset(),
            mem_version=0,
            mem_bit=0,
            local_version=0,
        )

    # -- exploration interface ------------------------------------------------
    def enabled_actions(self, state: PipmLineState) -> List[Action]:
        actions = []
        for host in range(self.num_hosts):
            actions.append(Action("load", host))
            actions.append(Action("store", host))
            if state.caches[host][0] != _I:
                actions.append(Action("evict", host))
        return actions

    def latest_version(self, state: PipmLineState) -> int:
        latest = state.local_version if state.mem_bit else state.mem_version
        for cache_state, version in state.caches:
            if cache_state != _I and version > latest:
                latest = version
        return latest

    def apply(self, state: PipmLineState, action: Action) -> Tuple[PipmLineState, Dict]:
        if action.name == "load":
            return self._access(state, action.host, is_write=False)
        if action.name == "store":
            return self._access(state, action.host, is_write=True)
        if action.name == "evict":
            return self._evict(state, action.host)
        raise ValueError(f"unknown action {action.name!r}")

    # -- transitions -------------------------------------------------------
    def _access(
        self, state: PipmLineState, host: int, is_write: bool
    ) -> Tuple[PipmLineState, Dict]:
        latest = self.latest_version(state)
        cache_state, version = state.caches[host]

        # Cache hits (M/ME satisfy both; S satisfies reads).
        if cache_state in (_M, _ME) or (cache_state == _S and not is_write):
            if is_write:
                new_version = latest + 1
                caches = self._with_copy(state.caches, host, cache_state, new_version)
                return state._replace(caches=caches), {
                    "written_version": new_version, "latest": latest,
                }
            return state, {"read_version": version, "latest": latest}

        # Upgrade: S -> writer. Invalidate other sharers first.
        if cache_state == _S and is_write:
            return self._store_fill(state, host, latest)

        # cache_state == I from here on.
        if state.mem_bit and host == self.remap_host:
            # Case 3: local access to a migrated line (I' -> ME), served
            # entirely from local memory; the device directory is not touched.
            data_version = state.local_version
            if is_write:
                data_version = latest + 1
            caches = self._with_copy(state.caches, host, _ME, data_version)
            new_state = state._replace(caches=caches)
            obs = (
                {"written_version": data_version, "latest": latest}
                if is_write
                else {"read_version": state.local_version, "latest": latest}
            )
            return new_state, obs

        if state.mem_bit:
            # Cases 2/5/6: inter-host access to a migrated line -> the line
            # migrates back to CXL memory.
            return self._inter_host_migrate_back(state, host, is_write, latest)

        # mem_bit == 0: baseline directory MSI behaviour.
        if is_write:
            return self._store_fill(state, host, latest)
        return self._load_fill(state, host, latest)

    def _load_fill(
        self, state: PipmLineState, host: int, latest: int
    ) -> Tuple[PipmLineState, Dict]:
        caches = list(state.caches)
        mem_version = state.mem_version
        sharers = set(state.dir_sharers)
        if state.dir_state == _M:
            # simcheck: handles device(M, rd_req) host(M, fwd_fetch)
            owner = state.dir_owner
            owner_version = caches[owner][1]
            caches[owner] = (_S, owner_version)
            mem_version = owner_version
            data_version = owner_version
            sharers = {owner, host}
        else:
            # simcheck: handles device(I, rd_req) device(S, rd_req)
            data_version = mem_version
            sharers.add(host)
        caches[host] = (_S, data_version)
        new_state = state._replace(
            caches=tuple(caches),
            dir_state=_S,
            dir_owner=-1,
            dir_sharers=frozenset(sharers),
            mem_version=mem_version,
        )
        return new_state, {"read_version": data_version, "latest": latest}

    def _store_fill(
        self, state: PipmLineState, host: int, latest: int
    ) -> Tuple[PipmLineState, Dict]:
        # The atomic store transaction folds the whole RFO flow: the
        # device grants from any home directory state and every other
        # valid copy is invalidated (sharers via INV, an owner via FWD).
        # simcheck: handles device(I, rfo_req) device(S, rfo_req)
        # simcheck: handles device(M, rfo_req) host(S, inv) host(M, fwd_inv)
        new_version = latest + 1
        caches = tuple(
            (_M, new_version) if idx == host else (_I, 0)
            for idx in range(self.num_hosts)
        )
        new_state = state._replace(
            caches=caches,
            dir_state=_M,
            dir_owner=host,
            dir_sharers=frozenset(),
        )
        return new_state, {"written_version": new_version, "latest": latest}

    def _inter_host_migrate_back(
        self, state: PipmLineState, host: int, is_write: bool, latest: int
    ) -> Tuple[PipmLineState, Dict]:
        # Fig. 9 cases 2/5/6, folded into the requester's access: the
        # device forwards to the remap host (whose copy is ME when
        # cached, I' when only in local memory) and the line migrates
        # back over the I_MIG directory entry.
        # simcheck: handles device(I_MIG, rd_req) device(I_MIG, rfo_req)
        # simcheck: handles host(ME, fwd_fetch) host(ME, fwd_inv)
        # simcheck: handles host(I, fwd_fetch) host(I, fwd_inv)
        owner = self.remap_host
        owner_state, owner_version = state.caches[owner]
        caches = list(state.caches)
        if owner_state == _ME:
            # Cases 5/6: the owner's directory transitions ME -> I (write)
            # or ME -> S (read) and asynchronously writes back, clearing the
            # in-memory bits.
            data_version = owner_version
            caches[owner] = (_S, owner_version) if not is_write else (_I, 0)
        else:
            # Case 2: no cached copy anywhere; data comes from the owner's
            # local memory (I' -> I with an asynchronous writeback).
            data_version = state.local_version
        mem_version = data_version

        if is_write:
            new_version = latest + 1
            caches = [
                (_M, new_version) if idx == host else (_I, 0)
                for idx in range(self.num_hosts)
            ]
            new_state = state._replace(
                caches=tuple(caches),
                dir_state=_M,
                dir_owner=host,
                dir_sharers=frozenset(),
                mem_version=mem_version,
                mem_bit=0,
                local_version=0,
            )
            return new_state, {"written_version": new_version, "latest": latest}

        caches[host] = (_S, data_version)
        sharers = {host}
        if caches[owner][0] == _S:
            sharers.add(owner)
        new_state = state._replace(
            caches=tuple(caches),
            dir_state=_S,
            dir_owner=-1,
            dir_sharers=frozenset(sharers),
            mem_version=mem_version,
            mem_bit=0,
            local_version=0,
        )
        return new_state, {"read_version": data_version, "latest": latest}

    def _evict(self, state: PipmLineState, host: int) -> Tuple[PipmLineState, Dict]:
        cache_state, version = state.caches[host]
        if cache_state == _I:
            raise ValueError("evict of an invalid line is not enabled")
        caches = list(state.caches)
        caches[host] = (_I, 0)

        if cache_state == _ME:
            # Case 4: ME -> I'; dirty data written back to *local* memory.
            new_state = state._replace(
                caches=tuple(caches), local_version=version
            )
            return new_state, {"migrated": True}

        if cache_state == _M:
            if host == self.remap_host:
                # Case 1: incremental migration — the local writeback goes to
                # local memory and both in-memory bits flip to 1 (M -> I').
                new_state = state._replace(
                    caches=tuple(caches),
                    dir_state=_I,
                    dir_owner=-1,
                    dir_sharers=frozenset(),
                    local_version=version,
                    mem_bit=1,
                )
                return new_state, {"migrated": True}
            # Standard dirty writeback to CXL memory.
            # simcheck: handles device(M, wb)
            new_state = state._replace(
                caches=tuple(caches),
                dir_state=_I,
                dir_owner=-1,
                dir_sharers=frozenset(),
                mem_version=version,
            )
            return new_state, {}

        # S eviction.
        # simcheck: handles device(S, sharer_drop)
        sharers = set(state.dir_sharers)
        sharers.discard(host)
        new_state = state._replace(
            caches=tuple(caches),
            dir_state=_S if sharers else _I,
            dir_owner=-1,
            dir_sharers=frozenset(sharers),
        )
        return new_state, {}

    # -- helpers -----------------------------------------------------------
    def _with_copy(
        self, caches: Tuple[HostCopy, ...], host: int, state: int, version: int
    ) -> Tuple[HostCopy, ...]:
        return tuple(
            (state, version) if idx == host else copy
            for idx, copy in enumerate(caches)
        )

    # -- invariants -----------------------------------------------------------
    def invariant_violations(self, state: PipmLineState) -> List[str]:
        violations: List[str] = []
        writers = [
            idx for idx, (s, _) in enumerate(state.caches) if s in (_M, _ME)
        ]
        readers = [idx for idx, (s, _) in enumerate(state.caches) if s == _S]
        if len(writers) > 1:
            violations.append(f"SWMR: multiple writers {writers}")
        if writers and readers:
            violations.append(
                f"SWMR: writer {writers} coexists with readers {readers}"
            )
        # ME only ever at the remap host, and only while migrated.
        for idx, (s, _) in enumerate(state.caches):
            if s == _ME and idx != self.remap_host:
                violations.append(f"ME at non-remap host {idx}")
            if s == _ME and not state.mem_bit:
                violations.append("ME with in-memory bit clear")
        # While migrated, only the remap host may hold the line.
        if state.mem_bit:
            foreign = [
                idx
                for idx, (s, _) in enumerate(state.caches)
                if s != _I and idx != self.remap_host
            ]
            if foreign:
                violations.append(
                    f"migrated line cached at non-remap hosts {foreign}"
                )
            if state.dir_state != _I:
                violations.append(
                    "device directory holds an entry for a migrated (I') line"
                )
        # Memory currency: with no cached writer, the authoritative copy
        # (local memory when migrated, CXL memory otherwise) must be latest.
        if not writers:
            authoritative = (
                state.local_version if state.mem_bit else state.mem_version
            )
            if authoritative != self.latest_version(state):
                violations.append(
                    f"authoritative copy stale: {authoritative} != "
                    f"{self.latest_version(state)}"
                )
        return violations

    # -- canonicalization -------------------------------------------------------
    def canonicalize(self, state: PipmLineState) -> PipmLineState:
        versions = {state.mem_version, state.local_version}
        for cache_state, version in state.caches:
            if cache_state != _I:
                versions.add(version)
        rank = {v: i for i, v in enumerate(sorted(versions))}
        caches = tuple(
            (s, rank[v] if s != _I else 0) for s, v in state.caches
        )
        return state._replace(
            caches=caches,
            mem_version=rank[state.mem_version],
            local_version=rank[state.local_version] if state.mem_bit else 0,
        )


# ---------------------------------------------------------------------------
# Declarative transition table (statically analyzed by repro.simcheck).
#
# Extends the baseline table with the two migrated encodings of Fig. 9:
# ``ME`` at the remap host and ``I_MIG`` (I') at the device directory.
# Guards split the stimuli whose handling depends on where the line
# currently lives:
#
#   line_home           - the line's authoritative copy is in CXL memory
#   line_migrated_here  - this host is the remap host and the in-memory
#                         bit is set (the line lives in local DRAM)
#   below_threshold / migrating - whether an M-line writeback performs
#                         case 1's incremental migration
#   data / bit_set      - whether an arriving WB carries the 64B line or
#                         is the header-only in-memory-bit update
#
# The six Fig. 9 cases appear as notes on their rows.  The executable
# model above remains the behavioural truth; tests keep the two in sync.
# ---------------------------------------------------------------------------

TRANSITION_TABLE = ProtocolTable(
    name="pipm",
    doc="PIPM coherence over one line of a partially migrated page.",
    roles=(
        RoleSpec(
            "host",
            states=("I", "S", "M", "ME"),
            events=("local_load", "local_store", "evict",
                    "fwd_fetch", "fwd_inv", "inv"),
        ),
        RoleSpec(
            "device",
            states=("I", "S", "M", "I_MIG"),
            events=("rd_req", "rfo_req", "wb", "sharer_drop"),
        ),
    ),
    transitions=(
        # -- host: I ----------------------------------------------------
        t("host", "I", "local_load", "S", guard="line_home",
          emits=(emit(_Msg.RD_REQ, "device"),),
          waits=(wait(_Msg.DATA, "device", "host"),)),
        t("host", "I", "local_load", "ME", guard="line_migrated_here",
          note="case 3: I' -> ME, served from local memory, no fabric"),
        t("host", "I", "local_store", "M", guard="line_home",
          emits=(emit(_Msg.RFO_REQ, "device"),),
          waits=(wait(_Msg.DATA, "device", "host"),)),
        t("host", "I", "local_store", "ME", guard="line_migrated_here",
          note="case 3: I' -> ME, local write, no fabric"),
        illegal("host", "I", "evict",
                note="evicting an invalid line is never enabled"),
        t("host", "I", "fwd_fetch", "I", guard="line_migrated_here",
          consumes=(_Msg.FWD,),
          emits=(emit(_Msg.MIG_BACK, "device"),),
          note="case 2: inter-host read of an I' line; the remap host "
               "serves it from local memory and migrates the line back"),
        illegal("host", "I", "fwd_fetch", guard="line_home",
                note="the directory only forwards to a valid owner"),
        t("host", "I", "fwd_inv", "I", guard="line_migrated_here",
          consumes=(_Msg.FWD,),
          emits=(emit(_Msg.MIG_BACK, "device"),),
          note="case 2: inter-host write of an I' line; migrate back"),
        illegal("host", "I", "fwd_inv", guard="line_home",
                note="the directory only forwards to a valid owner"),
        illegal("host", "I", "inv",
                note="the directory never invalidates a non-sharer"),
        # -- host: S ----------------------------------------------------
        t("host", "S", "local_load", "S", note="cache hit"),
        t("host", "S", "local_store", "M",
          emits=(emit(_Msg.RFO_REQ, "device"),),
          waits=(wait(_Msg.DATA, "device"),),
          note="upgrade; the directory invalidates the other sharers"),
        t("host", "S", "evict", "I",
          emits=(emit(_Msg.ACK, "device"),),
          note="clean drop notice keeps the sharer list exact"),
        illegal("host", "S", "fwd_fetch",
                note="reads of an S line are served from memory"),
        illegal("host", "S", "fwd_inv",
                note="sharers receive INV, never FWD"),
        t("host", "S", "inv", "I",
          consumes=(_Msg.INV,),
          emits=(emit(_Msg.ACK, "device"),)),
        # -- host: M ----------------------------------------------------
        t("host", "M", "local_load", "M", note="cache hit"),
        t("host", "M", "local_store", "M", note="cache hit"),
        t("host", "M", "evict", "I", guard="below_threshold",
          emits=(emit(_Msg.WB, "device"),),
          note="standard dirty writeback to CXL memory"),
        t("host", "M", "evict", "I", guard="migrating",
          emits=(emit(_Msg.WB, "device"),),
          note="case 1: incremental migration — data goes to local "
               "memory; the WB on the fabric is the header-only "
               "in-memory-bit update (M -> I')"),
        t("host", "M", "fwd_fetch", "S",
          consumes=(_Msg.FWD,),
          emits=(emit(_Msg.DATA, "host"), emit(_Msg.WB, "device")),
          note="remote read: downgrade, cache-to-cache data, dirty WB"),
        t("host", "M", "fwd_inv", "I",
          consumes=(_Msg.FWD,),
          emits=(emit(_Msg.DATA, "host"),),
          note="remote write: ownership transfers with the data"),
        illegal("host", "M", "inv",
                note="the owner receives FWD, never INV"),
        # -- host: ME ---------------------------------------------------
        t("host", "ME", "local_load", "ME", note="case 3 fast path: hit"),
        t("host", "ME", "local_store", "ME", note="case 3 fast path: hit"),
        t("host", "ME", "evict", "I",
          note="case 4: ME -> I'; dirty data written back to local "
               "memory, no fabric traffic"),
        t("host", "ME", "fwd_fetch", "S",
          consumes=(_Msg.FWD,),
          emits=(emit(_Msg.MIG_BACK, "device"),),
          note="case 5: inter-host read migrates the line back (ME -> S)"),
        t("host", "ME", "fwd_inv", "I",
          consumes=(_Msg.FWD,),
          emits=(emit(_Msg.MIG_BACK, "device"),),
          note="case 6: inter-host write migrates the line back (ME -> I)"),
        illegal("host", "ME", "inv",
                note="a migrated line has no other sharers to invalidate"),
        # -- device: I --------------------------------------------------
        t("device", "I", "rd_req", "S",
          consumes=(_Msg.RD_REQ,),
          emits=(emit(_Msg.DATA, "host"),)),
        t("device", "I", "rfo_req", "M",
          consumes=(_Msg.RFO_REQ,),
          emits=(emit(_Msg.DATA, "host"),)),
        illegal("device", "I", "wb",
                note="no valid copy exists to write back"),
        illegal("device", "I", "sharer_drop",
                note="no sharer exists to drop"),
        # -- device: S --------------------------------------------------
        t("device", "S", "rd_req", "S",
          consumes=(_Msg.RD_REQ,),
          emits=(emit(_Msg.DATA, "host"),)),
        t("device", "S", "rfo_req", "M",
          consumes=(_Msg.RFO_REQ,),
          emits=(emit(_Msg.INV, "host"), emit(_Msg.DATA, "host")),
          waits=(wait(_Msg.ACK, "host"),),
          note="invalidate every sharer, collect acks, then grant"),
        illegal("device", "S", "wb",
                note="sharers hold clean data; transactions are atomic"),
        t("device", "S", "sharer_drop", ("S", "I"),
          consumes=(_Msg.ACK,),
          note="last sharer leaving returns the directory to I"),
        # -- device: M --------------------------------------------------
        t("device", "M", "rd_req", "S",
          consumes=(_Msg.RD_REQ,),
          emits=(emit(_Msg.FWD, "host"),),
          waits=(wait(_Msg.WB, "host"),),
          note="owner downgrades and writes back"),
        t("device", "M", "rfo_req", "M",
          consumes=(_Msg.RFO_REQ,),
          emits=(emit(_Msg.FWD, "host"),),
          note="ownership moves host-to-host"),
        t("device", "M", "wb", "I", guard="data",
          consumes=(_Msg.WB,),
          note="owner eviction; CXL memory becomes current"),
        t("device", "M", "wb", "I_MIG", guard="bit_set",
          consumes=(_Msg.WB,),
          note="case 1 completes: directory entry drops, in-memory bit "
               "set in ECC spare bits (M -> I')"),
        illegal("device", "M", "sharer_drop",
                note="an owned line has no sharers"),
        # -- device: I_MIG (I') -----------------------------------------
        t("device", "I_MIG", "rd_req", "S",
          consumes=(_Msg.RD_REQ,),
          emits=(emit(_Msg.FWD, "host"), emit(_Msg.DATA, "host")),
          waits=(wait(_Msg.MIG_BACK, "host"),),
          note="cases 2/5: forward to the remap host, wait for the "
               "migrate-back data, then answer the requester"),
        t("device", "I_MIG", "rfo_req", "M",
          consumes=(_Msg.RFO_REQ,),
          emits=(emit(_Msg.FWD, "host"), emit(_Msg.DATA, "host")),
          waits=(wait(_Msg.MIG_BACK, "host"),),
          note="cases 2/6: migrate back, then grant ownership"),
        illegal("device", "I_MIG", "wb",
                note="while migrated, no host holds a CXL-backed copy"),
        illegal("device", "I_MIG", "sharer_drop",
                note="a migrated line has no device-tracked sharers"),
    ),
)
