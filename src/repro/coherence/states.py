"""Coherence states, including PIPM's ME and I' states (Fig. 9).

The paper encodes the two new states by pairing the existing directory
states with a 1-bit in-memory state stored alongside ECC:

==================  =================  ============  =================
PIPM state          directory state    in-memory bit  meaning
==================  =================  ============  =================
``ME``              ME (new, local)    1             migrated + exclusively cached
``I'`` (``I_MIG``)  I                  1             migrated, not cached
``M``/``S``/``I``   M/S/I              0             standard MESI
==================  =================  ============  =================
"""

from __future__ import annotations

from enum import IntEnum


class CacheState(IntEnum):
    """Directory/cache coherence states (standard MESI plus PIPM's ME/I')."""

    I = 0  # noqa: E741 - the canonical protocol name
    S = 1
    E = 2
    M = 3
    ME = 4  # Migrated-Modified/Exclusive (local directory only)
    I_MIG = 5  # I' - migrated to a host's local memory, not cached

    @property
    def is_valid_copy(self) -> bool:
        """Whether a cache holding this state has readable data."""
        return self in (CacheState.S, CacheState.E, CacheState.M, CacheState.ME)

    @property
    def is_writer(self) -> bool:
        """Whether this state grants write permission (SWMR 'writer')."""
        return self in (CacheState.M, CacheState.E, CacheState.ME)


class MemBit(IntEnum):
    """The 1-bit in-memory state kept in ECC spare bits (Section 4.3.2)."""

    HOME = 0  # the latest non-cached copy lives in CXL memory
    MIGRATED = 1  # the latest non-cached copy lives in a host's local memory


def encode_local_state(directory_state: CacheState, mem_bit: MemBit) -> CacheState:
    """Full local coherence state = directory state + in-memory bit.

    Implements the upper table of Fig. 9: an ``I`` directory state with the
    in-memory bit set decodes to ``I'``; the explicit ``ME`` directory state
    requires the bit set.
    """
    if directory_state is CacheState.ME:
        if mem_bit is not MemBit.MIGRATED:
            raise ValueError("ME requires the in-memory bit to be set")
        return CacheState.ME
    if directory_state is CacheState.I and mem_bit is MemBit.MIGRATED:
        return CacheState.I_MIG
    return directory_state


def encode_device_state(directory_state: CacheState, mem_bit: MemBit) -> CacheState:
    """Full device coherence state (lower table of Fig. 9).

    The device directory reuses ``I`` + in-memory bit = 1 as ``I'`` —
    inter-host accesses to such lines must be directed to the owning host's
    local memory.
    """
    if directory_state is CacheState.ME:
        raise ValueError("the device directory never holds ME")
    if directory_state is CacheState.I and mem_bit is MemBit.MIGRATED:
        return CacheState.I_MIG
    return directory_state
