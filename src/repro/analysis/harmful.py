"""Harmful-migration accounting (Fig. 5).

The paper defines a page migration as *harmful* if it increases overall
execution time: after migrating a page to one host's local memory, that
host's accesses get faster (local vs CXL) but every other host's accesses
get slower (4-hop non-cacheable vs 2-hop cacheable CXL).  The ledger
tracks, per live migration, the accumulated benefit and harm against
reference latencies derived from the system configuration, plus the
migration's own cost, and classifies it when the page is demoted (or at
the end of the run).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple

from .. import units
from ..config import SystemConfig


def reference_latencies(config: SystemConfig) -> Tuple[float, float, float]:
    """(local, cxl, inter-host) expected DRAM-level service latencies in ns."""
    local = (
        config.local_dir_latency_ns
        + config.local_dram.row_miss_ns
        + units.transfer_ns(
            units.CACHE_LINE, config.local_dram.bandwidth_gbs_per_channel
        )
    )
    link_rt = 2 * config.cxl_link.latency_ns + units.transfer_ns(
        units.CACHE_LINE + 16, config.cxl_link.bandwidth_gbs
    )
    cxl = (
        link_rt
        + config.directory.latency_ns
        + config.cxl_dram.row_miss_ns
        + units.transfer_ns(
            units.CACHE_LINE, config.cxl_dram.bandwidth_gbs_per_channel
        )
    )
    inter_host = 2 * link_rt + config.directory.latency_ns + local
    return local, cxl, inter_host


@dataclass
class _MigRecord:
    dest: int
    benefit_ns: float = 0.0
    harm_ns: float = 0.0


class MigrationLedger:
    """Per-migration benefit/harm books for the kernel schemes."""

    def __init__(self, config: SystemConfig) -> None:
        local, cxl, inter = reference_latencies(config)
        #: per-access latency saved by the destination host
        self.benefit_per_local = max(cxl - local, 0.0)
        #: per-access latency added for every other host
        self.harm_per_remote = max(inter - cxl, 0.0)
        #: fixed cost charged to each migration (kernel path + transfer)
        self.cost_per_migration_ns = (
            config.kernel.initiator_cost_ns
            + units.transfer_ns(units.PAGE_SIZE, config.cxl_link.bandwidth_gbs)
        )
        self._live: Dict[int, _MigRecord] = {}
        self.total_migrations = 0
        self.harmful_migrations = 0
        self.total_benefit_ns = 0.0
        self.total_harm_ns = 0.0

    # -- events ----------------------------------------------------------
    def record_migration(self, page: int, dest: int) -> None:
        # A page re-migrated before demotion finalizes the previous record.
        if page in self._live:
            self._finalize(page)
        self._live[page] = _MigRecord(dest)
        self.total_migrations += 1

    def record_local_access(self, page: int) -> None:
        record = self._live.get(page)
        if record is not None:
            record.benefit_ns += self.benefit_per_local

    def record_remote_access(self, page: int) -> None:
        record = self._live.get(page)
        if record is not None:
            record.harm_ns += self.harm_per_remote

    def record_demotion(self, page: int) -> None:
        if page in self._live:
            self._finalize(page)

    def finalize(self) -> None:
        """Classify every still-live migration (end of run)."""
        for page in list(self._live):
            self._finalize(page)

    def _finalize(self, page: int) -> None:
        record = self._live.pop(page)
        total_harm = record.harm_ns + self.cost_per_migration_ns
        self.total_benefit_ns += record.benefit_ns
        self.total_harm_ns += total_harm
        if total_harm > record.benefit_ns:
            self.harmful_migrations += 1

    # -- reporting (Fig. 5) ------------------------------------------------
    @property
    def harmful_fraction(self) -> float:
        if not self.total_migrations:
            return 0.0
        return self.harmful_migrations / self.total_migrations
