"""Analysis utilities: harmful-migration ledger, breakdowns, report tables."""

from .harmful import MigrationLedger, reference_latencies
from .breakdown import interval_breakdown
from .report import (
    Table,
    format_table,
    geomean,
    mean,
)

__all__ = [
    "MigrationLedger",
    "reference_latencies",
    "interval_breakdown",
    "Table",
    "format_table",
    "geomean",
    "mean",
]
