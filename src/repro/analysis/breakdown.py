"""Execution-time breakdown across migration intervals (Fig. 4).

For a given kernel migration scheme and workload, runs the scheme at each
interval and decomposes its (native-normalized) execution time into
*page transfer*, *management*, and *other* — the paper's three stacked
components.
"""

from __future__ import annotations

from typing import Dict, Iterable, Optional

from ..config import SystemConfig
from ..workloads.trace import WorkloadTrace


def interval_breakdown(
    trace: WorkloadTrace,
    scheme_name: str,
    intervals_ns: Iterable[float],
    config: Optional[SystemConfig] = None,
    native_exec_ns: Optional[float] = None,
) -> Dict[float, Dict[str, float]]:
    """``{interval: {other, management, transfer, total}}``, native-normalized."""
    # Imported here: repro.sim.system needs repro.analysis.harmful, so the
    # package-level import would be circular.
    from ..policies import make_scheme
    from ..sim.harness import run_experiment

    if config is None:
        config = SystemConfig.scaled()
    if native_exec_ns is None:
        native = run_experiment(trace, "native", config)
        native_exec_ns = native.exec_time_ns
    out: Dict[float, Dict[str, float]] = {}
    for interval in intervals_ns:
        scheme = make_scheme(scheme_name, interval_ns=interval)
        result = run_experiment(trace, scheme, config)
        out[interval] = result.breakdown_vs(native_exec_ns)
    return out
