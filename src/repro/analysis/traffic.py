"""Interconnect and DRAM traffic accounting.

The system model records per-component byte/message counters in its
:class:`~repro.stats.StatRegistry` (per-host CXL links, per-channel DRAM,
CXL-node DRAM).  This module turns a registry snapshot into a traffic
report: totals, per-link breakdowns, and achieved-bandwidth estimates —
the numbers one needs to sanity-check bandwidth-sensitivity results
(Fig. 15) or to find a saturated link.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Mapping

from .. import units
from .report import format_table


@dataclass
class LinkTraffic:
    """Bytes/messages over one host's CXL link (both directions summed)."""

    host: int
    bytes: float = 0.0
    messages: float = 0.0
    queue_ns: float = 0.0

    @property
    def mean_message_bytes(self) -> float:
        return self.bytes / self.messages if self.messages else 0.0


@dataclass
class TrafficReport:
    """Aggregated traffic view of one simulation run."""

    exec_time_ns: float
    links: Dict[int, LinkTraffic] = field(default_factory=dict)
    cxl_dram_bytes: float = 0.0
    local_dram_bytes: Dict[int, float] = field(default_factory=dict)

    @property
    def total_link_bytes(self) -> float:
        return sum(link.bytes for link in self.links.values())

    def link_bandwidth_gbs(self, host: int) -> float:
        """Achieved (not offered) bandwidth over the run window."""
        if self.exec_time_ns <= 0:
            return 0.0
        link = self.links.get(host)
        if link is None:
            return 0.0
        return link.bytes / units.GB / (self.exec_time_ns / 1e9)

    def busiest_link(self) -> int:
        if not self.links:
            raise ValueError("no link traffic recorded")
        return max(self.links, key=lambda h: self.links[h].bytes)

    def render(self) -> str:
        rows = []
        for host in sorted(self.links):
            link = self.links[host]
            rows.append((
                f"host{host}",
                units.pretty_size(int(link.bytes)),
                int(link.messages),
                f"{self.link_bandwidth_gbs(host):.2f}GB/s",
                units.pretty_size(int(self.local_dram_bytes.get(host, 0))),
            ))
        rows.append((
            "cxl-dram", units.pretty_size(int(self.cxl_dram_bytes)), "-",
            "-", "-",
        ))
        return format_table(
            "Traffic report",
            ["component", "link bytes", "messages", "achieved bw",
             "local DRAM bytes"],
            rows,
        )


def traffic_report(
    stats: Mapping[str, float], exec_time_ns: float, num_hosts: int
) -> TrafficReport:
    """Build a :class:`TrafficReport` from a registry snapshot.

    ``stats`` is ``StatRegistry.snapshot()`` of the system the run used
    (pass ``stats=StatRegistry()`` into :class:`MultiHostSystem` or read
    ``system.stats``).
    """
    report = TrafficReport(exec_time_ns=exec_time_ns)
    for host in range(num_hosts):
        link = LinkTraffic(
            host=host,
            bytes=stats.get(f"link{host}.bytes", 0.0),
            messages=stats.get(f"link{host}.messages", 0.0),
            queue_ns=stats.get(f"link{host}.queue_ns", 0.0),
        )
        report.links[host] = link
        local = 0.0
        for key, value in stats.items():
            if key.startswith(f"host{host}.local_mem.") and \
                    key.endswith(".bytes"):
                local += value
        report.local_dram_bytes[host] = local
    for key, value in stats.items():
        if key.startswith("cxl_mem.") and key.endswith(".bytes"):
            report.cxl_dram_bytes += value
    return report
