"""Plain-text table/series formatting for the benchmark harnesses.

Every bench prints the same rows/series its paper figure shows; these
helpers keep the formatting consistent and the aggregation (arithmetic
mean vs geometric mean) explicit.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence


def mean(values: Iterable[float]) -> float:
    items = list(values)
    return sum(items) / len(items) if items else 0.0


def geomean(values: Iterable[float]) -> float:
    items = [v for v in values if v > 0]
    if not items:
        return 0.0
    return math.exp(sum(math.log(v) for v in items) / len(items))


@dataclass
class Table:
    """A simple column-aligned text table."""

    title: str
    columns: List[str]
    rows: List[List[str]] = field(default_factory=list)

    def add_row(self, *cells) -> None:
        if len(cells) != len(self.columns):
            raise ValueError(
                f"row has {len(cells)} cells, table has {len(self.columns)} "
                f"columns"
            )
        self.rows.append([str(c) for c in cells])

    def render(self) -> str:
        widths = [len(c) for c in self.columns]
        for row in self.rows:
            for i, cell in enumerate(row):
                widths[i] = max(widths[i], len(cell))
        lines = [self.title, "=" * len(self.title)]
        header = "  ".join(c.ljust(widths[i]) for i, c in enumerate(self.columns))
        lines.append(header)
        lines.append("-" * len(header))
        for row in self.rows:
            lines.append(
                "  ".join(cell.ljust(widths[i]) for i, cell in enumerate(row))
            )
        return "\n".join(lines)


def format_table(
    title: str,
    columns: Sequence[str],
    rows: Iterable[Sequence],
) -> str:
    table = Table(title, list(columns))
    for row in rows:
        table.add_row(*row)
    return table.render()


#: Human-readable labels for the ``fault_*``/``watchdog_*`` result stats.
_FAULT_LABELS = (
    ("fault_injected_errors", "injected transfer errors"),
    ("fault_link_retries", "link retries"),
    ("fault_link_giveups", "link give-ups"),
    ("fault_migration_aborts", "migration aborts"),
    ("fault_migration_timeouts", "  of which timeouts"),
    ("fault_rollbacks", "remap rollbacks"),
    ("fault_degraded_skips", "degraded-link skips"),
    ("fault_host_stall_ns", "host stall time (ns)"),
    ("fault_poison_recoveries", "poison recoveries"),
    ("fault_recovery_ns", "recovery time (ns)"),
    ("fault_host_crashes", "host crashes"),
    ("fault_host_rejoins", "host rejoins"),
    ("fault_crash_lines_reclaimed", "  directory lines reclaimed"),
    ("fault_crash_pages_reclaimed", "  remapped pages reclaimed"),
    ("fault_crash_txns_aborted", "  in-flight txns aborted"),
    ("fault_crash_lost_updates", "  lost updates (M, no writeback)"),
    ("fault_crash_dropped_accesses", "  accesses dropped (dead host)"),
    ("fault_crash_recovery_ns", "  crash recovery time (ns)"),
    ("fault_crash_down_ns", "  host-down time (ns)"),
    ("fault_governor_skips", "governor-suppressed promotions"),
    ("fault_sabotaged_rollbacks", "sabotaged rollbacks"),
    ("watchdog_violations", "watchdog violations"),
)


def format_fault_report(stats: Dict[str, float]) -> str:
    """Render a run's fault/recovery counters; empty string if none fired."""
    rows = [
        (label, f"{stats[key]:g}")
        for key, label in _FAULT_LABELS
        if key in stats
    ]
    if not rows:
        return ""
    return format_table(
        "Fault injection & recovery", ["event", "count"], rows
    )


def format_series(
    title: str,
    series: Dict[str, Dict[str, float]],
    fmt: str = "{:.3f}",
    mean_row: Optional[str] = "mean",
) -> str:
    """Render ``{row_label: {col_label: value}}`` as an aligned table."""
    if not series:
        return f"{title}\n(empty)"
    columns = list(next(iter(series.values())).keys())
    table = Table(title, ["workload"] + columns)
    for label, values in series.items():
        table.add_row(label, *[fmt.format(values.get(c, 0.0)) for c in columns])
    if mean_row:
        table.add_row(
            mean_row,
            *[
                fmt.format(geomean(vals[c] for vals in series.values()))
                for c in columns
            ],
        )
    return table.render()
