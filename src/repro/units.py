"""Unit helpers shared across the simulator.

The simulator keeps a single time base (nanoseconds, as floats) and a single
size base (bytes, as ints).  These helpers make configuration values
self-describing: ``50 * NS``, ``5 * GB_PER_S`` and so on.
"""

from __future__ import annotations

# --- time (nanoseconds) ---
NS = 1.0
US = 1_000.0
MS = 1_000_000.0
S = 1_000_000_000.0

# --- sizes (bytes) ---
B = 1
KB = 1024
MB = 1024 * 1024
GB = 1024 * 1024 * 1024

# --- architectural constants ---
CACHE_LINE = 64
PAGE_SIZE = 4096
LINES_PER_PAGE = PAGE_SIZE // CACHE_LINE
LINE_SHIFT = 6
PAGE_SHIFT = 12


def cycles_to_ns(cycles: float, freq_ghz: float) -> float:
    """Convert a cycle count at ``freq_ghz`` to nanoseconds."""
    return cycles / freq_ghz


def ns_to_cycles(ns: float, freq_ghz: float) -> float:
    """Convert nanoseconds to cycles at ``freq_ghz``."""
    return ns * freq_ghz


def transfer_ns(size_bytes: int, gb_per_s: float) -> float:
    """Serialization time of ``size_bytes`` over a ``gb_per_s`` channel."""
    if gb_per_s <= 0:
        raise ValueError(f"bandwidth must be positive, got {gb_per_s}")
    # 1 GB/s == 2**30 bytes / 1e9 ns
    return size_bytes * 1e9 / (gb_per_s * GB)


def line_addr(addr: int) -> int:
    """Cache-line index of a byte address."""
    return addr >> LINE_SHIFT


def page_addr(addr: int) -> int:
    """Page index (virtual frame number style) of a byte address."""
    return addr >> PAGE_SHIFT


def line_of_page(addr: int) -> int:
    """Index of the cache line within its 4 KB page (0..63)."""
    return (addr >> LINE_SHIFT) & (LINES_PER_PAGE - 1)


def page_of_line(line: int) -> int:
    """Page index of a cache-line index."""
    return line >> (PAGE_SHIFT - LINE_SHIFT)


def line_base(line: int) -> int:
    """Byte address of the first byte of a cache-line index."""
    return line << LINE_SHIFT


def page_base(page: int) -> int:
    """Byte address of the first byte of a page index."""
    return page << PAGE_SHIFT


def pretty_size(size_bytes: int) -> str:
    """Human-readable size string (e.g. ``'48.0GB'``)."""
    value = float(size_bytes)
    for suffix in ("B", "KB", "MB", "GB", "TB"):
        if value < 1024 or suffix == "TB":
            if suffix == "B":
                return f"{int(value)}{suffix}"
            return f"{value:.1f}{suffix}"
        value /= 1024
    raise AssertionError("unreachable")


def pretty_time(ns: float) -> str:
    """Human-readable duration string (e.g. ``'1.25ms'``)."""
    if ns < US:
        return f"{ns:.1f}ns"
    if ns < MS:
        return f"{ns / US:.2f}us"
    if ns < S:
        return f"{ns / MS:.2f}ms"
    return f"{ns / S:.3f}s"
