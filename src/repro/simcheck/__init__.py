"""simcheck: static determinism/unit-safety lints and protocol analysis.

Two halves, one ``python -m repro lint`` entry point:

* an AST lint engine (:mod:`.engine`, rules in :mod:`.rules`) enforcing
  the determinism contract the content-addressed bench cache depends on
  — no wall clocks, no unseeded RNG, no set-order-dependent results —
  plus unit-safety and stats-discipline heuristics;
* a protocol-table analyzer (:mod:`.protocol`) that imports the
  declarative ``TRANSITION_TABLE`` views of the coherence protocols and
  statically checks exhaustiveness, determinism, message closure, and
  wait-for-cycle freedom without simulating a single step.

Findings share one record type (:mod:`.findings`) and one committed
baseline mechanism (:mod:`.baseline`) so CI fails only on regressions.
"""

from __future__ import annotations

from . import rules as _rules  # noqa: F401  (import populates the registry)
from .baseline import apply_baseline, load_baseline, write_baseline
from .engine import LintEngine, Rule, all_rules, lint_source
from .findings import Finding, LintReport
from .protocol import ProtocolAnalyzer, analyze_repo_tables, analyze_table

__all__ = [
    "Finding",
    "LintEngine",
    "LintReport",
    "ProtocolAnalyzer",
    "Rule",
    "all_rules",
    "analyze_repo_tables",
    "analyze_table",
    "apply_baseline",
    "lint_source",
    "load_baseline",
    "write_baseline",
]
