"""The AST lint engine: rule registry, file walking, suppressions, scopes.

Rules are small visitor-style objects registered by module import (see
:mod:`repro.simcheck.rules`).  The engine parses each target file once,
hands every applicable rule a shared :class:`FileContext`, filters
``# simcheck: ignore[RULE]`` suppressions, and returns raw findings; the
CLI layers the baseline on top (:mod:`repro.simcheck.baseline`).

Scopes
------
Files are classified by path: anything under a ``tests``/``benchmarks``
directory gets that scope, everything else is ``src``.  A rule declares
which scopes it is meaningful for (simulator determinism rules make no
sense in tests, which may use throwaway randomness); the engine runs a
rule on a file only when both the rule and the requested scope set allow
it.  ``src`` is the only scope linted by default — ``benchmarks`` and
``tests`` are opt-in via ``python -m repro lint --scope``.
"""

from __future__ import annotations

import ast
import io
import os
import re
import tokenize
from dataclasses import dataclass, field
from typing import Dict, Iterable, Iterator, List, Optional, Set, Tuple

from .findings import Finding, source_line

SCOPES = ("src", "benchmarks", "tests")

#: ``# simcheck: ignore`` or ``# simcheck: ignore[DET001, ORD001]``
_SUPPRESS_RE = re.compile(
    r"#\s*simcheck:\s*ignore(?:-file)?(?:\[([A-Za-z0-9_,\s]+)\])?"
)
_SUPPRESS_FILE_RE = re.compile(
    r"#\s*simcheck:\s*ignore-file(?:\[([A-Za-z0-9_,\s]+)\])?"
)

#: Sentinel meaning "every rule" in a suppression set.
ALL_RULES = "*"


@dataclass
class FileContext:
    """Everything a rule needs to inspect one file (parsed once)."""

    path: str  # absolute
    relpath: str  # repo-relative, '/'-separated
    scope: str
    source: str
    tree: ast.AST
    lines: List[str] = field(default_factory=list)

    def finding(
        self, rule: str, node, message: str, severity: str = "error"
    ) -> Finding:
        lineno = getattr(node, "lineno", 1)
        return Finding(
            rule=rule,
            path=self.relpath,
            line=lineno,
            col=getattr(node, "col_offset", 0),
            message=message,
            severity=severity,
            line_text=source_line(self.lines, lineno),
        )


class Rule:
    """Base class for lint rules.

    Subclasses set ``id`` (stable, referenced by suppressions and the
    baseline), ``title``, and ``scopes``, and implement :meth:`check`.
    """

    id: str = ""
    title: str = ""
    scopes: Tuple[str, ...] = ("src",)

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        raise NotImplementedError

    def applies_to(self, ctx: FileContext) -> bool:
        """Path-level opt-in hook (e.g. unit rules only watch mem/)."""
        return True


REGISTRY: Dict[str, Rule] = {}


def register(cls):
    """Class decorator adding one instance of a rule to the registry."""
    rule = cls()
    if not rule.id:
        raise ValueError(f"rule {cls.__name__} has no id")
    if rule.id in REGISTRY:
        raise ValueError(f"duplicate rule id {rule.id}")
    REGISTRY[rule.id] = rule
    return cls


def all_rules() -> List[Rule]:
    return [REGISTRY[rule_id] for rule_id in sorted(REGISTRY)]


def classify_scope(relpath: str) -> str:
    parts = relpath.replace(os.sep, "/").split("/")
    if "tests" in parts:
        return "tests"
    if "benchmarks" in parts:
        return "benchmarks"
    return "src"


def parse_suppressions(
    lines: List[str],
) -> Tuple[Dict[int, Set[str]], Set[str]]:
    """Per-line and file-level suppression sets from magic comments.

    Returns ``(by_line, file_level)``; sets contain rule IDs or
    :data:`ALL_RULES`.  A bare ``ignore`` suppresses every rule on its
    line; ``ignore-file`` (anywhere in the first five lines) suppresses
    for the whole file.
    """
    by_line: Dict[int, Set[str]] = {}
    file_level: Set[str] = set()
    for lineno, text in enumerate(lines, start=1):
        if "simcheck" not in text:
            continue
        file_match = _SUPPRESS_FILE_RE.search(text)
        if file_match and lineno <= 5:
            rules = file_match.group(1)
            if rules:
                file_level.update(
                    r.strip() for r in rules.split(",") if r.strip()
                )
            else:
                file_level.add(ALL_RULES)
            continue
        match = _SUPPRESS_RE.search(text)
        if not match:
            continue
        rules = match.group(1)
        entry = by_line.setdefault(lineno, set())
        if rules:
            entry.update(r.strip() for r in rules.split(",") if r.strip())
        else:
            entry.add(ALL_RULES)
    return by_line, file_level


def is_suppressed(
    finding: Finding,
    by_line: Dict[int, Set[str]],
    file_level: Set[str],
) -> bool:
    if ALL_RULES in file_level or finding.rule in file_level:
        return True
    rules = by_line.get(finding.line)
    return rules is not None and (
        ALL_RULES in rules or finding.rule in rules
    )


@dataclass
class Pragma:
    """One suppression the source claims to need."""

    line: int  # line the pragma sits on (file-level pragmas included)
    rule: str  # rule ID or ALL_RULES
    file_level: bool
    used: int = 0


def _pragma_comments(lines: List[str]) -> Dict[int, str]:
    """Line -> real COMMENT token text, for lines mentioning simcheck.

    Tokenizing (rather than grepping lines) keeps pragma syntax *quoted*
    in docstrings and string literals — as this module's own docs do —
    from being reported as stale suppressions.  Falls back to raw lines
    if the source does not tokenize.
    """
    source = "\n".join(lines)
    out: Dict[int, str] = {}
    try:
        tokens = list(
            tokenize.generate_tokens(io.StringIO(source).readline)
        )
    except (tokenize.TokenError, IndentationError, SyntaxError):
        return {
            lineno: text
            for lineno, text in enumerate(lines, start=1)
            if "simcheck" in text
        }
    for tok in tokens:
        if tok.type == tokenize.COMMENT and "simcheck" in tok.string:
            out[tok.start[0]] = tok.string
    return out


def _quoted(text: str, idx: int) -> bool:
    """Whether the ``#`` at ``idx`` sits inside quoted example text."""
    return idx > 0 and text[idx - 1] in "`'\""


class SuppressionTracker:
    """Suppression filtering that remembers which pragmas fired.

    Wraps :func:`parse_suppressions` / :func:`is_suppressed` and counts,
    per pragma, how many findings it hid — so the engine can report the
    stale ones (``SUPP001``): a suppression whose rule no longer fires
    is a claim about the code that stopped being true.
    """

    def __init__(self, lines: List[str]) -> None:
        self.by_line, self.file_level = parse_suppressions(lines)
        self.pragmas: List[Pragma] = []
        for lineno, text in sorted(_pragma_comments(lines).items()):
            file_match = _SUPPRESS_FILE_RE.search(text)
            if (
                file_match
                and lineno <= 5
                and not _quoted(text, file_match.start())
            ):
                rules = file_match.group(1)
                names = (
                    [r.strip() for r in rules.split(",") if r.strip()]
                    if rules
                    else [ALL_RULES]
                )
                for name in names:
                    self.pragmas.append(Pragma(lineno, name, True))
                continue
            match = _SUPPRESS_RE.search(text)
            if not match or _quoted(text, match.start()):
                continue
            rules = match.group(1)
            names = (
                [r.strip() for r in rules.split(",") if r.strip()]
                if rules
                else [ALL_RULES]
            )
            for name in names:
                self.pragmas.append(Pragma(lineno, name, False))

    def suppresses(self, finding: Finding) -> bool:
        """:func:`is_suppressed`, but records which pragma absorbed it."""
        if not is_suppressed(finding, self.by_line, self.file_level):
            return False
        for pragma in self.pragmas:
            if pragma.rule not in (finding.rule, ALL_RULES):
                continue
            if pragma.file_level or pragma.line == finding.line:
                pragma.used += 1
                break
        return True

    def unused(self, rules_run: Set[str]) -> Iterator[Pragma]:
        """Pragmas that hid nothing.

        A pragma naming a real rule is only reported when that rule ran
        (a golden test linting with a rule subset shouldn't flag the
        others' pragmas as stale); unknown rule IDs are always reported
        — they can never fire.
        """
        for pragma in self.pragmas:
            if pragma.used:
                continue
            known = pragma.rule in REGISTRY
            if pragma.rule == ALL_RULES or not known or pragma.rule in rules_run:
                yield pragma


def unused_pragma_findings(
    tracker: SuppressionTracker,
    relpath: str,
    lines: List[str],
    rules_run: Set[str],
) -> List[Finding]:
    """Info-severity SUPP001 notes for stale/unknown suppressions."""
    findings: List[Finding] = []
    for pragma in tracker.unused(rules_run):
        if pragma.rule != ALL_RULES and pragma.rule not in REGISTRY:
            message = (
                f"suppression names unknown rule {pragma.rule!r}; it can "
                f"never fire — fix the ID or delete the pragma"
            )
        else:
            what = (
                "every rule" if pragma.rule == ALL_RULES else pragma.rule
            )
            where = "file-level " if pragma.file_level else ""
            message = (
                f"unused {where}suppression of {what}: nothing fires "
                f"here anymore — delete the pragma so real findings "
                f"can't hide behind it"
            )
        findings.append(
            Finding(
                rule="SUPP001",
                path=relpath,
                line=pragma.line,
                message=message,
                severity="info",
                line_text=source_line(lines, pragma.line),
            )
        )
    return findings


def iter_python_files(paths: Iterable[str]) -> Iterator[str]:
    """Every ``.py`` file under ``paths`` (files accepted verbatim)."""
    seen: Set[str] = set()
    for path in paths:
        if os.path.isfile(path):
            if path.endswith(".py") and path not in seen:
                seen.add(path)
                yield path
            continue
        for dirpath, dirnames, filenames in os.walk(path):
            dirnames[:] = sorted(
                d for d in dirnames
                if not d.startswith(".") and d != "__pycache__"
            )
            for filename in sorted(filenames):
                if not filename.endswith(".py"):
                    continue
                full = os.path.join(dirpath, filename)
                if full not in seen:
                    seen.add(full)
                    yield full


def relativize(path: str, root: Optional[str] = None) -> str:
    root = root or os.getcwd()
    try:
        rel = os.path.relpath(os.path.abspath(path), root)
    except ValueError:  # different drive (windows); keep absolute
        rel = path
    return rel.replace(os.sep, "/")


@dataclass
class EngineResult:
    """Raw engine output, before baseline filtering."""

    findings: List[Finding] = field(default_factory=list)
    suppressed: int = 0
    files_checked: int = 0


class LintEngine:
    """Run every applicable registered rule over a set of paths."""

    def __init__(
        self,
        scopes: Iterable[str] = ("src",),
        rules: Optional[Iterable[Rule]] = None,
        root: Optional[str] = None,
    ) -> None:
        for scope in scopes:
            if scope not in SCOPES:
                raise ValueError(
                    f"unknown scope {scope!r}; choose from {SCOPES}"
                )
        self.scopes = tuple(scopes)
        self.rules = list(rules) if rules is not None else all_rules()
        self.root = root or os.getcwd()

    def lint_file(self, path: str) -> Tuple[List[Finding], int, bool]:
        """Findings, suppression count, and whether the file was in scope."""
        relpath = relativize(path, self.root)
        scope = classify_scope(relpath)
        if scope not in self.scopes:
            return [], 0, False
        with open(path, "r", encoding="utf-8") as handle:
            source = handle.read()
        lines = source.splitlines()
        try:
            tree = ast.parse(source, filename=path)
        except SyntaxError as exc:
            return (
                [
                    Finding(
                        rule="SYNTAX",
                        path=relpath,
                        line=exc.lineno or 1,
                        col=(exc.offset or 1) - 1,
                        message=f"file does not parse: {exc.msg}",
                        line_text=source_line(lines, exc.lineno or 1),
                    )
                ],
                0,
                True,
            )
        ctx = FileContext(
            path=path,
            relpath=relpath,
            scope=scope,
            source=source,
            tree=tree,
            lines=lines,
        )
        tracker = SuppressionTracker(lines)
        findings: List[Finding] = []
        suppressed = 0
        rules_run: Set[str] = set()
        for rule in self.rules:
            if scope not in rule.scopes or not rule.applies_to(ctx):
                continue
            rules_run.add(rule.id)
            for finding in rule.check(ctx):
                if tracker.suppresses(finding):
                    suppressed += 1
                else:
                    findings.append(finding)
        findings.extend(
            unused_pragma_findings(tracker, relpath, lines, rules_run)
        )
        return findings, suppressed, True

    def run(self, paths: Iterable[str]) -> EngineResult:
        result = EngineResult()
        for path in iter_python_files(paths):
            findings, suppressed, checked = self.lint_file(path)
            result.findings.extend(findings)
            result.suppressed += suppressed
            if checked:
                result.files_checked += 1
        return result


def lint_source(
    source: str,
    relpath: str = "src/repro/snippet.py",
    rules: Optional[Iterable[Rule]] = None,
    scope: Optional[str] = None,
) -> List[Finding]:
    """Lint a source string — the golden-test entry point."""
    lines = source.splitlines()
    ctx = FileContext(
        path=relpath,
        relpath=relpath,
        scope=scope or classify_scope(relpath),
        source=source,
        tree=ast.parse(source),
        lines=lines,
    )
    tracker = SuppressionTracker(lines)
    findings: List[Finding] = []
    rules_run: Set[str] = set()
    for rule in (list(rules) if rules is not None else all_rules()):
        if ctx.scope not in rule.scopes or not rule.applies_to(ctx):
            continue
        rules_run.add(rule.id)
        for finding in rule.check(ctx):
            if not tracker.suppresses(finding):
                findings.append(finding)
    findings.extend(
        unused_pragma_findings(tracker, relpath, lines, rules_run)
    )
    findings.sort(key=lambda f: (f.line, f.col, f.rule))
    return findings
